// A1 — ablation of the cache placement policy (DESIGN.md).
//
// The paper's platform uses random-modulo placement (Hernandez, DAC 2016).
// This bench compares the three placements the library implements — the
// deterministic modulo baseline, random modulo, and fully hashed random
// placement — on two axes:
//   (a) run-to-run distribution on one fixed binary (seeds resampled),
//   (b) sensitivity to the *memory layout* (link offset sweep), the effect
//       random placement exists to neutralize.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

namespace {

// Replacement is held at the RAND platform's random policy for every row so
// the sweep isolates the *placement* choice.
spta::sim::PlatformConfig WithPlacement(spta::sim::Placement p) {
  auto cfg = spta::sim::RandLeon3Config();
  cfg.il1.placement = p;
  cfg.dl1.placement = p;
  return cfg;
}

}  // namespace

int main() {
  using namespace spta;
  bench::Banner("abl1_placement_policies",
                "design-choice ablation (Section II cache modifications)",
                "random placement makes the memory layout irrelevant and "
                "turns layout risk into a measurable distribution");

  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(4242);
  const std::size_t runs = bench::RunCount(300);

  TextTable dist({"placement", "mean", "stddev", "min", "max",
                  "max/min"});
  for (const auto placement :
       {sim::Placement::kModulo, sim::Placement::kRandomModulo,
        sim::Placement::kHashRandom}) {
    sim::Platform platform(WithPlacement(placement), 1);
    const auto samples =
        analysis::RunFixedTraceCampaign(platform, frame.trace, runs, 77);
    const auto times = analysis::ExtractTimes(samples);
    const auto s = stats::Summarize(times);
    dist.AddRow({sim::ToString(placement), FormatF(s.mean, 0),
                 FormatF(s.stddev, 1), FormatF(s.min, 0), FormatF(s.max, 0),
                 FormatF(s.max / s.min, 4)});
  }
  std::printf("(a) run-to-run distribution, one binary, %zu seeds\n", runs);
  dist.Render(std::cout);

  // (b) layout sensitivity: rebuild the TVCA binary with 8 different link
  // maps (inter-array padding) and compare mean L1 miss counts. A
  // deterministic cache's conflict pattern follows the relative alignment
  // of the data objects; random placement re-randomizes it per run, so the
  // layout should not matter. Misses (not cycles) isolate the cache effect
  // from DRAM row alignment.
  std::printf("\n(b) layout sweep (8 link maps, mean DL1+IL1 misses)\n");
  TextTable layout({"placement", "min misses", "max misses",
                    "layout spread"});
  for (const auto placement :
       {sim::Placement::kModulo, sim::Placement::kRandomModulo,
        sim::Placement::kHashRandom}) {
    double lo = 1e300;
    double hi = 0.0;
    for (std::uint64_t layout_seed = 1; layout_seed <= 8; ++layout_seed) {
      apps::TvcaConfig tc;
      tc.layout_seed = layout_seed;
      const apps::TvcaApp relinked(tc);
      const auto relinked_frame = relinked.BuildFrame(4242);
      sim::Platform platform(WithPlacement(placement), 1);
      const auto samples = analysis::RunFixedTraceCampaign(
          platform, relinked_frame.trace, 40, 99);
      double misses = 0.0;
      for (const auto& s : samples) {
        misses += static_cast<double>(s.detail.dl1.misses +
                                      s.detail.il1.misses);
      }
      misses /= static_cast<double>(samples.size());
      lo = std::min(lo, misses);
      hi = std::max(hi, misses);
    }
    layout.AddRow({sim::ToString(placement), FormatF(lo, 1), FormatF(hi, 1),
                   FormatF((hi - lo) / lo, 4)});
  }
  layout.Render(std::cout);
  std::printf(
      "\nexpected shape: layout spread shrinks from modulo to random-modulo "
      "to hash-random. Random modulo keeps *within*-tag-group alignment "
      "deterministic (that is the no-self-conflict guarantee), so a little "
      "layout sensitivity remains; hash placement is fully layout-blind but "
      "pays for it with self-conflicts (highest mean misses).\n");
  return 0;
}
