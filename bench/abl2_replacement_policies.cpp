// A2 — ablation of the cache replacement policy (DESIGN.md).
//
// The paper's platform uses random replacement in IL1/DL1/ITLB/DTLB.
// Compares LRU / NRU / random replacement on the TVCA frame: average
// performance, run-to-run spread, and the DL1 miss counts behind them.

#include <cstdio>
#include <iostream>
#include <set>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;
  bench::Banner("abl2_replacement_policies",
                "design-choice ablation (Section II cache modifications)",
                "random replacement preserves average performance while "
                "producing the probabilistic timing MBPTA needs");

  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(31337);
  const std::size_t runs = bench::RunCount(300);

  TextTable table({"replacement", "mean cycles", "stddev", "max", "avg DL1"
                   " misses", "avg IL1 misses", "distinct times"});
  for (const auto replacement :
       {sim::Replacement::kLru, sim::Replacement::kNru,
        sim::Replacement::kRandom}) {
    auto cfg = sim::RandLeon3Config();
    cfg.il1.replacement = replacement;
    cfg.dl1.replacement = replacement;
    cfg.itlb.replacement = replacement;
    cfg.dtlb.replacement = replacement;
    sim::Platform platform(cfg, 1);
    const auto samples =
        analysis::RunFixedTraceCampaign(platform, frame.trace, runs, 55);
    const auto times = analysis::ExtractTimes(samples);
    double dl1 = 0.0;
    double il1 = 0.0;
    for (const auto& s : samples) {
      dl1 += static_cast<double>(s.detail.dl1.misses);
      il1 += static_cast<double>(s.detail.il1.misses);
    }
    std::set<double> distinct(times.begin(), times.end());
    const auto s = stats::Summarize(times);
    table.AddRow({sim::ToString(replacement), FormatF(s.mean, 0),
                  FormatF(s.stddev, 1), FormatF(s.max, 0),
                  FormatF(dl1 / static_cast<double>(runs), 1),
                  FormatF(il1 / static_cast<double>(runs), 1),
                  std::to_string(distinct.size())});
  }
  table.Render(std::cout);
  std::printf(
      "\nexpected shape: all three means within a few percent (random "
      "replacement costs little on average). Note the spread flip: with "
      "LRU/NRU the per-seed placement decides between benign and thrashing "
      "set alignments (large, bimodal spread), while random replacement "
      "smooths every alignment into a narrow, well-behaved distribution — "
      "exactly the probabilistic timing MBPTA wants to model.\n");
  return 0;
}
