// A3 — ablation of the FPU hardware change (Section II, "FPU").
//
// FDIV/FSQRT latency depends on the operated values; the platform change
// fixes both at their worst-case latency during analysis. This bench
// quantifies (a) the value-dependent jitter MBTA would otherwise have to
// control by hand, (b) the upper-bounding property of the analysis-phase
// mode, and (c) its average-time cost.

#include <cstdio>
#include <iostream>

#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;
  bench::Banner("abl3_fpu_jitter", "Section II FPU modification",
                "worst-case-fixed FDIV/FSQRT at analysis upper-bounds every "
                "operation-phase execution, at a small average cost");

  const apps::TvcaApp app;
  const std::size_t inputs = bench::RunCount(200);

  sim::Platform analysis_p(sim::RandLeon3Config(), 1);
  sim::Platform operation_p(sim::RandLeon3OperationConfig(), 1);

  // The FP-heavy task in its maneuver mode (stabilization integrator with
  // FSQRT + 4 FDIVs per step).
  apps::TvcaScenario maneuver;
  maneuver.maneuver_y = true;

  std::vector<double> op_times;
  std::vector<double> an_times;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < inputs; ++i) {
    const auto t = app.BuildTaskTrace(apps::TvcaTask::kActuatorY,
                                      DeriveSeed(1000, i), maneuver);
    const Seed seed = DeriveSeed(2000, i);
    const double op =
        static_cast<double>(operation_p.Run(t, seed).cycles);
    const double an =
        static_cast<double>(analysis_p.Run(t, seed).cycles);
    op_times.push_back(op);
    an_times.push_back(an);
    if (an < op) ++violations;
  }

  const auto op_s = stats::Summarize(op_times);
  const auto an_s = stats::Summarize(an_times);
  TextTable table({"FPU mode", "mean", "min", "max", "spread"});
  table.AddRow({"variable (operation)", FormatF(op_s.mean, 0),
                FormatF(op_s.min, 0), FormatF(op_s.max, 0),
                FormatF((op_s.max - op_s.min) / op_s.min, 4)});
  table.AddRow({"worst-case fixed (analysis)", FormatF(an_s.mean, 0),
                FormatF(an_s.min, 0), FormatF(an_s.max, 0),
                FormatF((an_s.max - an_s.min) / an_s.min, 4)});
  table.Render(std::cout);

  std::printf(
      "\nupper-bound violations (analysis < operation, matched input+seed): "
      "%zu of %zu (must be 0)\n",
      violations, inputs);
  std::printf("average cost of the worst-case mode: +%.2f%%\n",
              100.0 * (an_s.mean / op_s.mean - 1.0));
  std::printf(
      "expected shape: 0 violations; the analysis-mode average sits only "
      "slightly above operation mode — most full-precision operands already "
      "exercise the divider's worst path, so the upper-bounding guarantee "
      "is nearly free (the paper reports no noticeable average impact).\n");
  return violations == 0 ? 0 : 1;
}
