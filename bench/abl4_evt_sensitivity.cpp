// A4 — ablation of the EVT estimation choices (DESIGN.md).
//
// The pWCET value at a certification cutoff should be robust to the
// analysis hyper-parameters. Sweeps the block size and the tail estimator
// (Gumbel MLE, Gumbel PWM, GEV PWM) on one RAND TVCA sample and reports
// the pWCET at 1e-9 / 1e-12 for each combination, plus the PoT/GPD
// cross-check.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "evt/block_maxima.hpp"
#include "evt/crps.hpp"
#include "evt/gev.hpp"
#include "evt/gpd.hpp"
#include "evt/gumbel.hpp"
#include "evt/threshold.hpp"
#include "evt/pwcet.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;
  bench::Banner("abl4_evt_sensitivity", "analysis design choices",
                "pWCET estimates are stable across block sizes and "
                "estimators (no cherry-picked hyper-parameters)");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(3000);
  sim::Platform platform(sim::RandLeon3Config(), 7);
  const auto samples = analysis::RunTvcaCampaign(platform, app, cfg);
  const auto times = analysis::ExtractTimes(samples);
  const double hwm = stats::Max(times);
  std::printf("sample: %zu runs, HWM %.0f\n\n", times.size(), hwm);

  TextTable table({"block size", "maxima", "estimator", "pWCET@1e-9",
                   "pWCET@1e-12", "vs HWM", "CRPS"});
  for (const std::size_t block : {25u, 50u, 100u, 200u}) {
    if (times.size() / block < 10) continue;
    const auto maxima = evt::BlockMaxima(times, block);
    struct Fit {
      const char* name;
      evt::GumbelDist dist;
    };
    const evt::GevDist gev = evt::FitGevMle(maxima);
    const Fit fits[] = {
        {"Gumbel MLE", evt::FitGumbelMle(maxima)},
        {"Gumbel PWM", evt::FitGumbelPwm(maxima)},
        // GEV (MLE) collapsed to its Gumbel component for comparability
        // (the shape is reported separately below).
        {"GEV MLE (xi->0)", evt::GumbelDist{gev.mu, gev.sigma}},
    };
    for (const auto& fit : fits) {
      const evt::PwcetCurve curve(fit.dist, block, times.size());
      const double p9 = curve.QuantileForExceedance(1e-9);
      const double p12 = curve.QuantileForExceedance(1e-12);
      table.AddRow({std::to_string(block), std::to_string(maxima.size()),
                    fit.name, FormatF(p9, 0), FormatF(p12, 0),
                    FormatF(p12 / hwm, 4) + "x",
                    FormatG(evt::CrpsGumbel(fit.dist, maxima), 4)});
    }
    std::printf("block %zu: GEV shape xi = %+.4f (%s)\n", block, gev.xi,
                gev.IsEffectivelyGumbel(0.1) ? "Gumbel-compatible"
                                             : "check tail model");
  }
  std::printf("\n");
  table.Render(std::cout);

  // PoT/GPD cross-check with an automated threshold sweep. Keep at least
  // ~25 excesses at the deepest candidate regardless of the run count.
  const double min_fraction =
      std::max(0.02, 25.0 / static_cast<double>(times.size()));
  const auto sweep =
      evt::SweepThresholds(times, 1e-9, 0.25, min_fraction);
  std::printf("\nPoT threshold sweep (plateau pick marked):\n");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& pt = sweep.points[i];
    std::printf("  tail %5.1f%%  u=%.0f  xi=%+.3f  q(1e-9)=%.0f%s\n",
                100.0 * pt.tail_fraction, pt.threshold, pt.xi, pt.q_deep,
                static_cast<int>(i) == sweep.chosen ? "   <- chosen" : "");
  }
  std::printf(
      "\nexpected shape: estimates at a fixed cutoff stay within ~10%% of "
      "each other across block sizes and estimators, with smaller blocks "
      "(more maxima) the more conservative choice. The GEV shape goes "
      "negative for large blocks — the conflict-miss distribution is "
      "bounded — so the Gumbel (xi = 0) projection is conservative, and "
      "the PoT/GPD route lands in the same range.\n");
  return 0;
}
