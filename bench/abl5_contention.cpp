// A5 — extension: multicore bus/DRAM contention.
//
// The paper's platform is a 4-core LEON3 sharing one bus and memory
// controller (Figure 1); the case study runs TVCA alone. This extension
// measures how co-runner load moves the TVCA distribution and its pWCET —
// the multicore MBPTA question the PROXIMA project targeted.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace spta;
  bench::Banner("abl5_contention", "multicore extension (Figure 1 platform)",
                "co-runner memory traffic inflates TVCA times and pWCET "
                "monotonically with the number of active cores");

  const apps::TvcaApp app;
  const std::size_t runs = bench::RunCount(400);

  // Memory-heavy co-runner: streaming loads over a large region.
  trace::BlendSpec contender_spec;
  contender_spec.count = 400000;
  contender_spec.load_pm = 450;
  contender_spec.store_pm = 150;
  contender_spec.data_bytes = 256 * 1024;
  contender_spec.data_base = 0x60000000;
  contender_spec.code_base = 0x5ff00000;
  const trace::Trace contender = trace::BlendTrace(contender_spec, 99);

  TextTable table({"co-runners", "mean", "max", "pWCET@1e-12",
                   "slowdown vs solo"});
  double solo_mean = 0.0;
  for (int contenders = 0; contenders <= 3; ++contenders) {
    sim::Platform platform(sim::RandLeon3Config(), 1);
    std::vector<double> times;
    times.reserve(runs);
    for (std::size_t r = 0; r < runs; ++r) {
      const auto frame = app.BuildFrame(DeriveSeed(5000, r));
      std::vector<const trace::Trace*> slots(4, nullptr);
      slots[0] = &frame.trace;
      for (int c = 1; c <= contenders; ++c) slots[static_cast<std::size_t>(c)] = &contender;
      const auto results =
          platform.RunConcurrent(slots, DeriveSeed(6000, r));
      times.push_back(static_cast<double>(results[0].cycles));
    }
    const auto s = stats::Summarize(times);
    if (contenders == 0) solo_mean = s.mean;
    mbpta::MbptaOptions opts;
    opts.require_iid = false;
    const auto est = mbpta::AnalyzeSample(times, opts);
    table.AddRow({std::to_string(contenders), FormatF(s.mean, 0),
                  FormatF(s.max, 0),
                  est.curve ? FormatF(est.PwcetAt(1e-12), 0) : "-",
                  FormatF(s.mean / solo_mean, 3) + "x"});
  }
  table.Render(std::cout);
  std::printf(
      "\nexpected shape: mean, max and pWCET all grow monotonically with "
      "the co-runner count; the MBPTA analysis still applies because the "
      "arbitration interleaving is captured run-to-run.\n");
  return 0;
}
