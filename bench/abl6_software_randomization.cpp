// A6 — extension: software randomization on the DETERMINISTIC platform.
//
// The paper's platform randomizes in hardware. The companion line of work
// (PROXIMA's software randomization for COTS processors) achieves the same
// statistical effect without touching the silicon: the *software* re-links
// / relocates code and data at a random layout on every run, so the
// deterministic cache's conflict pattern becomes a random variable.
//
// This bench runs TVCA on the stock DET platform under three protocols:
//   fixed layout        — industrial status quo: one layout, re-runs tell
//                         you nothing about other layouts;
//   per-run relayout    — software randomization: every run draws a fresh
//                         link map (layout_seed), enabling MBPTA;
//   hardware RAND       — the paper's platform, for reference.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "mbpta/iid_gate.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;
  bench::Banner(
      "abl6_software_randomization",
      "extension: software randomization (PROXIMA line of work)",
      "randomizing the memory layout in software makes the deterministic "
      "platform MBPTA-analyzable; hardware randomization achieves the same "
      "with one binary");

  const std::size_t runs = bench::RunCount(1000);
  const std::uint64_t scenario_seed = 777;

  TextTable table({"protocol", "runs", "mean", "stddev", "max",
                   "iid @5%", "pWCET@1e-12"});
  const auto add_row = [&](const char* name, std::vector<double>& times) {
    const auto s = stats::Summarize(times);
    std::string iid = "-";
    std::string pwcet = "-";
    if (s.max > s.min) {
      const auto gate = mbpta::RunIidGate(times);
      iid = gate.Passed() ? "pass" : "REJECTED";
      mbpta::MbptaOptions opts;
      opts.require_iid = false;
      const auto est = mbpta::AnalyzeSample(times, opts);
      if (est.curve) pwcet = FormatF(est.PwcetAt(1e-12), 0);
    }
    table.AddRow({name, std::to_string(times.size()), FormatF(s.mean, 0),
                  FormatF(s.stddev, 1), FormatF(s.max, 0), iid, pwcet});
  };

  // Protocol 1: DET platform, one fixed binary (layout_seed = 0).
  {
    const apps::TvcaApp app;
    const auto frame = app.BuildFrame(scenario_seed);
    sim::Platform det(sim::DetLeon3Config(), 1);
    std::vector<double> times;
    for (std::size_t r = 0; r < runs; ++r) {
      times.push_back(
          static_cast<double>(det.Run(frame.trace, r).cycles));
    }
    add_row("DET, fixed layout", times);
  }

  // Protocol 2: DET platform, fresh link map per run (software rand.).
  {
    sim::Platform det(sim::DetLeon3Config(), 1);
    std::vector<double> times;
    for (std::size_t r = 0; r < runs; ++r) {
      apps::TvcaConfig cfg;
      cfg.layout_seed = DeriveSeed(31, r) | 1;  // nonzero
      const apps::TvcaApp relinked(cfg);
      const auto frame = relinked.BuildFrame(scenario_seed);
      times.push_back(
          static_cast<double>(det.Run(frame.trace, r).cycles));
    }
    add_row("DET, per-run software relayout", times);
  }

  // Protocol 3: hardware-randomized platform, one binary.
  {
    const apps::TvcaApp app;
    const auto frame = app.BuildFrame(scenario_seed);
    sim::Platform rnd(sim::RandLeon3Config(), 1);
    std::vector<double> times;
    for (std::size_t r = 0; r < runs; ++r) {
      times.push_back(static_cast<double>(
          rnd.Run(frame.trace, DeriveSeed(63, r)).cycles));
    }
    add_row("RAND (hardware), fixed layout", times);
  }

  table.Render(std::cout);
  std::printf(
      "\nexpected shape: the fixed-layout DET row has zero spread (one "
      "layout = one time, MBPTA inapplicable: re-runs cannot reveal other "
      "layouts). Per-run software relayout turns the hidden layout risk "
      "into a measurable — heavy-tailed — distribution: under LRU a few "
      "layouts thrash badly, so the pWCET is honest but large. Hardware "
      "randomization additionally randomizes replacement, smoothing those "
      "pathologies into a much tighter distribution and a smaller pWCET — "
      "the quantitative argument for doing it in silicon.\n");
  return 0;
}
