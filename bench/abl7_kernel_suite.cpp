// A7 — MBPTA across a WCET-benchmark kernel suite.
//
// The MBPTA literature (ECRTS 2012, the avionics case studies) validates
// the method across benchmark kernels, not just one application. This
// bench runs every kernel in the library on the RAND platform with
// per-run randomized inputs + platform seeds and reports the MBPTA
// verdict and pWCET per kernel.

#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>

#include "prng/xoshiro.hpp"

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace spta;

struct KernelCase {
  const char* name;
  // Builds the dynamic trace for one input draw.
  std::function<trace::Trace(std::uint64_t)> make_trace;
};

std::vector<KernelCase> MakeSuite() {
  std::vector<KernelCase> suite;

  suite.push_back({"bubble-sort-96", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeBubbleSortProgram(96);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 96; ++i) {
      interp.WriteInt(0, static_cast<std::size_t>(i),
                      static_cast<std::int32_t>(rng.UniformBelow(100000)));
    }
    return interp.Run();
  }});

  suite.push_back({"binary-search-1k", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeBinarySearchProgram(1024, 64);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 1024; ++i) {
      interp.WriteInt(0, static_cast<std::size_t>(i), 7 * i);
    }
    for (int q = 0; q < 64; ++q) {
      interp.WriteInt(1, static_cast<std::size_t>(q),
                      static_cast<std::int32_t>(rng.UniformBelow(7 * 1024)));
    }
    return interp.Run();
  }});

  suite.push_back({"interpolation-256", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeInterpolationProgram(256, 128);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 256; ++i) {
      interp.WriteFp(0, static_cast<std::size_t>(i), 0.5 * i);
      interp.WriteFp(1, static_cast<std::size_t>(i),
                     std::sin(0.05 * i));
    }
    for (int q = 0; q < 128; ++q) {
      interp.WriteFp(2, static_cast<std::size_t>(q),
                     rng.UniformReal(-5.0, 135.0));
    }
    return interp.Run();
  }});

  suite.push_back({"lu-solve-52", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeLuSolveProgram(52);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 52; ++i) {
      for (int j = 0; j < 52; ++j) {
        double v = 0.4 * (rng.UniformUnit() - 0.5);
        if (i == j) v += 6.0;
        interp.WriteFp(0, static_cast<std::size_t>(i * 52 + j), v);
      }
      interp.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
    }
    return interp.Run();
  }});

  suite.push_back({"crc-8k", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeCrcProgram(8192);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 256; ++i) {
      interp.WriteInt(0, static_cast<std::size_t>(i),
                      static_cast<std::int32_t>(rng.Next() & 0x7fffffff));
    }
    for (int i = 0; i < 8192; ++i) {
      interp.WriteInt(1, static_cast<std::size_t>(i),
                      static_cast<std::int32_t>(rng.Next() & 0xffff));
    }
    return interp.Run();
  }});

  suite.push_back({"fir-32x2048", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeFirProgram(32, 2048);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int k = 0; k < 32; ++k) {
      interp.WriteFp(0, static_cast<std::size_t>(k), 1.0 / 32.0);
    }
    for (int i = 0; i < 2048 + 32; ++i) {
      interp.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
    }
    return interp.Run();
  }});

  suite.push_back({"matmul-34", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeMatMulProgram(34);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    for (int i = 0; i < 34 * 34; ++i) {
      interp.WriteFp(0, static_cast<std::size_t>(i), rng.UniformUnit());
      interp.WriteFp(1, static_cast<std::size_t>(i), rng.UniformUnit());
    }
    return interp.Run();
  }});

  suite.push_back({"attitude-64", [](std::uint64_t seed) {
    static const trace::Program p = apps::MakeAttitudeProgram(64);
    trace::Interpreter interp(p);
    prng::Xoshiro128pp rng(seed);
    interp.WriteFp(0, 0, 1.0);
    for (int s = 0; s < 3 * 64; ++s) {
      interp.WriteFp(1, static_cast<std::size_t>(s),
                     rng.UniformReal(-0.8, 0.8));
    }
    return interp.Run();
  }});

  return suite;
}

}  // namespace

int main() {
  using namespace spta;
  bench::Banner("abl7_kernel_suite",
                "MBPTA across a WCET-benchmark kernel suite",
                "the analysis applies beyond TVCA: every kernel yields an "
                "i.i.d.-admissible sample and a pWCET that bounds its "
                "observations");

  const std::size_t runs = bench::RunCount(1000);
  sim::Platform platform(sim::RandLeon3Config(), 3);

  TextTable table({"kernel", "instr/run", "mean", "HWM", "iid @5%",
                   "pWCET@1e-12", "vs HWM"});
  int failures = 0;
  for (const auto& kernel : MakeSuite()) {
    std::vector<double> times;
    std::size_t instr = 0;
    times.reserve(runs);
    for (std::size_t r = 0; r < runs; ++r) {
      const auto t = kernel.make_trace(DeriveSeed(101, r));
      instr = t.instruction_count();
      times.push_back(static_cast<double>(
          platform.Run(t, DeriveSeed(202, r)).cycles));
    }
    mbpta::MbptaOptions opts;
    opts.require_iid = false;  // verdict reported separately
    const auto est = mbpta::AnalyzeSample(times, opts);
    const double hwm = stats::Max(times);
    std::string pwcet = "-";
    std::string ratio = "-";
    if (est.curve) {
      const double p12 = est.PwcetAt(1e-12);
      pwcet = FormatF(p12, 0);
      ratio = FormatF(p12 / hwm, 3) + "x";
      if (p12 < hwm) ++failures;
    }
    table.AddRow({kernel.name, std::to_string(instr),
                  FormatF(stats::Mean(times), 0), FormatF(hwm, 0),
                  est.iid.Passed() ? "pass" : "REJECTED", pwcet, ratio});
  }
  table.Render(std::cout);
  std::printf(
      "\nexpected shape: every kernel's pWCET@1e-12 >= its high watermark "
      "(ratio >= 1); i.i.d. passes for (almost) all kernels at 5%%.\n");
  return failures == 0 ? 0 : 1;
}
