// A8 — the WCET-method landscape on one workload: the comparison the
// paper's introduction frames (static analysis vs industrial MBTA vs
// MBPTA, per Wilhelm et al.'s survey).
//
// For each kernel: observed times on RAND, the MBPTA pWCET@1e-12, the
// industrial MBTA bound (DET HWM + 50%), the hybrid structural bound
// (RapiTime-style: measured block counts x worst block cost), and the pure
// static bound (annotated loops, all-miss cost model). Expected ordering:
//
//   observed max  <=  pWCET  <~  MBTA+50%  <  hybrid  <=  static
//
// with tightness decreasing and required evidence/assumptions changing at
// every step — the trade-off space the paper positions MBPTA inside.

#include <cstdio>
#include <functional>
#include <iostream>

#include "apps/kernels.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "mbta/mbta.hpp"
#include "prng/xoshiro.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"
#include "swcet/hybrid.hpp"
#include "swcet/static_bound.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace spta;

struct Workload {
  const char* name;
  const trace::Program* program;
  std::function<void(trace::Interpreter&, std::uint64_t)> poke;
};

}  // namespace

int main() {
  using namespace spta;
  bench::Banner("abl8_static_vs_probabilistic",
                "method comparison (paper Section I framing)",
                "observed <= pWCET <~ MBTA+50% < hybrid <= static: "
                "tightness decreases as assumptions get cheaper to defend");

  const std::size_t runs = bench::RunCount(500);

  static const trace::Program bsort = apps::MakeBubbleSortProgram(64);
  static const trace::Program interp_prog =
      apps::MakeInterpolationProgram(128, 64);
  static const trace::Program lu = apps::MakeLuSolveProgram(48);

  const std::vector<Workload> workloads = {
      {"bubble-sort-64", &bsort,
       [](trace::Interpreter& in, std::uint64_t seed) {
         prng::Xoshiro128pp rng(seed);
         for (int i = 0; i < 64; ++i) {
           in.WriteInt(0, static_cast<std::size_t>(i),
                       static_cast<std::int32_t>(rng.UniformBelow(100000)));
         }
       }},
      {"interpolation-128", &interp_prog,
       [](trace::Interpreter& in, std::uint64_t seed) {
         prng::Xoshiro128pp rng(seed);
         for (int i = 0; i < 128; ++i) {
           in.WriteFp(0, static_cast<std::size_t>(i), 1.0 * i);
           in.WriteFp(1, static_cast<std::size_t>(i), 0.3 * i);
         }
         for (int q = 0; q < 64; ++q) {
           in.WriteFp(2, static_cast<std::size_t>(q),
                      rng.UniformReal(-4.0, 132.0));
         }
       }},
      {"lu-solve-48", &lu,
       [](trace::Interpreter& in, std::uint64_t seed) {
         prng::Xoshiro128pp rng(seed);
         for (int i = 0; i < 48; ++i) {
           for (int j = 0; j < 48; ++j) {
             double v = 0.3 * (rng.UniformUnit() - 0.5);
             if (i == j) v += 5.0;
             in.WriteFp(0, static_cast<std::size_t>(i * 48 + j), v);
           }
           in.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
         }
       }},
  };

  const auto rand_cfg = sim::RandLeon3Config();
  const auto det_cfg = sim::DetLeon3Config();

  TextTable table({"workload", "obs max (RAND)", "pWCET@1e-12",
                   "MBTA +50% (DET)", "hybrid", "static", "static/obs"});
  for (const auto& w : workloads) {
    // Measurement campaigns.
    sim::Platform rand_p(rand_cfg, 1);
    sim::Platform det_p(det_cfg, 1);
    std::vector<double> rand_times;
    std::vector<double> det_times;
    std::vector<trace::Trace> kept;
    kept.reserve(16);
    for (std::size_t r = 0; r < runs; ++r) {
      trace::Interpreter in(*w.program);
      w.poke(in, DeriveSeed(11, r));
      trace::Trace t = in.Run();
      rand_times.push_back(
          static_cast<double>(rand_p.Run(t, DeriveSeed(12, r)).cycles));
      det_times.push_back(
          static_cast<double>(det_p.Run(t, DeriveSeed(13, r)).cycles));
      if (r < 16) kept.push_back(std::move(t));  // structural evidence
    }
    std::vector<const trace::Trace*> traces;
    for (const auto& t : kept) traces.push_back(&t);

    mbpta::MbptaOptions opts;
    opts.require_iid = false;
    const auto est = mbpta::AnalyzeSample(rand_times, opts);
    const auto mbta50 = mbta::Estimate(det_times, 0.5);
    const auto hybrid = swcet::HybridStructuralBound(*w.program, traces,
                                                     det_cfg);
    const auto statics = swcet::ComputeStaticBound(
        *w.program, swcet::DeriveLoopBounds(*w.program, traces, 1.2),
        det_cfg);

    const double obs = stats::Max(rand_times);
    table.AddRow({w.name, FormatF(obs, 0),
                  est.curve ? FormatF(est.PwcetAt(1e-12), 0) : "-",
                  FormatF(mbta50.wcet_estimate, 0),
                  FormatF(static_cast<double>(hybrid.wcet_bound), 0),
                  FormatF(static_cast<double>(statics.wcet_bound), 0),
                  FormatF(static_cast<double>(statics.wcet_bound) / obs,
                          1) + "x"});
  }
  table.Render(std::cout);
  std::printf(
      "\nexpected shape: every column to the right of 'obs max' bounds it; "
      "MBPTA is the tightest defensible bound, the hybrid bound pays for "
      "structural coverage, and the pure static all-miss bound is an order "
      "of magnitude pessimistic — the cost of needing no measurements at "
      "all.\n");
  return 0;
}
