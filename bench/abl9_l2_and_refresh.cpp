// A9 — extension: a shared L2 cache and DRAM refresh.
//
// Two platform features the LEON3 board of the paper lacks but its
// successors (LEON4 with shared L2) and every real DRAM have. Both change
// the MBPTA picture:
//  * a shared L2 absorbs most DRAM traffic (lower mean) and, if it uses
//    deterministic policies, re-introduces layout-dependent jitter behind
//    the randomized L1s — so the MBPTA-compliant configuration randomizes
//    the L2 as well;
//  * DRAM refresh adds phase-dependent stalls that measurement protocols
//    must either capture (enough runs, varying phase) or bound.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

namespace {

spta::sim::PlatformConfig WithL2(spta::sim::PlatformConfig cfg,
                                 bool randomized_l2) {
  cfg.l2.enabled = true;
  cfg.l2.cache.size_bytes = 128 * 1024;
  cfg.l2.cache.ways = 8;
  if (randomized_l2) {
    cfg.l2.cache.placement = spta::sim::Placement::kRandomModulo;
    cfg.l2.cache.replacement = spta::sim::Replacement::kRandom;
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace spta;
  bench::Banner("abl9_l2_and_refresh",
                "extension: shared L2 + DRAM refresh",
                "an L2 cuts the mean; randomizing it keeps MBPTA valid; "
                "refresh adds bounded phase jitter the campaign captures");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(800);

  struct Variant {
    const char* name;
    sim::PlatformConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"RAND, no L2", sim::RandLeon3Config()});
  variants.push_back({"RAND + deterministic L2",
                      WithL2(sim::RandLeon3Config(), false)});
  variants.push_back({"RAND + randomized L2",
                      WithL2(sim::RandLeon3Config(), true)});
  {
    auto with_refresh = sim::RandLeon3Config();
    with_refresh.dram.refresh_interval = 7800;
    with_refresh.dram.refresh_duration = 128;
    variants.push_back({"RAND + DRAM refresh", with_refresh});
  }

  TextTable table({"platform", "mean", "stddev", "max", "iid @5%",
                   "pWCET@1e-12"});
  for (const auto& v : variants) {
    sim::Platform platform(v.config, 7);
    const auto samples = analysis::RunTvcaCampaign(platform, app, cfg);
    const auto times = analysis::ExtractTimes(samples);
    const auto s = stats::Summarize(times);
    mbpta::MbptaOptions opts;
    opts.require_iid = false;
    const auto est = mbpta::AnalyzeSample(times, opts);
    table.AddRow({v.name, FormatF(s.mean, 0), FormatF(s.stddev, 1),
                  FormatF(s.max, 0),
                  est.iid.Passed() ? "pass" : "REJECTED",
                  est.curve ? FormatF(est.PwcetAt(1e-12), 0) : "-"});
  }
  table.Render(std::cout);
  std::printf(
      "\nexpected shape: both L2 variants cut the mean well below the "
      "no-L2 platform; the randomized L2 remains i.i.d.-admissible; "
      "refresh shifts the mean slightly and widens the distribution "
      "without breaking the analysis.\n");
  return 0;
}
