// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper. The run
// count defaults to the paper's 3,000 (or a bench-appropriate number) and
// can be scaled down for smoke runs via the SPTA_BENCH_RUNS environment
// variable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace spta::bench {

/// Returns the configured number of measurement runs: SPTA_BENCH_RUNS if
/// set and positive, otherwise `default_runs`.
inline std::size_t RunCount(std::size_t default_runs) {
  const char* env = std::getenv("SPTA_BENCH_RUNS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_runs;
}

/// Standard banner so bench outputs are self-describing.
inline void Banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("paper claim: %s\n\n", claim);
}

}  // namespace spta::bench
