// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper. The run
// count defaults to the paper's 3,000 (or a bench-appropriate number) and
// can be scaled down for smoke runs via the SPTA_BENCH_RUNS environment
// variable.
//
// The JSON reporter gives the repo a standing perf trajectory: every
// micro_* bench emits a flat `BENCH_<name>.json` next to its stdout report
// (or into $SPTA_BENCH_JSON_DIR) with throughput, per-run latency
// percentiles and the git revision, so two checkouts can be compared
// mechanically. Schema and workflow: docs/BENCHMARKS.md; the format is
// guarded by the bench/check_bench_json tier-1 smoke test.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace spta::bench {

/// Returns the configured number of measurement runs: SPTA_BENCH_RUNS if
/// set and positive, otherwise `default_runs`.
inline std::size_t RunCount(std::size_t default_runs) {
  const char* env = std::getenv("SPTA_BENCH_RUNS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_runs;
}

/// Standard banner so bench outputs are self-describing.
inline void Banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("paper claim: %s\n\n", claim);
}

/// Git revision the bench binary is running against: $SPTA_GIT_REV when
/// set (CI override), else `git rev-parse HEAD` relative to the working
/// directory, else "unknown". Cached after the first call.
inline const std::string& GitRev() {
  static const std::string rev = [] {
    if (const char* env = std::getenv("SPTA_GIT_REV"); env && *env) {
      return std::string(env);
    }
    std::string out;
    if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
      char buf[128];
      if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
      ::pclose(pipe);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    return out.empty() ? std::string("unknown") : out;
  }();
  return rev;
}

/// Order statistics of a per-run latency sample (seconds in, summary out).
struct LatencySummary {
  double p50 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Nearest-rank percentiles over `seconds` (copied; empty input -> zeros).
inline LatencySummary SummarizeLatencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  const auto rank = [&](double q) {
    const std::size_t n = seconds.size();
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    return seconds[std::min(n - 1, idx == 0 ? 0 : idx - 1)];
  };
  s.p50 = rank(0.50);
  s.p99 = rank(0.99);
  s.min = seconds.front();
  s.max = seconds.back();
  double sum = 0.0;
  for (const double v : seconds) sum += v;
  s.mean = sum / static_cast<double>(seconds.size());
  return s;
}

/// Machine-readable bench report. Accumulate string and numeric fields,
/// then Write() emits `BENCH_<name>.json` — a single flat JSON object —
/// into $SPTA_BENCH_JSON_DIR (default: the working directory).
///
/// Required-by-schema fields ("bench", "git_rev", "timestamp_unix",
/// "runs") are filled automatically; see docs/BENCHMARKS.md for the full
/// contract and bench/check_bench_json.cpp for the validator.
class JsonReport {
 public:
  /// `name` must be filesystem-safe ([A-Za-z0-9_-]); it becomes both the
  /// "bench" field and the BENCH_<name>.json file name.
  explicit JsonReport(std::string name, std::size_t runs)
      : name_(std::move(name)) {
    strings_.emplace_back("bench", name_);
    strings_.emplace_back("git_rev", GitRev());
    numbers_.emplace_back("timestamp_unix",
                          static_cast<double>(std::time(nullptr)));
    numbers_.emplace_back("runs", static_cast<double>(runs));
  }

  void Set(const std::string& key, double value) {
    numbers_.emplace_back(key, value);
  }
  void SetString(const std::string& key, const std::string& value) {
    strings_.emplace_back(key, value);
  }

  /// Convenience: record a LatencySummary as <prefix>_{p50,p99,mean}_ms.
  void SetLatencies(const std::string& prefix, const LatencySummary& s) {
    Set(prefix + "_p50_ms", s.p50 * 1e3);
    Set(prefix + "_p99_ms", s.p99 * 1e3);
    Set(prefix + "_mean_ms", s.mean * 1e3);
  }

  /// Writes BENCH_<name>.json; returns the path, or "" on I/O failure.
  /// Also prints the destination so bench logs point at the artifact.
  std::string Write() const {
    const char* dir = std::getenv("SPTA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return "";
    }
    std::fprintf(f, "{\n");
    bool first = true;
    for (const auto& [key, value] : strings_) {
      std::fprintf(f, "%s  \"%s\": \"%s\"", first ? "" : ",\n",
                   Escaped(key).c_str(), Escaped(value).c_str());
      first = false;
    }
    for (const auto& [key, value] : numbers_) {
      // %.17g round-trips doubles; non-finite values are emitted as null
      // (invalid per the schema — the smoke test will catch the producer).
      if (std::isfinite(value)) {
        std::fprintf(f, "%s  \"%s\": %.17g", first ? "" : ",\n",
                     Escaped(key).c_str(), value);
      } else {
        std::fprintf(f, "%s  \"%s\": null", first ? "" : ",\n",
                     Escaped(key).c_str());
      }
      first = false;
    }
    std::fprintf(f, "\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (!ok) return "";
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  static std::string Escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keys/values are
      out.push_back(c);                                    // single-line
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::pair<std::string, double>> numbers_;
};

}  // namespace spta::bench
