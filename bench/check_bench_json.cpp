// Tier-1 smoke test for the machine-readable bench report format.
//
// Runs micro_sim_hotpath for a handful of runs (SPTA_BENCH_RUNS=50 — small
// enough for the test tier, large enough for stable percentiles) with the
// JSON output redirected to a scratch directory, then validates the emitted
// BENCH_sim_hotpath.json against the schema contract of docs/BENCHMARKS.md:
// the file is one flat JSON object, every required key is present, every
// numeric field is a finite number (nulls — the reporter's spelling of
// NaN/inf — fail the check). This keeps the perf-trajectory artifacts
// trustworthy without making tier-1 runtime depend on perf acceptance bars.
//
// Usage: check_bench_json <path-to-micro_sim_hotpath>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

/// Minimal parser for the flat single-level JSON objects the reporter
/// emits: string and numeric (or null) values only, no nesting. Returns
/// false on structural errors.
bool ParseFlatJson(const std::string& text,
                   std::map<std::string, std::string>* strings,
                   std::map<std::string, std::string>* numbers) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  const auto parse_string = [&](std::string* out) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      out->push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '"') {
      std::string value;
      if (!parse_string(&value)) return false;
      (*strings)[key] = value;
    } else {
      std::string value;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        value.push_back(text[i++]);
      }
      if (value.empty()) return false;
      (*numbers)[key] = value;
    }
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '}') return true;
    if (text[i] != ',') return false;
    ++i;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-micro_sim_hotpath>\n", argv[0]);
    return 2;
  }

  // Scratch directory for the JSON artifact so the check never races a
  // real bench run in the working directory.
  char scratch[] = "/tmp/spta_bench_json_XXXXXX";
  if (::mkdtemp(scratch) == nullptr) {
    std::fprintf(stderr, "FAIL: cannot create scratch directory\n");
    return 1;
  }
  const std::string dir = scratch;
  const std::string json_path = dir + "/BENCH_sim_hotpath.json";

  ::setenv("SPTA_BENCH_RUNS", "50", /*overwrite=*/1);
  ::setenv("SPTA_BENCH_JSON_DIR", dir.c_str(), /*overwrite=*/1);
  const std::string cmd = std::string("\"") + argv[1] + "\"";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) Fail("micro_sim_hotpath exited with nonzero status");

  std::ifstream in(json_path);
  if (!in) {
    Fail("bench did not emit " + json_path);
    std::fprintf(stderr, "%d failure(s)\n", g_failures);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::map<std::string, std::string> strings;
  std::map<std::string, std::string> numbers;
  if (!ParseFlatJson(text, &strings, &numbers)) {
    Fail("emitted file is not a flat JSON object:\n" + text);
    std::fprintf(stderr, "%d failure(s)\n", g_failures);
    return 1;
  }

  // Required string fields.
  for (const char* key : {"bench", "git_rev"}) {
    const auto it = strings.find(key);
    if (it == strings.end()) {
      Fail(std::string("missing string field \"") + key + "\"");
    } else if (it->second.empty()) {
      Fail(std::string("empty string field \"") + key + "\"");
    }
  }
  if (const auto it = strings.find("bench");
      it != strings.end() && it->second != "sim_hotpath") {
    Fail("\"bench\" is \"" + it->second + "\", expected \"sim_hotpath\"");
  }

  // Required numeric fields — must parse fully and be finite.
  const std::vector<std::string> required = {
      "timestamp_unix",     "runs",
      "trace_records",      "total_seconds",
      "runs_per_sec",       "minstr_per_sec",
      "run_latency_p50_ms", "run_latency_p99_ms",
      "run_latency_mean_ms", "baseline_runs_per_sec",
      "speedup_vs_baseline"};
  for (const std::string& key : required) {
    const auto it = numbers.find(key);
    if (it == numbers.end()) {
      Fail("missing numeric field \"" + key + "\"");
      continue;
    }
    if (it->second == "null") {
      Fail("field \"" + key + "\" is null (non-finite at the producer)");
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      Fail("field \"" + key + "\" is not a number: " + it->second);
    } else if (!std::isfinite(v)) {
      Fail("field \"" + key + "\" is not finite: " + it->second);
    }
  }
  // Every numeric field, required or not, must be finite JSON.
  for (const auto& [key, value] : numbers) {
    if (value == "null") Fail("field \"" + key + "\" is null");
  }

  // Sanity: a 50-run campaign must report a positive rate and runs=50.
  if (const auto it = numbers.find("runs"); it != numbers.end()) {
    if (std::strtod(it->second.c_str(), nullptr) != 50.0) {
      Fail("\"runs\" is " + it->second + ", expected 50 (SPTA_BENCH_RUNS)");
    }
  }
  if (const auto it = numbers.find("runs_per_sec"); it != numbers.end()) {
    if (!(std::strtod(it->second.c_str(), nullptr) > 0.0)) {
      Fail("\"runs_per_sec\" is not positive: " + it->second);
    }
  }

  std::remove(json_path.c_str());
  ::rmdir(dir.c_str());
  if (g_failures == 0) {
    std::printf("bench JSON schema check passed (%zu string, %zu numeric "
                "fields)\n", strings.size(), numbers.size());
    return 0;
  }
  std::fprintf(stderr, "%d failure(s)\n", g_failures);
  return 1;
}
