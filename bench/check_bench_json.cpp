// Tier-1 smoke test for the machine-readable bench report format.
//
// Runs micro_sim_hotpath for a handful of runs (SPTA_BENCH_RUNS=50 — small
// enough for the test tier, large enough for stable percentiles) with the
// JSON output redirected to a scratch directory, then validates the emitted
// artifacts against the schema contract of docs/BENCHMARKS.md:
//
//   BENCH_sim_hotpath.json      throughput + latency trajectory
//   BENCH_fault_overhead.json   zero-fault-path A/B gate (docs/FAULTS.md)
//   BENCH_obs_overhead.json     disabled-span A/B gate
//                               (docs/OBSERVABILITY.md)
//
// When given a second binary (micro_sim_batch), it also runs the batch
// kernel bench at SPTA_BENCH_RUNS=64 — twice: once with the auto-detected
// scan ISA and once with SPTA_BATCH_FORCE_SCALAR=1 — validating
// BENCH_sim_batch.json (docs/BATCHING.md) each time and requiring
// checksum_match=1, i.e. a 64-run batched-vs-serial bit-identity smoke
// that passes with or without AVX2.
//
// Each file must be one flat JSON object, every required key present, every
// numeric field a finite number (nulls — the reporter's spelling of
// NaN/inf — fail the check). This keeps the perf-trajectory artifacts
// trustworthy without making tier-1 runtime depend on perf acceptance bars.
//
// When given a fourth binary (micro_service_loadgen), it also runs the
// service load generator at SPTA_BENCH_RUNS=50 (scales the warm request
// streams; the analysis stays at the full 3,000 samples) and validates
// BENCH_service_loadgen.json plus BENCH_service_fleet.json — requiring
// checksum_match=1 (fleet responses bit-identical to the classic
// server's) and warm_start_hit=1 (a restarted fleet served its first
// repeat from the persistent cache). The >= 10x fleet-vs-classic warm
// throughput bar arms itself inside the bench at >= 150 runs; here the
// checker verifies the gate fields are present and, whenever the report
// says the gate was armed, that it passed.
//
// Usage: check_bench_json <path-to-micro_sim_hotpath>
//                         [<path-to-micro_sim_batch>]
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

/// Minimal parser for the flat single-level JSON objects the reporter
/// emits: string and numeric (or null) values only, no nesting. Returns
/// false on structural errors.
bool ParseFlatJson(const std::string& text,
                   std::map<std::string, std::string>* strings,
                   std::map<std::string, std::string>* numbers) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  const auto parse_string = [&](std::string* out) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      out->push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '"') {
      std::string value;
      if (!parse_string(&value)) return false;
      (*strings)[key] = value;
    } else {
      std::string value;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i]))) {
        value.push_back(text[i++]);
      }
      if (value.empty()) return false;
      (*numbers)[key] = value;
    }
    skip_ws();
    if (i >= text.size()) return false;
    if (text[i] == '}') return true;
    if (text[i] != ',') return false;
    ++i;
  }
}

/// Validates one BENCH_<name>.json against the shared schema plus the
/// bench-specific `required` numeric keys. Populates `numbers` for any
/// bench-specific sanity checks at the caller.
void ValidateReport(const std::string& json_path,
                    const std::string& expected_bench,
                    const std::vector<std::string>& required,
                    std::map<std::string, std::string>* numbers) {
  std::ifstream in(json_path);
  if (!in) {
    Fail("bench did not emit " + json_path);
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::map<std::string, std::string> strings;
  if (!ParseFlatJson(text, &strings, numbers)) {
    Fail(json_path + " is not a flat JSON object:\n" + text);
    return;
  }

  // Required string fields.
  for (const char* key : {"bench", "git_rev"}) {
    const auto it = strings.find(key);
    if (it == strings.end()) {
      Fail(json_path + ": missing string field \"" + key + "\"");
    } else if (it->second.empty()) {
      Fail(json_path + ": empty string field \"" + key + "\"");
    }
  }
  if (const auto it = strings.find("bench");
      it != strings.end() && it->second != expected_bench) {
    Fail(json_path + ": \"bench\" is \"" + it->second + "\", expected \"" +
         expected_bench + "\"");
  }

  // Required numeric fields — must parse fully and be finite.
  std::vector<std::string> all_required = {"timestamp_unix", "runs"};
  all_required.insert(all_required.end(), required.begin(), required.end());
  for (const std::string& key : all_required) {
    const auto it = numbers->find(key);
    if (it == numbers->end()) {
      Fail(json_path + ": missing numeric field \"" + key + "\"");
      continue;
    }
    if (it->second == "null") {
      Fail(json_path + ": field \"" + key +
           "\" is null (non-finite at the producer)");
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      Fail(json_path + ": field \"" + key + "\" is not a number: " +
           it->second);
    } else if (!std::isfinite(v)) {
      Fail(json_path + ": field \"" + key + "\" is not finite: " +
           it->second);
    }
  }
  // Every numeric field, required or not, must be finite JSON.
  for (const auto& [key, value] : *numbers) {
    if (value == "null") Fail(json_path + ": field \"" + key + "\" is null");
  }
}

double Number(const std::map<std::string, std::string>& numbers,
              const std::string& key, double fallback) {
  const auto it = numbers.find(key);
  if (it == numbers.end() || it->second == "null") return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s <path-to-micro_sim_hotpath> "
                 "[<path-to-micro_sim_batch>] "
                 "[<path-to-micro_trace_atlas>] "
                 "[<path-to-micro_service_loadgen>]\n",
                 argv[0]);
    return 2;
  }

  // Scratch directory for the JSON artifacts so the check never races a
  // real bench run in the working directory.
  char scratch[] = "/tmp/spta_bench_json_XXXXXX";
  if (::mkdtemp(scratch) == nullptr) {
    std::fprintf(stderr, "FAIL: cannot create scratch directory\n");
    return 1;
  }
  const std::string dir = scratch;
  const std::string hotpath_json = dir + "/BENCH_sim_hotpath.json";
  const std::string fault_json = dir + "/BENCH_fault_overhead.json";
  const std::string obs_json = dir + "/BENCH_obs_overhead.json";

  ::setenv("SPTA_BENCH_RUNS", "50", /*overwrite=*/1);
  ::setenv("SPTA_BENCH_JSON_DIR", dir.c_str(), /*overwrite=*/1);
  const std::string cmd = std::string("\"") + argv[1] + "\"";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) Fail("micro_sim_hotpath exited with nonzero status");

  std::map<std::string, std::string> hotpath_numbers;
  ValidateReport(hotpath_json, "sim_hotpath",
                 {"trace_records", "total_seconds", "runs_per_sec",
                  "minstr_per_sec", "run_latency_p50_ms",
                  "run_latency_p99_ms", "run_latency_mean_ms",
                  "baseline_runs_per_sec", "speedup_vs_baseline"},
                 &hotpath_numbers);

  // Sanity: a 50-run campaign must report a positive rate and runs=50.
  if (hotpath_numbers.count("runs") &&
      Number(hotpath_numbers, "runs", 0.0) != 50.0) {
    Fail("\"runs\" is " + hotpath_numbers["runs"] +
         ", expected 50 (SPTA_BENCH_RUNS)");
  }
  if (hotpath_numbers.count("runs_per_sec") &&
      !(Number(hotpath_numbers, "runs_per_sec", 0.0) > 0.0)) {
    Fail("\"runs_per_sec\" is not positive: " +
         hotpath_numbers["runs_per_sec"]);
  }

  // The zero-fault-path gate artifact: bit-identity must hold and the
  // measured overhead must be a real number (the perf bar itself lives in
  // the bench binary, not here).
  std::map<std::string, std::string> fault_numbers;
  ValidateReport(fault_json, "fault_overhead",
                 {"plain_runs_per_sec", "hooked_runs_per_sec",
                  "overhead_pct", "acceptance_pct", "gate_pct",
                  "checksum_match"},
                 &fault_numbers);
  if (fault_numbers.count("checksum_match") &&
      Number(fault_numbers, "checksum_match", 0.0) != 1.0) {
    Fail("fault_overhead: null-hook run was not bit-identical to plain run");
  }

  // The obs-span gate artifact: the disabled path must stay bit-identical
  // (checksum_match covers the tracer-enabled leg too — recording must not
  // perturb simulated behavior either).
  std::map<std::string, std::string> obs_numbers;
  ValidateReport(obs_json, "obs_overhead",
                 {"plain_runs_per_sec", "obs_runs_per_sec", "overhead_pct",
                  "enabled_runs_per_sec", "enabled_overhead_pct",
                  "trace_events_recorded", "acceptance_pct", "gate_pct",
                  "checksum_match"},
                 &obs_numbers);
  if (obs_numbers.count("checksum_match") &&
      Number(obs_numbers, "checksum_match", 0.0) != 1.0) {
    Fail("obs_overhead: span-wrapped run was not bit-identical to bare run");
  }
  if (obs_numbers.count("trace_events_recorded") &&
      !(Number(obs_numbers, "trace_events_recorded", 0.0) > 0.0)) {
    Fail("obs_overhead: enabled leg recorded no trace events");
  }

  std::remove(hotpath_json.c_str());
  std::remove(fault_json.c_str());
  std::remove(obs_json.c_str());

  // Batch-kernel artifact: run the bench twice — auto ISA and the forced
  // scalar fallback — so the 64-run batched-vs-serial bit-identity smoke
  // covers both dispatch paths on any host.
  if (argc >= 3) {
    const std::string batch_json = dir + "/BENCH_sim_batch.json";
    ::setenv("SPTA_BENCH_RUNS", "64", /*overwrite=*/1);
    for (const bool force_scalar : {false, true}) {
      if (force_scalar) {
        ::setenv("SPTA_BATCH_FORCE_SCALAR", "1", /*overwrite=*/1);
      } else {
        ::unsetenv("SPTA_BATCH_FORCE_SCALAR");
      }
      const std::string leg = force_scalar ? "forced-scalar" : "auto-isa";
      const std::string batch_cmd = std::string("\"") + argv[2] + "\"";
      if (std::system(batch_cmd.c_str()) != 0) {
        Fail("micro_sim_batch (" + leg + ") exited with nonzero status");
      }
      std::map<std::string, std::string> batch_numbers;
      ValidateReport(batch_json, "sim_batch",
                     {"lanes", "trace_records", "serial_runs_per_sec",
                      "batched_runs_per_sec", "scalar_runs_per_sec",
                      "speedup_vs_serial", "baseline_runs_per_sec",
                      "speedup_vs_baseline", "batch_latency_p50_ms",
                      "batch_latency_p99_ms", "batch_latency_mean_ms",
                      "checksum_match", "checksum_60"},
                     &batch_numbers);
      if (batch_numbers.count("checksum_match") &&
          Number(batch_numbers, "checksum_match", 0.0) != 1.0) {
        Fail("sim_batch (" + leg +
             "): batched lanes were not bit-identical to serial runs");
      }
      if (batch_numbers.count("checksum_60") &&
          Number(batch_numbers, "checksum_60", 0.0) != 52746737.0) {
        Fail("sim_batch (" + leg + "): checksum_60 drifted from the frozen "
             "pre-fast-path value");
      }
      if (batch_numbers.count("batched_runs_per_sec") &&
          !(Number(batch_numbers, "batched_runs_per_sec", 0.0) > 0.0)) {
        Fail("sim_batch (" + leg + "): batched_runs_per_sec not positive");
      }
      std::remove(batch_json.c_str());
    }
    ::unsetenv("SPTA_BATCH_FORCE_SCALAR");
  }

  // Atlas artifact: pack ratio, kernel-store hit rate and the
  // serial/batched/memoized bit-identity checksum. The throughput
  // acceptance bars live in the bench binary (campaign scale only); here
  // the 64-run smoke still requires a >= 3x pack ratio, a >= 90% hit rate
  // and exact bit-identity — behavioral guards that hold at any size.
  if (argc >= 4) {
    const std::string atlas_json = dir + "/BENCH_trace_atlas.json";
    ::setenv("SPTA_BENCH_RUNS", "64", /*overwrite=*/1);
    const std::string atlas_cmd = std::string("\"") + argv[3] + "\"";
    if (std::system(atlas_cmd.c_str()) != 0) {
      Fail("micro_trace_atlas exited with nonzero status");
    }
    std::map<std::string, std::string> atlas_numbers;
    ValidateReport(atlas_json, "trace_atlas",
                   {"trace_records", "kernel_count", "legacy_bytes",
                    "atlas_bytes", "pack_ratio", "cold_load_legacy_ms",
                    "cold_load_atlas_ms", "cold_load_speedup",
                    "serial_runs_per_sec", "batched_runs_per_sec",
                    "memoized_runs_per_sec", "speedup_vs_batched",
                    "baseline_runs_per_sec", "hit_rate", "checksum_match"},
                   &atlas_numbers);
    if (atlas_numbers.count("checksum_match") &&
        Number(atlas_numbers, "checksum_match", 0.0) != 1.0) {
      Fail("trace_atlas: memoized/batched legs were not bit-identical to "
           "serial runs");
    }
    if (atlas_numbers.count("pack_ratio") &&
        !(Number(atlas_numbers, "pack_ratio", 0.0) >= 3.0)) {
      Fail("trace_atlas: pack_ratio below the 3x acceptance bar: " +
           atlas_numbers["pack_ratio"]);
    }
    if (atlas_numbers.count("hit_rate") &&
        !(Number(atlas_numbers, "hit_rate", 0.0) >= 0.9)) {
      Fail("trace_atlas: kernel-store hit_rate below 90%: " +
           atlas_numbers["hit_rate"]);
    }
    std::remove(atlas_json.c_str());
  }

  // Service-fleet artifacts: the load generator emits the classic report
  // and the fleet A/B report. 50 runs keeps the warm streams short while
  // the bench's fixed 3,000-sample analyses keep the cold legs honest;
  // the >= 10x fleet gate self-disarms below 150 runs, but the
  // bit-identity checksum and the persistent warm-start hit are
  // behavioral guarantees that must hold at any scale.
  if (argc >= 5) {
    const std::string loadgen_json = dir + "/BENCH_service_loadgen.json";
    const std::string fleet_json = dir + "/BENCH_service_fleet.json";
    const std::string resilience_json = dir + "/BENCH_resilience.json";
    ::setenv("SPTA_BENCH_RUNS", "50", /*overwrite=*/1);
    const std::string loadgen_cmd = std::string("\"") + argv[4] + "\"";
    if (std::system(loadgen_cmd.c_str()) != 0) {
      Fail("micro_service_loadgen exited with nonzero status");
    }
    std::map<std::string, std::string> loadgen_numbers;
    ValidateReport(loadgen_json, "service_loadgen",
                   {"cold_analyze_ms", "warm_analyze_ms", "warm_speedup",
                    "warm_hits", "warm_requests_per_sec", "drain_seconds",
                    "drain_answered", "drain_burst", "acceptance_pass"},
                   &loadgen_numbers);
    std::map<std::string, std::string> fleet_numbers;
    ValidateReport(fleet_json, "service_fleet",
                   {"classic_warm_rps", "fleet_warm_rps",
                    "fleet_warm_speedup", "tcp_warm_rps", "cold_rps_1shard",
                    "cold_rps_nshard", "shard_scaling", "shards_n",
                    "cold_start_ms", "warm_start_ms", "warm_start_hit",
                    "checksum_match", "warm_frame_checksum", "gate_armed",
                    "gate_min_speedup", "acceptance_pass"},
                   &fleet_numbers);
    if (fleet_numbers.count("checksum_match") &&
        Number(fleet_numbers, "checksum_match", 0.0) != 1.0) {
      Fail("service_fleet: fleet responses were not bit-identical to the "
           "classic server's");
    }
    if (fleet_numbers.count("warm_start_hit") &&
        Number(fleet_numbers, "warm_start_hit", 0.0) != 1.0) {
      Fail("service_fleet: restarted fleet did not serve a disk-warmed hit");
    }
    if (fleet_numbers.count("fleet_warm_rps") &&
        !(Number(fleet_numbers, "fleet_warm_rps", 0.0) > 0.0)) {
      Fail("service_fleet: fleet_warm_rps not positive");
    }
    if (Number(fleet_numbers, "gate_armed", 0.0) == 1.0 &&
        Number(fleet_numbers, "fleet_warm_speedup", 0.0) <
            Number(fleet_numbers, "gate_min_speedup", 10.0)) {
      Fail("service_fleet: armed >= 10x warm gate failed");
    }
    // The resilience artifact: chaos-on vs chaos-off throughput plus the
    // two hard invariants — zero silently lost requests and bit-identical
    // OK answers across seeded shard kills. Fail-fast `unavailable`
    // answers for requests a kill caught in-queue are legitimate
    // back-pressure and only counted. Recovery percentiles are reported,
    // not gated (machine-dependent).
    std::map<std::string, std::string> resilience_numbers;
    ValidateReport(resilience_json, "resilience",
                   {"chaos_off_rps", "chaos_on_rps", "kills",
                    "recovery_p50_ms", "recovery_p99_ms", "lost_requests",
                    "unavailable_responses", "checksum_match",
                    "acceptance_pass"},
                   &resilience_numbers);
    if (resilience_numbers.count("lost_requests") &&
        Number(resilience_numbers, "lost_requests", 1.0) != 0.0) {
      Fail("resilience: chaos leg lost acked requests");
    }
    if (resilience_numbers.count("checksum_match") &&
        Number(resilience_numbers, "checksum_match", 0.0) != 1.0) {
      Fail("resilience: chaos-leg responses were not bit-identical");
    }
    if (resilience_numbers.count("kills") &&
        !(Number(resilience_numbers, "kills", 0.0) > 0.0)) {
      Fail("resilience: the chaos schedule fired no kills");
    }
    // The distributed-tracing artifact: the three-way A/B (untraced wire /
    // trace token parsed with the tracer off / tracer on). Bit-identity
    // across all legs and a non-empty enabled-leg span count are behavioral
    // guarantees; the 10% overhead gate arms inside the bench at scale.
    const std::string obs_trace_json = dir + "/BENCH_obs_trace.json";
    std::map<std::string, std::string> obs_trace_numbers;
    ValidateReport(obs_trace_json, "obs_trace",
                   {"disabled_ns_per_req", "disabled_traced_ns_per_req",
                    "enabled_ns_per_req", "disabled_overhead_pct",
                    "enabled_overhead_pct", "analysis_disabled_ns_per_req",
                    "analysis_traced_ns_per_req", "analysis_overhead_pct",
                    "trace_events_recorded", "checksum_match", "gate_armed",
                    "gate_token_pct", "gate_enabled_pct",
                    "gate_analysis_pct", "acceptance_pass"},
                   &obs_trace_numbers);
    if (obs_trace_numbers.count("checksum_match") &&
        Number(obs_trace_numbers, "checksum_match", 0.0) != 1.0) {
      Fail("obs_trace: traced legs were not bit-identical to the untraced "
           "leg");
    }
    if (obs_trace_numbers.count("trace_events_recorded") &&
        !(Number(obs_trace_numbers, "trace_events_recorded", 0.0) > 0.0)) {
      Fail("obs_trace: enabled leg recorded no spans");
    }
    std::remove(loadgen_json.c_str());
    std::remove(fleet_json.c_str());
    std::remove(resilience_json.c_str());
    std::remove(obs_trace_json.c_str());
  }

  ::rmdir(dir.c_str());
  if (g_failures == 0) {
    std::printf("bench JSON schema check passed (%s)\n",
                argc >= 5   ? "all artifacts incl. service fleet"
                : argc == 4 ? "all artifacts incl. sim_batch + trace_atlas"
                : argc == 3 ? "all artifacts incl. sim_batch"
                            : "all three artifacts");
    return 0;
  }
  std::fprintf(stderr, "%d failure(s)\n", g_failures);
  return 1;
}
