// F2 — paper Figure 2: "pWCET estimates obtained with MBPTA for TVCA".
//
// X axis: execution time; Y axis: exceedance probability (log scale). The
// figure shows the observed execution-time tail (dots) and the Gumbel
// projection (straight line on the log axis) tightly upper-bounding it.
//
// Regenerates both series as CSV: the observed tail points P[X >= v] and
// the fitted pWCET curve from 1e-1 down to 1e-16, pooled and as the
// per-path envelope.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "mbpta/backtest.hpp"
#include "mbpta/confidence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace spta;
  bench::Banner("fig2_pwcet_curve", "Figure 2 (pWCET CCDF for TVCA)",
                "the Gumbel projection tightly upper-bounds the observed "
                "execution-time tail at every observable probability");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(3000);
  sim::Platform platform(sim::RandLeon3Config(), 7);
  const auto samples = analysis::RunTvcaCampaign(platform, app, cfg);
  const auto times = analysis::ExtractTimes(samples);

  const auto result = mbpta::AnalyzeSample(times);
  std::cout << mbpta::RenderReport(result, "TVCA pooled analysis");
  if (result.curve) {
    const auto ci = mbpta::BootstrapPwcetCi(times, 1e-12, result.block_size,
                                            400, 0.95, 17);
    std::printf(
        "pWCET@1e-12 bootstrap 95%% CI: [%.0f, %.0f] around %.0f "
        "(rel. width %.2f%%)\n",
        ci.lower, ci.upper, ci.point, 100.0 * ci.RelativeWidth());
  }

  // Out-of-sample validation at observable probabilities: fit on the first
  // half of the campaign, count exceedances in the second half.
  const auto backtest = mbpta::SplitBacktest(times);
  std::printf("\nbacktest (fit on %zu runs, validate on %zu):\n",
              backtest.analysis_runs, backtest.validation_runs);
  for (const auto& pt : backtest.points) {
    std::printf(
        "  p=%-6s bound=%.0f  expected<=%zu observed=%zu  %s\n",
        FormatProb(pt.nominal_prob).c_str(), pt.bound, pt.expected,
        pt.observed, pt.consistent ? "consistent" : "VIOLATION");
  }

  const auto per_path =
      mbpta::AnalyzePerPath(analysis::ToPathObservations(samples));

  // Series 1: observed tail (staircase, one point per distinct value of
  // the top of the distribution).
  std::printf("\n# series: observed execution-time tail\n");
  CsvWriter obs(std::cout);
  obs.Header({"exec_time_cycles", "exceedance_prob"});
  const stats::Ecdf ecdf(times);
  for (const auto& [value, prob] : ecdf.TailPoints(60)) {
    obs.BeginRow();
    obs.Field(value, 10);
    obs.Field(prob, 6);
    obs.EndRow();
  }

  // Series 2: fitted pWCET curve (pooled + per-path envelope).
  std::printf("\n# series: pWCET projection\n");
  CsvWriter fit(std::cout);
  fit.Header({"exceedance_prob", "pwcet_pooled", "pwcet_path_envelope"});
  for (int e = 1; e <= 16; ++e) {
    const double p = std::pow(10.0, -e);
    fit.BeginRow();
    fit.Field(p, 3);
    fit.Field(result.curve ? result.curve->QuantileForExceedance(p) : 0.0,
              10);
    fit.Field(per_path.analyzed_count() > 0 ? per_path.EnvelopeAt(p) : 0.0,
              10);
    fit.EndRow();
  }

  // Upper-bounding check over the observable tail (the figure's visual
  // claim, made numeric). The EVT model bounds the *tail*: only points at
  // exceedance probabilities below 1% are in scope — at body probabilities
  // a block-maxima model makes no statement.
  std::size_t violations = 0;
  std::size_t in_scope = 0;
  if (result.curve) {
    for (const auto& [value, prob] : ecdf.TailPoints()) {
      if (prob > 0.01) continue;
      ++in_scope;
      // "Tight" means the projection may touch the staircase; flag only
      // violations beyond 0.2% (beyond fit noise).
      if (result.curve->QuantileForExceedance(prob) < 0.998 * value) {
        ++violations;
      }
    }
  }
  std::printf(
      "\nupper-bound check: %zu of %zu observed tail points (p <= 1e-2) "
      "exceed the projection by >0.2%% (paper shape: 0, a tight bound from "
      "above)\n",
      violations, in_scope);
  return violations == 0 ? 0 : 1;
}
