// F3 — paper Figure 3: "MBPTA vs. DET observed execution times".
//
// Bars: average execution times on DET and RAND (first two bars — "there
// is not noticeable difference"), the DET high watermark, the industrial
// MBTA estimate (high watermark + engineering margin), and the MBPTA pWCET
// at cutoff probabilities 1e-3 .. 1e-15. Paper shape: pWCET estimates stay
// within the same order of magnitude as the observed times, starting with
// an increase of ~50% over observed values at cutoff 1e-6, and MBPTA at
// certification cutoffs is competitive with the blind +50% margin.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "mbta/mbta.hpp"
#include "sim/platform.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;
  bench::Banner("fig3_mbpta_vs_det", "Figure 3 (MBPTA vs DET bars)",
                "DET avg ~= RAND avg; pWCET within one order of magnitude "
                "of observed times, growing slowly as the cutoff drops to "
                "1e-15; competitive with high-watermark + 50%");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(3000);

  sim::Platform det_platform(sim::DetLeon3Config(), 7);
  const auto det_samples = analysis::RunTvcaCampaign(det_platform, app, cfg);
  const auto det_times = analysis::ExtractTimes(det_samples);

  sim::Platform rand_platform(sim::RandLeon3Config(), 7);
  const auto rand_samples =
      analysis::RunTvcaCampaign(rand_platform, app, cfg);
  const auto rand_times = analysis::ExtractTimes(rand_samples);

  const auto result = mbpta::AnalyzeSample(rand_times);
  const auto mbta50 = mbta::Estimate(det_times, 0.5);
  const auto mbta20 = mbta::Estimate(det_times, 0.2);

  const double det_avg = stats::Mean(det_times);
  const auto det_ci = stats::BootstrapMeanCi(det_times, 1000, 0.95, 1);
  const auto rand_ci = stats::BootstrapMeanCi(rand_times, 1000, 0.95, 2);

  TextTable bars({"bar", "cycles", "vs DET avg"});
  const auto add = [&](const std::string& name, double v) {
    bars.AddRow({name, FormatF(v, 0), FormatF(v / det_avg, 3) + "x"});
  };
  add("DET avg", det_avg);
  add("RAND avg", stats::Mean(rand_times));
  add("DET high watermark", mbta50.high_watermark);
  add("RAND high watermark", stats::Max(rand_times));
  add("MBTA = DET HWM + 20%", mbta20.wcet_estimate);
  add("MBTA = DET HWM + 50%", mbta50.wcet_estimate);
  if (result.curve) {
    for (int e = 3; e <= 15; e += 3) {
      const double p = std::pow(10.0, -e);
      add("MBPTA pWCET @ " + FormatProb(p),
          result.curve->QuantileForExceedance(p));
    }
  }
  bars.Render(std::cout);

  std::printf(
      "\nDET avg 95%% CI [%.0f, %.0f]; RAND avg 95%% CI [%.0f, %.0f] -- "
      "%s (paper: no noticeable difference)\n",
      det_ci.lower, det_ci.upper, rand_ci.lower, rand_ci.upper,
      rand_ci.point / det_ci.point < 1.1 ? "overlapping scale"
                                         : "DIFFER");

  std::printf("\n# series: figure 3 bars as CSV\n");
  CsvWriter csv(std::cout);
  csv.Header({"bar", "cycles"});
  csv.Row({"det_avg", FormatF(det_avg, 0)});
  csv.Row({"rand_avg", FormatF(stats::Mean(rand_times), 0)});
  csv.Row({"det_hwm", FormatF(mbta50.high_watermark, 0)});
  csv.Row({"mbta_hwm_plus_50", FormatF(mbta50.wcet_estimate, 0)});
  if (result.curve) {
    for (int e = 3; e <= 15; e += 3) {
      const double p = std::pow(10.0, -e);
      csv.Row({"pwcet_" + FormatProb(p),
               FormatF(result.curve->QuantileForExceedance(p), 0)});
    }
  }

  // Shape assertions mirroring the paper's reading of the figure.
  bool ok = true;
  const double ratio_avg = stats::Mean(rand_times) / det_avg;
  if (ratio_avg < 0.9 || ratio_avg > 1.1) ok = false;
  if (result.curve) {
    const double p6 = result.curve->QuantileForExceedance(1e-6);
    const double p15 = result.curve->QuantileForExceedance(1e-15);
    if (p6 < mbta50.high_watermark) ok = false;   // must exceed observations
    if (p15 > 10.0 * det_avg) ok = false;         // same order of magnitude
  }
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
