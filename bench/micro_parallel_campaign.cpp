// Serial vs parallel measurement-campaign throughput.
//
// The MBPTA protocol needs >= 3,000 end-to-end runs per analysis (plus
// per-path and convergence re-runs); campaign wall clock is the pipeline's
// dominant cost. This bench measures the multi-threaded runner against the
// serial baseline on the TVCA workload, reports samples/sec and speedup
// per job count, and re-verifies the bit-identity contract on the fly.
#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "sim/platform.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool Identical(const std::vector<spta::analysis::RunSample>& a,
               const std::vector<spta::analysis::RunSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cycles != b[i].cycles || a[i].path_id != b[i].path_id ||
        a[i].detail.cycles != b[i].detail.cycles) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace spta;
  bench::Banner(
      "micro: parallel campaign throughput",
      "infrastructure (no paper artifact): campaign runner scaling",
      "measurement cost, not method cost, dominates MBPTA wall clock; "
      "samples must stay bit-identical under any job count");

  const apps::TvcaApp app;
  analysis::CampaignConfig cc;
  cc.runs = bench::RunCount(600);
  cc.distinct_scenarios = 32;  // fixed analysis-time test-vector suite
  const auto config = sim::RandLeon3Config();

  const auto t0 = Clock::now();
  sim::Platform platform(config, cc.master_seed);
  const auto serial = analysis::RunTvcaCampaign(platform, app, cc);
  const auto t1 = Clock::now();
  const double serial_s = Seconds(t0, t1);
  std::printf("serial          : %7.2fs  %8.1f samples/sec  (baseline)\n",
              serial_s, static_cast<double>(cc.runs) / serial_s);

  const std::size_t hw = analysis::DefaultJobs();
  std::printf("hardware concurrency: %zu\n", hw);
  double best_par_s = serial_s;
  std::size_t best_jobs = 0;
  bool all_identical = true;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           hw}) {
    const auto p0 = Clock::now();
    const auto par = analysis::RunTvcaCampaignParallel(config, app, cc, jobs);
    const auto p1 = Clock::now();
    const double par_s = Seconds(p0, p1);
    const bool identical = Identical(serial, par);
    all_identical = all_identical && identical;
    if (par_s < best_par_s) {
      best_par_s = par_s;
      best_jobs = jobs;
    }
    std::printf("parallel %2zu jobs: %7.2fs  %8.1f samples/sec  "
                "speedup %.2fx  bit-identical %s\n",
                jobs, par_s, static_cast<double>(cc.runs) / par_s,
                serial_s / par_s, identical ? "yes" : "NO");
  }

  bench::JsonReport report("parallel_campaign", cc.runs);
  report.Set("hardware_concurrency", static_cast<double>(hw));
  report.Set("serial_samples_per_sec",
             static_cast<double>(cc.runs) / serial_s);
  report.Set("best_parallel_samples_per_sec",
             static_cast<double>(cc.runs) / best_par_s);
  report.Set("best_parallel_jobs", static_cast<double>(best_jobs));
  report.Set("best_speedup", serial_s / best_par_s);
  report.Set("bit_identical", all_identical ? 1.0 : 0.0);
  report.Write();
  return all_identical ? 0 : 1;
}
