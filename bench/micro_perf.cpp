// P1 — google-benchmark microbenchmarks of the library's hot paths:
// simulator throughput (instructions/second through the timing models),
// PRNG output rates, the statistical tests and the EVT fits. These guard
// the usability of the toolkit (a 3,000-run campaign must stay in the
// seconds-to-minutes range).

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

#include "analysis/campaign.hpp"
#include "analysis/reuse.hpp"
#include "apps/tvca.hpp"
#include "evt/block_maxima.hpp"
#include "evt/gumbel.hpp"
#include "mbpta/mbpta.hpp"
#include "prng/hw_prng.hpp"
#include "prng/xoshiro.hpp"
#include "sim/cache.hpp"
#include "sim/platform.hpp"
#include "stats/ks_test.hpp"
#include "stats/ljung_box.hpp"
#include "swcet/hybrid.hpp"
#include "swcet/static_bound.hpp"
#include "trace/synthetic.hpp"
#include "trace/interpreter.hpp"
#include "apps/kernels.hpp"

namespace {

using namespace spta;

void BM_HwPrngNext(benchmark::State& state) {
  prng::HwPrng gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_HwPrngNext);

void BM_XoshiroNext(benchmark::State& state) {
  prng::Xoshiro128pp gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_XoshiroNext);

void BM_CacheAccess(benchmark::State& state) {
  const auto placement = static_cast<sim::Placement>(state.range(0));
  sim::Cache cache(
      sim::CacheConfig{16 * 1024, 32, 4, placement,
                       sim::Replacement::kRandom},
      1);
  prng::Xoshiro128pp rng(7);
  std::vector<Address> addrs(4096);
  for (auto& a : addrs) a = 0x40000000 + 4ULL * rng.UniformBelow(65536);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addrs[i++ & 4095]));
  }
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1)->Arg(2);

void BM_PlatformRunBlend(benchmark::State& state) {
  trace::BlendSpec spec;
  spec.count = 10000;
  const trace::Trace t = trace::BlendTrace(spec, 3);
  sim::Platform platform(sim::RandLeon3Config(), 1);
  Seed seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform.Run(t, seed++).cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.count));
}
BENCHMARK(BM_PlatformRunBlend);

void BM_TvcaFrameBuild(benchmark::State& state) {
  const apps::TvcaApp app;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.BuildFrame(seed++).trace.records.size());
  }
}
BENCHMARK(BM_TvcaFrameBuild);

void BM_TvcaFrameSimulate(benchmark::State& state) {
  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(1);
  sim::Platform platform(sim::RandLeon3Config(), 1);
  Seed seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform.Run(frame.trace, seed++).cycles);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(frame.trace.records.size()));
}
BENCHMARK(BM_TvcaFrameSimulate);

std::vector<double> BenchSample(std::size_t n) {
  prng::Xoshiro128pp rng(5);
  evt::GumbelDist d{1e6, 2e3};
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.Quantile(std::max(rng.UniformUnit(), 1e-12));
  return xs;
}

void BM_LjungBox(benchmark::State& state) {
  const auto xs = BenchSample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::LjungBoxTest(xs, 20).p_value);
  }
}
BENCHMARK(BM_LjungBox)->Arg(1000)->Arg(3000);

void BM_TwoSampleKs(benchmark::State& state) {
  const auto xs = BenchSample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SplitSampleKs(xs).p_value);
  }
}
BENCHMARK(BM_TwoSampleKs)->Arg(1000)->Arg(3000);

void BM_GumbelMleFit(benchmark::State& state) {
  const auto xs = BenchSample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evt::FitGumbelMle(xs).beta);
  }
}
BENCHMARK(BM_GumbelMleFit)->Arg(100)->Arg(1000);

void BM_FullMbptaAnalysis(benchmark::State& state) {
  const auto xs = BenchSample(3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbpta::AnalyzeSample(xs).usable);
  }
}
BENCHMARK(BM_FullMbptaAnalysis);

void BM_ReuseProfile(benchmark::State& state) {
  trace::BlendSpec spec;
  spec.count = static_cast<std::size_t>(state.range(0));
  const trace::Trace t = trace::BlendTrace(spec, 9);
  for (auto _ : state) {
    const analysis::ReuseProfile profile(t, 32);
    benchmark::DoNotOptimize(profile.cold_misses());
  }
}
BENCHMARK(BM_ReuseProfile)->Arg(10000)->Arg(100000);

void BM_StaticBound(benchmark::State& state) {
  static const trace::Program p = apps::MakeBubbleSortProgram(64);
  trace::Interpreter interp(p);
  for (int i = 0; i < 64; ++i) {
    interp.WriteInt(0, static_cast<std::size_t>(i), 64 - i);
  }
  const trace::Trace t = interp.Run();
  const std::vector<const trace::Trace*> traces = {&t};
  const auto bounds = swcet::DeriveLoopBounds(p, traces, 1.2);
  const auto cfg = sim::DetLeon3Config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swcet::ComputeStaticBound(p, bounds, cfg).wcet_bound);
  }
}
BENCHMARK(BM_StaticBound);

void BM_HybridBound(benchmark::State& state) {
  static const trace::Program p = apps::MakeBubbleSortProgram(64);
  trace::Interpreter interp(p);
  for (int i = 0; i < 64; ++i) {
    interp.WriteInt(0, static_cast<std::size_t>(i), 64 - i);
  }
  const trace::Trace t = interp.Run();
  const std::vector<const trace::Trace*> traces = {&t};
  const auto cfg = sim::DetLeon3Config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swcet::HybridStructuralBound(p, traces, cfg).wcet_bound);
  }
}
BENCHMARK(BM_HybridBound);

/// Console reporter that additionally captures each benchmark's adjusted
/// real time (ns/op in the default time unit) and items/sec counter so the
/// whole suite lands in one BENCH_micro_perf.json.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string key = SanitizedKey(run.benchmark_name());
      captured_.emplace_back(key + "_ns_per_op", run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        captured_.emplace_back(key + "_items_per_sec", items->second.value);
      }
    }
  }

  const std::vector<std::pair<std::string, double>>& captured() const {
    return captured_;
  }

 private:
  /// "BM_CacheAccess/0" -> "BM_CacheAccess_0": keys stay flat identifiers.
  static std::string SanitizedKey(const std::string& name) {
    std::string key = name;
    for (char& c : key) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
      if (!ok) c = '_';
    }
    return key;
  }

  std::vector<std::pair<std::string, double>> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  spta::bench::JsonReport report("micro_perf", reporter.captured().size());
  for (const auto& [key, value] : reporter.captured()) {
    report.Set(key, value);
  }
  report.Write();
  return 0;
}
