// spta_serve load generator: amortization and drain guarantees.
//
// Drives a resident Server in pipe mode (the same ServeStream entry the
// daemon and tests use) with scripted request streams and reports:
//
//   1. cold vs warm: wall clock of an ANALYZE that runs the full MBPTA
//      pipeline vs an identical resubmission answered from the
//      content-addressed result cache. Acceptance: warm >= 10x faster.
//   2. warm-path throughput: cache-hit requests served per second.
//   3. drain-on-shutdown: a burst of analyses followed by SHUTDOWN must
//      produce exactly one response per accepted request — zero loss.
//
// Exit code is nonzero when either acceptance criterion fails, so the
// bench doubles as a regression guard.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/hash.hpp"
#include "bench_util.hpp"
#include "mbpta/per_path.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace spta;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<mbpta::PathObservation> SyntheticSample(std::size_t n,
                                                    std::uint64_t seed) {
  std::vector<mbpta::PathObservation> obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    obs[i].time =
        50000.0 + 2000.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53);
  }
  return obs;
}

service::Request AnalyzeRequest(
    const std::vector<mbpta::PathObservation>& obs) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args.Set("require_iid", "0");
  request.payload = service::EncodeSamplePayload(obs);
  return request;
}

service::Request SessionAnalyzeRequest(const std::string& session) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args.Set("session", session);
  request.args.Set("require_iid", "0");
  return request;
}

service::Request ShutdownRequest() {
  service::Request request;
  request.kind = service::RequestKind::kShutdown;
  return request;
}

/// Runs a scripted stream through `server`, returns (responses, seconds).
std::pair<std::vector<service::Response>, double> Run(
    service::Server& server, const std::vector<service::Request>& script) {
  std::stringstream in;
  for (const auto& request : script) service::WriteRequest(in, request);
  std::stringstream out;
  const auto t0 = Clock::now();
  server.ServeStream(in, out);
  const double elapsed = Seconds(t0, Clock::now());
  std::vector<service::Response> responses;
  service::Response response;
  std::string error;
  while (service::ReadResponse(out, &response, &error) ==
         service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return {responses, elapsed};
}

}  // namespace

int main() {
  bench::Banner(
      "micro: spta_serve load generator",
      "infrastructure (no paper artifact): resident-service amortization",
      "identical re-analyses must be served from the result cache >= 10x "
      "faster than a cold EVT run, and graceful shutdown must answer every "
      "accepted request");

  const std::size_t sample_size = bench::RunCount(3000);
  const auto obs = SyntheticSample(sample_size, 1);
  bool failed = false;

  // --- 1. cold vs warm ----------------------------------------------------
  // The resident-service shape: samples are streamed into a session once,
  // then re-analyses reference the session by name.  Ingestion (OPEN +
  // APPEND) is untimed; the timed cold request runs the full MBPTA pipeline
  // and the timed warm burst is answered from the content-addressed cache.
  service::Server server{service::ServerOptions{}};
  {
    service::Request open;
    open.kind = service::RequestKind::kOpen;
    open.args.Set("session", "bench");
    service::Request append;
    append.kind = service::RequestKind::kAppend;
    append.args.Set("session", "bench");
    append.payload = service::EncodeSamplePayload(obs);
    const auto [ingest_responses, ingest_s] = Run(server, {open, append});
    if (ingest_responses.size() != 2 || !ingest_responses[0].ok ||
        !ingest_responses[1].ok) {
      std::printf("FAIL: session ingestion failed\n");
      return 1;
    }
  }
  const auto [cold_responses, cold_s] =
      Run(server, {SessionAnalyzeRequest("bench")});
  if (cold_responses.size() != 1 || !cold_responses[0].ok ||
      cold_responses[0].args.GetString("cache") != "miss") {
    std::printf("FAIL: cold analysis did not complete as a cache miss\n");
    return 1;
  }

  // Average the warm path over a burst to get a stable number.
  constexpr std::size_t kWarmBurst = 50;
  std::vector<service::Request> warm_script(kWarmBurst,
                                            SessionAnalyzeRequest("bench"));
  const auto [warm_responses, warm_total_s] = Run(server, warm_script);
  std::size_t warm_hits = 0;
  for (const auto& response : warm_responses) {
    warm_hits += response.ok &&
                 response.args.GetString("cache") == "hit";
  }
  const double warm_s = warm_total_s / static_cast<double>(kWarmBurst);
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  std::printf("cold analysis    : %9.3f ms  (%zu samples, full MBPTA)\n",
              cold_s * 1e3, sample_size);
  std::printf("warm resubmission: %9.3f ms  (%zu/%zu cache hits)\n",
              warm_s * 1e3, warm_hits, kWarmBurst);
  std::printf("speedup          : %9.1fx  (acceptance: >= 10x)  %s\n",
              speedup, speedup >= 10.0 ? "OK" : "FAIL");
  if (speedup < 10.0 || warm_hits != kWarmBurst) failed = true;

  // --- 2. drain on shutdown ----------------------------------------------
  service::ServerOptions drain_options;
  drain_options.queue_capacity = 512;
  service::Server drain_server(drain_options);
  constexpr std::size_t kBurst = 200;
  std::vector<service::Request> burst;
  burst.reserve(kBurst + 1);
  for (std::size_t i = 0; i < kBurst; ++i) {
    // Distinct small samples: every request really reaches the engine.
    burst.push_back(AnalyzeRequest(SyntheticSample(200, 1000 + i)));
  }
  burst.push_back(ShutdownRequest());
  const auto [drain_responses, drain_s] = Run(drain_server, burst);

  std::size_t answered = 0;
  for (std::size_t i = 0; i + 1 < drain_responses.size(); ++i) {
    answered += drain_responses[i].ok;
  }
  const bool drained_ok =
      drain_responses.size() == kBurst + 1 && answered == kBurst &&
      drain_responses.back().ok &&
      drain_responses.back().args.GetString("drained") == "1";
  std::printf(
      "\ndrain-on-shutdown: %zu accepted, %zu answered, %zu lost in "
      "%.2fs  %s\n",
      kBurst, answered, kBurst - answered, drain_s,
      drained_ok ? "OK" : "FAIL");
  if (!drained_ok) failed = true;

  std::printf("\nfinal server metrics:\n%s",
              drain_server.metrics()
                  .Render(drain_server.engine().cache().stats())
                  .c_str());

  bench::JsonReport report("service_loadgen", sample_size);
  report.Set("cold_analyze_ms", cold_s * 1e3);
  report.Set("warm_analyze_ms", warm_s * 1e3);
  report.Set("warm_speedup", speedup);
  report.Set("warm_hits", static_cast<double>(warm_hits));
  report.Set("warm_requests_per_sec",
             warm_total_s > 0.0
                 ? static_cast<double>(kWarmBurst) / warm_total_s
                 : 0.0);
  report.Set("drain_seconds", drain_s);
  report.Set("drain_answered", static_cast<double>(answered));
  report.Set("drain_burst", static_cast<double>(kBurst));
  report.Set("acceptance_pass", failed ? 0.0 : 1.0);
  report.Write();
  return failed ? 1 : 0;
}
