// spta_serve load generator: amortization, drain and fleet guarantees.
//
// Drives a resident Server in pipe mode (the same ServeStream entry the
// daemon and tests use) with scripted request streams and reports:
//
//   1. cold vs warm: wall clock of an ANALYZE that runs the full MBPTA
//      pipeline vs an identical resubmission answered from the
//      content-addressed result cache. Acceptance: warm >= 10x faster.
//   2. warm-path throughput: cache-hit requests served per second.
//   3. drain-on-shutdown: a burst of analyses followed by SHUTDOWN must
//      produce exactly one response per accepted request — zero loss.
//   4. fleet A/B (BENCH_service_fleet.json): the sharded fleet
//      (sharded_server.hpp) against the classic server —
//        * warm throughput: fleet memo path vs classic warm path over the
//          same session-ANALYZE stream. Acceptance (armed at >= 150
//          requests): fleet >= 10x the classic warm rate, bit-identical
//          responses (analyze_us aside) — the ROADMAP item-1 headline;
//        * TCP leg: the same warm stream through the real epoll loop;
//        * cold shard scaling: distinct analyses pipelined over TCP,
//          1 shard vs N shards (reported, not gated — machine-dependent);
//        * warm start: a fleet restarted over a persistent cache
//          directory must serve its first repeat as a disk-warmed hit.
//
// Analysis sample size is fixed at 3,000 (the paper's campaign size);
// SPTA_BENCH_RUNS scales the warm request streams, so smoke runs stay
// fast without making the cold pipeline trivially cheap.
//
// Exit code is nonzero when any armed acceptance criterion fails, so the
// bench doubles as a regression guard.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "bench_util.hpp"
#include "fault/io_plan.hpp"
#include "mbpta/per_path.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/sharded_server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace spta;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<mbpta::PathObservation> SyntheticSample(std::size_t n,
                                                    std::uint64_t seed) {
  std::vector<mbpta::PathObservation> obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = Mix64(HashCombine(seed, i));
    obs[i].time =
        50000.0 + 2000.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53);
  }
  return obs;
}

service::Request AnalyzeRequest(
    const std::vector<mbpta::PathObservation>& obs) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args.Set("require_iid", "0");
  request.payload = service::EncodeSamplePayload(obs);
  return request;
}

service::Request SessionAnalyzeRequest(const std::string& session) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.args.Set("session", session);
  request.args.Set("require_iid", "0");
  return request;
}

service::Request ShutdownRequest() {
  service::Request request;
  request.kind = service::RequestKind::kShutdown;
  return request;
}

/// Runs a scripted stream through `server`, returns (responses, seconds).
std::pair<std::vector<service::Response>, double> Run(
    service::Server& server, const std::vector<service::Request>& script) {
  std::stringstream in;
  for (const auto& request : script) service::WriteRequest(in, request);
  std::stringstream out;
  const auto t0 = Clock::now();
  server.ServeStream(in, out);
  const double elapsed = Seconds(t0, Clock::now());
  std::vector<service::Response> responses;
  service::Response response;
  std::string error;
  while (service::ReadResponse(out, &response, &error) ==
         service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return {responses, elapsed};
}

std::string EncodeScript(const std::vector<service::Request>& script) {
  std::string wire;
  for (const auto& request : script) {
    service::AppendRequestFrame(request, &wire);
  }
  return wire;
}

std::vector<service::Response> DecodeResponses(const std::string& bytes) {
  std::stringstream stream(bytes);
  std::vector<service::Response> responses;
  service::Response response;
  std::string error;
  while (service::ReadResponse(stream, &response, &error) ==
         service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return responses;
}

/// The wire frame with the volatile timing field stripped: the unit of
/// the bit-identity checksum.
std::string NormalizedFrame(service::Response response) {
  response.args.Erase("analyze_us");
  std::string frame;
  service::AppendResponseFrame(response, &frame);
  return frame;
}

/// The session-warming preamble every warm leg replays: OPEN + APPEND +
/// one cold ANALYZE (executes + populates cache/memo), all untimed.
std::vector<service::Request> WarmupScript(
    const std::vector<mbpta::PathObservation>& obs) {
  std::vector<service::Request> script;
  service::Request open;
  open.kind = service::RequestKind::kOpen;
  open.args.Set("session", "bench");
  script.push_back(open);
  service::Request append;
  append.kind = service::RequestKind::kAppend;
  append.args.Set("session", "bench");
  append.payload = service::EncodeSamplePayload(obs);
  script.push_back(append);
  script.push_back(SessionAnalyzeRequest("bench"));
  return script;
}

/// Pipelines `wire` over one TCP connection to a started fleet and reads
/// exactly `expected` responses back; returns (responses, seconds) where
/// the clock covers first write to last response.
std::pair<std::vector<service::Response>, double> RunTcp(
    service::ShardedServer& fleet, const std::string& wire,
    std::size_t expected) {
  std::string error;
  auto connection = service::TcpConnection::Connect(
      "127.0.0.1", fleet.bound_port(), &error, 60000.0);
  std::vector<service::Response> responses;
  if (!connection) {
    std::printf("FAIL: fleet TCP connect: %s\n", error.c_str());
    return {responses, 0.0};
  }
  const auto t0 = Clock::now();
  connection->out().write(wire.data(),
                          static_cast<std::streamsize>(wire.size()));
  connection->out().flush();
  service::Response response;
  while (responses.size() < expected &&
         service::ReadResponse(connection->in(), &response, &error) ==
             service::ReadStatus::kOk) {
    responses.push_back(response);
  }
  return {responses, Seconds(t0, Clock::now())};
}

}  // namespace

int main() {
  bench::Banner(
      "micro: spta_serve load generator",
      "infrastructure (no paper artifact): resident-service amortization",
      "identical re-analyses must be served from the result cache >= 10x "
      "faster than a cold EVT run, and graceful shutdown must answer every "
      "accepted request");

  // Analysis size is fixed (cold EVT work must stay real even in smoke
  // runs); the env knob scales the warm request streams instead.
  constexpr std::size_t kSampleSize = 3000;
  const std::size_t sample_size = kSampleSize;
  const std::size_t warm_runs = bench::RunCount(3000);
  const auto obs = SyntheticSample(sample_size, 1);
  bool failed = false;

  // --- 1. cold vs warm ----------------------------------------------------
  // The resident-service shape: samples are streamed into a session once,
  // then re-analyses reference the session by name.  Ingestion (OPEN +
  // APPEND) is untimed; the timed cold request runs the full MBPTA pipeline
  // and the timed warm burst is answered from the content-addressed cache.
  service::Server server{service::ServerOptions{}};
  {
    service::Request open;
    open.kind = service::RequestKind::kOpen;
    open.args.Set("session", "bench");
    service::Request append;
    append.kind = service::RequestKind::kAppend;
    append.args.Set("session", "bench");
    append.payload = service::EncodeSamplePayload(obs);
    const auto [ingest_responses, ingest_s] = Run(server, {open, append});
    if (ingest_responses.size() != 2 || !ingest_responses[0].ok ||
        !ingest_responses[1].ok) {
      std::printf("FAIL: session ingestion failed\n");
      return 1;
    }
  }
  const auto [cold_responses, cold_s] =
      Run(server, {SessionAnalyzeRequest("bench")});
  if (cold_responses.size() != 1 || !cold_responses[0].ok ||
      cold_responses[0].args.GetString("cache") != "miss") {
    std::printf("FAIL: cold analysis did not complete as a cache miss\n");
    return 1;
  }

  // Average the warm path over a burst to get a stable number.
  constexpr std::size_t kWarmBurst = 50;
  std::vector<service::Request> warm_script(kWarmBurst,
                                            SessionAnalyzeRequest("bench"));
  const auto [warm_responses, warm_total_s] = Run(server, warm_script);
  std::size_t warm_hits = 0;
  for (const auto& response : warm_responses) {
    warm_hits += response.ok &&
                 response.args.GetString("cache") == "hit";
  }
  const double warm_s = warm_total_s / static_cast<double>(kWarmBurst);
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  std::printf("cold analysis    : %9.3f ms  (%zu samples, full MBPTA)\n",
              cold_s * 1e3, sample_size);
  std::printf("warm resubmission: %9.3f ms  (%zu/%zu cache hits)\n",
              warm_s * 1e3, warm_hits, kWarmBurst);
  std::printf("speedup          : %9.1fx  (acceptance: >= 10x)  %s\n",
              speedup, speedup >= 10.0 ? "OK" : "FAIL");
  if (speedup < 10.0 || warm_hits != kWarmBurst) failed = true;

  // --- 2. drain on shutdown ----------------------------------------------
  service::ServerOptions drain_options;
  drain_options.queue_capacity = 512;
  service::Server drain_server(drain_options);
  constexpr std::size_t kBurst = 200;
  std::vector<service::Request> burst;
  burst.reserve(kBurst + 1);
  for (std::size_t i = 0; i < kBurst; ++i) {
    // Distinct small samples: every request really reaches the engine.
    burst.push_back(AnalyzeRequest(SyntheticSample(200, 1000 + i)));
  }
  burst.push_back(ShutdownRequest());
  const auto [drain_responses, drain_s] = Run(drain_server, burst);

  std::size_t answered = 0;
  for (std::size_t i = 0; i + 1 < drain_responses.size(); ++i) {
    answered += drain_responses[i].ok;
  }
  const bool drained_ok =
      drain_responses.size() == kBurst + 1 && answered == kBurst &&
      drain_responses.back().ok &&
      drain_responses.back().args.GetString("drained") == "1";
  std::printf(
      "\ndrain-on-shutdown: %zu accepted, %zu answered, %zu lost in "
      "%.2fs  %s\n",
      kBurst, answered, kBurst - answered, drain_s,
      drained_ok ? "OK" : "FAIL");
  if (!drained_ok) failed = true;

  std::printf("\nfinal server metrics:\n%s",
              drain_server.metrics()
                  .Render(drain_server.engine().cache().stats())
                  .c_str());

  // --- 4. fleet A/B -------------------------------------------------------
  const bool gate_armed = warm_runs >= 150;
  constexpr double kFleetGate = 10.0;  // fleet warm >= 10x classic warm

  // One identical warm session-ANALYZE stream for every warm leg.
  const std::string warm_wire = EncodeScript(std::vector<service::Request>(
      warm_runs, SessionAnalyzeRequest("bench")));
  const std::string warmup_wire = EncodeScript(WarmupScript(obs));

  // Leg A: classic warm throughput at the same request count (the 50-run
  // burst above is too short to compare against; re-measure at scale).
  double classic_warm_rps = 0.0;
  std::string classic_warm_frame;
  {
    const auto [responses, elapsed] = Run(
        server, std::vector<service::Request>(
                    warm_runs, SessionAnalyzeRequest("bench")));
    std::size_t hits = 0;
    for (const auto& response : responses) {
      hits += response.ok && response.args.GetString("cache") == "hit";
    }
    if (hits != warm_runs) {
      std::printf("FAIL: classic warm leg: %zu/%zu hits\n", hits, warm_runs);
      failed = true;
    }
    if (!responses.empty()) {
      classic_warm_frame = NormalizedFrame(responses.front());
    }
    classic_warm_rps =
        elapsed > 0.0 ? static_cast<double>(warm_runs) / elapsed : 0.0;
  }

  // Leg B: fleet warm throughput, script mode (the memo fast path; this
  // is the gated >= 10x leg — same verbs, same bytes, no socket noise on
  // either side of the A/B).
  double fleet_warm_rps = 0.0;
  bool fleet_bits_match = true;
  {
    service::ShardedServerOptions fleet_options;
    fleet_options.shards = 1;
    service::ShardedServer fleet(fleet_options);
    std::string out;
    fleet.ServeScript(warmup_wire, &out);
    const auto setup = DecodeResponses(out);
    if (setup.size() != 3 || !setup[2].ok) {
      std::printf("FAIL: fleet session warmup failed\n");
      failed = true;
    }
    std::string warm_out;
    warm_out.reserve(warm_runs * 1024);
    const auto t0 = Clock::now();
    fleet.ServeScript(warm_wire, &warm_out);
    const double elapsed = Seconds(t0, Clock::now());
    const auto responses = DecodeResponses(warm_out);
    std::size_t hits = 0;
    for (const auto& response : responses) {
      hits += response.ok && response.args.GetString("cache") == "hit";
      if (fleet_bits_match && NormalizedFrame(response) != classic_warm_frame) {
        fleet_bits_match = false;
      }
    }
    if (hits != warm_runs || responses.size() != warm_runs) {
      std::printf("FAIL: fleet warm leg: %zu responses, %zu hits\n",
                  responses.size(), hits);
      failed = true;
    }
    fleet_warm_rps =
        elapsed > 0.0 ? static_cast<double>(warm_runs) / elapsed : 0.0;
  }
  const double fleet_warm_speedup =
      classic_warm_rps > 0.0 ? fleet_warm_rps / classic_warm_rps : 0.0;

  // Leg C: the same warm stream through the real epoll/TCP path.
  double tcp_warm_rps = 0.0;
  {
    service::ShardedServerOptions fleet_options;
    fleet_options.shards = 2;
    service::ShardedServer fleet(fleet_options);
    std::string out;
    fleet.ServeScript(warmup_wire, &out);
    if (fleet.ListenTcp("127.0.0.1", 0) == 0 && fleet.Start() == 0) {
      const auto [responses, elapsed] = RunTcp(fleet, warm_wire, warm_runs);
      std::size_t hits = 0;
      for (const auto& response : responses) {
        hits += response.ok && response.args.GetString("cache") == "hit";
        if (fleet_bits_match &&
            NormalizedFrame(response) != classic_warm_frame) {
          fleet_bits_match = false;
        }
      }
      if (hits != warm_runs) {
        std::printf("FAIL: TCP warm leg: %zu/%zu hits\n", hits, warm_runs);
        failed = true;
      }
      tcp_warm_rps =
          elapsed > 0.0 ? static_cast<double>(warm_runs) / elapsed : 0.0;
      fleet.TriggerShutdown();
      fleet.Wait();
    } else {
      std::printf("FAIL: fleet TCP listen/start\n");
      failed = true;
    }
  }

  // Leg D: cold shard scaling — distinct analyses pipelined over TCP,
  // 1 shard vs N shards. Reported, not gated (machine-dependent).
  const std::size_t shards_n = 4;
  constexpr std::size_t kColdBurst = 32;
  std::string cold_wire;
  {
    std::vector<service::Request> cold_script;
    for (std::size_t i = 0; i < kColdBurst; ++i) {
      // Big enough that the EVT pipeline dominates the per-request cost
      // (tiny samples would just benchmark the event loop again).
      cold_script.push_back(AnalyzeRequest(SyntheticSample(2000, 5000 + i)));
    }
    cold_wire = EncodeScript(cold_script);
  }
  double cold_rps[2] = {0.0, 0.0};
  for (int leg = 0; leg < 2; ++leg) {
    service::ShardedServerOptions fleet_options;
    fleet_options.shards = leg == 0 ? 1 : shards_n;
    service::ShardedServer fleet(fleet_options);
    if (fleet.ListenTcp("127.0.0.1", 0) != 0 || fleet.Start() != 0) {
      std::printf("FAIL: cold-leg fleet start\n");
      failed = true;
      continue;
    }
    const auto [responses, elapsed] = RunTcp(fleet, cold_wire, kColdBurst);
    std::size_t ok_count = 0;
    for (const auto& response : responses) ok_count += response.ok;
    if (ok_count != kColdBurst) {
      std::printf("FAIL: cold leg %d: %zu/%zu ok\n", leg, ok_count,
                  kColdBurst);
      failed = true;
    }
    cold_rps[leg] =
        elapsed > 0.0 ? static_cast<double>(kColdBurst) / elapsed : 0.0;
    fleet.TriggerShutdown();
    fleet.Wait();
  }
  const double shard_scaling =
      cold_rps[0] > 0.0 ? cold_rps[1] / cold_rps[0] : 0.0;

  // Leg E: persistent warm start — a fresh fleet over the directory a
  // previous fleet populated must serve its first repeat from disk.
  double cold_start_ms = 0.0;
  double warm_start_ms = 0.0;
  bool warm_start_hit = false;
  {
    char scratch[] = "/tmp/spta_fleet_bench_XXXXXX";
    if (::mkdtemp(scratch) != nullptr) {
      const std::string inline_wire =
          EncodeScript({AnalyzeRequest(SyntheticSample(kSampleSize, 99))});
      std::string first_frame;
      {
        service::ShardedServerOptions fleet_options;
        fleet_options.server.cache_dir = scratch;
        service::ShardedServer fleet(fleet_options);
        std::string out;
        const auto t0 = Clock::now();
        fleet.ServeScript(inline_wire, &out);
        cold_start_ms = Seconds(t0, Clock::now()) * 1e3;
        const auto responses = DecodeResponses(out);
        if (!responses.empty()) first_frame = NormalizedFrame(responses[0]);
      }
      {
        service::ShardedServerOptions fleet_options;
        fleet_options.server.cache_dir = scratch;
        service::ShardedServer fleet(fleet_options);
        std::string out;
        const auto t0 = Clock::now();
        fleet.ServeScript(inline_wire, &out);
        warm_start_ms = Seconds(t0, Clock::now()) * 1e3;
        const auto responses = DecodeResponses(out);
        if (responses.size() == 1 && responses[0].ok) {
          service::Response warm = responses[0];
          const bool hit = warm.args.GetString("cache") == "hit";
          // Identical bytes modulo the hit/miss disposition + timing.
          warm.args.Set("cache", "miss");
          warm_start_hit = hit && NormalizedFrame(warm) == first_frame;
        }
      }
      const std::string cleanup = std::string("rm -rf '") + scratch + "'";
      [[maybe_unused]] const int rc = std::system(cleanup.c_str());
    } else {
      std::printf("FAIL: mkdtemp for warm-start leg\n");
      failed = true;
    }
  }
  // Leg F: resilience A/B (BENCH_resilience.json) — a warm INLINE-analyze
  // stream with and without seeded chaos. Inline requests carry their own
  // sample, so a failover shard can re-execute them bit-identically;
  // session streams are deliberately NOT used here because session state
  // is per-shard and dies with its shard (the client's contract is to
  // re-OPEN, which is out of scope for this leg). The FleetChaosPlan
  // decides each kill; the victim is the busiest live shard (the stream's
  // memo home), so every kill forces a real failover + re-analysis.
  // Gated invariants mirror the fleet's actual contract
  // (fleet_chaos_test): zero SILENT loss — every accepted request gets
  // exactly one in-order response — and bit-identical OK answers (cache
  // disposition and timing aside). Requests caught in a killed shard's
  // queue legitimately answer ERR unavailable (fail-fast, never dropped);
  // they are counted and reported, not treated as loss.
  double chaos_off_rps = 0.0;
  double chaos_on_rps = 0.0;
  std::size_t resilience_kills = 0;
  std::uint64_t lost_requests = 0;
  std::uint64_t unavailable_responses = 0;
  bool resilience_checksum = true;
  std::string first_bad_frame;
  double recovery_p50_ms = 0.0;
  double recovery_p99_ms = 0.0;
  {
    const auto resilience_frame = [](service::Response response) {
      response.args.Erase("analyze_us");
      response.args.Erase("cache");
      std::string frame;
      service::AppendResponseFrame(response, &frame);
      return frame;
    };
    std::string expected_frame;
    const service::Request chaos_request =
        AnalyzeRequest(SyntheticSample(2000, 424242));
    std::string chaos_warmup_wire;
    service::AppendRequestFrame(chaos_request, &chaos_warmup_wire);
    std::string chaos_wire;
    chaos_wire.reserve(warm_runs * chaos_warmup_wire.size());
    for (std::size_t i = 0; i < warm_runs; ++i) {
      service::AppendRequestFrame(chaos_request, &chaos_wire);
    }

    // Chaos-off reference pass.
    {
      service::ShardedServerOptions fleet_options;
      fleet_options.shards = 4;
      service::ShardedServer fleet(fleet_options);
      std::string out;
      fleet.ServeScript(chaos_warmup_wire, &out);
      if (fleet.ListenTcp("127.0.0.1", 0) == 0 && fleet.Start() == 0) {
        const auto [responses, elapsed] =
            RunTcp(fleet, chaos_wire, warm_runs);
        if (responses.size() != warm_runs) {
          std::printf("FAIL: chaos-off leg: %zu/%zu responses\n",
                      responses.size(), warm_runs);
          failed = true;
        } else {
          expected_frame = resilience_frame(responses.front());
        }
        chaos_off_rps =
            elapsed > 0.0 ? static_cast<double>(warm_runs) / elapsed : 0.0;
        fleet.TriggerShutdown();
        fleet.Wait();
      } else {
        std::printf("FAIL: chaos-off fleet start\n");
        failed = true;
      }
    }

    // Chaos-on pass: plan-driven kills at quarter points of the stream.
    {
      service::ShardedServerOptions fleet_options;
      fleet_options.shards = 4;
      service::ShardedServer fleet(fleet_options);
      std::string out;
      fleet.ServeScript(chaos_warmup_wire, &out);
      if (fleet.ListenTcp("127.0.0.1", 0) == 0 && fleet.Start() == 0) {
        fault::FleetChaosConfig chaos;
        chaos.kill_rate = 1.0;
        fault::FleetChaosPlan plan(chaos, /*campaign_seed=*/20260809);
        const std::size_t kill_steps[3] = {warm_runs / 4, warm_runs / 2,
                                           (3 * warm_runs) / 4};
        std::size_t next_kill = 0;
        std::string error;
        auto connection = service::TcpConnection::Connect(
            "127.0.0.1", fleet.bound_port(), &error, 60000.0);
        if (connection) {
          const auto t0 = Clock::now();
          connection->out().write(
              chaos_wire.data(),
              static_cast<std::streamsize>(chaos_wire.size()));
          connection->out().flush();
          std::vector<double> recovery_ms;
          bool kill_pending = false;
          Clock::time_point kill_time{};
          std::size_t got = 0;
          std::size_t ok_count = 0;
          service::Response response;
          while (got < warm_runs &&
                 service::ReadResponse(connection->in(), &response,
                                       &error) == service::ReadStatus::kOk) {
            ++got;
            if (kill_pending) {
              recovery_ms.push_back(Seconds(kill_time, Clock::now()) * 1e3);
              kill_pending = false;
            }
            if (response.ok) {
              ++ok_count;
              if (resilience_checksum &&
                  resilience_frame(response) != expected_frame) {
                resilience_checksum = false;
                first_bad_frame = resilience_frame(response);
              }
            } else if (response.args.GetString("code") == "unavailable") {
              // A request the kill caught in the victim's queue: answered
              // fail-fast per the chaos contract, never silently dropped.
              ++unavailable_responses;
            } else {
              // Any other error is a real failure, not back-pressure.
              if (resilience_checksum) {
                std::string frame;
                service::AppendResponseFrame(response, &frame);
                first_bad_frame = std::move(frame);
              }
              resilience_checksum = false;
            }
            if (next_kill < 3 && got == kill_steps[next_kill]) {
              ++next_kill;
              std::size_t alive = 0;
              for (std::size_t i = 0; i < 4; ++i) {
                alive += fleet.shard_alive(i);
              }
              if (alive > 1 && plan.Next(alive).action !=
                                   fault::FleetChaosAction::kNone) {
                // The busiest live shard is the stream's digest home.
                std::size_t victim = 0;
                std::uint64_t best = 0;
                for (std::size_t i = 0; i < 4; ++i) {
                  if (!fleet.shard_alive(i)) continue;
                  if (fleet.shard_memo_hits(i) >= best) {
                    best = fleet.shard_memo_hits(i);
                    victim = i;
                  }
                }
                fleet.KillShardForTest(victim);
                ++resilience_kills;
                kill_time = Clock::now();
                kill_pending = true;
              }
            }
          }
          const double elapsed = Seconds(t0, Clock::now());
          chaos_on_rps =
              elapsed > 0.0 ? static_cast<double>(got) / elapsed : 0.0;
          // Loss = requests that never got ANY response (silent drops);
          // fail-fast unavailable answers are accounted separately.
          lost_requests = static_cast<std::uint64_t>(warm_runs - got);
          if (ok_count + unavailable_responses != got) {
            resilience_checksum = false;  // an unexpected-error response
          }
          if (!recovery_ms.empty()) {
            std::sort(recovery_ms.begin(), recovery_ms.end());
            recovery_p50_ms = recovery_ms[recovery_ms.size() / 2];
            recovery_p99_ms = recovery_ms[std::min(
                recovery_ms.size() - 1,
                static_cast<std::size_t>(
                    static_cast<double>(recovery_ms.size()) * 0.99))];
          }
        } else {
          std::printf("FAIL: chaos-on connect: %s\n", error.c_str());
          failed = true;
        }
        fleet.TriggerShutdown();
        fleet.Wait();
      } else {
        std::printf("FAIL: chaos-on fleet start\n");
        failed = true;
      }
    }
  }
  // Leg G: distributed-tracing overhead A/B (BENCH_obs_trace.json) — the
  // same warm stream through a 1-shard fleet in three configurations:
  //   A  tracer disabled, untraced wire (the pre-tracing byte format);
  //   A2 tracer disabled, every frame carrying a trace= header token
  //      (isolates the parse cost of the optional token);
  //   B  tracer enabled, traced wire (full span recording + propagation).
  // Bytes must be identical across all three (the token and the spans may
  // never leak into a response). The warm memo path serves in under a
  // microsecond, so these legs are deliberate worst cases: ~100 ns of
  // token parse and ~400 ns of span recording are double-digit
  // percentages HERE and noise on any real analysis — the armed gates
  // (25% token / 75% enabled) are regression tripwires, not targets. The
  // documented <= 2% bar is enforced by the real-work legs below.
  double disabled_ns_per_req = 0.0;
  double disabled_traced_ns_per_req = 0.0;
  double enabled_ns_per_req = 0.0;
  std::uint64_t trace_events_recorded = 0;
  bool obs_trace_checksum = true;
  {
    std::string traced_wire;
    {
      service::Request traced = SessionAnalyzeRequest("bench");
      traced.trace = obs::MintTraceContext();
      traced.trace.span_id = obs::MintSpanId();
      for (std::size_t i = 0; i < warm_runs; ++i) {
        service::AppendRequestFrameWithTrace(traced, &traced_wire);
      }
    }
    // A leg's timed region is only a few ms, so one scheduler hiccup can
    // swing it by half; min-of-7 fresh-fleet repetitions reports the
    // undisturbed cost, which is the quantity the gate reasons about. The
    // reps are interleaved round-robin across the three legs (not run as
    // per-leg blocks) so CPU frequency drift over the bench's lifetime
    // hits every leg equally instead of skewing the A/B ratio.
    struct WarmLeg {
      const std::string* wire;
      bool enable_tracer;
      double best_ns = 0.0;
    };
    WarmLeg legs[3] = {{&warm_wire, false, 0.0},
                       {&traced_wire, false, 0.0},
                       {&traced_wire, true, 0.0}};
    const auto before = obs::Tracer::Instance().GetStats();
    for (int rep = 0; rep < 7; ++rep) {
      for (WarmLeg& leg : legs) {
        service::ShardedServerOptions fleet_options;
        fleet_options.shards = 1;
        service::ShardedServer fleet(fleet_options);
        std::string out;
        fleet.ServeScript(warmup_wire, &out);
        std::string leg_out;
        leg_out.reserve(warm_runs * 1024);
        if (leg.enable_tracer) obs::Tracer::Instance().Enable();
        const auto t0 = Clock::now();
        fleet.ServeScript(*leg.wire, &leg_out);
        const double ns =
            Seconds(t0, Clock::now()) / static_cast<double>(warm_runs) * 1e9;
        if (leg.enable_tracer) obs::Tracer::Instance().Disable();
        if (rep == 0 || ns < leg.best_ns) leg.best_ns = ns;
        const auto responses = DecodeResponses(leg_out);
        if (responses.size() != warm_runs) obs_trace_checksum = false;
        for (const auto& response : responses) {
          if (!response.ok ||
              NormalizedFrame(response) != classic_warm_frame) {
            obs_trace_checksum = false;
            break;
          }
        }
      }
    }
    const auto after = obs::Tracer::Instance().GetStats();
    trace_events_recorded = after.recorded - before.recorded;
    disabled_ns_per_req = legs[0].best_ns;
    disabled_traced_ns_per_req = legs[1].best_ns;
    enabled_ns_per_req = legs[2].best_ns;
  }
  const double disabled_overhead_pct =
      disabled_ns_per_req > 0.0
          ? (disabled_traced_ns_per_req - disabled_ns_per_req) /
                disabled_ns_per_req * 100.0
          : 0.0;
  const double enabled_overhead_pct =
      disabled_ns_per_req > 0.0
          ? (enabled_ns_per_req - disabled_ns_per_req) / disabled_ns_per_req *
                100.0
          : 0.0;

  // Real-work legs: distinct cold inline analyses (the EVT pipeline
  // dominates), untraced-and-disabled vs traced-with-the-tracer-enabled.
  // This is the configuration the <= 2% acceptance bar talks about; the
  // armed gate sits at 5% to absorb scheduler noise on a ~10 ms leg.
  double analysis_disabled_ns_per_req = 0.0;
  double analysis_traced_ns_per_req = 0.0;
  {
    constexpr std::size_t kObsCold = 16;
    std::string untraced_wire;
    std::string traced_wire;
    for (std::size_t i = 0; i < kObsCold; ++i) {
      service::Request request = AnalyzeRequest(SyntheticSample(2000, 7000 + i));
      service::AppendRequestFrame(request, &untraced_wire);
      request.trace = obs::MintTraceContext();
      request.trace.span_id = obs::MintSpanId();
      service::AppendRequestFrameWithTrace(request, &traced_wire);
    }
    // Interleaved for the same frequency-drift reason as the warm legs.
    std::vector<std::string> reference_frames;
    struct ColdLeg {
      const std::string* wire;
      bool enable_tracer;
      double best_ns = 0.0;
    };
    ColdLeg legs[2] = {{&untraced_wire, false, 0.0},
                       {&traced_wire, true, 0.0}};
    for (int rep = 0; rep < 3; ++rep) {
      for (ColdLeg& leg : legs) {
        service::ShardedServerOptions fleet_options;
        fleet_options.shards = 1;
        service::ShardedServer fleet(fleet_options);
        std::string leg_out;
        if (leg.enable_tracer) obs::Tracer::Instance().Enable();
        const auto t0 = Clock::now();
        fleet.ServeScript(*leg.wire, &leg_out);
        const double ns =
            Seconds(t0, Clock::now()) / static_cast<double>(kObsCold) * 1e9;
        if (leg.enable_tracer) obs::Tracer::Instance().Disable();
        if (rep == 0 || ns < leg.best_ns) leg.best_ns = ns;
        const auto responses = DecodeResponses(leg_out);
        if (responses.size() != kObsCold) {
          obs_trace_checksum = false;
          continue;
        }
        for (std::size_t i = 0; i < responses.size(); ++i) {
          if (!responses[i].ok) obs_trace_checksum = false;
          std::string frame = NormalizedFrame(responses[i]);
          if (reference_frames.size() < kObsCold) {
            reference_frames.push_back(std::move(frame));
          } else if (frame != reference_frames[i]) {
            obs_trace_checksum = false;
          }
        }
      }
    }
    analysis_disabled_ns_per_req = legs[0].best_ns;
    analysis_traced_ns_per_req = legs[1].best_ns;
  }
  const double analysis_overhead_pct =
      analysis_disabled_ns_per_req > 0.0
          ? (analysis_traced_ns_per_req - analysis_disabled_ns_per_req) /
                analysis_disabled_ns_per_req * 100.0
          : 0.0;

  constexpr double kObsTokenGatePct = 25.0;
  constexpr double kObsEnabledGatePct = 75.0;
  constexpr double kObsAnalysisGatePct = 5.0;
  const bool obs_trace_pass =
      obs_trace_checksum && trace_events_recorded > 0 &&
      (!gate_armed || (disabled_overhead_pct <= kObsTokenGatePct &&
                       enabled_overhead_pct <= kObsEnabledGatePct &&
                       analysis_overhead_pct <= kObsAnalysisGatePct));
  if (!obs_trace_pass) {
    std::printf("FAIL: obs trace leg: checksum %s, %llu events, "
                "token %.1f%%, enabled %.1f%%, analysis %.1f%%\n",
                obs_trace_checksum ? "ok" : "MISMATCH",
                static_cast<unsigned long long>(trace_events_recorded),
                disabled_overhead_pct, enabled_overhead_pct,
                analysis_overhead_pct);
    failed = true;
  }

  const bool resilience_pass = lost_requests == 0 && resilience_checksum;
  if (!resilience_pass) {
    std::printf("FAIL: chaos leg lost %llu request(s), checksum %s\n",
                static_cast<unsigned long long>(lost_requests),
                resilience_checksum ? "ok" : "MISMATCH");
    if (!first_bad_frame.empty()) {
      std::printf("  first divergent frame: %.200s\n",
                  first_bad_frame.c_str());
    }
    failed = true;
  }

  if (!warm_start_hit) {
    std::printf("FAIL: restarted fleet did not serve a disk-warmed hit\n");
    failed = true;
  }
  if (!fleet_bits_match) {
    std::printf("FAIL: fleet warm responses diverged from classic bytes\n");
    failed = true;
  }
  if (gate_armed && fleet_warm_speedup < kFleetGate) failed = true;

  std::printf("\nfleet A/B (%zu warm requests%s):\n", warm_runs,
              gate_armed ? "" : "; gate disarmed, < 150 runs");
  std::printf("classic warm     : %12.0f req/s\n", classic_warm_rps);
  std::printf("fleet warm       : %12.0f req/s  (%5.1fx, acceptance: >= "
              "%.0fx)  %s\n",
              fleet_warm_rps, fleet_warm_speedup, kFleetGate,
              !gate_armed              ? "n/a"
              : fleet_warm_speedup >= kFleetGate ? "OK"
                                                 : "FAIL");
  std::printf("fleet warm (TCP) : %12.0f req/s\n", tcp_warm_rps);
  std::printf("cold 1 shard     : %12.0f req/s\n", cold_rps[0]);
  std::printf("cold %zu shards    : %12.0f req/s  (%.2fx scaling)\n",
              shards_n, cold_rps[1], shard_scaling);
  std::printf("warm start       : cold %.3f ms -> restart %.3f ms (%s)\n",
              cold_start_ms, warm_start_ms,
              warm_start_hit ? "disk hit" : "MISS");
  std::printf("bit identity     : %s\n",
              fleet_bits_match ? "OK (classic == fleet == TCP)" : "FAIL");
  std::printf(
      "resilience       : %12.0f req/s chaos-off, %12.0f req/s with %zu "
      "kills; recovery p50 %.2f ms p99 %.2f ms; %llu lost, %llu "
      "unavailable  %s\n",
      chaos_off_rps, chaos_on_rps, resilience_kills, recovery_p50_ms,
      recovery_p99_ms, static_cast<unsigned long long>(lost_requests),
      static_cast<unsigned long long>(unavailable_responses),
      resilience_pass ? "OK" : "FAIL");
  std::printf(
      "trace overhead   : %9.0f ns/req untraced, %9.0f ns/req token "
      "(%+.1f%%), %9.0f ns/req enabled (%+.1f%%, %llu spans) on the warm "
      "fast path;\n"
      "                   %9.0f -> %9.0f ns/req (%+.2f%%, acceptance <= "
      "%.0f%%) on cold analyses  %s\n",
      disabled_ns_per_req, disabled_traced_ns_per_req, disabled_overhead_pct,
      enabled_ns_per_req, enabled_overhead_pct,
      static_cast<unsigned long long>(trace_events_recorded),
      analysis_disabled_ns_per_req, analysis_traced_ns_per_req,
      analysis_overhead_pct, kObsAnalysisGatePct,
      obs_trace_pass ? "OK" : "FAIL");

  bench::JsonReport fleet_report("service_fleet", warm_runs);
  fleet_report.Set("classic_warm_rps", classic_warm_rps);
  fleet_report.Set("fleet_warm_rps", fleet_warm_rps);
  fleet_report.Set("fleet_warm_speedup", fleet_warm_speedup);
  fleet_report.Set("tcp_warm_rps", tcp_warm_rps);
  fleet_report.Set("cold_rps_1shard", cold_rps[0]);
  fleet_report.Set("cold_rps_nshard", cold_rps[1]);
  fleet_report.Set("shard_scaling", shard_scaling);
  fleet_report.Set("shards_n", static_cast<double>(shards_n));
  fleet_report.Set("cold_start_ms", cold_start_ms);
  fleet_report.Set("warm_start_ms", warm_start_ms);
  fleet_report.Set("warm_start_hit", warm_start_hit ? 1.0 : 0.0);
  fleet_report.Set("checksum_match", fleet_bits_match ? 1.0 : 0.0);
  fleet_report.Set(
      "warm_frame_checksum",
      static_cast<double>(spta::HashBytes(classic_warm_frame).lo >> 32));
  fleet_report.Set("gate_armed", gate_armed ? 1.0 : 0.0);
  fleet_report.Set("gate_min_speedup", kFleetGate);
  fleet_report.Set("acceptance_pass", failed ? 0.0 : 1.0);
  fleet_report.Write();

  bench::JsonReport resilience_report("resilience", warm_runs);
  resilience_report.Set("chaos_off_rps", chaos_off_rps);
  resilience_report.Set("chaos_on_rps", chaos_on_rps);
  resilience_report.Set("kills", static_cast<double>(resilience_kills));
  resilience_report.Set("recovery_p50_ms", recovery_p50_ms);
  resilience_report.Set("recovery_p99_ms", recovery_p99_ms);
  resilience_report.Set("lost_requests", static_cast<double>(lost_requests));
  resilience_report.Set("unavailable_responses",
                        static_cast<double>(unavailable_responses));
  resilience_report.Set("checksum_match", resilience_checksum ? 1.0 : 0.0);
  resilience_report.Set("acceptance_pass", resilience_pass ? 1.0 : 0.0);
  resilience_report.Write();

  bench::JsonReport obs_trace_report("obs_trace", warm_runs);
  obs_trace_report.Set("disabled_ns_per_req", disabled_ns_per_req);
  obs_trace_report.Set("disabled_traced_ns_per_req",
                       disabled_traced_ns_per_req);
  obs_trace_report.Set("enabled_ns_per_req", enabled_ns_per_req);
  obs_trace_report.Set("disabled_overhead_pct", disabled_overhead_pct);
  obs_trace_report.Set("enabled_overhead_pct", enabled_overhead_pct);
  obs_trace_report.Set("analysis_disabled_ns_per_req",
                       analysis_disabled_ns_per_req);
  obs_trace_report.Set("analysis_traced_ns_per_req",
                       analysis_traced_ns_per_req);
  obs_trace_report.Set("analysis_overhead_pct", analysis_overhead_pct);
  obs_trace_report.Set("trace_events_recorded",
                       static_cast<double>(trace_events_recorded));
  obs_trace_report.Set("checksum_match", obs_trace_checksum ? 1.0 : 0.0);
  obs_trace_report.Set("gate_armed", gate_armed ? 1.0 : 0.0);
  obs_trace_report.Set("gate_token_pct", kObsTokenGatePct);
  obs_trace_report.Set("gate_enabled_pct", kObsEnabledGatePct);
  obs_trace_report.Set("gate_analysis_pct", kObsAnalysisGatePct);
  obs_trace_report.Set("acceptance_pass", obs_trace_pass ? 1.0 : 0.0);
  obs_trace_report.Write();

  bench::JsonReport report("service_loadgen", sample_size);
  report.Set("cold_analyze_ms", cold_s * 1e3);
  report.Set("warm_analyze_ms", warm_s * 1e3);
  report.Set("warm_speedup", speedup);
  report.Set("warm_hits", static_cast<double>(warm_hits));
  report.Set("warm_requests_per_sec",
             warm_total_s > 0.0
                 ? static_cast<double>(kWarmBurst) / warm_total_s
                 : 0.0);
  report.Set("drain_seconds", drain_s);
  report.Set("drain_answered", static_cast<double>(answered));
  report.Set("drain_burst", static_cast<double>(kBurst));
  report.Set("acceptance_pass", failed ? 0.0 : 1.0);
  report.Write();
  return failed ? 1 : 0;
}
