// Throughput of the lockstep multi-seed batch kernel, A/B'd against the
// single-seed fast path on the same workload, seeds and protocol as
// micro_sim_hotpath (one full TVCA frame, ~225k records, randomized LEON3,
// per-run reseed, master seed 123).
//
// The batch kernel prepares the trace once (lane-invariant costs folded
// into a compact event stream) and simulates `lanes` seeds per pass with
// SIMD way-scans over lane-major state. Acceptance for this PR is >= 3.0x
// the frozen pre-fast-path baseline (kBaselineRunsPerSec, the same frozen
// number micro_sim_hotpath gates against) — i.e. the batch kernel must
// beat the serial kernel's own 1.5x bar by another 2x. The gate is only
// enforced at campaign-scale run counts; smoke runs (SPTA_BENCH_RUNS=64 in
// tier 1) still emit the full JSON and verify bit-identity, where any
// behavioral drift in the batch kernel fails the run regardless of size.
//
// Three legs, all on identical seeds:
//   serial   — sim::Platform::Run per seed (the PR 3 fast path);
//   batched  — BatchPlatform at the default lane count, auto-detected ISA;
//   scalar   — same batches with the scalar scan fallback forced, so the
//              no-AVX2 deployment profile keeps a recorded trajectory.
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "analysis/batch_campaign.hpp"
#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/batch/simd.hpp"
#include "sim/platform.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// Same frozen pre-fast-path reference as micro_sim_hotpath (see there for
// the measurement protocol); keeping one baseline makes the two speedup
// figures directly comparable.
constexpr double kBaselineRunsPerSec = 183.56;
constexpr double kAcceptanceSpeedup = 3.0;
// The acceptance bar is only enforced at campaign scale; short smoke runs
// amortize the one-time trace preparation over too few batches.
constexpr std::size_t kGateMinRuns = 150;

// Frozen sum of end-to-end cycles over runs 0..59 of this campaign
// (master seed 123); shared with micro_sim_hotpath — the batch kernel is
// bit-identical to the serial one, so it reproduces the same number.
constexpr unsigned long long kChecksum60 = 52746737ULL;

struct Leg {
  double seconds = 0.0;
  unsigned long long checksum = 0;  // cycles summed over runs 0..59
  std::vector<double> batch_latencies;
};

}  // namespace

int main() {
  using namespace spta;
  bench::Banner(
      "micro: lockstep batch kernel",
      "infrastructure (no paper artifact): multi-seed campaign throughput",
      "batch kernel sustains >= 3.0x the pre-fast-path run throughput "
      "with bit-identical per-lane behavior");

  const std::size_t runs = bench::RunCount(300);
  const std::size_t lanes = analysis::kDefaultBatchLanes;
  constexpr std::uint64_t kMasterSeed = 123;

  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);
  const auto& trace = frame.trace;
  const auto config = sim::RandLeon3Config();
  std::printf("workload: TVCA frame(42), %zu records, path %u\n",
              trace.records.size(), frame.path_id);
  std::printf("lanes: %zu   scan ISA: %s (avx2 %s)\n", lanes,
              ToString(sim::batch::ActiveScanIsa()),
              sim::batch::CpuHasAvx2() ? "available" : "unavailable");

  std::vector<Seed> seeds;
  seeds.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    seeds.push_back(analysis::FixedTraceRunSeed(kMasterSeed, i));
  }

  // --- serial leg -------------------------------------------------------
  sim::Platform platform(config, kMasterSeed);
  for (std::size_t i = 0; i < 3; ++i) {  // warmup
    (void)platform.Run(trace, seeds[i % seeds.size()]);
  }
  Leg serial;
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < runs; ++i) {
      const auto result = platform.Run(trace, seeds[i]);
      if (i < 60) serial.checksum += result.cycles;
    }
    serial.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  }

  // --- batched legs -----------------------------------------------------
  // Trace preparation is INSIDE the measured window: a campaign pays it
  // too (once per trace), and charging it here keeps the speedup honest.
  const auto run_batched = [&](sim::batch::ScanIsa isa) {
    (void)sim::batch::SetScanIsaForTest(isa);
    Leg leg;
    const auto t0 = Clock::now();
    const auto prepared = sim::batch::PrepareTrace(trace, config);
    sim::batch::BatchPlatform batch(config, lanes);
    for (std::size_t base = 0; base < runs; base += lanes) {
      const std::size_t n = std::min(lanes, runs - base);
      const auto b0 = Clock::now();
      const auto results =
          batch.RunBatch(prepared, std::span<const Seed>(&seeds[base], n));
      leg.batch_latencies.push_back(
          std::chrono::duration<double>(Clock::now() - b0).count());
      for (std::size_t l = 0; l < n; ++l) {
        if (base + l < 60) leg.checksum += results[l].cycles;
      }
    }
    leg.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return leg;
  };
  const Leg batched = run_batched(sim::batch::CpuHasAvx2()
                                      ? sim::batch::ScanIsa::kAvx2
                                      : sim::batch::ScanIsa::kScalar);
  const std::string batched_isa =
      ToString(sim::batch::CpuHasAvx2() ? sim::batch::ScanIsa::kAvx2
                                        : sim::batch::ScanIsa::kScalar);
  const Leg scalar = run_batched(sim::batch::ScanIsa::kScalar);
  (void)sim::batch::SetScanIsaForTest(sim::batch::CpuHasAvx2()
                                          ? sim::batch::ScanIsa::kAvx2
                                          : sim::batch::ScanIsa::kScalar);

  const double serial_rps = static_cast<double>(runs) / serial.seconds;
  const double batched_rps = static_cast<double>(runs) / batched.seconds;
  const double scalar_rps = static_cast<double>(runs) / scalar.seconds;
  const double speedup_vs_serial = batched_rps / serial_rps;
  const double speedup_vs_baseline = batched_rps / kBaselineRunsPerSec;
  const auto lat = bench::SummarizeLatencies(batched.batch_latencies);

  std::printf("\nserial (fast path)  : %8.2f runs/sec\n", serial_rps);
  std::printf("batched (%-6s)    : %8.2f runs/sec  (batch p50 %.3fms "
              "p99 %.3fms)\n",
              batched_isa.c_str(), batched_rps, lat.p50 * 1e3, lat.p99 * 1e3);
  std::printf("batched (scalar)    : %8.2f runs/sec\n", scalar_rps);
  std::printf("speedup vs serial   : %.2fx\n", speedup_vs_serial);
  std::printf("speedup vs baseline : %.2fx  (acceptance: >= %.2fx at >= %zu "
              "runs)\n",
              speedup_vs_baseline, kAcceptanceSpeedup, kGateMinRuns);

  bool failed = false;
  // Bit-identity: all three legs must agree with each other; at >= 60 runs
  // they must also reproduce the frozen pre-fast-path checksum.
  bool bits_ok =
      serial.checksum == batched.checksum && batched.checksum == scalar.checksum;
  if (runs >= 60) bits_ok = bits_ok && serial.checksum == kChecksum60;
  std::printf("bit-identity        : serial %llu batched %llu scalar %llu  "
              "%s\n",
              serial.checksum, batched.checksum, scalar.checksum,
              bits_ok ? "OK" : "MISMATCH");
  failed = failed || !bits_ok;

  if (runs >= kGateMinRuns && speedup_vs_baseline < kAcceptanceSpeedup) {
    std::printf("FAIL: batch throughput below the %.2fx acceptance bar\n",
                kAcceptanceSpeedup);
    failed = true;
  }

  bench::JsonReport report("sim_batch", runs);
  report.SetString("isa", batched_isa);
  report.Set("lanes", static_cast<double>(lanes));
  report.Set("trace_records", static_cast<double>(trace.records.size()));
  report.Set("serial_runs_per_sec", serial_rps);
  report.Set("batched_runs_per_sec", batched_rps);
  report.Set("scalar_runs_per_sec", scalar_rps);
  report.Set("speedup_vs_serial", speedup_vs_serial);
  report.Set("baseline_runs_per_sec", kBaselineRunsPerSec);
  report.Set("speedup_vs_baseline", speedup_vs_baseline);
  report.SetLatencies("batch_latency", lat);
  report.Set("checksum_match", bits_ok ? 1.0 : 0.0);
  report.Set("checksum_60",
             runs >= 60 ? static_cast<double>(serial.checksum) : 0.0);
  if (report.Write().empty()) failed = true;

  return failed ? 1 : 0;
}
