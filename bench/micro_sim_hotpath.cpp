// Per-access cost of the simulation fast path, isolated from analysis.
//
// Simulation throughput bounds how many measurement runs an MBPTA campaign
// can afford; this bench pins it down on the heaviest workload the repo has
// (one full TVCA frame, ~225k trace records) under the fully randomized
// LEON3 configuration, with per-run reseeding — the exact inner loop of
// RunFixedTraceCampaign, timed run by run so the JSON report carries a
// latency distribution, not just a mean.
//
// `kBaselineRunsPerSec` is the throughput of this same workload measured at
// the pre-fast-path revision (flat SoA cache/TLB layout, batched PRNG,
// devirtualized dispatch all absent) on the reference container host; the
// emitted BENCH_sim_hotpath.json carries both numbers so the speedup claim
// stays auditable. The checksum re-verifies bit-identity on the fly: any
// drift in observable behavior shows up here before it shows up in a
// pWCET figure.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// Throughput (runs/sec) of the pre-fast-path tree on the reference host,
// measured with this bench's exact protocol at 150 runs, interleaved with
// the optimized binary to cancel host noise (median of 5 alternating
// pairs; the optimized tree measured 308-326 runs/sec in the same pairs).
// Re-record when the reference hardware changes; see docs/BENCHMARKS.md.
constexpr double kBaselineRunsPerSec = 183.56;

// Sum of end-to-end cycle counts over the first 60 runs of this campaign
// (master seed 123). Frozen from the pre-fast-path tree; bit-identity of
// the optimized simulator means it can never change.
constexpr unsigned long long kChecksum60 = 52746737ULL;

}  // namespace

int main() {
  using namespace spta;
  bench::Banner(
      "micro: simulation hot path",
      "infrastructure (no paper artifact): per-access simulation cost",
      "fast-path kernel sustains >= 1.5x the pre-refactor run throughput "
      "with bit-identical observable behavior");

  const std::size_t runs = bench::RunCount(300);
  constexpr std::uint64_t kMasterSeed = 123;

  const apps::TvcaApp app;
  const auto frame = app.BuildFrame(/*scenario_seed=*/42);
  const auto& trace = frame.trace;
  std::printf("workload: TVCA frame(42), %zu records, path %u\n",
              trace.records.size(), frame.path_id);

  const auto config = sim::RandLeon3Config();
  sim::Platform platform(config, kMasterSeed);

  // Warmup outside the measured window (first-touch faults, frequency).
  for (std::size_t i = 0; i < 3; ++i) {
    (void)platform.Run(trace, analysis::FixedTraceRunSeed(kMasterSeed, i));
  }

  std::vector<double> latencies;
  latencies.reserve(runs);
  unsigned long long checksum = 0;
  std::uint64_t instructions = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < runs; ++i) {
    const auto r0 = Clock::now();
    const auto result =
        platform.Run(trace, analysis::FixedTraceRunSeed(kMasterSeed, i));
    const auto r1 = Clock::now();
    latencies.push_back(std::chrono::duration<double>(r1 - r0).count());
    if (i < 60) checksum += result.cycles;
    instructions += result.instructions;
  }
  const auto t1 = Clock::now();
  const double total_s = std::chrono::duration<double>(t1 - t0).count();

  const double runs_per_sec = static_cast<double>(runs) / total_s;
  const double minstr_per_sec =
      static_cast<double>(instructions) / total_s / 1e6;
  const double speedup = runs_per_sec / kBaselineRunsPerSec;
  const auto lat = bench::SummarizeLatencies(latencies);

  std::printf("runs            : %zu  (%.2fs total)\n", runs, total_s);
  std::printf("throughput      : %8.2f runs/sec  %7.1f Minstr/sec\n",
              runs_per_sec, minstr_per_sec);
  std::printf("per-run latency : p50 %.3fms  p99 %.3fms  mean %.3fms\n",
              lat.p50 * 1e3, lat.p99 * 1e3, lat.mean * 1e3);
  std::printf("baseline        : %8.2f runs/sec  ->  speedup %.2fx "
              "(acceptance: >= 1.50x)\n",
              kBaselineRunsPerSec, speedup);

  bool failed = false;
  if (runs >= 60) {
    const bool ok = checksum == kChecksum60;
    std::printf("bit-identity    : checksum(60) %llu  %s\n", checksum,
                ok ? "OK" : "MISMATCH (expected 52746737)");
    failed = failed || !ok;
  } else {
    std::printf("bit-identity    : skipped (needs >= 60 runs, have %zu)\n",
                runs);
  }

  bench::JsonReport report("sim_hotpath", runs);
  report.Set("trace_records", static_cast<double>(trace.records.size()));
  report.Set("total_seconds", total_s);
  report.Set("runs_per_sec", runs_per_sec);
  report.Set("minstr_per_sec", minstr_per_sec);
  report.SetLatencies("run_latency", lat);
  report.Set("baseline_runs_per_sec", kBaselineRunsPerSec);
  report.Set("speedup_vs_baseline", speedup);
  report.Set("checksum_60", runs >= 60 ? static_cast<double>(checksum) : 0.0);
  if (report.Write().empty()) failed = true;

  // --- zero-fault-path overhead gate (docs/FAULTS.md) ------------------
  // The fault subsystem's injection window is Platform::RunWithHook; the
  // zero-fault contract is that a null hook costs nothing measurable over
  // plain Run. A/B-interleave the two entry points on identical seeds:
  // same results (bit-identity) and within-noise timing. Acceptance is
  // <= 2% mean overhead; the gate only FAILS above 10% so shared-host
  // noise cannot flake tier-1 — the JSON records the actual number for
  // the perf trajectory either way.
  const std::size_t ab_pairs = runs < 20 ? runs : runs / 2;
  const std::function<void(sim::Platform&)> null_hook;  // empty = no-op
  double plain_s = 0.0, hooked_s = 0.0;
  unsigned long long plain_sum = 0, hooked_sum = 0;
  for (std::size_t i = 0; i < ab_pairs; ++i) {
    const auto seed = analysis::FixedTraceRunSeed(kMasterSeed, i);
    const auto a0 = Clock::now();
    const auto ra = platform.Run(trace, seed);
    const auto a1 = Clock::now();
    const auto rb = platform.RunWithHook(trace, seed, null_hook);
    const auto b1 = Clock::now();
    plain_s += std::chrono::duration<double>(a1 - a0).count();
    hooked_s += std::chrono::duration<double>(b1 - a1).count();
    plain_sum += ra.cycles;
    hooked_sum += rb.cycles;
  }
  const double overhead_pct =
      plain_s > 0.0 ? (hooked_s - plain_s) / plain_s * 100.0 : 0.0;
  const bool bits_match = plain_sum == hooked_sum;
  std::printf(
      "\nfault-hook overhead (%zu A/B pairs): plain %.2f runs/sec, "
      "null-hook %.2f runs/sec -> %+.2f%%\n",
      ab_pairs, static_cast<double>(ab_pairs) / plain_s,
      static_cast<double>(ab_pairs) / hooked_s, overhead_pct);
  std::printf("  acceptance <= 2%% (gate trips only above 10%%); "
              "bit-identity %s\n",
              bits_match ? "OK" : "MISMATCH");
  failed = failed || !bits_match || overhead_pct > 10.0;

  bench::JsonReport fault_report("fault_overhead", ab_pairs);
  fault_report.Set("plain_runs_per_sec",
                   static_cast<double>(ab_pairs) / plain_s);
  fault_report.Set("hooked_runs_per_sec",
                   static_cast<double>(ab_pairs) / hooked_s);
  fault_report.Set("overhead_pct", overhead_pct);
  fault_report.Set("acceptance_pct", 2.0);
  fault_report.Set("gate_pct", 10.0);
  fault_report.Set("checksum_match", bits_match ? 1.0 : 0.0);
  if (fault_report.Write().empty()) failed = true;

  // --- obs span overhead gate (docs/OBSERVABILITY.md) ------------------
  // The observability contract is that the trace-span macros cost the
  // measurement loop nothing when runtime-disabled (a relaxed load + a
  // predicted branch per span) and never perturb simulated behavior in
  // either state. A/B-interleave a bare run against a span-wrapped run on
  // identical seeds with the tracer disabled: same cycles (bit-identity)
  // and within-noise timing, same 2%/10% acceptance/gate split as the
  // fault gate. A third, informational leg re-times the span-wrapped run
  // with the tracer ENABLED — recording cost, not gated (campaigns opt
  // into it with --trace-out), but recorded for the trajectory.
  obs::Tracer::Instance().Disable();
  double bare_s = 0.0, span_s = 0.0;
  unsigned long long bare_sum = 0, span_sum = 0;
  for (std::size_t i = 0; i < ab_pairs; ++i) {
    const auto seed = analysis::FixedTraceRunSeed(kMasterSeed, i);
    const auto a0 = Clock::now();
    const auto ra = platform.Run(trace, seed);
    const auto a1 = Clock::now();
    {
      SPTA_OBS_SPAN_ARG("bench", "run", "run", i);
      span_sum += platform.Run(trace, seed).cycles;
    }
    const auto b1 = Clock::now();
    bare_s += std::chrono::duration<double>(a1 - a0).count();
    span_s += std::chrono::duration<double>(b1 - a1).count();
    bare_sum += ra.cycles;
  }
  const double obs_overhead_pct =
      bare_s > 0.0 ? (span_s - bare_s) / bare_s * 100.0 : 0.0;
  const bool obs_bits_match = bare_sum == span_sum;

  obs::Tracer::Instance().Enable();
  double enabled_s = 0.0;
  unsigned long long enabled_sum = 0;
  for (std::size_t i = 0; i < ab_pairs; ++i) {
    const auto seed = analysis::FixedTraceRunSeed(kMasterSeed, i);
    const auto e0 = Clock::now();
    {
      SPTA_OBS_SPAN_ARG("bench", "run_traced", "run", i);
      enabled_sum += platform.Run(trace, seed).cycles;
    }
    enabled_s += std::chrono::duration<double>(Clock::now() - e0).count();
  }
  const auto tracer_stats = obs::Tracer::Instance().GetStats();
  obs::Tracer::Instance().Disable();
  obs::Tracer::Instance().Clear();
  const double enabled_overhead_pct =
      bare_s > 0.0 ? (enabled_s - bare_s) / bare_s * 100.0 : 0.0;
  const bool enabled_bits_match = bare_sum == enabled_sum;

  std::printf(
      "\nobs span overhead (%zu A/B pairs): bare %.2f runs/sec, "
      "disabled-span %.2f runs/sec -> %+.2f%%\n",
      ab_pairs, static_cast<double>(ab_pairs) / bare_s,
      static_cast<double>(ab_pairs) / span_s, obs_overhead_pct);
  std::printf("  enabled-span    : %.2f runs/sec -> %+.2f%% "
              "(informational; %llu events recorded)\n",
              static_cast<double>(ab_pairs) / enabled_s,
              enabled_overhead_pct,
              static_cast<unsigned long long>(tracer_stats.recorded));
  std::printf("  acceptance <= 2%% (gate trips only above 10%%); "
              "bit-identity %s\n",
              obs_bits_match && enabled_bits_match ? "OK" : "MISMATCH");
  failed = failed || !obs_bits_match || !enabled_bits_match ||
           obs_overhead_pct > 10.0;

  bench::JsonReport obs_report("obs_overhead", ab_pairs);
  obs_report.Set("plain_runs_per_sec", static_cast<double>(ab_pairs) / bare_s);
  obs_report.Set("obs_runs_per_sec", static_cast<double>(ab_pairs) / span_s);
  obs_report.Set("overhead_pct", obs_overhead_pct);
  obs_report.Set("enabled_runs_per_sec",
                 static_cast<double>(ab_pairs) / enabled_s);
  obs_report.Set("enabled_overhead_pct", enabled_overhead_pct);
  obs_report.Set("trace_events_recorded",
                 static_cast<double>(tracer_stats.recorded));
  obs_report.Set("acceptance_pct", 2.0);
  obs_report.Set("gate_pct", 10.0);
  obs_report.Set("checksum_match",
                 obs_bits_match && enabled_bits_match ? 1.0 : 0.0);
  if (obs_report.Write().empty()) failed = true;

  return failed ? 1 : 0;
}
