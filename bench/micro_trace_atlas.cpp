// Atlas container + kernel-memoization bench: pack ratio, cold-load time,
// and memoized-campaign throughput vs the non-memoized batched path.
//
// Workload: a repeated-kernel trace (48-record loop body x 2000
// iterations, ~96k records) — the shape the atlas subsystem exists for.
// Four legs on identical seeds (master seed 123, the hotpath protocol):
//
//   pack     — legacy vs atlas container size + cold load from disk;
//   serial   — sim::Platform::Run per seed (context);
//   batched  — lockstep BatchPlatform at the default lane count, the
//              fastest NON-memoized path and this bench's baseline;
//   memoized — RunFixedTraceCampaignMemoized (mining + KernelStore
//              inside the measured window, jobs=1 — same core count as
//              the batched leg).
//
// Acceptance (campaign scale only, >= 150 runs): kernel-store hit rate
// >= 90% and memoized throughput >= 2.0x the batched leg. Bit-identity
// (cycles summed over runs 0..59, all legs equal) is enforced at every
// size — any drift in the memoized path fails the run outright. Smoke
// runs (SPTA_BENCH_RUNS=64 in tier 1 via check_bench_json) still emit the
// full BENCH_trace_atlas.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/atlas_campaign.hpp"
#include "analysis/batch_campaign.hpp"
#include "analysis/campaign.hpp"
#include "atlas/format.hpp"
#include "atlas/mine.hpp"
#include "bench_util.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/platform.hpp"
#include "trace/trace_io.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kHitRateBar = 0.90;
constexpr double kSpeedupBar = 2.0;      // memoized vs batched
constexpr std::size_t kGateMinRuns = 150;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The repeated-kernel workload: prologue . 48-record body x `iterations`
/// . epilogue, every iteration identical (same pcs, same addresses) so the
/// warmed micro-architectural state reaches a fixed point. One store per
/// iteration, drained well within the iteration, so the store buffer
/// carries no cross-iteration backlog.
spta::trace::Trace KernelLoopTrace(std::size_t iterations) {
  using spta::trace::OpClass;
  spta::trace::Trace t;
  t.path_signature = 0xA71A5;
  auto push = [&](spta::Address pc, OpClass op, spta::Address mem = 0,
                  bool taken = false) {
    spta::trace::TraceRecord r;
    r.pc = pc;
    r.op = op;
    r.mem_addr = mem;
    r.branch_taken = taken;
    t.records.push_back(r);
  };
  for (std::size_t i = 0; i < 40; ++i) {
    push(0x1000 + 4 * i, i % 5 == 0 ? OpClass::kLoad : OpClass::kIntAlu,
         i % 5 == 0 ? 0x9000 + 64 * i : 0);
  }
  constexpr std::size_t kBody = 48;
  for (std::size_t k = 0; k < iterations; ++k) {
    for (std::size_t j = 0; j + 1 < kBody; ++j) {
      if (j % 4 == 1) {
        push(0x2000 + 4 * j, OpClass::kLoad, 0x8000 + 32 * j);
      } else if (j == 18) {
        push(0x2000 + 4 * j, OpClass::kStore, 0x8800 + 32 * j);
      } else {
        push(0x2000 + 4 * j, OpClass::kIntAlu);
      }
    }
    push(0x2000 + 4 * (kBody - 1), OpClass::kBranch, 0, true);
  }
  for (std::size_t i = 0; i < 30; ++i) {
    push(0x3000 + 4 * i, OpClass::kIntAlu);
  }
  return t;
}

}  // namespace

int main() {
  using namespace spta;
  bench::Banner(
      "micro: atlas traces + kernel memoization",
      "infrastructure (no paper artifact): columnar container + "
      "memoized-campaign throughput",
      "atlas packs >= 3x smaller bit-identically; memoized campaigns on a "
      "repeated-kernel trace reach >= 90% hit rate and >= 2x the "
      "non-memoized batched throughput");

  const std::size_t runs = bench::RunCount(300);
  constexpr std::uint64_t kMasterSeed = 123;
  constexpr std::size_t kIterations = 2000;

  const trace::Trace t = KernelLoopTrace(kIterations);
  const auto config = sim::RandLeon3Config();
  const atlas::Segmentation mined = atlas::MineKernels(t);
  std::printf("workload: kernel loop x %zu, %zu records, %zu kernel(s), "
              "%.1f%% kernel coverage\n",
              kIterations, t.records.size(), mined.kernels.size(),
              100.0 * static_cast<double>(mined.KernelRecords()) /
                  static_cast<double>(t.records.size()));

  // --- container leg ----------------------------------------------------
  std::ostringstream legacy_out(std::ios::binary);
  trace::WriteTrace(legacy_out, t);
  const std::string legacy_bytes = legacy_out.str();
  std::ostringstream atlas_out(std::ios::binary);
  atlas::WriteAtlas(atlas_out, t);
  const std::string atlas_bytes = atlas_out.str();
  const double pack_ratio = static_cast<double>(legacy_bytes.size()) /
                            static_cast<double>(atlas_bytes.size());

  const std::string dir = "/tmp";
  const std::string legacy_path = dir + "/spta_bench_atlas.trc";
  const std::string atlas_path = dir + "/spta_bench_atlas.atls";
  {
    std::ofstream f(legacy_path, std::ios::binary);
    f.write(legacy_bytes.data(),
            static_cast<std::streamsize>(legacy_bytes.size()));
  }
  {
    std::ofstream f(atlas_path, std::ios::binary);
    f.write(atlas_bytes.data(),
            static_cast<std::streamsize>(atlas_bytes.size()));
  }
  // Cold load: file -> fully materialized std::vector<TraceRecord>. Two
  // passes each, second one reported (first warms the page cache so the
  // comparison is decode cost, not disk).
  double legacy_load_s = 0.0;
  double atlas_load_s = 0.0;
  std::string error;
  for (int pass = 0; pass < 2; ++pass) {
    trace::Trace loaded;
    auto t0 = Clock::now();
    if (!trace::TryLoadTraceFile(legacy_path, &loaded, &error)) {
      std::fprintf(stderr, "FAIL: legacy reload: %s\n", error.c_str());
      return 1;
    }
    legacy_load_s = Seconds(t0);
    trace::Trace unpacked;
    t0 = Clock::now();
    if (!atlas::TryLoadAtlasFile(atlas_path, &unpacked, &error)) {
      std::fprintf(stderr, "FAIL: atlas reload: %s\n", error.c_str());
      return 1;
    }
    atlas_load_s = Seconds(t0);
    if (pass == 1 && !(unpacked.records == t.records)) {
      std::fprintf(stderr, "FAIL: atlas round trip not bit-identical\n");
      return 1;
    }
  }
  std::remove(legacy_path.c_str());
  std::remove(atlas_path.c_str());
  const double cold_load_speedup = legacy_load_s / atlas_load_s;
  std::printf("container: legacy %zu B, atlas %zu B  (%.2fx smaller)\n",
              legacy_bytes.size(), atlas_bytes.size(), pack_ratio);
  std::printf("cold load: legacy %.3f ms, atlas %.3f ms  (%.2fx)\n",
              legacy_load_s * 1e3, atlas_load_s * 1e3, cold_load_speedup);

  std::vector<Seed> seeds;
  seeds.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    seeds.push_back(analysis::FixedTraceRunSeed(kMasterSeed, i));
  }

  // --- serial leg (context) --------------------------------------------
  sim::Platform platform(config, kMasterSeed);
  (void)platform.Run(t, seeds[0]);  // warmup
  unsigned long long serial_checksum = 0;
  double serial_s = 0.0;
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < runs; ++i) {
      const auto result = platform.Run(t, seeds[i]);
      if (i < 60) serial_checksum += result.cycles;
    }
    serial_s = Seconds(t0);
  }

  // --- batched leg (the baseline) --------------------------------------
  const std::size_t lanes = analysis::kDefaultBatchLanes;
  unsigned long long batched_checksum = 0;
  double batched_s = 0.0;
  {
    const auto t0 = Clock::now();
    const auto prepared = sim::batch::PrepareTrace(t, config);
    sim::batch::BatchPlatform batch(config, lanes);
    for (std::size_t base = 0; base < runs; base += lanes) {
      const std::size_t n = std::min(lanes, runs - base);
      const auto results =
          batch.RunBatch(prepared, std::span<const Seed>(&seeds[base], n));
      for (std::size_t l = 0; l < n; ++l) {
        if (base + l < 60) batched_checksum += results[l].cycles;
      }
    }
    batched_s = Seconds(t0);
  }

  // --- memoized leg -----------------------------------------------------
  // Mining and the kernel store live INSIDE the measured window: a real
  // campaign pays both.
  unsigned long long memo_checksum = 0;
  double memo_s = 0.0;
  analysis::AtlasCampaignStats memo_stats;
  {
    const auto t0 = Clock::now();
    const auto samples = analysis::RunFixedTraceCampaignMemoized(
        config, t, runs, kMasterSeed, /*jobs=*/1, &memo_stats);
    memo_s = Seconds(t0);
    for (std::size_t i = 0; i < samples.size() && i < 60; ++i) {
      memo_checksum += samples[i].detail.cycles;
    }
  }
  const double hit_rate = memo_stats.memo.HitRate();

  const double serial_rps = static_cast<double>(runs) / serial_s;
  const double batched_rps = static_cast<double>(runs) / batched_s;
  const double memo_rps = static_cast<double>(runs) / memo_s;
  const double speedup_vs_batched = memo_rps / batched_rps;
  // The frozen batched baseline (TVCA frame(42), BENCH_sim_batch.json) for
  // cross-bench context; this workload is smaller per run, so the figure
  // is a reference, not a gate.
  constexpr double kFrozenBatchedBaseline = 587.0;

  std::printf("\nserial              : %10.2f runs/sec\n", serial_rps);
  std::printf("batched (baseline)  : %10.2f runs/sec  (%zu lanes)\n",
              batched_rps, lanes);
  std::printf("memoized (--atlas)  : %10.2f runs/sec\n", memo_rps);
  std::printf("speedup vs batched  : %.2fx  (acceptance: >= %.1fx at >= %zu "
              "runs)\n",
              speedup_vs_batched, kSpeedupBar, kGateMinRuns);
  std::printf("kernel store        : %.1f%% hit rate  (%llu hits, %llu "
              "misses, %llu bypasses, %llu records fast-forwarded)\n",
              hit_rate * 100.0,
              static_cast<unsigned long long>(memo_stats.memo.hits),
              static_cast<unsigned long long>(memo_stats.memo.misses),
              static_cast<unsigned long long>(memo_stats.memo.bypasses),
              static_cast<unsigned long long>(
                  memo_stats.memo.fast_forwarded_records));

  bool failed = false;
  const bool bits_ok = serial_checksum == batched_checksum &&
                       batched_checksum == memo_checksum;
  std::printf("bit-identity        : serial %llu batched %llu memoized %llu"
              "  %s\n",
              serial_checksum, batched_checksum, memo_checksum,
              bits_ok ? "OK" : "MISMATCH");
  failed = failed || !bits_ok;
  if (pack_ratio < 3.0) {
    std::printf("FAIL: pack ratio %.2fx below the 3x acceptance bar\n",
                pack_ratio);
    failed = true;
  }
  if (runs >= kGateMinRuns) {
    if (hit_rate < kHitRateBar) {
      std::printf("FAIL: hit rate %.1f%% below the %.0f%% acceptance bar\n",
                  hit_rate * 100.0, kHitRateBar * 100.0);
      failed = true;
    }
    if (speedup_vs_batched < kSpeedupBar) {
      std::printf("FAIL: memoized throughput below the %.1fx acceptance "
                  "bar\n",
                  kSpeedupBar);
      failed = true;
    }
  }

  bench::JsonReport report("trace_atlas", runs);
  report.Set("trace_records", static_cast<double>(t.records.size()));
  report.Set("kernel_count", static_cast<double>(mined.kernels.size()));
  report.Set("legacy_bytes", static_cast<double>(legacy_bytes.size()));
  report.Set("atlas_bytes", static_cast<double>(atlas_bytes.size()));
  report.Set("pack_ratio", pack_ratio);
  report.Set("cold_load_legacy_ms", legacy_load_s * 1e3);
  report.Set("cold_load_atlas_ms", atlas_load_s * 1e3);
  report.Set("cold_load_speedup", cold_load_speedup);
  report.Set("serial_runs_per_sec", serial_rps);
  report.Set("batched_runs_per_sec", batched_rps);
  report.Set("memoized_runs_per_sec", memo_rps);
  report.Set("speedup_vs_batched", speedup_vs_batched);
  report.Set("baseline_runs_per_sec", kFrozenBatchedBaseline);
  report.Set("hit_rate", hit_rate);
  report.Set("checksum_match", bits_ok ? 1.0 : 0.0);
  if (report.Write().empty()) failed = true;

  return failed ? 1 : 0;
}
