// T1 — the paper's in-text i.i.d. numbers (Section III):
//   "We test independence with the Ljung-Box test ... For identical
//    distribution we use the two-sample Kolmogorov-Smirnov test ... We
//    obtained 0.83 and 0.45 ... both tests are passed, enabling MBPTA."
//
// Regenerates: Ljung-Box and KS p-values for the 3,000-run TVCA sample on
// the RAND platform — pooled and per path — plus the same tests on the DET
// platform (where the protocol's guarantees do not rest on randomization).

#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "mbpta/iid_gate.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace spta;
  bench::Banner("tab1_iid_tests", "Section III i.i.d. test values",
                "Ljung-Box p=0.83, two-sample KS p=0.45; both >= 0.05, "
                "i.i.d. not rejected on the randomized platform");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(3000);

  TextTable table({"platform", "sample", "runs", "Ljung-Box p", "KS p",
                   "i.i.d. @5%"});

  const auto analyze = [&](const char* platform_name,
                           const sim::PlatformConfig& pc) {
    sim::Platform platform(pc, 7);
    const auto samples = analysis::RunTvcaCampaign(platform, app, cfg);
    const auto times = analysis::ExtractTimes(samples);
    const auto gate = mbpta::RunIidGate(times);
    table.AddRow({platform_name, "pooled", std::to_string(times.size()),
                  FormatF(gate.independence.p_value, 3),
                  FormatF(gate.identical_distribution.p_value, 3),
                  gate.Passed() ? "pass" : "REJECTED"});
    // Per-path gates (the form the per-path analysis actually relies on).
    std::map<std::uint32_t, std::vector<double>> by_path;
    for (const auto& s : samples) by_path[s.path_id].push_back(s.cycles);
    for (const auto& [path, path_times] : by_path) {
      if (path_times.size() < 100) continue;
      const auto g = mbpta::RunIidGate(path_times);
      table.AddRow({platform_name, "path " + std::to_string(path),
                    std::to_string(path_times.size()),
                    FormatF(g.independence.p_value, 3),
                    FormatF(g.identical_distribution.p_value, 3),
                    g.Passed() ? "pass" : "REJECTED"});
    }
  };

  analyze("RAND", sim::RandLeon3Config());
  analyze("DET", sim::DetLeon3Config());

  table.Render(std::cout);
  std::printf(
      "\npaper reference: RAND pooled Ljung-Box 0.83, KS 0.45 (both pass).\n"
      "expected shape: the pooled RAND rows pass at 5%%; with many per-path "
      "rows, ~5%% false rejections are statistically expected (the MBPTA "
      "process re-collects when a gate trips).\n");
  return 0;
}
