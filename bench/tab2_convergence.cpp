// T2 — the paper's convergence statement (Section III):
//   "We execute TVCA 3,000 times to collect execution times which
//    satisfied the convergence criteria defined in the MBPTA process."
//
// Regenerates: the pWCET estimate at the reference cutoff as a function of
// the number of runs (prefixes of the collection order), the relative
// delta between consecutive re-estimates, and the run count at which the
// stabilization criterion is met.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "mbpta/convergence.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace spta;
  bench::Banner("tab2_convergence", "Section III convergence criterion",
                "3,000 runs satisfy the MBPTA convergence criterion: the "
                "pWCET estimate stabilizes well before the full sample");

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = bench::RunCount(3000);
  sim::Platform platform(sim::RandLeon3Config(), 7);
  const auto samples = analysis::RunTvcaCampaign(platform, app, cfg);
  const auto times = analysis::ExtractTimes(samples);

  mbpta::ConvergenceOptions opts;
  opts.initial_runs = 250;
  opts.step_runs = 250;
  opts.reference_prob = 1e-12;
  opts.rel_tolerance = 0.02;
  const auto conv = mbpta::CheckConvergence(times, opts);

  TextTable table({"runs", "pWCET@1e-12", "rel delta", "status"});
  for (const auto& pt : conv.points) {
    table.AddRow({std::to_string(pt.runs),
                  pt.usable ? FormatF(pt.pwcet, 0) : "-",
                  FormatF(pt.rel_delta, 4),
                  conv.converged && pt.runs == conv.runs_required
                      ? "<- criterion met"
                      : ""});
  }
  table.Render(std::cout);
  std::printf("\nconverged: %s at %zu runs (tolerance %.0f%%, %d stable "
              "steps)\n",
              conv.converged ? "yes" : "NO", conv.runs_required,
              100.0 * opts.rel_tolerance, opts.stable_steps_required);

  std::printf("\n# series: convergence as CSV\n");
  CsvWriter csv(std::cout);
  csv.Header({"runs", "pwcet_1e12", "rel_delta"});
  for (const auto& pt : conv.points) {
    csv.BeginRow();
    csv.Field(static_cast<std::uint64_t>(pt.runs));
    csv.Field(pt.pwcet, 10);
    csv.Field(pt.rel_delta, 4);
    csv.EndRow();
  }
  std::printf("\npaper shape: criterion satisfied within 3,000 runs.\n");
  return conv.converged ? 0 : 1;
}
