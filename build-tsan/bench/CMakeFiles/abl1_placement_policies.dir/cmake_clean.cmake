file(REMOVE_RECURSE
  "CMakeFiles/abl1_placement_policies.dir/abl1_placement_policies.cpp.o"
  "CMakeFiles/abl1_placement_policies.dir/abl1_placement_policies.cpp.o.d"
  "abl1_placement_policies"
  "abl1_placement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_placement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
