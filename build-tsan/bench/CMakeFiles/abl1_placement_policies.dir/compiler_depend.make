# Empty compiler generated dependencies file for abl1_placement_policies.
# This may be replaced when dependencies are built.
