file(REMOVE_RECURSE
  "CMakeFiles/abl2_replacement_policies.dir/abl2_replacement_policies.cpp.o"
  "CMakeFiles/abl2_replacement_policies.dir/abl2_replacement_policies.cpp.o.d"
  "abl2_replacement_policies"
  "abl2_replacement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_replacement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
