# Empty dependencies file for abl2_replacement_policies.
# This may be replaced when dependencies are built.
