file(REMOVE_RECURSE
  "CMakeFiles/abl3_fpu_jitter.dir/abl3_fpu_jitter.cpp.o"
  "CMakeFiles/abl3_fpu_jitter.dir/abl3_fpu_jitter.cpp.o.d"
  "abl3_fpu_jitter"
  "abl3_fpu_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_fpu_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
