# Empty dependencies file for abl3_fpu_jitter.
# This may be replaced when dependencies are built.
