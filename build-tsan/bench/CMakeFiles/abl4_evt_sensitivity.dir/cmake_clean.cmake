file(REMOVE_RECURSE
  "CMakeFiles/abl4_evt_sensitivity.dir/abl4_evt_sensitivity.cpp.o"
  "CMakeFiles/abl4_evt_sensitivity.dir/abl4_evt_sensitivity.cpp.o.d"
  "abl4_evt_sensitivity"
  "abl4_evt_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_evt_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
