# Empty dependencies file for abl4_evt_sensitivity.
# This may be replaced when dependencies are built.
