file(REMOVE_RECURSE
  "CMakeFiles/abl5_contention.dir/abl5_contention.cpp.o"
  "CMakeFiles/abl5_contention.dir/abl5_contention.cpp.o.d"
  "abl5_contention"
  "abl5_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
