# Empty dependencies file for abl5_contention.
# This may be replaced when dependencies are built.
