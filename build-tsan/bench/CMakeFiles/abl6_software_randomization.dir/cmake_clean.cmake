file(REMOVE_RECURSE
  "CMakeFiles/abl6_software_randomization.dir/abl6_software_randomization.cpp.o"
  "CMakeFiles/abl6_software_randomization.dir/abl6_software_randomization.cpp.o.d"
  "abl6_software_randomization"
  "abl6_software_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_software_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
