# Empty dependencies file for abl6_software_randomization.
# This may be replaced when dependencies are built.
