file(REMOVE_RECURSE
  "CMakeFiles/abl7_kernel_suite.dir/abl7_kernel_suite.cpp.o"
  "CMakeFiles/abl7_kernel_suite.dir/abl7_kernel_suite.cpp.o.d"
  "abl7_kernel_suite"
  "abl7_kernel_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_kernel_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
