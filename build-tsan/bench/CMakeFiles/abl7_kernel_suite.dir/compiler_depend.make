# Empty compiler generated dependencies file for abl7_kernel_suite.
# This may be replaced when dependencies are built.
