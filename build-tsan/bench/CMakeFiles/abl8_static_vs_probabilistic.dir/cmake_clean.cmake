file(REMOVE_RECURSE
  "CMakeFiles/abl8_static_vs_probabilistic.dir/abl8_static_vs_probabilistic.cpp.o"
  "CMakeFiles/abl8_static_vs_probabilistic.dir/abl8_static_vs_probabilistic.cpp.o.d"
  "abl8_static_vs_probabilistic"
  "abl8_static_vs_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl8_static_vs_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
