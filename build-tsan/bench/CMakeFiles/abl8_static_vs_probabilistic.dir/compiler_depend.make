# Empty compiler generated dependencies file for abl8_static_vs_probabilistic.
# This may be replaced when dependencies are built.
