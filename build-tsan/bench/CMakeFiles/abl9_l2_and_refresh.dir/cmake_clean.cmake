file(REMOVE_RECURSE
  "CMakeFiles/abl9_l2_and_refresh.dir/abl9_l2_and_refresh.cpp.o"
  "CMakeFiles/abl9_l2_and_refresh.dir/abl9_l2_and_refresh.cpp.o.d"
  "abl9_l2_and_refresh"
  "abl9_l2_and_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl9_l2_and_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
