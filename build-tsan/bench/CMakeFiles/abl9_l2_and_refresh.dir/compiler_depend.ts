# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abl9_l2_and_refresh.
