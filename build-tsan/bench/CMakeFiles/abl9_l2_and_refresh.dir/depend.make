# Empty dependencies file for abl9_l2_and_refresh.
# This may be replaced when dependencies are built.
