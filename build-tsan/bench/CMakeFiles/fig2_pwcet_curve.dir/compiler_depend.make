# Empty compiler generated dependencies file for fig2_pwcet_curve.
# This may be replaced when dependencies are built.
