file(REMOVE_RECURSE
  "CMakeFiles/fig3_mbpta_vs_det.dir/fig3_mbpta_vs_det.cpp.o"
  "CMakeFiles/fig3_mbpta_vs_det.dir/fig3_mbpta_vs_det.cpp.o.d"
  "fig3_mbpta_vs_det"
  "fig3_mbpta_vs_det.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mbpta_vs_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
