# Empty compiler generated dependencies file for fig3_mbpta_vs_det.
# This may be replaced when dependencies are built.
