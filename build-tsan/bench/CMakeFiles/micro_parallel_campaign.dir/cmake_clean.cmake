file(REMOVE_RECURSE
  "CMakeFiles/micro_parallel_campaign.dir/micro_parallel_campaign.cpp.o"
  "CMakeFiles/micro_parallel_campaign.dir/micro_parallel_campaign.cpp.o.d"
  "micro_parallel_campaign"
  "micro_parallel_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parallel_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
