# Empty compiler generated dependencies file for micro_parallel_campaign.
# This may be replaced when dependencies are built.
