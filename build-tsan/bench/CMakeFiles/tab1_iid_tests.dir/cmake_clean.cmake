file(REMOVE_RECURSE
  "CMakeFiles/tab1_iid_tests.dir/tab1_iid_tests.cpp.o"
  "CMakeFiles/tab1_iid_tests.dir/tab1_iid_tests.cpp.o.d"
  "tab1_iid_tests"
  "tab1_iid_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_iid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
