# Empty compiler generated dependencies file for tab1_iid_tests.
# This may be replaced when dependencies are built.
