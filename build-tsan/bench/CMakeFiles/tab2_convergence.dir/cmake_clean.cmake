file(REMOVE_RECURSE
  "CMakeFiles/tab2_convergence.dir/tab2_convergence.cpp.o"
  "CMakeFiles/tab2_convergence.dir/tab2_convergence.cpp.o.d"
  "tab2_convergence"
  "tab2_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
