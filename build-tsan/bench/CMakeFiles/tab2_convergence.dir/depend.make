# Empty dependencies file for tab2_convergence.
# This may be replaced when dependencies are built.
