file(REMOVE_RECURSE
  "CMakeFiles/cache_randomization_demo.dir/cache_randomization_demo.cpp.o"
  "CMakeFiles/cache_randomization_demo.dir/cache_randomization_demo.cpp.o.d"
  "cache_randomization_demo"
  "cache_randomization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_randomization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
