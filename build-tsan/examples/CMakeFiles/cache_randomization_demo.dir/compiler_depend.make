# Empty compiler generated dependencies file for cache_randomization_demo.
# This may be replaced when dependencies are built.
