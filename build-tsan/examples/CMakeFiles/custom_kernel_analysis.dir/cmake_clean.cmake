file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_analysis.dir/custom_kernel_analysis.cpp.o"
  "CMakeFiles/custom_kernel_analysis.dir/custom_kernel_analysis.cpp.o.d"
  "custom_kernel_analysis"
  "custom_kernel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
