# Empty dependencies file for custom_kernel_analysis.
# This may be replaced when dependencies are built.
