file(REMOVE_RECURSE
  "CMakeFiles/external_measurements.dir/external_measurements.cpp.o"
  "CMakeFiles/external_measurements.dir/external_measurements.cpp.o.d"
  "external_measurements"
  "external_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
