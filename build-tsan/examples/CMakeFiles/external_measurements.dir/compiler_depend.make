# Empty compiler generated dependencies file for external_measurements.
# This may be replaced when dependencies are built.
