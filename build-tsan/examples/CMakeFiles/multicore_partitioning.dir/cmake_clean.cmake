file(REMOVE_RECURSE
  "CMakeFiles/multicore_partitioning.dir/multicore_partitioning.cpp.o"
  "CMakeFiles/multicore_partitioning.dir/multicore_partitioning.cpp.o.d"
  "multicore_partitioning"
  "multicore_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
