# Empty dependencies file for multicore_partitioning.
# This may be replaced when dependencies are built.
