file(REMOVE_RECURSE
  "CMakeFiles/schedulability_budgeting.dir/schedulability_budgeting.cpp.o"
  "CMakeFiles/schedulability_budgeting.dir/schedulability_budgeting.cpp.o.d"
  "schedulability_budgeting"
  "schedulability_budgeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability_budgeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
