# Empty dependencies file for schedulability_budgeting.
# This may be replaced when dependencies are built.
