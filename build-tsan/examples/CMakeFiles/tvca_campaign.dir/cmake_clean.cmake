file(REMOVE_RECURSE
  "CMakeFiles/tvca_campaign.dir/tvca_campaign.cpp.o"
  "CMakeFiles/tvca_campaign.dir/tvca_campaign.cpp.o.d"
  "tvca_campaign"
  "tvca_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvca_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
