# Empty dependencies file for tvca_campaign.
# This may be replaced when dependencies are built.
