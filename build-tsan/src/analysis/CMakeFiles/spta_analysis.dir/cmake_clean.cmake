file(REMOVE_RECURSE
  "CMakeFiles/spta_analysis.dir/campaign.cpp.o"
  "CMakeFiles/spta_analysis.dir/campaign.cpp.o.d"
  "CMakeFiles/spta_analysis.dir/parallel_campaign.cpp.o"
  "CMakeFiles/spta_analysis.dir/parallel_campaign.cpp.o.d"
  "CMakeFiles/spta_analysis.dir/reuse.cpp.o"
  "CMakeFiles/spta_analysis.dir/reuse.cpp.o.d"
  "CMakeFiles/spta_analysis.dir/sample_io.cpp.o"
  "CMakeFiles/spta_analysis.dir/sample_io.cpp.o.d"
  "libspta_analysis.a"
  "libspta_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
