file(REMOVE_RECURSE
  "libspta_analysis.a"
)
