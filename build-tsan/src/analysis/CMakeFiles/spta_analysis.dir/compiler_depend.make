# Empty compiler generated dependencies file for spta_analysis.
# This may be replaced when dependencies are built.
