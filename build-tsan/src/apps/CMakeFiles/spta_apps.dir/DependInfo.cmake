
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/spta_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/spta_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/payload.cpp" "src/apps/CMakeFiles/spta_apps.dir/payload.cpp.o" "gcc" "src/apps/CMakeFiles/spta_apps.dir/payload.cpp.o.d"
  "/root/repo/src/apps/rta.cpp" "src/apps/CMakeFiles/spta_apps.dir/rta.cpp.o" "gcc" "src/apps/CMakeFiles/spta_apps.dir/rta.cpp.o.d"
  "/root/repo/src/apps/scheduler.cpp" "src/apps/CMakeFiles/spta_apps.dir/scheduler.cpp.o" "gcc" "src/apps/CMakeFiles/spta_apps.dir/scheduler.cpp.o.d"
  "/root/repo/src/apps/tvca.cpp" "src/apps/CMakeFiles/spta_apps.dir/tvca.cpp.o" "gcc" "src/apps/CMakeFiles/spta_apps.dir/tvca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/spta_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/spta_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
