file(REMOVE_RECURSE
  "CMakeFiles/spta_apps.dir/kernels.cpp.o"
  "CMakeFiles/spta_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/spta_apps.dir/payload.cpp.o"
  "CMakeFiles/spta_apps.dir/payload.cpp.o.d"
  "CMakeFiles/spta_apps.dir/rta.cpp.o"
  "CMakeFiles/spta_apps.dir/rta.cpp.o.d"
  "CMakeFiles/spta_apps.dir/scheduler.cpp.o"
  "CMakeFiles/spta_apps.dir/scheduler.cpp.o.d"
  "CMakeFiles/spta_apps.dir/tvca.cpp.o"
  "CMakeFiles/spta_apps.dir/tvca.cpp.o.d"
  "libspta_apps.a"
  "libspta_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
