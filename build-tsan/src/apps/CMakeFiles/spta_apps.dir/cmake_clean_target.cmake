file(REMOVE_RECURSE
  "libspta_apps.a"
)
