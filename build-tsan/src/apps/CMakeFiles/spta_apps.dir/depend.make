# Empty dependencies file for spta_apps.
# This may be replaced when dependencies are built.
