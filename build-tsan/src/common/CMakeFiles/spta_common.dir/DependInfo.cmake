
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/assert.cpp" "src/common/CMakeFiles/spta_common.dir/assert.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/assert.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/spta_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/flags.cpp" "src/common/CMakeFiles/spta_common.dir/flags.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/flags.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/common/CMakeFiles/spta_common.dir/hash.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/hash.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/spta_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/common/CMakeFiles/spta_common.dir/table.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/spta_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/common/CMakeFiles/spta_common.dir/types.cpp.o" "gcc" "src/common/CMakeFiles/spta_common.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
