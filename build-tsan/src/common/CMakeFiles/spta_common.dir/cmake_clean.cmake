file(REMOVE_RECURSE
  "CMakeFiles/spta_common.dir/assert.cpp.o"
  "CMakeFiles/spta_common.dir/assert.cpp.o.d"
  "CMakeFiles/spta_common.dir/csv.cpp.o"
  "CMakeFiles/spta_common.dir/csv.cpp.o.d"
  "CMakeFiles/spta_common.dir/flags.cpp.o"
  "CMakeFiles/spta_common.dir/flags.cpp.o.d"
  "CMakeFiles/spta_common.dir/hash.cpp.o"
  "CMakeFiles/spta_common.dir/hash.cpp.o.d"
  "CMakeFiles/spta_common.dir/histogram.cpp.o"
  "CMakeFiles/spta_common.dir/histogram.cpp.o.d"
  "CMakeFiles/spta_common.dir/table.cpp.o"
  "CMakeFiles/spta_common.dir/table.cpp.o.d"
  "CMakeFiles/spta_common.dir/thread_pool.cpp.o"
  "CMakeFiles/spta_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/spta_common.dir/types.cpp.o"
  "CMakeFiles/spta_common.dir/types.cpp.o.d"
  "libspta_common.a"
  "libspta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
