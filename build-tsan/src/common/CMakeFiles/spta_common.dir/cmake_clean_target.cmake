file(REMOVE_RECURSE
  "libspta_common.a"
)
