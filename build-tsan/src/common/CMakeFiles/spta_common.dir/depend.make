# Empty dependencies file for spta_common.
# This may be replaced when dependencies are built.
