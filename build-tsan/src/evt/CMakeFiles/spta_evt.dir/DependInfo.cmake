
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evt/ad_test.cpp" "src/evt/CMakeFiles/spta_evt.dir/ad_test.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/ad_test.cpp.o.d"
  "/root/repo/src/evt/block_maxima.cpp" "src/evt/CMakeFiles/spta_evt.dir/block_maxima.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/block_maxima.cpp.o.d"
  "/root/repo/src/evt/crps.cpp" "src/evt/CMakeFiles/spta_evt.dir/crps.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/crps.cpp.o.d"
  "/root/repo/src/evt/gev.cpp" "src/evt/CMakeFiles/spta_evt.dir/gev.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/gev.cpp.o.d"
  "/root/repo/src/evt/gof.cpp" "src/evt/CMakeFiles/spta_evt.dir/gof.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/gof.cpp.o.d"
  "/root/repo/src/evt/gpd.cpp" "src/evt/CMakeFiles/spta_evt.dir/gpd.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/gpd.cpp.o.d"
  "/root/repo/src/evt/gumbel.cpp" "src/evt/CMakeFiles/spta_evt.dir/gumbel.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/gumbel.cpp.o.d"
  "/root/repo/src/evt/mean_excess.cpp" "src/evt/CMakeFiles/spta_evt.dir/mean_excess.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/mean_excess.cpp.o.d"
  "/root/repo/src/evt/pwcet.cpp" "src/evt/CMakeFiles/spta_evt.dir/pwcet.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/pwcet.cpp.o.d"
  "/root/repo/src/evt/threshold.cpp" "src/evt/CMakeFiles/spta_evt.dir/threshold.cpp.o" "gcc" "src/evt/CMakeFiles/spta_evt.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/spta_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
