file(REMOVE_RECURSE
  "CMakeFiles/spta_evt.dir/ad_test.cpp.o"
  "CMakeFiles/spta_evt.dir/ad_test.cpp.o.d"
  "CMakeFiles/spta_evt.dir/block_maxima.cpp.o"
  "CMakeFiles/spta_evt.dir/block_maxima.cpp.o.d"
  "CMakeFiles/spta_evt.dir/crps.cpp.o"
  "CMakeFiles/spta_evt.dir/crps.cpp.o.d"
  "CMakeFiles/spta_evt.dir/gev.cpp.o"
  "CMakeFiles/spta_evt.dir/gev.cpp.o.d"
  "CMakeFiles/spta_evt.dir/gof.cpp.o"
  "CMakeFiles/spta_evt.dir/gof.cpp.o.d"
  "CMakeFiles/spta_evt.dir/gpd.cpp.o"
  "CMakeFiles/spta_evt.dir/gpd.cpp.o.d"
  "CMakeFiles/spta_evt.dir/gumbel.cpp.o"
  "CMakeFiles/spta_evt.dir/gumbel.cpp.o.d"
  "CMakeFiles/spta_evt.dir/mean_excess.cpp.o"
  "CMakeFiles/spta_evt.dir/mean_excess.cpp.o.d"
  "CMakeFiles/spta_evt.dir/pwcet.cpp.o"
  "CMakeFiles/spta_evt.dir/pwcet.cpp.o.d"
  "CMakeFiles/spta_evt.dir/threshold.cpp.o"
  "CMakeFiles/spta_evt.dir/threshold.cpp.o.d"
  "libspta_evt.a"
  "libspta_evt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_evt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
