file(REMOVE_RECURSE
  "libspta_evt.a"
)
