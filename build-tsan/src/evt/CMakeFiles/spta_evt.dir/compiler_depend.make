# Empty compiler generated dependencies file for spta_evt.
# This may be replaced when dependencies are built.
