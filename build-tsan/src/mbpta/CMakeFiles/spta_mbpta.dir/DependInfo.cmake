
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbpta/backtest.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/backtest.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/backtest.cpp.o.d"
  "/root/repo/src/mbpta/confidence.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/confidence.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/confidence.cpp.o.d"
  "/root/repo/src/mbpta/convergence.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/convergence.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/convergence.cpp.o.d"
  "/root/repo/src/mbpta/iid_gate.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/iid_gate.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/iid_gate.cpp.o.d"
  "/root/repo/src/mbpta/mbpta.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/mbpta.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/mbpta.cpp.o.d"
  "/root/repo/src/mbpta/path_coverage.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/path_coverage.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/path_coverage.cpp.o.d"
  "/root/repo/src/mbpta/per_path.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/per_path.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/per_path.cpp.o.d"
  "/root/repo/src/mbpta/report.cpp" "src/mbpta/CMakeFiles/spta_mbpta.dir/report.cpp.o" "gcc" "src/mbpta/CMakeFiles/spta_mbpta.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/spta_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/evt/CMakeFiles/spta_evt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
