file(REMOVE_RECURSE
  "CMakeFiles/spta_mbpta.dir/backtest.cpp.o"
  "CMakeFiles/spta_mbpta.dir/backtest.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/confidence.cpp.o"
  "CMakeFiles/spta_mbpta.dir/confidence.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/convergence.cpp.o"
  "CMakeFiles/spta_mbpta.dir/convergence.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/iid_gate.cpp.o"
  "CMakeFiles/spta_mbpta.dir/iid_gate.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/mbpta.cpp.o"
  "CMakeFiles/spta_mbpta.dir/mbpta.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/path_coverage.cpp.o"
  "CMakeFiles/spta_mbpta.dir/path_coverage.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/per_path.cpp.o"
  "CMakeFiles/spta_mbpta.dir/per_path.cpp.o.d"
  "CMakeFiles/spta_mbpta.dir/report.cpp.o"
  "CMakeFiles/spta_mbpta.dir/report.cpp.o.d"
  "libspta_mbpta.a"
  "libspta_mbpta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_mbpta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
