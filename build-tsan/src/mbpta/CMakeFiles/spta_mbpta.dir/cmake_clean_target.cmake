file(REMOVE_RECURSE
  "libspta_mbpta.a"
)
