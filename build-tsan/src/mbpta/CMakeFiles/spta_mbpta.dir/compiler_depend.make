# Empty compiler generated dependencies file for spta_mbpta.
# This may be replaced when dependencies are built.
