
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbta/mbta.cpp" "src/mbta/CMakeFiles/spta_mbta.dir/mbta.cpp.o" "gcc" "src/mbta/CMakeFiles/spta_mbta.dir/mbta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/spta_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
