file(REMOVE_RECURSE
  "CMakeFiles/spta_mbta.dir/mbta.cpp.o"
  "CMakeFiles/spta_mbta.dir/mbta.cpp.o.d"
  "libspta_mbta.a"
  "libspta_mbta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_mbta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
