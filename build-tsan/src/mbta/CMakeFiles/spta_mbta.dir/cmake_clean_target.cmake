file(REMOVE_RECURSE
  "libspta_mbta.a"
)
