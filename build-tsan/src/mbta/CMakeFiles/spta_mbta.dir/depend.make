# Empty dependencies file for spta_mbta.
# This may be replaced when dependencies are built.
