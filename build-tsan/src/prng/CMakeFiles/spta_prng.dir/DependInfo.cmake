
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prng/hw_prng.cpp" "src/prng/CMakeFiles/spta_prng.dir/hw_prng.cpp.o" "gcc" "src/prng/CMakeFiles/spta_prng.dir/hw_prng.cpp.o.d"
  "/root/repo/src/prng/lfsr.cpp" "src/prng/CMakeFiles/spta_prng.dir/lfsr.cpp.o" "gcc" "src/prng/CMakeFiles/spta_prng.dir/lfsr.cpp.o.d"
  "/root/repo/src/prng/self_test.cpp" "src/prng/CMakeFiles/spta_prng.dir/self_test.cpp.o" "gcc" "src/prng/CMakeFiles/spta_prng.dir/self_test.cpp.o.d"
  "/root/repo/src/prng/xoshiro.cpp" "src/prng/CMakeFiles/spta_prng.dir/xoshiro.cpp.o" "gcc" "src/prng/CMakeFiles/spta_prng.dir/xoshiro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
