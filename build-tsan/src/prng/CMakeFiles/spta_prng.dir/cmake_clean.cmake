file(REMOVE_RECURSE
  "CMakeFiles/spta_prng.dir/hw_prng.cpp.o"
  "CMakeFiles/spta_prng.dir/hw_prng.cpp.o.d"
  "CMakeFiles/spta_prng.dir/lfsr.cpp.o"
  "CMakeFiles/spta_prng.dir/lfsr.cpp.o.d"
  "CMakeFiles/spta_prng.dir/self_test.cpp.o"
  "CMakeFiles/spta_prng.dir/self_test.cpp.o.d"
  "CMakeFiles/spta_prng.dir/xoshiro.cpp.o"
  "CMakeFiles/spta_prng.dir/xoshiro.cpp.o.d"
  "libspta_prng.a"
  "libspta_prng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
