file(REMOVE_RECURSE
  "libspta_prng.a"
)
