# Empty compiler generated dependencies file for spta_prng.
# This may be replaced when dependencies are built.
