# CMake generated Testfile for 
# Source directory: /root/repo/src/prng
# Build directory: /root/repo/build-tsan/src/prng
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
