
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus.cpp" "src/sim/CMakeFiles/spta_sim.dir/bus.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/bus.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/spta_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/spta_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/spta_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/spta_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/fpu.cpp" "src/sim/CMakeFiles/spta_sim.dir/fpu.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/fpu.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/spta_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/spta_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/store_buffer.cpp" "src/sim/CMakeFiles/spta_sim.dir/store_buffer.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/store_buffer.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/spta_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/spta_sim.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/spta_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
