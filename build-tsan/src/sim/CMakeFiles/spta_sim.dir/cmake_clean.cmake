file(REMOVE_RECURSE
  "CMakeFiles/spta_sim.dir/bus.cpp.o"
  "CMakeFiles/spta_sim.dir/bus.cpp.o.d"
  "CMakeFiles/spta_sim.dir/cache.cpp.o"
  "CMakeFiles/spta_sim.dir/cache.cpp.o.d"
  "CMakeFiles/spta_sim.dir/config.cpp.o"
  "CMakeFiles/spta_sim.dir/config.cpp.o.d"
  "CMakeFiles/spta_sim.dir/core.cpp.o"
  "CMakeFiles/spta_sim.dir/core.cpp.o.d"
  "CMakeFiles/spta_sim.dir/dram.cpp.o"
  "CMakeFiles/spta_sim.dir/dram.cpp.o.d"
  "CMakeFiles/spta_sim.dir/fpu.cpp.o"
  "CMakeFiles/spta_sim.dir/fpu.cpp.o.d"
  "CMakeFiles/spta_sim.dir/memory_system.cpp.o"
  "CMakeFiles/spta_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/spta_sim.dir/platform.cpp.o"
  "CMakeFiles/spta_sim.dir/platform.cpp.o.d"
  "CMakeFiles/spta_sim.dir/store_buffer.cpp.o"
  "CMakeFiles/spta_sim.dir/store_buffer.cpp.o.d"
  "CMakeFiles/spta_sim.dir/tlb.cpp.o"
  "CMakeFiles/spta_sim.dir/tlb.cpp.o.d"
  "libspta_sim.a"
  "libspta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
