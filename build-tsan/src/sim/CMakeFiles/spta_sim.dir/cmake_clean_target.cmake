file(REMOVE_RECURSE
  "libspta_sim.a"
)
