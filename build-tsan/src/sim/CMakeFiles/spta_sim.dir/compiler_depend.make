# Empty compiler generated dependencies file for spta_sim.
# This may be replaced when dependencies are built.
