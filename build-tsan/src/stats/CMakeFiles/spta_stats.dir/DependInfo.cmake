
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorr.cpp" "src/stats/CMakeFiles/spta_stats.dir/autocorr.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/autocorr.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/spta_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/spta_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/spta_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/spta_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/ljung_box.cpp" "src/stats/CMakeFiles/spta_stats.dir/ljung_box.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/ljung_box.cpp.o.d"
  "/root/repo/src/stats/optimize.cpp" "src/stats/CMakeFiles/spta_stats.dir/optimize.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/optimize.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/spta_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/spta_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
