file(REMOVE_RECURSE
  "CMakeFiles/spta_stats.dir/autocorr.cpp.o"
  "CMakeFiles/spta_stats.dir/autocorr.cpp.o.d"
  "CMakeFiles/spta_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/spta_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/spta_stats.dir/descriptive.cpp.o"
  "CMakeFiles/spta_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/spta_stats.dir/ecdf.cpp.o"
  "CMakeFiles/spta_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/spta_stats.dir/ks_test.cpp.o"
  "CMakeFiles/spta_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/spta_stats.dir/ljung_box.cpp.o"
  "CMakeFiles/spta_stats.dir/ljung_box.cpp.o.d"
  "CMakeFiles/spta_stats.dir/optimize.cpp.o"
  "CMakeFiles/spta_stats.dir/optimize.cpp.o.d"
  "CMakeFiles/spta_stats.dir/special.cpp.o"
  "CMakeFiles/spta_stats.dir/special.cpp.o.d"
  "libspta_stats.a"
  "libspta_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
