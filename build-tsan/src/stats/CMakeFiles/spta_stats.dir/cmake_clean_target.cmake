file(REMOVE_RECURSE
  "libspta_stats.a"
)
