# Empty dependencies file for spta_stats.
# This may be replaced when dependencies are built.
