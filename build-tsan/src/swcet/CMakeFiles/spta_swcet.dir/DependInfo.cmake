
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swcet/cfg.cpp" "src/swcet/CMakeFiles/spta_swcet.dir/cfg.cpp.o" "gcc" "src/swcet/CMakeFiles/spta_swcet.dir/cfg.cpp.o.d"
  "/root/repo/src/swcet/cost_model.cpp" "src/swcet/CMakeFiles/spta_swcet.dir/cost_model.cpp.o" "gcc" "src/swcet/CMakeFiles/spta_swcet.dir/cost_model.cpp.o.d"
  "/root/repo/src/swcet/hybrid.cpp" "src/swcet/CMakeFiles/spta_swcet.dir/hybrid.cpp.o" "gcc" "src/swcet/CMakeFiles/spta_swcet.dir/hybrid.cpp.o.d"
  "/root/repo/src/swcet/static_bound.cpp" "src/swcet/CMakeFiles/spta_swcet.dir/static_bound.cpp.o" "gcc" "src/swcet/CMakeFiles/spta_swcet.dir/static_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/spta_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/spta_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
