file(REMOVE_RECURSE
  "CMakeFiles/spta_swcet.dir/cfg.cpp.o"
  "CMakeFiles/spta_swcet.dir/cfg.cpp.o.d"
  "CMakeFiles/spta_swcet.dir/cost_model.cpp.o"
  "CMakeFiles/spta_swcet.dir/cost_model.cpp.o.d"
  "CMakeFiles/spta_swcet.dir/hybrid.cpp.o"
  "CMakeFiles/spta_swcet.dir/hybrid.cpp.o.d"
  "CMakeFiles/spta_swcet.dir/static_bound.cpp.o"
  "CMakeFiles/spta_swcet.dir/static_bound.cpp.o.d"
  "libspta_swcet.a"
  "libspta_swcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_swcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
