file(REMOVE_RECURSE
  "libspta_swcet.a"
)
