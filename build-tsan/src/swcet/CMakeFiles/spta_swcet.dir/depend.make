# Empty dependencies file for spta_swcet.
# This may be replaced when dependencies are built.
