
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/disasm.cpp" "src/trace/CMakeFiles/spta_trace.dir/disasm.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/disasm.cpp.o.d"
  "/root/repo/src/trace/interpreter.cpp" "src/trace/CMakeFiles/spta_trace.dir/interpreter.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/interpreter.cpp.o.d"
  "/root/repo/src/trace/program.cpp" "src/trace/CMakeFiles/spta_trace.dir/program.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/program.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/spta_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/spta_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/spta_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/spta_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
