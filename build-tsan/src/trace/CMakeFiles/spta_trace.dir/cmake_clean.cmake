file(REMOVE_RECURSE
  "CMakeFiles/spta_trace.dir/disasm.cpp.o"
  "CMakeFiles/spta_trace.dir/disasm.cpp.o.d"
  "CMakeFiles/spta_trace.dir/interpreter.cpp.o"
  "CMakeFiles/spta_trace.dir/interpreter.cpp.o.d"
  "CMakeFiles/spta_trace.dir/program.cpp.o"
  "CMakeFiles/spta_trace.dir/program.cpp.o.d"
  "CMakeFiles/spta_trace.dir/record.cpp.o"
  "CMakeFiles/spta_trace.dir/record.cpp.o.d"
  "CMakeFiles/spta_trace.dir/synthetic.cpp.o"
  "CMakeFiles/spta_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/spta_trace.dir/trace_io.cpp.o"
  "CMakeFiles/spta_trace.dir/trace_io.cpp.o.d"
  "libspta_trace.a"
  "libspta_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
