file(REMOVE_RECURSE
  "libspta_trace.a"
)
