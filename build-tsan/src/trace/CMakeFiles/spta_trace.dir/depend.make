# Empty dependencies file for spta_trace.
# This may be replaced when dependencies are built.
