file(REMOVE_RECURSE
  "CMakeFiles/backtest_test.dir/backtest_test.cpp.o"
  "CMakeFiles/backtest_test.dir/backtest_test.cpp.o.d"
  "backtest_test"
  "backtest_test.pdb"
  "backtest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
