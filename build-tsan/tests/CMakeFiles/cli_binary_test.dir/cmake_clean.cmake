file(REMOVE_RECURSE
  "CMakeFiles/cli_binary_test.dir/cli_binary_test.cpp.o"
  "CMakeFiles/cli_binary_test.dir/cli_binary_test.cpp.o.d"
  "cli_binary_test"
  "cli_binary_test.pdb"
  "cli_binary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_binary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
