
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/common_test.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/spta_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/spta_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/swcet/CMakeFiles/spta_swcet.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/spta_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mbpta/CMakeFiles/spta_mbpta.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mbta/CMakeFiles/spta_mbta.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/evt/CMakeFiles/spta_evt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/spta_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/spta_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/prng/CMakeFiles/spta_prng.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/spta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
