file(REMOVE_RECURSE
  "CMakeFiles/disasm_ppcc_test.dir/disasm_ppcc_test.cpp.o"
  "CMakeFiles/disasm_ppcc_test.dir/disasm_ppcc_test.cpp.o.d"
  "disasm_ppcc_test"
  "disasm_ppcc_test.pdb"
  "disasm_ppcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disasm_ppcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
