# Empty dependencies file for disasm_ppcc_test.
# This may be replaced when dependencies are built.
