file(REMOVE_RECURSE
  "CMakeFiles/evt_test.dir/evt_test.cpp.o"
  "CMakeFiles/evt_test.dir/evt_test.cpp.o.d"
  "evt_test"
  "evt_test.pdb"
  "evt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
