# Empty compiler generated dependencies file for evt_test.
# This may be replaced when dependencies are built.
