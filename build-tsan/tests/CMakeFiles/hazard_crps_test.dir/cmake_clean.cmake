file(REMOVE_RECURSE
  "CMakeFiles/hazard_crps_test.dir/hazard_crps_test.cpp.o"
  "CMakeFiles/hazard_crps_test.dir/hazard_crps_test.cpp.o.d"
  "hazard_crps_test"
  "hazard_crps_test.pdb"
  "hazard_crps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_crps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
