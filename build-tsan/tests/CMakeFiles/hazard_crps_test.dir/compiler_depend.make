# Empty compiler generated dependencies file for hazard_crps_test.
# This may be replaced when dependencies are built.
