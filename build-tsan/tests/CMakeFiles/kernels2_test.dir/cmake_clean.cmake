file(REMOVE_RECURSE
  "CMakeFiles/kernels2_test.dir/kernels2_test.cpp.o"
  "CMakeFiles/kernels2_test.dir/kernels2_test.cpp.o.d"
  "kernels2_test"
  "kernels2_test.pdb"
  "kernels2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
