# Empty dependencies file for kernels2_test.
# This may be replaced when dependencies are built.
