file(REMOVE_RECURSE
  "CMakeFiles/mbpta_test.dir/mbpta_test.cpp.o"
  "CMakeFiles/mbpta_test.dir/mbpta_test.cpp.o.d"
  "mbpta_test"
  "mbpta_test.pdb"
  "mbpta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbpta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
