# Empty dependencies file for mbpta_test.
# This may be replaced when dependencies are built.
