file(REMOVE_RECURSE
  "CMakeFiles/parallel_campaign_test.dir/parallel_campaign_test.cpp.o"
  "CMakeFiles/parallel_campaign_test.dir/parallel_campaign_test.cpp.o.d"
  "parallel_campaign_test"
  "parallel_campaign_test.pdb"
  "parallel_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
