# Empty dependencies file for parallel_campaign_test.
# This may be replaced when dependencies are built.
