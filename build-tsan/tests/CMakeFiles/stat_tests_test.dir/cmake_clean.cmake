file(REMOVE_RECURSE
  "CMakeFiles/stat_tests_test.dir/stat_tests_test.cpp.o"
  "CMakeFiles/stat_tests_test.dir/stat_tests_test.cpp.o.d"
  "stat_tests_test"
  "stat_tests_test.pdb"
  "stat_tests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
