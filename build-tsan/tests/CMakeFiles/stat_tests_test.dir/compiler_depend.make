# Empty compiler generated dependencies file for stat_tests_test.
# This may be replaced when dependencies are built.
