file(REMOVE_RECURSE
  "CMakeFiles/swcet_test.dir/swcet_test.cpp.o"
  "CMakeFiles/swcet_test.dir/swcet_test.cpp.o.d"
  "swcet_test"
  "swcet_test.pdb"
  "swcet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
