# Empty dependencies file for swcet_test.
# This may be replaced when dependencies are built.
