# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/prng_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/stat_tests_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/evt_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/disasm_ppcc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/golden_regression_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cache_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/apps_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mbpta_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/kernels2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/swcet_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cli_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/hazard_crps_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/backtest_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/timing_property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cli_binary_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_campaign_test[1]_include.cmake")
