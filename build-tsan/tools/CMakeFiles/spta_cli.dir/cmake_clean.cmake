file(REMOVE_RECURSE
  "CMakeFiles/spta_cli.dir/spta_cli.cpp.o"
  "CMakeFiles/spta_cli.dir/spta_cli.cpp.o.d"
  "spta_cli"
  "spta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
