# Empty compiler generated dependencies file for spta_cli.
# This may be replaced when dependencies are built.
