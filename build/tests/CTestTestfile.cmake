# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/prng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/stat_tests_test[1]_include.cmake")
include("/root/repo/build/tests/evt_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_ppcc_test[1]_include.cmake")
include("/root/repo/build/tests/golden_regression_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/mbpta_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/kernels2_test[1]_include.cmake")
include("/root/repo/build/tests/swcet_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/analysis2_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_crps_test[1]_include.cmake")
include("/root/repo/build/tests/backtest_test[1]_include.cmake")
include("/root/repo/build/tests/timing_property_test[1]_include.cmake")
include("/root/repo/build/tests/cli_binary_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_campaign_test[1]_include.cmake")
