// Demonstrates WHY the platform is randomized: on a deterministic cache,
// execution time depends on the memory layout the linker happened to pick,
// and no amount of re-running the same binary reveals other layouts. Random
// placement makes every run sample a new mapping, so the measured
// distribution covers what deterministic runs cannot.
//
// We sweep the link offset of a looping kernel (shifting where its arrays
// land in memory) and compare:
//   * DET: execution time per layout (varies across layouts, constant
//     within a layout),
//   * RAND: execution time distribution (identical regardless of layout).

#include <cstdio>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/kernels.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"
#include "trace/interpreter.hpp"

namespace {

spta::trace::Trace MakeTrace(std::uint64_t link_offset) {
  using namespace spta;
  const trace::Program prog = apps::MakeMatMulProgram(14, link_offset);
  trace::Interpreter interp(prog);
  for (int i = 0; i < 14 * 14; ++i) {
    interp.WriteFp(0, static_cast<std::size_t>(i), 0.25 + 0.01 * (i % 9));
    interp.WriteFp(1, static_cast<std::size_t>(i), 0.75 - 0.02 * (i % 5));
  }
  return interp.Run();
}

}  // namespace

int main() {
  using namespace spta;

  const std::vector<std::uint64_t> offsets = {0,    1024,  4096, 8192,
                                              12288, 16384, 20480, 24576};

  std::printf("%-12s %-14s %-14s %-14s\n", "link offset", "DET cycles",
              "RAND mean", "RAND max");
  double det_min = 1e300;
  double det_max = 0.0;
  for (const auto off : offsets) {
    const trace::Trace t = MakeTrace(off);

    sim::Platform det(sim::DetLeon3Config(), 1);
    const auto det_runs = analysis::RunFixedTraceCampaign(det, t, 5, 99);
    const auto det_times = analysis::ExtractTimes(det_runs);
    // Deterministic platform: all runs of one layout are identical.
    det_min = std::min(det_min, det_times[0]);
    det_max = std::max(det_max, det_times[0]);

    sim::Platform rnd(sim::RandLeon3Config(), 1);
    const auto rnd_runs = analysis::RunFixedTraceCampaign(rnd, t, 200, 99);
    const auto rnd_times = analysis::ExtractTimes(rnd_runs);

    std::printf("%-12llu %-14.0f %-14.0f %-14.0f\n",
                static_cast<unsigned long long>(off), det_times[0],
                stats::Mean(rnd_times), stats::Max(rnd_times));
  }
  std::printf(
      "\nDET spread across layouts: %.1f%% (invisible to re-runs of one "
      "binary)\n",
      100.0 * (det_max - det_min) / det_min);
  std::printf(
      "RAND samples a fresh mapping every run, layout is irrelevant.\n");
  return 0;
}
