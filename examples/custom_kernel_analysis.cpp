// Analyzing your own workload: write a program against the IR, run a
// campaign, inspect the full diagnostics (GEV shape check, chi-square GOF,
// convergence) — the checklist a certification argument would cite.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"
#include "trace/interpreter.hpp"
#include "trace/program.hpp"

namespace {

// A custom workload: table-driven state machine over a message buffer,
// with a FP post-processing stage — written directly against the IR.
spta::trace::Program MakeCustomProgram() {
  using namespace spta::trace;
  ProgramBuilder b("custom-protocol-handler");
  const auto table = b.AddIntArray("transition_table", 512);
  const auto msg = b.AddIntArray("message", 256);
  const auto weights = b.AddFpArray("weights", 64);

  const auto entry = b.NewBlock();
  const auto loop = b.NewBlock();
  const auto body = b.NewBlock();
  const auto post = b.NewBlock();
  const auto post_loop = b.NewBlock();
  const auto post_body = b.NewBlock();
  const auto exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(1, 0);    // i
  b.IConst(4, 256);  // message length
  b.IConst(20, 0);   // state
  b.IConst(11, 511); // table mask
  b.Jump(loop);

  b.SwitchTo(loop);
  b.ICmpLt(6, 1, 4);
  b.BranchIfZero(6, post, body);

  b.SwitchTo(body);
  b.LoadI(7, msg, 1);        // symbol
  b.IShl(8, 20, 1);          // state*2
  b.IAdd(8, 8, 7);           // state*2 + symbol
  b.IAnd(8, 8, 11);          // clamp into the table
  b.LoadI(20, table, 8);     // state = table[...]
  b.IAddImm(1, 1, 1);
  b.Jump(loop);

  b.SwitchTo(post);
  b.IConst(1, 0);
  b.IConst(4, 64);
  b.FConst(1, 0.0);
  b.Jump(post_loop);

  b.SwitchTo(post_loop);
  b.ICmpLt(6, 1, 4);
  b.BranchIfZero(6, exit, post_body);

  b.SwitchTo(post_body);
  b.LoadF(2, weights, 1);
  b.FMul(3, 2, 2);
  b.FAdd(1, 1, 3);
  b.IAddImm(1, 1, 1);
  b.Jump(post_loop);

  b.SwitchTo(exit);
  b.FSqrt(2, 1);  // energy norm
  b.Halt();
  return b.Build();
}

}  // namespace

int main() {
  using namespace spta;

  const trace::Program prog = MakeCustomProgram();
  trace::Interpreter interp(prog);
  for (int i = 0; i < 512; ++i) {
    interp.WriteInt(0, static_cast<std::size_t>(i), (i * 7 + 3) % 256);
  }
  for (int i = 0; i < 256; ++i) {
    interp.WriteInt(1, static_cast<std::size_t>(i), (i * 31) % 2);
  }
  for (int i = 0; i < 64; ++i) {
    interp.WriteFp(2, static_cast<std::size_t>(i), 0.1 * (i % 11));
  }
  const trace::Trace t = interp.Run();
  std::printf("custom kernel: %zu instructions, path signature %llx\n",
              t.instruction_count(),
              static_cast<unsigned long long>(t.path_signature));

  sim::Platform platform(sim::RandLeon3Config(), 5);
  const auto samples =
      analysis::RunFixedTraceCampaign(platform, t, 2000, 1234);
  const auto times = analysis::ExtractTimes(samples);

  const auto result = mbpta::AnalyzeSample(times);
  std::cout << mbpta::RenderReport(result, "custom protocol handler");

  // Convergence: how many runs were actually needed?
  const auto conv = mbpta::CheckConvergence(times);
  std::printf("convergence: %s at %zu runs\n",
              conv.converged ? "reached" : "NOT reached",
              conv.runs_required);
  for (const auto& pt : conv.points) {
    std::printf("  n=%5zu  pWCET@1e-12=%.0f  delta=%.4f\n", pt.runs,
                pt.pwcet, pt.rel_delta);
  }
  return result.usable ? 0 : 1;
}
