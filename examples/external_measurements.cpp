// Analyzing measurements from an EXTERNAL source: the library's MBPTA
// pipeline does not care where execution times come from — a real LEON
// board with a cycle counter, a different simulator, a logic analyzer.
// This example writes a CSV the way a board-side harness would (here the
// bundled simulator plays the board), reads it back through the generic
// importer, and runs the full standalone analysis: i.i.d. gate, fit,
// diagnostics, per-path envelope, path coverage.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "analysis/campaign.hpp"
#include "analysis/sample_io.hpp"
#include "apps/tvca.hpp"
#include "mbpta/confidence.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/path_coverage.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace spta;

  // --- The "board side": dump cycles,path_id CSV. -----------------------
  std::stringstream wire;  // stands in for a file / serial link
  {
    const apps::TvcaApp app;
    analysis::CampaignConfig cfg;
    cfg.runs = 1200;
    sim::Platform board(sim::RandLeon3Config(), 99);
    const auto samples = analysis::RunTvcaCampaign(board, app, cfg);
    analysis::WriteSamplesCsv(wire, samples);
    std::printf("board: streamed %zu measurements\n", samples.size());
  }

  // --- The "analysis side": CSV in, certification evidence out. ----------
  const auto obs = analysis::ReadSamplesCsv(wire);
  std::printf("analysis: loaded %zu observations\n\n", obs.size());

  std::vector<double> times;
  times.reserve(obs.size());
  for (const auto& o : obs) times.push_back(o.time);

  const auto result = mbpta::AnalyzeSample(times);
  std::cout << mbpta::RenderReport(result, "external sample (pooled)");

  if (result.curve) {
    const auto ci = mbpta::BootstrapPwcetCi(times, 1e-12,
                                            result.block_size, 400);
    std::printf("pWCET@1e-12: %.0f cycles, 95%% CI [%.0f, %.0f]\n",
                ci.point, ci.lower, ci.upper);
  }

  const auto coverage = mbpta::EstimatePathCoverage(obs);
  std::printf(
      "\npath coverage: %zu paths seen (%zu singletons); Good-Turing "
      "unseen-path probability %.3g -> %s\n",
      coverage.observed_paths, coverage.singleton_paths,
      coverage.missing_mass,
      coverage.SufficientFor(1e-3)
          ? "path evidence adequate at the 1e-3 level"
          : "collect more runs before quoting per-path numbers");

  mbpta::PerPathOptions ppo;
  ppo.min_samples_per_path = 100;
  const auto per_path = mbpta::AnalyzePerPath(obs, ppo);
  std::cout << mbpta::RenderReport(per_path);
  return result.usable ? 0 : 1;
}
