// Flagship multicore study (the integrated-application setting of the
// avionics case studies the paper cites): the TVCA control tasks keep core
// 0 while payload processing occupies other cores, all sharing one bus and
// DRAM. For each partitioning option we measure the control frame under
// contention, derive its pWCET, and feed the budgets into response-time
// analysis — the full "can we certify this integration?" loop.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/payload.hpp"
#include "apps/rta.hpp"
#include "apps/tvca.hpp"
#include "common/hash.hpp"
#include "common/table.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;

  const apps::TvcaApp app;
  constexpr std::size_t kRuns = 300;

  // Payload application occupying the other cores (telemetry CRC, event
  // triage, calibration, FIR conditioning) in its own address partition.
  const apps::PayloadApp payload_app;
  const trace::Trace payload = payload_app.BuildFrame(77);

  TextTable table({"partitioning", "ctrl mean", "ctrl pWCET@1e-12",
                   "inflation", "RTA verdict @pWCET budgets"});

  double solo_pwcet = 0.0;
  for (int payload_cores = 0; payload_cores <= 3; ++payload_cores) {
    sim::Platform platform(sim::RandLeon3Config(), 3);
    std::vector<double> times;
    times.reserve(kRuns);
    for (std::size_t r = 0; r < kRuns; ++r) {
      const auto frame = app.BuildFrame(DeriveSeed(900, r));
      std::vector<const trace::Trace*> slots(4, nullptr);
      slots[0] = &frame.trace;
      for (int c = 1; c <= payload_cores; ++c) {
        slots[static_cast<std::size_t>(c)] = &payload;
      }
      times.push_back(static_cast<double>(
          platform.RunConcurrent(slots, DeriveSeed(901, r))[0].cycles));
    }
    mbpta::MbptaOptions opts;
    opts.require_iid = false;
    const auto est = mbpta::AnalyzeSample(times, opts);
    const double pwcet =
        est.curve ? est.PwcetAt(1e-12) : 1.5 * stats::Max(times);
    if (payload_cores == 0) solo_pwcet = pwcet;

    // Budget the whole major frame (2M-cycle period) as one RTA task,
    // plus a background housekeeping task.
    const std::vector<apps::PeriodicTaskSpec> rta_tasks = {
        {"tvca-frame", 2'000'000, 2'000'000, 1},
        {"housekeeping", 8'000'000, 8'000'000, 2},
    };
    const std::vector<Cycles> budgets = {
        static_cast<Cycles>(pwcet) + 1, 200'000};
    const auto rta = apps::ResponseTimeAnalysis(rta_tasks, budgets);
    const bool ok = rta[0].schedulable && rta[1].schedulable;

    table.AddRow({
        payload_cores == 0
            ? std::string("control alone")
            : "control + " + std::to_string(payload_cores) + " payload",
        FormatF(stats::Mean(times), 0),
        FormatF(pwcet, 0),
        FormatF(pwcet / solo_pwcet, 2) + "x",
        ok ? "schedulable" : "NOT schedulable",
    });
  }
  table.Render(std::cout);
  std::printf(
      "\nreading: interference inflates the certifiable budget; the RTA "
      "verdict tells the integrator how many payload cores the control "
      "partition tolerates.\n");
  return 0;
}
