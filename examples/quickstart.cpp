// Quickstart: measure a workload on the time-randomized platform and derive
// a pWCET with MBPTA — the library's core loop in ~60 lines.
//
//   1. Build a workload (here: a FIR filter kernel written in the IR).
//   2. Interpret it to get its dynamic trace.
//   3. Run the trace N times on the MBPTA-compliant (RAND) platform, with a
//      fresh randomization seed per run.
//   4. Feed the execution times to the MBPTA pipeline: i.i.d. gate, block
//      maxima, Gumbel fit, pWCET curve.

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "apps/kernels.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/report.hpp"
#include "sim/platform.hpp"
#include "trace/interpreter.hpp"

int main() {
  using namespace spta;

  // 1. A 32-tap, 2048-sample FIR filter kernel. The ~17KB input buffer
  //    exceeds the 16KB DL1, so cache behaviour (and hence timing) depends
  //    on the randomized placement/replacement — the jitter MBPTA models.
  constexpr int kTaps = 32;
  constexpr int kSamples = 2048;
  const trace::Program program = apps::MakeFirProgram(kTaps, kSamples);
  trace::Interpreter interp(program);
  for (int k = 0; k < kTaps; ++k) {
    interp.WriteFp(0, static_cast<std::size_t>(k), 1.0 / kTaps);  // coef
  }
  for (int i = 0; i < kSamples + kTaps; ++i) {
    interp.WriteFp(1, static_cast<std::size_t>(i),
                   0.5 + 0.25 * static_cast<double>(i % 7));  // input
  }

  // 2. Dynamic trace.
  const trace::Trace t = interp.Run();
  std::printf("trace: %zu instructions\n", t.instruction_count());

  // 3. 1000 measurement runs on the RAND platform (new seed per run).
  sim::Platform rand_platform(sim::RandLeon3Config(), /*master_seed=*/1);
  const auto samples =
      analysis::RunFixedTraceCampaign(rand_platform, t, /*runs=*/1000,
                                      /*master_seed=*/2024);
  const auto times = analysis::ExtractTimes(samples);

  // 4. MBPTA.
  const mbpta::MbptaResult result = mbpta::AnalyzeSample(times);
  std::cout << mbpta::RenderReport(result, "FIR kernel on RAND platform");

  if (!result.usable) {
    std::cout << "analysis not usable -- inspect the i.i.d. gate\n";
    return 1;
  }
  std::printf("pWCET at 1e-12 exceedance: %.0f cycles\n",
              result.PwcetAt(1e-12));
  return 0;
}
