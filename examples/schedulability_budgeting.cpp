// From pWCET to schedulability: the downstream use of MBPTA output.
//
// Each TVCA task gets a per-task pWCET at the cutoff probability mandated
// by the applicable standard (here 1e-12 per run); those become the
// execution-time budgets C_i fed to response-time analysis and to a
// discrete-time fixed-priority scheduler simulation, which must agree.

#include <cstdio>

#include "analysis/campaign.hpp"
#include "apps/rta.hpp"
#include "apps/scheduler.hpp"
#include "apps/tvca.hpp"
#include "common/hash.hpp"
#include "mbpta/mbpta.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace spta;

  const apps::TvcaApp app;
  sim::Platform platform(sim::RandLeon3Config(), 11);

  // Per-task pWCET budgets from per-task campaigns.
  std::vector<Cycles> budgets;
  const apps::TvcaTask tasks[] = {apps::TvcaTask::kSensorAcq,
                                  apps::TvcaTask::kActuatorX,
                                  apps::TvcaTask::kActuatorY};
  for (const auto task : tasks) {
    std::vector<double> times;
    times.reserve(1500);
    for (std::size_t r = 0; r < 1500; ++r) {
      const auto t = app.BuildTaskTrace(task, DeriveSeed(42, r));
      const auto res = platform.Run(t, DeriveSeed(43, r));
      times.push_back(static_cast<double>(res.cycles));
    }
    const auto result = mbpta::AnalyzeSample(times);
    const double budget = result.usable
                              ? result.PwcetAt(1e-12)
                              : 1.5 * *std::max_element(times.begin(),
                                                        times.end());
    std::printf("%-12s pWCET@1e-12 = %.0f cycles (iid %s)\n",
                apps::ToString(task), budget,
                result.iid.Passed() ? "pass" : "FAIL");
    budgets.push_back(static_cast<Cycles>(budget) + 1);
  }

  const auto specs = app.TaskSpecs();
  std::printf("\nutilization with pWCET budgets: %.3f\n",
              apps::Utilization(specs, budgets));

  // Analytical response times.
  const auto rta = apps::ResponseTimeAnalysis(specs, budgets);
  for (const auto& r : rta) {
    std::printf("RTA  %-12s R=%llu  %s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.response_time),
                r.schedulable ? "schedulable" : "NOT schedulable");
  }

  // Cross-check with the scheduler simulation over 4 hyperperiods.
  const Cycles horizon = 4 * apps::Hyperperiod(specs);
  const auto sim_result = apps::SimulateFixedPriority(specs, budgets, horizon);
  for (const auto& r : sim_result) {
    std::printf("SIM  %-12s worst response=%llu  misses=%llu\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.worst_response),
                static_cast<unsigned long long>(r.deadline_misses));
  }
  return 0;
}
