// The paper's full space case study, end to end:
//
//   * TVCA (3 periodic tasks under a fixed-priority scheduler) runs on the
//     MBPTA-compliant RAND platform; 3,000 measurement runs with cache
//     flush + new PRNG seed per run.
//   * i.i.d. gate (Ljung-Box + two-sample KS at 5%), per-path MBPTA with
//     the max-across-paths envelope (paper Section III).
//   * Comparison against industrial MBTA (DET platform high watermark
//     + engineering margin).

#include <cstdio>
#include <iostream>

#include "analysis/campaign.hpp"
#include "analysis/parallel_campaign.hpp"
#include "apps/tvca.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"
#include "mbpta/report.hpp"
#include "mbta/mbta.hpp"
#include "sim/platform.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace spta;

  const apps::TvcaApp app;
  analysis::CampaignConfig cfg;
  cfg.runs = 3000;  // the paper's sample size

  // The parallel runner is bit-identical to the serial one for any job
  // count, so using every hardware thread changes nothing but wall clock.
  const std::size_t jobs = analysis::DefaultJobs();
  std::printf("collecting %zu runs on RAND (%zu jobs)...\n", cfg.runs, jobs);
  const auto rand_samples =
      analysis::RunTvcaCampaignParallel(sim::RandLeon3Config(), app, cfg, jobs);
  const auto rand_times = analysis::ExtractTimes(rand_samples);

  std::printf("collecting %zu runs on DET (%zu jobs)...\n", cfg.runs, jobs);
  const auto det_samples =
      analysis::RunTvcaCampaignParallel(sim::DetLeon3Config(), app, cfg, jobs);
  const auto det_times = analysis::ExtractTimes(det_samples);

  // Whole-sample analysis (i.i.d. gate as reported in the paper).
  const auto whole = mbpta::AnalyzeSample(rand_times);
  std::cout << mbpta::RenderReport(whole, "TVCA on RAND (all paths pooled)");

  // Per-path analysis with max-across-paths envelope.
  const auto per_path =
      mbpta::AnalyzePerPath(analysis::ToPathObservations(rand_samples));
  std::cout << mbpta::RenderReport(per_path, "TVCA on RAND (per path)");

  // Industrial MBTA baseline on DET.
  const auto mbta50 = mbta::Estimate(det_times, 0.5);
  std::printf("\nDET avg %.0f | RAND avg %.0f (ratio %.3f)\n",
              stats::Mean(det_times), stats::Mean(rand_times),
              stats::Mean(rand_times) / stats::Mean(det_times));
  std::printf("DET HWM %.0f | MBTA(+50%%) %.0f | pWCET@1e-12 %.0f\n",
              mbta50.high_watermark, mbta50.wcet_estimate,
              per_path.EnvelopeAt(1e-12));
  return 0;
}
