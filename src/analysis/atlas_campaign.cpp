#include "analysis/atlas_campaign.hpp"

#include <memory>
#include <vector>

#include "atlas/state_digest.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/atlas_counters.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace spta::analysis {
namespace {

/// Per-worker arenas: one reusable Platform and one KernelStore per pool
/// worker. The platform arena is bit-identity-safe for the same reason as
/// in parallel_campaign.cpp (full per-run reset protocol); the kernel
/// store is safe because entry-state digests embed per-run seeds, so a
/// stale entry can never match a different run's state — sharing the
/// store across runs only adds hits, never wrong ones.
class AtlasArenas {
 public:
  AtlasArenas(const sim::PlatformConfig& config, std::size_t workers)
      : config_(config),
        platforms_(workers),
        stores_(workers),
        memo_stats_(workers) {}

  sim::Platform& Platform() {
    const std::size_t w = WorkerIndex();
    if (platforms_[w] == nullptr) {
      platforms_[w] = std::make_unique<sim::Platform>(config_, 0);
    }
    return *platforms_[w];
  }

  atlas::KernelStore& Store() {
    const std::size_t w = WorkerIndex();
    if (stores_[w] == nullptr) {
      stores_[w] = std::make_unique<atlas::KernelStore>();
    }
    return *stores_[w];
  }

  atlas::MemoRunStats& MemoStats() { return memo_stats_[WorkerIndex()]; }

  /// Folds every worker's counters into `out` (and the obs globals).
  /// Call after the pool has quiesced.
  void Aggregate(AtlasCampaignStats* out) {
    AtlasCampaignStats total;
    for (std::size_t w = 0; w < memo_stats_.size(); ++w) {
      total.memo.Accumulate(memo_stats_[w]);
      if (stores_[w] != nullptr) {
        const atlas::KernelStore::Stats s = stores_[w]->stats();
        total.store_inserts += s.inserts;
        total.store_clears += s.clears;
        total.store_collisions += s.collisions;
      }
    }
    obs::AddAtlasMemoCounters(total.memo.hits, total.memo.misses,
                              total.memo.bypasses, total.store_inserts,
                              total.memo.fast_forwarded_records);
    if (out != nullptr) *out = total;
  }

 private:
  std::size_t WorkerIndex() const {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < platforms_.size(),
                   "campaign body must run on a pool worker");
    return w;
  }

  const sim::PlatformConfig& config_;
  std::vector<std::unique_ptr<sim::Platform>> platforms_;
  std::vector<std::unique_ptr<atlas::KernelStore>> stores_;
  std::vector<atlas::MemoRunStats> memo_stats_;
};

}  // namespace

std::vector<RunSample> RunFixedTraceCampaignMemoized(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs,
    AtlasCampaignStats* stats) {
  SPTA_REQUIRE(runs >= 1);
  std::vector<RunSample> samples(runs);
  const atlas::Segmentation segmentation = atlas::MineKernels(t);
  const DualHash config_digest = atlas::ConfigDigest(platform_config);

  ThreadPool pool(jobs);
  AtlasArenas arenas(platform_config, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "fixed_trace_campaign_memoized", "runs",
                    runs);
  ParallelFor(pool, runs, [&](std::size_t r) {
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    RunSample s;
    s.detail = atlas::RunMemoized(arenas.Platform(), t, segmentation,
                                  FixedTraceRunSeed(master_seed, r),
                                  config_digest, &arenas.Store(),
                                  &arenas.MemoStats());
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    samples[r] = s;
  });
  arenas.Aggregate(stats);
  return samples;
}

std::vector<RunSample> RunTvcaCampaignMemoized(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs,
    AtlasCampaignStats* stats) {
  SPTA_REQUIRE(config.runs >= 1);
  std::vector<RunSample> samples(config.runs);
  const DualHash config_digest = atlas::ConfigDigest(platform_config);

  // Fixed scenario suite: build AND mine each distinct frame once.
  std::vector<apps::TvcaFrame> suite;
  std::vector<atlas::Segmentation> suite_segments;
  if (config.distinct_scenarios > 0) {
    suite.reserve(config.distinct_scenarios);
    suite_segments.reserve(config.distinct_scenarios);
    for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
      suite_segments.push_back(atlas::MineKernels(suite.back().trace));
    }
  }

  ThreadPool pool(jobs);
  AtlasArenas arenas(platform_config, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "tvca_campaign_memoized", "runs",
                    config.runs);
  ParallelFor(pool, config.runs, [&](std::size_t r) {
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    const Seed run_seed = TvcaRunSeed(config, r);
    RunSample s;
    if (!suite.empty()) {
      const std::size_t scenario = r % config.distinct_scenarios;
      s.detail = atlas::RunMemoized(
          arenas.Platform(), suite[scenario].trace,
          suite_segments[scenario], run_seed, config_digest,
          &arenas.Store(), &arenas.MemoStats());
      s.path_id = suite[scenario].path_id;
    } else {
      const apps::TvcaFrame frame =
          app.BuildFrame(TvcaScenarioSeed(config, r));
      const atlas::Segmentation segmentation =
          atlas::MineKernels(frame.trace);
      s.detail = atlas::RunMemoized(arenas.Platform(), frame.trace,
                                    segmentation, run_seed, config_digest,
                                    &arenas.Store(), &arenas.MemoStats());
      s.path_id = frame.path_id;
    }
    s.cycles = static_cast<double>(s.detail.cycles);
    samples[r] = s;
  });
  arenas.Aggregate(stats);
  return samples;
}

bool RunFixedTraceCampaignMemoizedCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error, AtlasCampaignStats* stats) {
  SPTA_REQUIRE(runs >= 1);
  CheckpointHeader header;
  header.campaign_seed = master_seed;
  header.runs = runs;
  header.distinct_scenarios = 0;
  header.workload_digest = FixedTraceWorkloadDigest(t);

  const atlas::Segmentation segmentation = atlas::MineKernels(t);
  const DualHash config_digest = atlas::ConfigDigest(platform_config);
  ThreadPool pool(jobs);
  AtlasArenas arenas(platform_config, pool.size());
  auto measure = [&](std::size_t r) {
    RunSample s;
    s.detail = atlas::RunMemoized(arenas.Platform(), t, segmentation,
                                  FixedTraceRunSeed(master_seed, r),
                                  config_digest, &arenas.Store(),
                                  &arenas.MemoStats());
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    return s;
  };
  const bool ok =
      RunCheckpointedCampaign(header, pool, options, measure, out, error);
  arenas.Aggregate(stats);
  return ok;
}

bool RunTvcaCampaignMemoizedCheckpointed(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error, AtlasCampaignStats* stats) {
  SPTA_REQUIRE(config.runs >= 1);
  CheckpointHeader header;
  header.campaign_seed = config.master_seed;
  header.runs = config.runs;
  header.distinct_scenarios = config.distinct_scenarios;
  header.workload_digest = TvcaWorkloadDigest();

  const DualHash config_digest = atlas::ConfigDigest(platform_config);
  std::vector<apps::TvcaFrame> suite;
  std::vector<atlas::Segmentation> suite_segments;
  if (config.distinct_scenarios > 0) {
    suite.reserve(config.distinct_scenarios);
    suite_segments.reserve(config.distinct_scenarios);
    for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
      suite_segments.push_back(atlas::MineKernels(suite.back().trace));
    }
  }

  ThreadPool pool(jobs);
  AtlasArenas arenas(platform_config, pool.size());
  auto measure = [&](std::size_t r) {
    const Seed run_seed = TvcaRunSeed(config, r);
    RunSample s;
    if (!suite.empty()) {
      const std::size_t scenario = r % config.distinct_scenarios;
      s.detail = atlas::RunMemoized(
          arenas.Platform(), suite[scenario].trace,
          suite_segments[scenario], run_seed, config_digest,
          &arenas.Store(), &arenas.MemoStats());
      s.path_id = suite[scenario].path_id;
    } else {
      const apps::TvcaFrame frame =
          app.BuildFrame(TvcaScenarioSeed(config, r));
      const atlas::Segmentation segmentation =
          atlas::MineKernels(frame.trace);
      s.detail = atlas::RunMemoized(arenas.Platform(), frame.trace,
                                    segmentation, run_seed, config_digest,
                                    &arenas.Store(), &arenas.MemoStats());
      s.path_id = frame.path_id;
    }
    s.cycles = static_cast<double>(s.detail.cycles);
    return s;
  };
  const bool ok =
      RunCheckpointedCampaign(header, pool, options, measure, out, error);
  arenas.Aggregate(stats);
  return ok;
}

}  // namespace spta::analysis
