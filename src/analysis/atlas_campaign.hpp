// Atlas-memoized measurement campaigns.
//
// These runners are drop-in replacements for the serial / parallel /
// checkpointed campaign runners that execute each run through the atlas
// memoized path (atlas/memo_runner.hpp): the workload trace is mined into
// a segmented prologue . kernel x N . epilogue view once per distinct
// trace, and every worker carries a content-addressed KernelStore that
// fast-forwards kernel iterations whose entry micro-architectural state
// it has already timed.
//
// Determinism contract: identical samples — bit for bit, including every
// RunResult counter — to the corresponding non-memoized runner for any
// job count, because (a) the seed-derivation contract makes each run a
// pure function of (config, run index) and (b) RunMemoized is
// bit-identical to Platform::Run per run. The checkpointed variants write
// and resume the exact same journal format as the legacy runners, so a
// campaign can even be started legacy and resumed memoized (or vice
// versa) without perturbing a single sample.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/checkpoint.hpp"
#include "apps/tvca.hpp"
#include "atlas/memo_runner.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta::analysis {

/// Aggregated memoization behavior of one campaign (all workers).
struct AtlasCampaignStats {
  atlas::MemoRunStats memo;
  std::uint64_t store_inserts = 0;
  std::uint64_t store_clears = 0;
  std::uint64_t store_collisions = 0;
};

/// Memoized equivalent of RunFixedTraceCampaignParallel (jobs = 0 picks
/// DefaultJobs(); 1 runs serially). `stats` (optional) receives the
/// aggregated hit/miss/bypass counters; the totals are also folded into
/// the process-wide obs atlas counters.
std::vector<RunSample> RunFixedTraceCampaignMemoized(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs = 1,
    AtlasCampaignStats* stats = nullptr);

/// Memoized equivalent of RunTvcaCampaignParallel. Frames of a fixed
/// scenario suite are built and mined once up front; fresh-input
/// campaigns mine per run (memoization then only pays within a run).
std::vector<RunSample> RunTvcaCampaignMemoized(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs = 1,
    AtlasCampaignStats* stats = nullptr);

/// Checkpointed variants: journal format, header identity and sample
/// values all match the legacy checkpointed runners exactly.
bool RunFixedTraceCampaignMemoizedCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error, AtlasCampaignStats* stats = nullptr);

bool RunTvcaCampaignMemoizedCheckpointed(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error, AtlasCampaignStats* stats = nullptr);

}  // namespace spta::analysis
