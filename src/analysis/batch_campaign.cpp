#include "analysis/batch_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "analysis/parallel_campaign.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "sim/batch/batch_platform.hpp"
#include "sim/batch/prepared_trace.hpp"

namespace spta::analysis {
namespace {

std::size_t ClampLanes(std::size_t lanes) {
  if (lanes == 0) lanes = kDefaultBatchLanes;
  return std::min(lanes, sim::batch::BatchPlatform::kMaxLanes);
}

/// One reusable BatchPlatform per pool worker (the batched analogue of the
/// parallel runner's PlatformArenas; RunBatch performs the full per-run
/// reset protocol per lane, so arena reuse is bit-identical to fresh
/// construction).
class BatchArenas {
 public:
  BatchArenas(const sim::PlatformConfig& config, std::size_t lanes,
              std::size_t workers)
      : config_(config), lanes_(lanes), arenas_(workers) {}

  sim::batch::BatchPlatform& ForCurrentWorker() {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < arenas_.size(),
                   "campaign body must run on a pool worker");
    auto& arena = arenas_[w];
    if (arena == nullptr) {
      arena = std::make_unique<sim::batch::BatchPlatform>(config_, lanes_);
    }
    return *arena;
  }

 private:
  const sim::PlatformConfig& config_;
  std::size_t lanes_;
  std::vector<std::unique_ptr<sim::batch::BatchPlatform>> arenas_;
};

/// A batch work unit: up to `lanes` runs sharing one prepared trace.
struct Chunk {
  const sim::batch::PreparedTrace* prepared = nullptr;
  std::uint32_t path_id = 0;
  std::vector<std::size_t> runs;  ///< Absolute run indices, ascending.
};

/// Chunks the not-yet-done runs of a fixed-trace campaign.
std::vector<Chunk> BuildFixedChunks(const sim::batch::PreparedTrace& prepared,
                                    std::uint32_t path_id, std::size_t runs,
                                    std::size_t lanes,
                                    const std::vector<char>* have) {
  std::vector<Chunk> chunks;
  Chunk current{&prepared, path_id, {}};
  for (std::size_t r = 0; r < runs; ++r) {
    if (have != nullptr && (*have)[r]) continue;
    current.runs.push_back(r);
    if (current.runs.size() == lanes) {
      chunks.push_back(std::move(current));
      current = Chunk{&prepared, path_id, {}};
    }
  }
  if (!current.runs.empty()) chunks.push_back(std::move(current));
  return chunks;
}

/// Chunks the not-yet-done runs of a fixed-suite TVCA campaign, grouped by
/// scenario (runs r with equal r % distinct_scenarios share a frame).
std::vector<Chunk> BuildTvcaChunks(
    const CampaignConfig& config,
    const std::vector<apps::TvcaFrame>& suite,
    const std::vector<sim::batch::PreparedTrace>& prepared_suite,
    std::size_t lanes, const std::vector<char>* have) {
  std::vector<Chunk> chunks;
  for (std::size_t s = 0; s < config.distinct_scenarios; ++s) {
    Chunk current{&prepared_suite[s], suite[s].path_id, {}};
    for (std::size_t r = s; r < config.runs;
         r += config.distinct_scenarios) {
      if (have != nullptr && (*have)[r]) continue;
      current.runs.push_back(r);
      if (current.runs.size() == lanes) {
        chunks.push_back(std::move(current));
        current = Chunk{&prepared_suite[s], suite[s].path_id, {}};
      }
    }
    if (!current.runs.empty()) chunks.push_back(std::move(current));
  }
  return chunks;
}

RunSample ToSample(const Chunk& chunk, sim::RunResult detail) {
  RunSample s;
  s.detail = detail;
  s.cycles = static_cast<double>(detail.cycles);
  s.path_id = chunk.path_id;
  return s;
}

/// Executes `chunks` on the pool; `emit(run_index, sample)` is called for
/// every completed run (concurrently, distinct indices). `keep_going`
/// lets the checkpointed runner cut measurement short after an abort.
void ExecuteChunks(ThreadPool& pool, BatchArenas& arenas,
                   const std::vector<Chunk>& chunks,
                   const std::function<Seed(std::size_t)>& seed_of,
                   const std::function<bool()>& keep_going,
                   const std::function<void(std::size_t, RunSample)>& emit) {
  ParallelFor(pool, chunks.size(), [&](std::size_t c) {
    if (!keep_going()) return;
    const Chunk& chunk = chunks[c];
    SPTA_OBS_SPAN_ARG("campaign", "run_batch", "lanes", chunk.runs.size());
    std::vector<Seed> seeds;
    seeds.reserve(chunk.runs.size());
    for (const std::size_t r : chunk.runs) seeds.push_back(seed_of(r));
    auto results =
        arenas.ForCurrentWorker().RunBatch(*chunk.prepared, seeds);
    for (std::size_t i = 0; i < chunk.runs.size(); ++i) {
      emit(chunk.runs[i], ToSample(chunk, results[i]));
    }
  });
}

constexpr auto kAlwaysGo = []() { return true; };

/// Journaled execution shared by both batched checkpointed runners: the
/// resume/restore and append disciplines are the serial skeleton's; only
/// the measurement fan-out (chunks instead of single runs) differs.
bool RunChunkedCheckpointed(
    const sim::PlatformConfig& platform_config, std::size_t lanes,
    ThreadPool& pool, const CheckpointHeader& header,
    const CheckpointOptions& options,
    const std::function<std::vector<Chunk>(const std::vector<char>&)>&
        build_chunks,
    const std::function<Seed(std::size_t)>& seed_of,
    CheckpointedCampaignResult* out, std::string* error) {
  SPTA_REQUIRE(!options.journal_path.empty());
  *out = CheckpointedCampaignResult{};
  out->samples.resize(header.runs);
  std::vector<char> have(header.runs, 0);

  CheckpointJournal journal;
  if (options.resume) {
    CheckpointLoad load;
    if (!LoadCheckpoint(options.journal_path, &load, error)) return false;
    if (load.header.campaign_seed != header.campaign_seed ||
        load.header.runs != header.runs ||
        load.header.distinct_scenarios != header.distinct_scenarios ||
        load.header.workload_digest != header.workload_digest) {
      if (error != nullptr) {
        *error = options.journal_path +
                 ": journal belongs to a different campaign (seed/runs/"
                 "scenarios/workload mismatch); refusing to resume";
      }
      return false;
    }
    for (std::size_t r = 0; r < header.runs; ++r) {
      if (load.samples[r].has_value()) {
        out->samples[r] = *load.samples[r];
        have[r] = 1;
      }
    }
    out->resumed_runs = load.completed;
    out->torn_lines = load.torn_lines;
    if (!journal.OpenExisting(options.journal_path, options.fsync_interval,
                              error)) {
      return false;
    }
  } else {
    if (!journal.OpenNew(options.journal_path, header,
                         options.fsync_interval, error)) {
      return false;
    }
  }

  const std::vector<Chunk> chunks = build_chunks(have);
  BatchArenas arenas(platform_config, lanes, pool.size());

  // Appends are serialized under a mutex; the abort hook fires under the
  // same mutex, so the journal holds EXACTLY abort_after_appends new
  // records when it triggers — even when the abort lands mid-batch (the
  // rest of that batch's lanes are simply not appended).
  std::mutex journal_mutex;
  std::atomic<bool> stop{false};
  std::size_t appended = 0;
  bool append_failed = false;
  std::string append_error;

  ExecuteChunks(
      pool, arenas, chunks, seed_of,
      [&]() { return !stop.load(std::memory_order_relaxed); },
      [&](std::size_t r, RunSample s) {
        std::lock_guard<std::mutex> lock(journal_mutex);
        if (stop.load(std::memory_order_relaxed) || append_failed) return;
        if (options.abort_after_appends != 0 &&
            appended >= options.abort_after_appends) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (!journal.Append(r, s, &append_error)) {
          append_failed = true;
          return;
        }
        ++appended;
        out->samples[r] = s;
        have[r] = 1;
      });

  if (append_failed) {
    if (error != nullptr) *error = append_error;
    return false;
  }
  if (!journal.Close(error)) return false;
  out->completed =
      std::all_of(have.begin(), have.end(), [](char h) { return h != 0; });
  return true;
}

}  // namespace

std::vector<RunSample> RunFixedTraceCampaignBatched(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t lanes,
    std::size_t jobs) {
  SPTA_REQUIRE(runs >= 1);
  lanes = ClampLanes(lanes);
  const sim::batch::PreparedTrace prepared =
      sim::batch::PrepareTrace(t, platform_config);
  const auto chunks = BuildFixedChunks(
      prepared, static_cast<std::uint32_t>(t.path_signature), runs, lanes,
      nullptr);
  std::vector<RunSample> samples(runs);
  ThreadPool pool(jobs);
  BatchArenas arenas(platform_config, lanes, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "fixed_trace_campaign_batched", "runs",
                    runs);
  ExecuteChunks(
      pool, arenas, chunks,
      [&](std::size_t r) { return FixedTraceRunSeed(master_seed, r); },
      kAlwaysGo,
      [&](std::size_t r, RunSample s) { samples[r] = std::move(s); });
  return samples;
}

std::vector<RunSample> RunTvcaCampaignBatched(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t lanes, std::size_t jobs) {
  SPTA_REQUIRE(config.runs >= 1);
  if (config.distinct_scenarios == 0) {
    // Fresh inputs: every run's trace is distinct, so lockstep batching
    // has nothing to share. Thread-level parallelism still applies.
    return RunTvcaCampaignParallel(platform_config, app, config, jobs);
  }
  lanes = ClampLanes(lanes);
  std::vector<apps::TvcaFrame> suite;
  std::vector<sim::batch::PreparedTrace> prepared_suite;
  suite.reserve(config.distinct_scenarios);
  prepared_suite.reserve(config.distinct_scenarios);
  for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
    suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
    prepared_suite.push_back(
        sim::batch::PrepareTrace(suite.back().trace, platform_config));
  }
  const auto chunks =
      BuildTvcaChunks(config, suite, prepared_suite, lanes, nullptr);
  std::vector<RunSample> samples(config.runs);
  ThreadPool pool(jobs);
  BatchArenas arenas(platform_config, lanes, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "tvca_campaign_batched", "runs",
                    config.runs);
  ExecuteChunks(
      pool, arenas, chunks,
      [&](std::size_t r) { return TvcaRunSeed(config, r); }, kAlwaysGo,
      [&](std::size_t r, RunSample s) { samples[r] = std::move(s); });
  return samples;
}

bool RunFixedTraceCampaignBatchedCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t lanes,
    std::size_t jobs, const CheckpointOptions& options,
    CheckpointedCampaignResult* out, std::string* error) {
  SPTA_REQUIRE(runs >= 1);
  lanes = ClampLanes(lanes);
  CheckpointHeader header;
  header.campaign_seed = master_seed;
  header.runs = runs;
  header.distinct_scenarios = 0;
  header.workload_digest = FixedTraceWorkloadDigest(t);

  const sim::batch::PreparedTrace prepared =
      sim::batch::PrepareTrace(t, platform_config);
  ThreadPool pool(jobs);
  return RunChunkedCheckpointed(
      platform_config, lanes, pool, header, options,
      [&](const std::vector<char>& have) {
        return BuildFixedChunks(
            prepared, static_cast<std::uint32_t>(t.path_signature), runs,
            lanes, &have);
      },
      [&](std::size_t r) { return FixedTraceRunSeed(master_seed, r); }, out,
      error);
}

bool RunTvcaCampaignBatchedCheckpointed(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t lanes, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error) {
  SPTA_REQUIRE(config.runs >= 1);
  if (config.distinct_scenarios == 0) {
    // Fresh inputs: delegate to the serial checkpointed runner (same
    // journal format; batching has nothing to share).
    return RunTvcaCampaignCheckpointed(platform_config, app, config, jobs,
                                       options, out, error);
  }
  lanes = ClampLanes(lanes);
  CheckpointHeader header;
  header.campaign_seed = config.master_seed;
  header.runs = config.runs;
  header.distinct_scenarios = config.distinct_scenarios;
  header.workload_digest = TvcaWorkloadDigest();

  std::vector<apps::TvcaFrame> suite;
  std::vector<sim::batch::PreparedTrace> prepared_suite;
  suite.reserve(config.distinct_scenarios);
  prepared_suite.reserve(config.distinct_scenarios);
  for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
    suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
    prepared_suite.push_back(
        sim::batch::PrepareTrace(suite.back().trace, platform_config));
  }
  ThreadPool pool(jobs);
  return RunChunkedCheckpointed(
      platform_config, lanes, pool, header, options,
      [&](const std::vector<char>& have) {
        return BuildTvcaChunks(config, suite, prepared_suite, lanes, &have);
      },
      [&](std::size_t r) { return TvcaRunSeed(config, r); }, out, error);
}

}  // namespace spta::analysis
