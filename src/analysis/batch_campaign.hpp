// Batched measurement campaigns over the lockstep multi-seed kernel.
//
// These runners drive sim::batch::BatchPlatform: runs that share a trace
// are grouped into batches of up to `lanes` seeds and simulated in one
// lockstep pass, multiplying the per-trace preprocessing and the cache-hot
// event stream across seeds. Batching COMPOSES with thread parallelism —
// the batch is the work unit a pool worker claims — and with the
// checkpoint/resume journal (batched checkpointed campaigns write the same
// journal format and header as the serial runners, so a journal started
// serially can be finished batched and vice versa).
//
// Determinism contract (inherited from campaign.hpp's seed derivation and
// BatchPlatform's lane bit-identity): the sample vector is BIT-IDENTICAL
// to the serial runner's for any lane count, job count, batch boundary
// (ragged tails included) and interruption pattern.
//
// TVCA batching note: with a fixed scenario suite (distinct_scenarios > 0)
// the runs of one scenario share a frame trace and batch within that
// group. A fresh-input campaign (distinct_scenarios == 0) has one distinct
// trace per run — nothing to batch — so RunTvcaCampaignBatched delegates
// to RunTvcaCampaignParallel, preserving sample equality.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/campaign.hpp"
#include "analysis/checkpoint.hpp"
#include "apps/tvca.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta::analysis {

/// Default lane count of the batched runners (two AVX2 scan groups).
inline constexpr std::size_t kDefaultBatchLanes = 8;

/// Batched equivalent of RunFixedTraceCampaign / ...Parallel. `lanes` is
/// clamped to [1, BatchPlatform::kMaxLanes]; `jobs` threads each own one
/// reusable batch kernel (0 = DefaultJobs()).
std::vector<RunSample> RunFixedTraceCampaignBatched(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed,
    std::size_t lanes = kDefaultBatchLanes, std::size_t jobs = 1);

/// Batched equivalent of RunTvcaCampaign / ...Parallel (see the TVCA
/// batching note above).
std::vector<RunSample> RunTvcaCampaignBatched(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t lanes = kDefaultBatchLanes,
    std::size_t jobs = 1);

/// Batched + journaled fixed-trace campaign. Journal format and header are
/// identical to RunFixedTraceCampaignCheckpointed's — resumable across
/// serial/batched runner switches. Only missing runs are re-executed,
/// re-grouped into fresh batches.
bool RunFixedTraceCampaignBatchedCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t lanes,
    std::size_t jobs, const CheckpointOptions& options,
    CheckpointedCampaignResult* out, std::string* error);

/// Batched + journaled TVCA campaign (same serial-interop guarantee).
bool RunTvcaCampaignBatchedCheckpointed(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t lanes, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error);

}  // namespace spta::analysis
