#include "analysis/campaign.hpp"

#include <unordered_map>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace spta::analysis {

Seed TvcaScenarioSeed(const CampaignConfig& config, std::size_t run_index) {
  const std::uint64_t scenario_index =
      config.distinct_scenarios == 0 ? run_index
                                     : run_index % config.distinct_scenarios;
  return DeriveSeed(config.master_seed, scenario_index);
}

Seed TvcaRunSeed(const CampaignConfig& config, std::size_t run_index) {
  return DeriveSeed(DeriveSeed(config.master_seed, "run"), run_index);
}

Seed FixedTraceRunSeed(std::uint64_t master_seed, std::size_t run_index) {
  return DeriveSeed(master_seed, run_index);
}

std::vector<RunSample> RunTvcaCampaign(sim::Platform& platform,
                                       const apps::TvcaApp& app,
                                       const CampaignConfig& config) {
  SPTA_REQUIRE(config.runs >= 1);
  SPTA_OBS_SPAN_ARG("campaign", "tvca_campaign", "runs", config.runs);
  std::vector<RunSample> samples;
  samples.reserve(config.runs);

  // Frame cache: building a frame trace (interpretation) is more expensive
  // than simulating it, and campaigns with a fixed test-vector suite reuse
  // scenarios many times.
  std::unordered_map<std::uint64_t, apps::TvcaFrame> frame_cache;

  for (std::size_t r = 0; r < config.runs; ++r) {
    const std::uint64_t scenario_seed = TvcaScenarioSeed(config, r);
    auto it = frame_cache.find(scenario_seed);
    if (it == frame_cache.end()) {
      it = frame_cache.emplace(scenario_seed, app.BuildFrame(scenario_seed))
               .first;
    }
    const apps::TvcaFrame& frame = it->second;

    const Seed run_seed = TvcaRunSeed(config, r);
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    RunSample s;
    s.detail = platform.Run(frame.trace, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = frame.path_id;
    samples.push_back(s);
    // Unbounded caching is fine for the fixed-suite case; for fresh-input
    // campaigns every scenario is distinct, so drop it again to bound
    // memory.
    if (config.distinct_scenarios == 0) frame_cache.erase(it);
  }
  return samples;
}

std::vector<RunSample> RunFixedTraceCampaign(sim::Platform& platform,
                                             const trace::Trace& t,
                                             std::size_t runs,
                                             std::uint64_t master_seed) {
  SPTA_REQUIRE(runs >= 1);
  SPTA_OBS_SPAN_ARG("campaign", "fixed_trace_campaign", "runs", runs);
  std::vector<RunSample> samples;
  samples.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    RunSample s;
    s.detail = platform.Run(t, FixedTraceRunSeed(master_seed, r));
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    samples.push_back(s);
  }
  return samples;
}

std::vector<double> ExtractTimes(std::span<const RunSample> samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.cycles);
  return out;
}

std::vector<mbpta::PathObservation> ToPathObservations(
    std::span<const RunSample> samples) {
  std::vector<mbpta::PathObservation> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back({s.path_id, s.cycles});
  }
  return out;
}

}  // namespace spta::analysis
