// Measurement campaigns: the glue between workload, platform and analysis.
//
// A campaign reproduces the paper's measurement protocol end to end: for
// each run, draw the workload inputs (a new frame scenario), reset the
// platform (flush caches/TLBs, reset bus/DRAM — "reset the FPGA, reload
// the executable") and, on the randomized platform, install a fresh PRNG
// seed; then execute and record the end-to-end execution time and the
// application path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/tvca.hpp"
#include "mbpta/per_path.hpp"
#include "sim/platform.hpp"
#include "trace/record.hpp"

namespace spta::analysis {

struct CampaignConfig {
  std::size_t runs = 1000;
  std::uint64_t master_seed = 20170327;  // DATE'17 conference date
  /// When > 0, inputs cycle through this many distinct scenarios (the
  /// analysis-time test-vector suite); 0 means every run draws fresh
  /// inputs (operation-like).
  std::size_t distinct_scenarios = 0;
};

/// One measurement.
struct RunSample {
  double cycles = 0.0;
  std::uint32_t path_id = 0;
  sim::RunResult detail;
};

/// Seed-derivation contract shared by the serial and parallel runners: the
/// inputs (scenario) seed and the platform PRNG seed of run `run_index` are
/// pure functions of the campaign configuration, so any runner that honors
/// them — in any execution order — produces the same sample vector.
Seed TvcaScenarioSeed(const CampaignConfig& config, std::size_t run_index);
Seed TvcaRunSeed(const CampaignConfig& config, std::size_t run_index);
/// Per-run platform seed of a fixed-trace campaign.
Seed FixedTraceRunSeed(std::uint64_t master_seed, std::size_t run_index);

/// Executes a TVCA campaign on `platform`. Frame traces are cached per
/// scenario, so re-running the same scenario under a different platform
/// seed costs only simulation time.
std::vector<RunSample> RunTvcaCampaign(sim::Platform& platform,
                                       const apps::TvcaApp& app,
                                       const CampaignConfig& config);

/// Executes `runs` measurements of one fixed trace under per-run reseeding
/// (isolates platform randomization jitter from input jitter).
std::vector<RunSample> RunFixedTraceCampaign(sim::Platform& platform,
                                             const trace::Trace& t,
                                             std::size_t runs,
                                             std::uint64_t master_seed);

/// Extracts the execution-time series (collection order preserved).
std::vector<double> ExtractTimes(std::span<const RunSample> samples);

/// Converts samples to the per-path observation form used by
/// mbpta::AnalyzePerPath.
std::vector<mbpta::PathObservation> ToPathObservations(
    std::span<const RunSample> samples);

}  // namespace spta::analysis
