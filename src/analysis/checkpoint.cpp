#include "analysis/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>

#include "common/assert.hpp"
#include "common/atomic_file.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace spta::analysis {
namespace {

// v2: run lines grew store-buffer high-water + PRNG consumption fields
// (26 sample fields); v1 journals are rejected as alien rather than
// silently re-running every line as torn.
constexpr char kHeaderMagic[] = "spta-ckpt2";
constexpr char kRunTag[] = "run";

/// Flattens one journalled sample to the numeric fields of its line,
/// excluding the run index (prepended by the caller). CacheStats carries
/// derived-only extras, so accesses/misses per structure is the complete
/// state.
std::array<std::uint64_t, 26> SampleFields(const RunSample& s) {
  const sim::RunResult& d = s.detail;
  return {static_cast<std::uint64_t>(s.path_id),
          d.cycles,
          d.instructions,
          d.il1.accesses,
          d.il1.misses,
          d.dl1.accesses,
          d.dl1.misses,
          d.itlb.accesses,
          d.itlb.misses,
          d.dtlb.accesses,
          d.dtlb.misses,
          d.fpu.operations,
          d.fpu.total_cycles,
          d.store_buffer.stores,
          d.store_buffer.full_stalls,
          d.store_buffer.stall_cycles,
          d.bus.transactions,
          d.bus.busy_cycles,
          d.bus.wait_cycles,
          d.dram.accesses,
          d.dram.row_hits,
          d.dram.refresh_stall_cycles,
          d.store_buffer.high_water,
          d.prng.words,
          d.prng.rejections,
          0 /* reserved */};
}

RunSample SampleFromFields(const std::array<std::uint64_t, 26>& f) {
  RunSample s;
  s.path_id = static_cast<std::uint32_t>(f[0]);
  sim::RunResult& d = s.detail;
  d.cycles = f[1];
  d.instructions = f[2];
  d.il1.accesses = f[3];
  d.il1.misses = f[4];
  d.dl1.accesses = f[5];
  d.dl1.misses = f[6];
  d.itlb.accesses = f[7];
  d.itlb.misses = f[8];
  d.dtlb.accesses = f[9];
  d.dtlb.misses = f[10];
  d.fpu.operations = f[11];
  d.fpu.total_cycles = f[12];
  d.store_buffer.stores = f[13];
  d.store_buffer.full_stalls = f[14];
  d.store_buffer.stall_cycles = f[15];
  d.bus.transactions = f[16];
  d.bus.busy_cycles = f[17];
  d.bus.wait_cycles = f[18];
  d.dram.accesses = f[19];
  d.dram.row_hits = f[20];
  d.dram.refresh_stall_cycles = f[21];
  d.store_buffer.high_water = f[22];
  d.prng.words = f[23];
  d.prng.rejections = f[24];
  s.cycles = static_cast<double>(d.cycles);
  return s;
}

std::uint64_t LineChecksum(const char* tag,
                           std::span<const std::uint64_t> fields) {
  std::uint64_t h = DeriveSeed(0x5eed, tag);
  for (const std::uint64_t f : fields) h = HashCombine(h, f);
  return h;
}

std::string Hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

bool SysError(std::string* error, const char* stage, const std::string& path) {
  if (error != nullptr) {
    *error = std::string(stage) + " " + path + ": " + std::strerror(errno);
  }
  return false;
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w = ::write(fd, data.data() + done, data.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

/// Parses one whitespace-separated journal line into (tag, fields, crc).
/// Returns false on any damage (short line, bad number, missing crc).
bool ParseLine(const std::string& line, std::string* tag,
               std::vector<std::uint64_t>* fields, std::uint64_t* crc) {
  std::istringstream is(line);
  if (!(is >> *tag)) return false;
  fields->clear();
  std::string token;
  bool have_crc = false;
  while (is >> token) {
    if (token.rfind("c=", 0) == 0) {
      char* end = nullptr;
      *crc = std::strtoull(token.c_str() + 2, &end, 16);
      if (end == token.c_str() + 2 || *end != '\0') return false;
      have_crc = true;
      // The checksum is the line terminator; trailing junk after it (the
      // start of a torn successor line) damages the record.
      return (is >> token) ? false : true;
    }
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end == token.c_str() || *end != '\0') return false;
    fields->push_back(v);
  }
  return have_crc;
}

std::string FormatHeaderLine(const CheckpointHeader& h) {
  const std::array<std::uint64_t, 4> fields = {
      h.campaign_seed, h.runs, h.distinct_scenarios, h.workload_digest};
  std::ostringstream os;
  os << kHeaderMagic;
  for (const auto f : fields) os << ' ' << f;
  os << " c=" << Hex(LineChecksum(kHeaderMagic, fields)) << '\n';
  return os.str();
}

std::string FormatRunLine(std::uint64_t run_index, const RunSample& s) {
  const auto sample_fields = SampleFields(s);
  std::vector<std::uint64_t> fields;
  fields.reserve(sample_fields.size() + 1);
  fields.push_back(run_index);
  fields.insert(fields.end(), sample_fields.begin(), sample_fields.end());
  std::ostringstream os;
  os << kRunTag;
  for (const auto f : fields) os << ' ' << f;
  os << " c=" << Hex(LineChecksum(kRunTag, fields)) << '\n';
  return os.str();
}

}  // namespace

CheckpointJournal::~CheckpointJournal() {
  std::string ignored;
  Close(&ignored);
}

bool CheckpointJournal::OpenNew(const std::string& path,
                                const CheckpointHeader& header,
                                std::size_t fsync_interval,
                                std::string* error) {
  SPTA_REQUIRE(fsync_interval >= 1);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return SysError(error, "open", path);
  fsync_interval_ = fsync_interval;
  appends_since_sync_ = 0;
  if (!WriteAll(fd_, FormatHeaderLine(header)) || !FsyncFd(fd_)) {
    SysError(error, "write header", path);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  // A brand-new journal file must itself survive a crash.
  FsyncParentDir(path);
  return true;
}

bool CheckpointJournal::OpenExisting(const std::string& path,
                                     std::size_t fsync_interval,
                                     std::string* error) {
  SPTA_REQUIRE(fsync_interval >= 1);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return SysError(error, "open", path);
  fsync_interval_ = fsync_interval;
  appends_since_sync_ = 0;
  return true;
}

bool CheckpointJournal::Append(std::uint64_t run_index, const RunSample& sample,
                               std::string* error) {
  SPTA_REQUIRE(IsOpen());
  SPTA_OBS_SPAN_ARG("checkpoint", "append", "run", run_index);
  if (!WriteAll(fd_, FormatRunLine(run_index, sample))) {
    return SysError(error, "append", "journal");
  }
  if (++appends_since_sync_ >= fsync_interval_) {
    appends_since_sync_ = 0;
    SPTA_OBS_SPAN("checkpoint", "fsync");
    if (!FsyncFd(fd_)) return SysError(error, "fsync", "journal");
  }
  return true;
}

bool CheckpointJournal::Close(std::string* error) {
  if (fd_ < 0) return true;
  bool ok = true;
  if (appends_since_sync_ > 0 && !FsyncFd(fd_)) {
    ok = SysError(error, "fsync", "journal");
  }
  ::close(fd_);
  fd_ = -1;
  return ok;
}

bool LoadCheckpoint(const std::string& path, CheckpointLoad* out,
                    std::string* error) {
  SPTA_OBS_SPAN("checkpoint", "load");
  *out = CheckpointLoad{};
  std::ifstream in(path);
  if (!in) return SysError(error, "open", path);

  std::string line;
  std::string tag;
  std::vector<std::uint64_t> fields;
  std::uint64_t crc = 0;

  // Header: the one line we cannot tolerate damage to (it binds the
  // campaign identity every record is interpreted under).
  if (!std::getline(in, line) || !ParseLine(line, &tag, &fields, &crc) ||
      tag != kHeaderMagic || fields.size() != 4 ||
      crc != LineChecksum(kHeaderMagic, fields)) {
    if (error != nullptr) *error = path + ": damaged or alien journal header";
    return false;
  }
  out->header.campaign_seed = fields[0];
  out->header.runs = fields[1];
  out->header.distinct_scenarios = fields[2];
  out->header.workload_digest = fields[3];
  out->samples.assign(out->header.runs, std::nullopt);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseLine(line, &tag, &fields, &crc) || tag != kRunTag ||
        fields.size() != 27 || crc != LineChecksum(kRunTag, fields)) {
      // A torn write: the record never durably happened. Drop it — the
      // run will simply be re-executed on resume.
      ++out->torn_lines;
      continue;
    }
    const std::uint64_t run_index = fields[0];
    if (run_index >= out->header.runs) {
      ++out->torn_lines;
      continue;
    }
    std::array<std::uint64_t, 26> sample_fields;
    std::copy(fields.begin() + 1, fields.end(), sample_fields.begin());
    if (!out->samples[run_index].has_value()) ++out->completed;
    out->samples[run_index] = SampleFromFields(sample_fields);
  }
  return true;
}

std::uint64_t TvcaWorkloadDigest() { return DeriveSeed(0, "tvca-workload"); }

std::uint64_t FixedTraceWorkloadDigest(const trace::Trace& t) {
  return HashCombine(DeriveSeed(0, "fixed-trace-workload"),
                     HashCombine(t.path_signature, t.records.size()));
}

/// Shared runner skeleton: the per-run measurement differs (TVCA frame vs
/// fixed trace vs atlas-memoized), the journaling/resume discipline
/// doesn't. Exported so the atlas campaign runners reuse it verbatim.
bool RunCheckpointedCampaign(
    const CheckpointHeader& header, ThreadPool& pool,
    const CheckpointOptions& options,
    const std::function<RunSample(std::size_t)>& measure,
    CheckpointedCampaignResult* out, std::string* error) {
  SPTA_REQUIRE(!options.journal_path.empty());
  *out = CheckpointedCampaignResult{};
  out->samples.resize(header.runs);
  std::vector<char> have(header.runs, 0);

  CheckpointJournal journal;
  if (options.resume) {
    CheckpointLoad load;
    if (!LoadCheckpoint(options.journal_path, &load, error)) return false;
    if (load.header.campaign_seed != header.campaign_seed ||
        load.header.runs != header.runs ||
        load.header.distinct_scenarios != header.distinct_scenarios ||
        load.header.workload_digest != header.workload_digest) {
      if (error != nullptr) {
        *error = options.journal_path +
                 ": journal belongs to a different campaign (seed/runs/"
                 "scenarios/workload mismatch); refusing to resume";
      }
      return false;
    }
    for (std::size_t r = 0; r < header.runs; ++r) {
      if (load.samples[r].has_value()) {
        out->samples[r] = *load.samples[r];
        have[r] = 1;
      }
    }
    out->resumed_runs = load.completed;
    out->torn_lines = load.torn_lines;
    if (!journal.OpenExisting(options.journal_path, options.fsync_interval,
                              error)) {
      return false;
    }
  } else {
    if (!journal.OpenNew(options.journal_path, header, options.fsync_interval,
                         error)) {
      return false;
    }
  }

  // The measurement fan-out. Appends are serialized under a mutex; the
  // abort hook fires under the same mutex so the journal holds EXACTLY
  // abort_after_appends new records when it triggers (a deterministic
  // simulated crash, whatever the thread schedule).
  std::mutex journal_mutex;
  std::atomic<bool> stop{false};
  std::size_t appended = 0;
  bool append_failed = false;
  std::string append_error;

  ParallelFor(pool, header.runs, [&](std::size_t r) {
    if (have[r] || stop.load(std::memory_order_relaxed)) return;
    const RunSample s = measure(r);
    std::lock_guard<std::mutex> lock(journal_mutex);
    if (stop.load(std::memory_order_relaxed) || append_failed) return;
    if (options.abort_after_appends != 0 &&
        appended >= options.abort_after_appends) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    if (!journal.Append(r, s, &append_error)) {
      append_failed = true;
      return;
    }
    ++appended;
    out->samples[r] = s;
    have[r] = 1;
  });

  if (append_failed) {
    if (error != nullptr) *error = append_error;
    return false;
  }
  if (!journal.Close(error)) return false;
  out->completed = true;
  for (const char h : have) {
    if (!h) {
      out->completed = false;
      break;
    }
  }
  return true;
}

bool RunTvcaCampaignCheckpointed(const sim::PlatformConfig& platform_config,
                                 const apps::TvcaApp& app,
                                 const CampaignConfig& config,
                                 std::size_t jobs,
                                 const CheckpointOptions& options,
                                 CheckpointedCampaignResult* out,
                                 std::string* error) {
  SPTA_REQUIRE(config.runs >= 1);
  CheckpointHeader header;
  header.campaign_seed = config.master_seed;
  header.runs = config.runs;
  header.distinct_scenarios = config.distinct_scenarios;
  header.workload_digest = TvcaWorkloadDigest();

  std::vector<apps::TvcaFrame> suite;
  if (config.distinct_scenarios > 0) {
    suite.reserve(config.distinct_scenarios);
    for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
    }
  }

  ThreadPool pool(jobs);
  std::vector<std::unique_ptr<sim::Platform>> arenas(pool.size());
  auto measure = [&](std::size_t r) {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < arenas.size(),
                   "campaign body must run on a pool worker");
    if (arenas[w] == nullptr) {
      arenas[w] = std::make_unique<sim::Platform>(platform_config, 0);
    }
    const Seed run_seed = TvcaRunSeed(config, r);
    apps::TvcaFrame local;
    const apps::TvcaFrame* frame;
    if (!suite.empty()) {
      frame = &suite[r % config.distinct_scenarios];
    } else {
      local = app.BuildFrame(TvcaScenarioSeed(config, r));
      frame = &local;
    }
    RunSample s;
    s.detail = arenas[w]->Run(frame->trace, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = frame->path_id;
    return s;
  };
  return RunCheckpointedCampaign(header, pool, options, measure, out, error);
}

bool RunFixedTraceCampaignCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error) {
  SPTA_REQUIRE(runs >= 1);
  CheckpointHeader header;
  header.campaign_seed = master_seed;
  header.runs = runs;
  header.distinct_scenarios = 0;
  header.workload_digest = FixedTraceWorkloadDigest(t);

  ThreadPool pool(jobs);
  std::vector<std::unique_ptr<sim::Platform>> arenas(pool.size());
  auto measure = [&](std::size_t r) {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < arenas.size(),
                   "campaign body must run on a pool worker");
    if (arenas[w] == nullptr) {
      arenas[w] = std::make_unique<sim::Platform>(platform_config, 0);
    }
    RunSample s;
    s.detail = arenas[w]->Run(t, FixedTraceRunSeed(master_seed, r));
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    return s;
  };
  return RunCheckpointedCampaign(header, pool, options, measure, out, error);
}

}  // namespace spta::analysis
