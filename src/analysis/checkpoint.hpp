// Crash-safe campaign checkpointing: an append-only, fsync'd run journal.
//
// Long measurement campaigns (hours of simulation, or real-board runs)
// must survive a crash without re-measuring everything. Because every
// run's sample is a pure function of (campaign config, run index) — the
// PR-1 seed-derivation contract — a journal of completed (index, sample)
// pairs is a complete restart state: --resume restores the journalled
// runs and re-executes only the missing indices, bit-identically to an
// uninterrupted campaign.
//
// Durability discipline:
//   - the journal is append-only; each record is one text line ending in
//     its own checksum, so a torn final line (crash mid-write) is
//     detected and dropped instead of half-ingested,
//   - appends are fsync'd every `fsync_interval` records (default: every
//     record),
//   - the header binds the campaign identity (seed, run count, scenario
//     count, workload digest); --resume against a journal written for a
//     different campaign is refused,
//   - final CSV exports go through the tmp-file + fsync + rename writers
//     (sample_io), so the published artifact is never truncated.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta {
class ThreadPool;
}

namespace spta::analysis {

/// Campaign identity bound into the journal header.
struct CheckpointHeader {
  std::uint64_t campaign_seed = 0;
  std::uint64_t runs = 0;
  std::uint64_t distinct_scenarios = 0;
  /// Distinguishes workloads (TVCA vs a specific fixed trace); resuming
  /// under a different workload is refused.
  std::uint64_t workload_digest = 0;
};

/// Append-side handle. One writer at a time; not thread-safe (callers
/// serialize appends — the campaign runner holds a mutex).
class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Creates/truncates `path`, writes + fsyncs the header.
  bool OpenNew(const std::string& path, const CheckpointHeader& header,
               std::size_t fsync_interval, std::string* error);

  /// Opens an existing journal for appending (resume). The caller is
  /// expected to have validated the header via LoadCheckpoint.
  bool OpenExisting(const std::string& path, std::size_t fsync_interval,
                    std::string* error);

  /// Appends one completed run. fsync'd per the configured interval.
  bool Append(std::uint64_t run_index, const RunSample& sample,
              std::string* error);

  /// Final fsync + close. Safe to call twice.
  bool Close(std::string* error);

  bool IsOpen() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::size_t fsync_interval_ = 1;
  std::size_t appends_since_sync_ = 0;
};

/// Read-side result of scanning a journal.
struct CheckpointLoad {
  CheckpointHeader header;
  /// Slot r holds run r's sample when the journal recorded it.
  std::vector<std::optional<RunSample>> samples;
  std::size_t completed = 0;
  /// Damaged trailing/interior lines that were dropped (torn writes).
  std::size_t torn_lines = 0;
};

/// Scans `path`, dropping damaged lines. Fails only on unreadable files
/// or a damaged/alien header (a journal we cannot trust at all).
bool LoadCheckpoint(const std::string& path, CheckpointLoad* out,
                    std::string* error);

/// Workload digests for the two campaign kinds.
std::uint64_t TvcaWorkloadDigest();
std::uint64_t FixedTraceWorkloadDigest(const trace::Trace& t);

/// Options of a checkpointed campaign execution.
struct CheckpointOptions {
  std::string journal_path;
  /// Restore completed runs from an existing journal and continue. With
  /// resume=false an existing journal is overwritten.
  bool resume = false;
  /// fsync after every Nth append (1 = every append, the default).
  std::size_t fsync_interval = 1;
  /// TEST HOOK — simulated crash: stop appending (and measuring) once
  /// this many appends have happened in this execution. 0 = disabled.
  std::size_t abort_after_appends = 0;
};

struct CheckpointedCampaignResult {
  std::vector<RunSample> samples;
  /// False when the abort hook fired (samples is then incomplete).
  bool completed = false;
  /// Runs restored from the journal instead of re-executed.
  std::size_t resumed_runs = 0;
  std::size_t torn_lines = 0;
};

/// Generic journaling skeleton shared by every checkpointed runner
/// (TVCA, fixed-trace, and the atlas memoized variants). `measure(r)`
/// must be a pure function of the run index (the seed-derivation
/// contract) and run on a worker of `pool`; completed runs are appended
/// to the journal under a mutex, resume restores them instead of
/// re-measuring.
bool RunCheckpointedCampaign(
    const CheckpointHeader& header, ThreadPool& pool,
    const CheckpointOptions& options,
    const std::function<RunSample(std::size_t)>& measure,
    CheckpointedCampaignResult* out, std::string* error);

/// RunTvcaCampaignParallel with journaling. Bit-identical samples to the
/// plain runner for any jobs / interruption pattern (seed contract).
bool RunTvcaCampaignCheckpointed(const sim::PlatformConfig& platform_config,
                                 const apps::TvcaApp& app,
                                 const CampaignConfig& config,
                                 std::size_t jobs,
                                 const CheckpointOptions& options,
                                 CheckpointedCampaignResult* out,
                                 std::string* error);

/// RunFixedTraceCampaignParallel with journaling.
bool RunFixedTraceCampaignCheckpointed(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs,
    const CheckpointOptions& options, CheckpointedCampaignResult* out,
    std::string* error);

}  // namespace spta::analysis
