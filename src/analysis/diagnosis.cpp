#include "analysis/diagnosis.hpp"

#include <algorithm>

namespace spta::analysis {
namespace {

GuardedAnalysis Reject(DiagnosisCode code, std::string message) {
  GuardedAnalysis out;
  out.diagnosis.code = code;
  out.diagnosis.message = std::move(message);
  return out;
}

}  // namespace

const char* DiagnosisCodeName(DiagnosisCode code) {
  switch (code) {
    case DiagnosisCode::kOk:
      return "ok";
    case DiagnosisCode::kTainted:
      return "tainted";
    case DiagnosisCode::kIntegrityMismatch:
      return "integrity_mismatch";
    case DiagnosisCode::kTooFewSamples:
      return "too_few_samples";
    case DiagnosisCode::kDegenerate:
      return "degenerate";
    case DiagnosisCode::kIidViolation:
      return "iid_violation";
  }
  return "unknown";
}

SampleProvenance ProvenanceFromMeta(const CsvMeta& meta) {
  SampleProvenance p;
  p.expected_digest = meta.digest;
  p.faults_reported = meta.faults;
  return p;
}

GuardedAnalysis AnalyzeObservationsGuarded(
    const std::vector<mbpta::PathObservation>& obs,
    const mbpta::MbptaOptions& options, const SampleProvenance& provenance) {
  // Provenance gates first: a tainted or tampered sample must not even be
  // summarized — the numbers are not measurements.
  if (provenance.faults_reported > 0) {
    return Reject(DiagnosisCode::kTainted,
                  std::to_string(provenance.faults_reported) +
                      " faults injected during collection; refusing to fit "
                      "a pWCET from a tainted sample");
  }
  if (provenance.expected_digest.has_value()) {
    const std::uint64_t actual = ObservationsDigest(obs);
    if (actual != *provenance.expected_digest) {
      return Reject(DiagnosisCode::kIntegrityMismatch,
                    "sample rows do not match their recorded integrity "
                    "digest (altered, reordered, truncated or appended "
                    "after export)");
    }
  }

  // Size floors: everything mbpta::AnalyzeSample and the i.i.d. gate
  // enforce with SPTA_REQUIRE, checked here so unfit input is a typed
  // rejection instead of an abort.
  const std::size_t n = obs.size();
  const std::size_t floor =
      std::max<std::size_t>({options.min_blocks, 4, options.iid.ljung_box_lags + 1});
  if (n < floor) {
    return Reject(DiagnosisCode::kTooFewSamples,
                  "sample of " + std::to_string(n) + " is below the floor " +
                      std::to_string(floor) +
                      " (min_blocks / i.i.d.-gate requirements)");
  }

  std::vector<double> times;
  times.reserve(n);
  for (const auto& o : obs) times.push_back(o.time);

  // A constant sample has no tail; Ljung-Box/KS statistics are undefined
  // on it, so classify before running the gate.
  const auto [mn, mx] = std::minmax_element(times.begin(), times.end());
  if (*mn == *mx) {
    return Reject(DiagnosisCode::kDegenerate,
                  "all " + std::to_string(n) +
                      " observations are identical (" +
                      std::to_string(*mn) + " cycles) — no tail to fit");
  }

  GuardedAnalysis out;
  out.result = mbpta::AnalyzeSample(times, options);
  if (out.result->usable) return out;

  if (!out.result->iid.Passed()) {
    out.diagnosis.code = DiagnosisCode::kIidViolation;
    out.diagnosis.message =
        "i.i.d. gate rejected (Ljung-Box p=" +
        std::to_string(out.result->iid.independence.p_value) +
        ", KS p=" +
        std::to_string(out.result->iid.identical_distribution.p_value) +
        " at alpha=" + std::to_string(out.result->iid.alpha) + ")";
    return out;
  }
  out.diagnosis.code = DiagnosisCode::kDegenerate;
  out.diagnosis.message = "no defensible pWCET fit for this sample";
  return out;
}

}  // namespace spta::analysis
