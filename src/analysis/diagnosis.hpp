// Typed rejection for the MBPTA pipeline: reject, never mis-report.
//
// The batch pipeline (mbpta::AnalyzeSample) enforces its preconditions
// with SPTA_REQUIRE — correct for trusted in-process callers, fatal for a
// pipeline fed by campaigns that may have been corrupted, truncated or
// fault-injected. This guarded entry point classifies every way a sample
// can be unfit for EVT *before* fitting anything, and returns a typed
// Diagnosis instead of a pWCET:
//
//   kTainted            faults were injected while collecting the sample
//   kIntegrityMismatch  the rows do not match their recorded digest
//   kTooFewSamples      below the min_blocks / i.i.d.-gate floors
//   kDegenerate         constant sample — no tail to fit
//   kIidViolation       Ljung-Box or KS rejected at alpha
//
// The invariant the fault-matrix tests pin down: a corrupted campaign
// either produces a non-kOk Diagnosis or (for perturbations too small to
// detect statistically, e.g. a single SEU that never changed timing) a
// result identical to the clean one — there is no third outcome where a
// silently altered pWCET is reported as clean.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/sample_io.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"

namespace spta::analysis {

enum class DiagnosisCode {
  kOk = 0,
  kTainted,
  kIntegrityMismatch,
  kTooFewSamples,
  kDegenerate,
  kIidViolation,
};

/// Stable lowercase token for logs / service ERR codes ("tainted", ...).
const char* DiagnosisCodeName(DiagnosisCode code);

struct Diagnosis {
  DiagnosisCode code = DiagnosisCode::kOk;
  std::string message;

  bool ok() const { return code == DiagnosisCode::kOk; }
};

/// Where the sample came from, for integrity/taint checks. Default = no
/// provenance claims, so only the statistical gates apply.
struct SampleProvenance {
  /// Digest recorded at export time (CsvMeta::digest); compared against
  /// ObservationsDigest of the rows actually read.
  std::optional<std::uint64_t> expected_digest;
  /// Faults injected during collection (campaign taint counters or the
  /// CSV `# spta-faults` annotation).
  std::uint64_t faults_reported = 0;
};

struct GuardedAnalysis {
  Diagnosis diagnosis;
  /// Present iff the statistical pipeline ran (it does not run for
  /// tainted/mismatched/too-small samples). usable==false inside is what
  /// kDegenerate/kIidViolation classify.
  std::optional<mbpta::MbptaResult> result;

  bool ok() const { return diagnosis.ok(); }
};

/// Runs the guarded pipeline on `obs`. Never aborts on unfit input.
GuardedAnalysis AnalyzeObservationsGuarded(
    const std::vector<mbpta::PathObservation>& obs,
    const mbpta::MbptaOptions& options = {},
    const SampleProvenance& provenance = {});

/// Convenience: provenance from CSV metadata.
SampleProvenance ProvenanceFromMeta(const CsvMeta& meta);

}  // namespace spta::analysis
