#include "analysis/parallel_campaign.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "sim/platform.hpp"

namespace spta::analysis {

std::size_t DefaultJobs() { return ThreadPool::DefaultThreadCount(); }

std::vector<RunSample> RunTvcaCampaignParallel(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs) {
  SPTA_REQUIRE(config.runs >= 1);
  std::vector<RunSample> samples(config.runs);

  // Fixed test-vector suite: build the (few) distinct frames once; workers
  // only read them. Fresh-input campaigns have one frame per run, built by
  // whichever worker owns the run — same BuildFrame(seed) call the serial
  // runner makes, so the traces are identical.
  std::vector<apps::TvcaFrame> suite;
  if (config.distinct_scenarios > 0) {
    suite.reserve(config.distinct_scenarios);
    for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
    }
  }

  ThreadPool pool(jobs);
  ParallelFor(pool, config.runs, [&](std::size_t r) {
    const Seed run_seed = TvcaRunSeed(config, r);
    apps::TvcaFrame local;
    const apps::TvcaFrame* frame;
    if (!suite.empty()) {
      frame = &suite[r % config.distinct_scenarios];
    } else {
      local = app.BuildFrame(TvcaScenarioSeed(config, r));
      frame = &local;
    }
    sim::Platform platform(platform_config, run_seed);
    RunSample s;
    s.detail = platform.Run(frame->trace, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = frame->path_id;
    samples[r] = s;
  });
  return samples;
}

std::vector<RunSample> RunFixedTraceCampaignParallel(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs) {
  SPTA_REQUIRE(runs >= 1);
  std::vector<RunSample> samples(runs);
  ThreadPool pool(jobs);
  ParallelFor(pool, runs, [&](std::size_t r) {
    const Seed run_seed = FixedTraceRunSeed(master_seed, r);
    sim::Platform platform(platform_config, run_seed);
    RunSample s;
    s.detail = platform.Run(t, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    samples[r] = s;
  });
  return samples;
}

}  // namespace spta::analysis
