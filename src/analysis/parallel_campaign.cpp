#include "analysis/parallel_campaign.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace spta::analysis {
namespace {

/// One reusable sim::Platform per pool worker. Platform::Run performs the
/// full per-run reset protocol (flush + reseed of every core and the shared
/// memory path), so a run's result is a pure function of (platform config,
/// trace, run seed) — reusing one arena across runs is bit-identical to
/// constructing a fresh Platform per run, while making the campaign's
/// steady state allocation-free (the arena's line/stamp/ring arrays are
/// built once per worker, not once per run). Slot w is touched only by
/// worker w, so no locks are needed.
class PlatformArenas {
 public:
  PlatformArenas(const sim::PlatformConfig& config, std::size_t workers)
      : config_(config), arenas_(workers) {}

  sim::Platform& ForCurrentWorker() {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < arenas_.size(),
                   "campaign body must run on a pool worker");
    auto& arena = arenas_[w];
    if (arena == nullptr) {
      arena = std::make_unique<sim::Platform>(config_, /*master_seed=*/0);
    }
    return *arena;
  }

 private:
  const sim::PlatformConfig& config_;
  std::vector<std::unique_ptr<sim::Platform>> arenas_;
};

}  // namespace

std::size_t DefaultJobs() { return ThreadPool::DefaultThreadCount(); }

std::vector<RunSample> RunTvcaCampaignParallel(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs) {
  SPTA_REQUIRE(config.runs >= 1);
  std::vector<RunSample> samples(config.runs);

  // Fixed test-vector suite: build the (few) distinct frames once; workers
  // only read them. Fresh-input campaigns have one frame per run, built by
  // whichever worker owns the run — same BuildFrame(seed) call the serial
  // runner makes, so the traces are identical.
  std::vector<apps::TvcaFrame> suite;
  if (config.distinct_scenarios > 0) {
    suite.reserve(config.distinct_scenarios);
    for (std::size_t i = 0; i < config.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(TvcaScenarioSeed(config, i)));
    }
  }

  ThreadPool pool(jobs);
  PlatformArenas arenas(platform_config, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "tvca_campaign_parallel", "runs",
                    config.runs);
  ParallelFor(pool, config.runs, [&](std::size_t r) {
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    const Seed run_seed = TvcaRunSeed(config, r);
    apps::TvcaFrame local;
    const apps::TvcaFrame* frame;
    if (!suite.empty()) {
      frame = &suite[r % config.distinct_scenarios];
    } else {
      local = app.BuildFrame(TvcaScenarioSeed(config, r));
      frame = &local;
    }
    RunSample s;
    s.detail = arenas.ForCurrentWorker().Run(frame->trace, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = frame->path_id;
    samples[r] = s;
  });
  return samples;
}

std::vector<RunSample> RunFixedTraceCampaignParallel(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs) {
  SPTA_REQUIRE(runs >= 1);
  std::vector<RunSample> samples(runs);
  ThreadPool pool(jobs);
  PlatformArenas arenas(platform_config, pool.size());
  SPTA_OBS_SPAN_ARG("campaign", "fixed_trace_campaign_parallel", "runs",
                    runs);
  ParallelFor(pool, runs, [&](std::size_t r) {
    SPTA_OBS_SPAN_ARG("campaign", "run", "run", r);
    const Seed run_seed = FixedTraceRunSeed(master_seed, r);
    RunSample s;
    s.detail = arenas.ForCurrentWorker().Run(t, run_seed);
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    samples[r] = s;
  });
  return samples;
}

}  // namespace spta::analysis
