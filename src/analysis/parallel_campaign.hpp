// Multi-threaded measurement campaigns with a bit-identity guarantee.
//
// The parallel runners fan the N independent simulation runs of a campaign
// out across a fixed-size worker pool. Determinism contract: every worker
// owns ONE reusable sim::Platform arena (constructed on first use, reused
// for every run that worker claims), and each run derives its scenario and
// platform-PRNG seeds purely from (campaign master seed, run index) via the
// helpers in campaign.hpp; each result is written into a pre-sized vector
// at its run index (no locks, no appends on the hot path). The resulting
// sample vector is therefore BIT-IDENTICAL to the serial runner's and
// invariant to the job count and to scheduling order, while the campaign's
// steady state performs zero allocation.
//
// This leans on two audited properties (see parallel_campaign_test.cpp):
//  * sim::Platform holds no shared or static mutable state, and
//    Platform::Run performs the full per-run reset protocol, so a run's
//    result is a pure function of (platform config, trace, run seed) —
//    independent of the construction-time master seed and of any earlier
//    runs on the same instance (which is what makes arena reuse safe).
//  * apps::TvcaApp is immutable after construction (const methods over
//    const members), so one instance is safely shared across workers.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta::analysis {

/// Default worker count: the hardware concurrency (>= 1).
std::size_t DefaultJobs();

/// Parallel equivalent of RunTvcaCampaign. `jobs` = worker threads
/// (0 = DefaultJobs()); any value yields the same samples. When the
/// campaign uses a fixed scenario suite (distinct_scenarios > 0) the
/// frames are built once up front and shared read-only by the workers;
/// fresh-input campaigns build each frame inside the owning run.
std::vector<RunSample> RunTvcaCampaignParallel(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const CampaignConfig& config, std::size_t jobs = 0);

/// Parallel equivalent of RunFixedTraceCampaign (same seed derivation,
/// same samples, any job count).
std::vector<RunSample> RunFixedTraceCampaignParallel(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    std::size_t runs, std::uint64_t master_seed, std::size_t jobs = 0);

}  // namespace spta::analysis
