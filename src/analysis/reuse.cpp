#include "analysis/reuse.hpp"

#include <bit>
#include <unordered_map>

#include "common/assert.hpp"

namespace spta::analysis {
namespace {

// Fenwick tree over access timestamps: a set bit marks "a line's most
// recent access happened at this time". Stack distance is then a range
// count — the textbook O(N log N) reuse-distance algorithm.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void Add(std::size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum of [0, i].
  std::int64_t Prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) {
      s += tree_[i];
    }
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

ReuseProfile::ReuseProfile(const trace::Trace& t, std::uint32_t line_bytes) {
  SPTA_REQUIRE(line_bytes >= 4 && std::has_single_bit(line_bytes));
  const auto shift = static_cast<unsigned>(std::countr_zero(line_bytes));

  // First count data accesses to size the Fenwick tree.
  std::size_t n = 0;
  for (const auto& rec : t.records) {
    n += rec.op == trace::OpClass::kLoad || rec.op == trace::OpClass::kStore;
  }
  Fenwick bit(n + 1);
  std::unordered_map<std::uint64_t, std::size_t> last_time;
  last_time.reserve(n / 4 + 16);

  std::size_t now = 0;
  for (const auto& rec : t.records) {
    if (rec.op != trace::OpClass::kLoad &&
        rec.op != trace::OpClass::kStore) {
      continue;
    }
    const std::uint64_t line = rec.mem_addr >> shift;
    ++accesses_;
    const auto it = last_time.find(line);
    if (it == last_time.end()) {
      ++cold_;
    } else {
      // Distinct lines accessed strictly after the previous touch.
      const std::size_t prev = it->second;
      const auto distance = static_cast<std::size_t>(
          bit.Prefix(now) - bit.Prefix(prev));
      if (histogram_.size() <= distance) {
        histogram_.resize(distance + 1, 0);
      }
      ++histogram_[distance];
      bit.Add(prev, -1);
    }
    bit.Add(now, +1);
    last_time[line] = now;
    ++now;
  }
}

std::uint64_t ReuseProfile::CountAtDistance(std::size_t d) const {
  return d < histogram_.size() ? histogram_[d] : 0;
}

std::uint64_t ReuseProfile::PredictedLruMisses(std::size_t lines) const {
  SPTA_REQUIRE(lines >= 1);
  std::uint64_t misses = cold_;
  for (std::size_t d = lines; d < histogram_.size(); ++d) {
    misses += histogram_[d];
  }
  return misses;
}

std::size_t ReuseProfile::WorkingSetLines(double target) const {
  SPTA_REQUIRE(target > 0.0 && target <= 1.0);
  if (accesses_ == 0) return 0;
  const double max_hit_ratio =
      1.0 - static_cast<double>(cold_) / static_cast<double>(accesses_);
  if (max_hit_ratio < target) return 0;
  std::uint64_t hits = 0;
  for (std::size_t d = 0; d < histogram_.size(); ++d) {
    hits += histogram_[d];
    const double ratio =
        static_cast<double>(hits) / static_cast<double>(accesses_);
    if (ratio >= target) return d + 1;
  }
  return histogram_.size() + 1;
}

}  // namespace spta::analysis
