// Reuse-distance (stack-distance) profiling of memory traces.
//
// The classic analytical model of LRU caches: the stack distance of an
// access is the number of DISTINCT cache lines touched since the previous
// access to the same line. Under full associativity with LRU, an access
// hits iff its stack distance is < the cache's line capacity — so the
// reuse-distance histogram predicts miss counts for every cache size at
// once. Used to cross-validate the cache simulator (tests) and to reason
// about working-set sizes when sizing workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace spta::analysis {

/// Reuse-distance histogram of the data (load/store) accesses of a trace.
class ReuseProfile {
 public:
  /// Profiles `t` with the given cache-line granularity (power of two).
  ReuseProfile(const trace::Trace& t, std::uint32_t line_bytes = 32);

  /// Number of data accesses profiled.
  std::uint64_t accesses() const { return accesses_; }

  /// Cold (first-touch) accesses = distinct lines.
  std::uint64_t cold_misses() const { return cold_; }

  /// Accesses with stack distance exactly `d` (d = 0 means the line was
  /// re-touched with no distinct line in between).
  std::uint64_t CountAtDistance(std::size_t d) const;

  /// Predicted misses of a fully associative LRU cache holding `lines`
  /// cache lines: cold misses + accesses with distance >= lines.
  std::uint64_t PredictedLruMisses(std::size_t lines) const;

  /// Smallest line capacity for which the predicted hit ratio reaches
  /// `target` (1.0 returns the capacity covering every reuse), or 0 when
  /// even infinite capacity cannot reach it (cold misses dominate).
  std::size_t WorkingSetLines(double target = 0.99) const;

  /// The raw histogram (index = distance).
  const std::vector<std::uint64_t>& histogram() const { return histogram_; }

 private:
  std::vector<std::uint64_t> histogram_;
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_ = 0;
};

}  // namespace spta::analysis
