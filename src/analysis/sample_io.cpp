#include "analysis/sample_io.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/atomic_file.hpp"
#include "common/hash.hpp"

namespace spta::analysis {
namespace {

constexpr char kDigestComment[] = "# spta-digest=";
constexpr char kFaultsComment[] = "# spta-faults=";

/// The digest of one written row; chained order-sensitively so reordering
/// and truncation change the result.
std::uint64_t CombineRow(std::uint64_t h, std::uint64_t cycles,
                         std::uint64_t path_id) {
  return HashCombine(HashCombine(h, cycles), path_id);
}

bool ParseHex64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

std::string Hex64(std::uint64_t v) {
  char buf[17];
  static const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 0xf];
    v >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf);
}

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

std::string LineError(std::size_t line_no, const std::string& what) {
  return "samples CSV line " + std::to_string(line_no) + ": " + what;
}

}  // namespace

bool TryReadSamplesCsvWithMeta(std::istream& in,
                               std::vector<mbpta::PathObservation>* out,
                               CsvMeta* meta, std::string* error) {
  out->clear();
  if (meta != nullptr) *meta = CsvMeta{};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      // Metadata rides in comments so legacy readers skip it; a malformed
      // metadata value is a hard error (it means the annotations were
      // themselves damaged), a plain comment is ignored.
      if (trimmed.rfind(kDigestComment, 0) == 0) {
        std::uint64_t digest = 0;
        const std::string value =
            Trim(trimmed.substr(sizeof(kDigestComment) - 1));
        if (!ParseHex64(value, &digest)) {
          *error = LineError(line_no, "bad spta-digest '" + value + "'");
          out->clear();
          return false;
        }
        if (meta != nullptr) meta->digest = digest;
      } else if (trimmed.rfind(kFaultsComment, 0) == 0) {
        const std::string value =
            Trim(trimmed.substr(sizeof(kFaultsComment) - 1));
        double faults = 0.0;
        if (!ParseDouble(value, &faults) || !std::isfinite(faults) ||
            faults < 0.0) {
          *error = LineError(line_no, "bad spta-faults '" + value + "'");
          out->clear();
          return false;
        }
        if (meta != nullptr) meta->faults = static_cast<std::uint64_t>(faults);
      }
      continue;
    }
    const auto comma = trimmed.find(',');
    const std::string first =
        Trim(comma == std::string::npos ? trimmed : trimmed.substr(0, comma));
    double cycles = 0.0;
    if (!ParseDouble(first, &cycles)) {
      // Tolerate a header line (non-numeric first field).
      if (out->empty()) continue;
      *error = LineError(line_no, "bad number '" + first + "'");
      out->clear();
      return false;
    }
    // Execution times feed straight into the EVT fit; a NaN would quietly
    // corrupt every statistic downstream, so reject it here with context.
    if (!std::isfinite(cycles)) {
      *error = LineError(line_no,
                         "non-finite execution time '" + first + "'");
      out->clear();
      return false;
    }
    if (cycles < 0.0) {
      *error = LineError(line_no,
                         "negative execution time '" + first + "'");
      out->clear();
      return false;
    }
    mbpta::PathObservation obs;
    obs.time = cycles;
    if (comma != std::string::npos) {
      const std::string second = Trim(trimmed.substr(comma + 1));
      if (!second.empty()) {
        double path = 0.0;
        if (!ParseDouble(second, &path) || !std::isfinite(path)) {
          *error = LineError(line_no, "bad path id '" + second + "'");
          out->clear();
          return false;
        }
        if (path < 0.0) {
          *error = LineError(line_no, "negative path id");
          out->clear();
          return false;
        }
        obs.path_id = static_cast<std::uint64_t>(path);
      }
    }
    out->push_back(obs);
  }
  return true;
}

bool TryReadSamplesCsv(std::istream& in,
                       std::vector<mbpta::PathObservation>* out,
                       std::string* error) {
  return TryReadSamplesCsvWithMeta(in, out, nullptr, error);
}

std::vector<mbpta::PathObservation> ReadSamplesCsv(std::istream& in) {
  std::vector<mbpta::PathObservation> out;
  std::string error;
  SPTA_REQUIRE_MSG(TryReadSamplesCsv(in, &out, &error), error);
  return out;
}

void WriteSamplesCsv(std::ostream& out,
                     std::span<const RunSample> samples) {
  out << "cycles,path_id\n";
  for (const auto& s : samples) {
    out << static_cast<std::uint64_t>(s.cycles) << ',' << s.path_id << '\n';
  }
}

void WriteObservationsCsv(std::ostream& out,
                          std::span<const mbpta::PathObservation> obs) {
  out << "cycles,path_id\n";
  for (const auto& o : obs) {
    out << static_cast<std::uint64_t>(o.time) << ',' << o.path_id << '\n';
  }
}

std::uint64_t ObservationsDigest(std::span<const mbpta::PathObservation> obs) {
  std::uint64_t h = Mix64(obs.size());
  for (const auto& o : obs) {
    h = CombineRow(h, static_cast<std::uint64_t>(o.time), o.path_id);
  }
  return h;
}

std::uint64_t SamplesDigest(std::span<const RunSample> samples) {
  std::uint64_t h = Mix64(samples.size());
  for (const auto& s : samples) {
    h = CombineRow(h, static_cast<std::uint64_t>(s.cycles), s.path_id);
  }
  return h;
}

void WriteSamplesCsvAnnotated(std::ostream& out,
                              std::span<const RunSample> samples,
                              std::uint64_t faults) {
  out << "cycles,path_id\n";
  out << kDigestComment << Hex64(SamplesDigest(samples)) << '\n';
  out << kFaultsComment << faults << '\n';
  for (const auto& s : samples) {
    out << static_cast<std::uint64_t>(s.cycles) << ',' << s.path_id << '\n';
  }
}

void WriteObservationsCsvAnnotated(std::ostream& out,
                                   std::span<const mbpta::PathObservation> obs,
                                   std::uint64_t faults) {
  out << "cycles,path_id\n";
  out << kDigestComment << Hex64(ObservationsDigest(obs)) << '\n';
  out << kFaultsComment << faults << '\n';
  for (const auto& o : obs) {
    out << static_cast<std::uint64_t>(o.time) << ',' << o.path_id << '\n';
  }
}

bool WriteSamplesCsvFileAtomic(const std::string& path,
                               std::span<const RunSample> samples,
                               std::uint64_t faults, std::string* error) {
  std::ostringstream body;
  WriteSamplesCsvAnnotated(body, samples, faults);
  return AtomicWriteFile(path, body.str(), error);
}

bool WriteObservationsCsvFileAtomic(const std::string& path,
                                    std::span<const mbpta::PathObservation> obs,
                                    std::uint64_t faults, std::string* error) {
  std::ostringstream body;
  WriteObservationsCsvAnnotated(body, obs, faults);
  return AtomicWriteFile(path, body.str(), error);
}

}  // namespace spta::analysis
