#include "analysis/sample_io.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/assert.hpp"

namespace spta::analysis {
namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

std::string LineError(std::size_t line_no, const std::string& what) {
  return "samples CSV line " + std::to_string(line_no) + ": " + what;
}

}  // namespace

bool TryReadSamplesCsv(std::istream& in,
                       std::vector<mbpta::PathObservation>* out,
                       std::string* error) {
  out->clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto comma = trimmed.find(',');
    const std::string first =
        Trim(comma == std::string::npos ? trimmed : trimmed.substr(0, comma));
    double cycles = 0.0;
    if (!ParseDouble(first, &cycles)) {
      // Tolerate a header line (non-numeric first field).
      if (out->empty()) continue;
      *error = LineError(line_no, "bad number '" + first + "'");
      out->clear();
      return false;
    }
    // Execution times feed straight into the EVT fit; a NaN would quietly
    // corrupt every statistic downstream, so reject it here with context.
    if (!std::isfinite(cycles)) {
      *error = LineError(line_no,
                         "non-finite execution time '" + first + "'");
      out->clear();
      return false;
    }
    if (cycles < 0.0) {
      *error = LineError(line_no,
                         "negative execution time '" + first + "'");
      out->clear();
      return false;
    }
    mbpta::PathObservation obs;
    obs.time = cycles;
    if (comma != std::string::npos) {
      const std::string second = Trim(trimmed.substr(comma + 1));
      if (!second.empty()) {
        double path = 0.0;
        if (!ParseDouble(second, &path) || !std::isfinite(path)) {
          *error = LineError(line_no, "bad path id '" + second + "'");
          out->clear();
          return false;
        }
        if (path < 0.0) {
          *error = LineError(line_no, "negative path id");
          out->clear();
          return false;
        }
        obs.path_id = static_cast<std::uint64_t>(path);
      }
    }
    out->push_back(obs);
  }
  return true;
}

std::vector<mbpta::PathObservation> ReadSamplesCsv(std::istream& in) {
  std::vector<mbpta::PathObservation> out;
  std::string error;
  SPTA_REQUIRE_MSG(TryReadSamplesCsv(in, &out, &error), error);
  return out;
}

void WriteSamplesCsv(std::ostream& out,
                     std::span<const RunSample> samples) {
  out << "cycles,path_id\n";
  for (const auto& s : samples) {
    out << static_cast<std::uint64_t>(s.cycles) << ',' << s.path_id << '\n';
  }
}

void WriteObservationsCsv(std::ostream& out,
                          std::span<const mbpta::PathObservation> obs) {
  out << "cycles,path_id\n";
  for (const auto& o : obs) {
    out << static_cast<std::uint64_t>(o.time) << ',' << o.path_id << '\n';
  }
}

}  // namespace spta::analysis
