// CSV import/export of measurement samples.
//
// Lets the MBPTA pipeline analyze execution times collected OUTSIDE the
// bundled simulator (a real board, another simulator, a tracing probe):
// the chronovise-style standalone use of the library. The format is one
// observation per line:
//
//   cycles[,path_id]          # header line optional
//
// and the writer emits `cycles,path_id` with a header.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "mbpta/per_path.hpp"

namespace spta::analysis {

/// Parses observations from `in`. Accepts an optional header line, blank
/// lines and `#` comments; a missing path column means path 0. Aborts
/// (precondition) on malformed numeric fields, reporting the line number.
std::vector<mbpta::PathObservation> ReadSamplesCsv(std::istream& in);

/// Writes `samples` as `cycles,path_id` CSV with a header.
void WriteSamplesCsv(std::ostream& out,
                     std::span<const RunSample> samples);

/// Writes raw observations (same format).
void WriteObservationsCsv(std::ostream& out,
                          std::span<const mbpta::PathObservation> obs);

}  // namespace spta::analysis
