// CSV import/export of measurement samples.
//
// Lets the MBPTA pipeline analyze execution times collected OUTSIDE the
// bundled simulator (a real board, another simulator, a tracing probe):
// the chronovise-style standalone use of the library. The format is one
// observation per line:
//
//   cycles[,path_id]          # header line optional
//
// and the writer emits `cycles,path_id` with a header.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "mbpta/per_path.hpp"

namespace spta::analysis {

/// Parses observations from `in`. Accepts an optional header line, blank
/// lines and `#` comments; a missing path column means path 0. Aborts
/// (precondition) on malformed numeric fields or invalid execution times
/// (NaN, infinite or negative — values that would otherwise silently
/// poison the EVT fit), reporting the line number.
std::vector<mbpta::PathObservation> ReadSamplesCsv(std::istream& in);

/// Non-aborting variant for untrusted input (the spta_serve ingestion
/// path): returns false and describes the offending line in `error`
/// instead of taking the process down. Rejects malformed numbers, NaN,
/// infinite and negative execution times, and malformed path ids. On
/// failure `out` is left empty.
bool TryReadSamplesCsv(std::istream& in,
                       std::vector<mbpta::PathObservation>* out,
                       std::string* error);

/// Writes `samples` as `cycles,path_id` CSV with a header.
void WriteSamplesCsv(std::ostream& out,
                     std::span<const RunSample> samples);

/// Writes raw observations (same format).
void WriteObservationsCsv(std::ostream& out,
                          std::span<const mbpta::PathObservation> obs);

// --- Campaign-integrity metadata -----------------------------------------
// Annotated CSVs carry two comment lines that older readers skip silently
// (they look like ordinary `#` comments):
//
//   # spta-digest=<16 hex digits>   order-sensitive digest of the rows
//   # spta-faults=<n>               faults injected while collecting them
//
// The digest is computed over the *written* representation (truncated
// cycle count, path id), so it survives a write/read round-trip; a
// mismatch on read means rows were altered, reordered, dropped or
// appended after export. A nonzero fault count marks the sample as
// tainted: analysis must refuse to fit a pWCET from it
// (analysis::AnalyzeObservationsGuarded).

/// Order-sensitive 64-bit digest over (uint64 cycles, path_id) rows.
std::uint64_t ObservationsDigest(std::span<const mbpta::PathObservation> obs);
std::uint64_t SamplesDigest(std::span<const RunSample> samples);

/// Metadata recovered from annotated CSV comments.
struct CsvMeta {
  std::optional<std::uint64_t> digest;  ///< absent in legacy files
  std::uint64_t faults = 0;

  bool Tainted() const { return faults > 0; }
};

/// TryReadSamplesCsv plus metadata extraction. Verifies nothing itself —
/// callers compare `meta->digest` against ObservationsDigest(*out)
/// (AnalyzeObservationsGuarded does this when given the meta). `meta` may
/// be null.
bool TryReadSamplesCsvWithMeta(std::istream& in,
                               std::vector<mbpta::PathObservation>* out,
                               CsvMeta* meta, std::string* error);

/// Annotated variants: header, digest + fault-count comments, rows.
void WriteSamplesCsvAnnotated(std::ostream& out,
                              std::span<const RunSample> samples,
                              std::uint64_t faults);
void WriteObservationsCsvAnnotated(std::ostream& out,
                                   std::span<const mbpta::PathObservation> obs,
                                   std::uint64_t faults);

/// Crash-safe annotated exports: the whole CSV is staged in a tmp file,
/// fsync'd and renamed over `path` (common/atomic_file.hpp), so a crash
/// mid-export can never leave a truncated file that a later --resume or
/// TryReadSamplesCsv half-ingests. Returns false + `error` on failure.
bool WriteSamplesCsvFileAtomic(const std::string& path,
                               std::span<const RunSample> samples,
                               std::uint64_t faults, std::string* error);
bool WriteObservationsCsvFileAtomic(const std::string& path,
                                    std::span<const mbpta::PathObservation> obs,
                                    std::uint64_t faults, std::string* error);

}  // namespace spta::analysis
