// CSV import/export of measurement samples.
//
// Lets the MBPTA pipeline analyze execution times collected OUTSIDE the
// bundled simulator (a real board, another simulator, a tracing probe):
// the chronovise-style standalone use of the library. The format is one
// observation per line:
//
//   cycles[,path_id]          # header line optional
//
// and the writer emits `cycles,path_id` with a header.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "mbpta/per_path.hpp"

namespace spta::analysis {

/// Parses observations from `in`. Accepts an optional header line, blank
/// lines and `#` comments; a missing path column means path 0. Aborts
/// (precondition) on malformed numeric fields or invalid execution times
/// (NaN, infinite or negative — values that would otherwise silently
/// poison the EVT fit), reporting the line number.
std::vector<mbpta::PathObservation> ReadSamplesCsv(std::istream& in);

/// Non-aborting variant for untrusted input (the spta_serve ingestion
/// path): returns false and describes the offending line in `error`
/// instead of taking the process down. Rejects malformed numbers, NaN,
/// infinite and negative execution times, and malformed path ids. On
/// failure `out` is left empty.
bool TryReadSamplesCsv(std::istream& in,
                       std::vector<mbpta::PathObservation>* out,
                       std::string* error);

/// Writes `samples` as `cycles,path_id` CSV with a header.
void WriteSamplesCsv(std::ostream& out,
                     std::span<const RunSample> samples);

/// Writes raw observations (same format).
void WriteObservationsCsv(std::ostream& out,
                          std::span<const mbpta::PathObservation> obs);

}  // namespace spta::analysis
