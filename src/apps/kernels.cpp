#include "apps/kernels.hpp"

#include "common/assert.hpp"

namespace spta::apps {

using trace::BlockId;
using trace::Program;
using trace::ProgramBuilder;
using trace::RegId;

namespace {
// Register conventions used by every kernel:
//   r1..r5   loop counters / bounds
//   r6..r12  integer temporaries
//   r20+     kernel results
//   f1..f12  FP temporaries
constexpr RegId kI = 1, kJ = 2, kK = 3, kN = 4, kM = 5;
constexpr RegId kT0 = 6, kT1 = 7, kT2 = 8, kT3 = 9, kT4 = 10;
constexpr RegId kF0 = 1, kF1 = 2, kF2 = 3, kF3 = 4, kF4 = 5, kF5 = 6;
}  // namespace

Program MakeMatMulProgram(int n, std::uint64_t link_offset) {
  SPTA_REQUIRE(n >= 1);
  ProgramBuilder b("matmul");
  const auto a = b.AddFpArray("A", static_cast<std::size_t>(n) * n);
  const auto bb = b.AddFpArray("B", static_cast<std::size_t>(n) * n);
  const auto c = b.AddFpArray("C", static_cast<std::size_t>(n) * n);

  const BlockId entry = b.NewBlock();
  const BlockId loop_i = b.NewBlock();
  const BlockId body_i = b.NewBlock();
  const BlockId loop_j = b.NewBlock();
  const BlockId body_j = b.NewBlock();
  const BlockId loop_k = b.NewBlock();
  const BlockId body_k = b.NewBlock();
  const BlockId end_k = b.NewBlock();
  const BlockId end_i = b.NewBlock();
  const BlockId exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, n);
  b.IConst(kI, 0);
  b.Jump(loop_i);

  b.SwitchTo(loop_i);
  b.ICmpLt(kT0, kI, kN);
  b.BranchIfZero(kT0, exit, body_i);

  b.SwitchTo(body_i);
  b.IConst(kJ, 0);
  b.Jump(loop_j);

  b.SwitchTo(loop_j);
  b.ICmpLt(kT0, kJ, kN);
  b.BranchIfZero(kT0, end_i, body_j);

  b.SwitchTo(body_j);
  b.FConst(kF0, 0.0);
  b.IConst(kK, 0);
  b.Jump(loop_k);

  b.SwitchTo(loop_k);
  b.ICmpLt(kT0, kK, kN);
  b.BranchIfZero(kT0, end_k, body_k);

  b.SwitchTo(body_k);
  b.IMul(kT1, kI, kN);
  b.IAdd(kT2, kT1, kK);
  b.LoadF(kF1, a, kT2);  // A[i*n+k]
  b.IMul(kT1, kK, kN);
  b.IAdd(kT2, kT1, kJ);
  b.LoadF(kF2, bb, kT2);  // B[k*n+j]
  b.FMul(kF3, kF1, kF2);
  b.FAdd(kF0, kF0, kF3);
  b.IAddImm(kK, kK, 1);
  b.Jump(loop_k);

  b.SwitchTo(end_k);
  b.IMul(kT1, kI, kN);
  b.IAdd(kT2, kT1, kJ);
  b.StoreF(c, kT2, kF0);  // C[i*n+j] = sum
  b.IAddImm(kJ, kJ, 1);
  b.Jump(loop_j);

  b.SwitchTo(end_i);
  b.IAddImm(kI, kI, 1);
  b.Jump(loop_i);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeFirProgram(int taps, int samples, std::uint64_t link_offset) {
  SPTA_REQUIRE(taps >= 1 && samples >= 1);
  ProgramBuilder b("fir");
  const auto coef = b.AddFpArray("coef", static_cast<std::size_t>(taps));
  const auto in =
      b.AddFpArray("in", static_cast<std::size_t>(samples + taps));
  const auto out = b.AddFpArray("out", static_cast<std::size_t>(samples));

  const BlockId entry = b.NewBlock();
  const BlockId loop_i = b.NewBlock();
  const BlockId body_i = b.NewBlock();
  const BlockId loop_j = b.NewBlock();
  const BlockId body_j = b.NewBlock();
  const BlockId end_j = b.NewBlock();
  const BlockId exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, samples);
  b.IConst(kM, taps);
  b.IConst(kI, 0);
  b.Jump(loop_i);

  b.SwitchTo(loop_i);
  b.ICmpLt(kT0, kI, kN);
  b.BranchIfZero(kT0, exit, body_i);

  b.SwitchTo(body_i);
  b.FConst(kF0, 0.0);
  b.IConst(kJ, 0);
  b.Jump(loop_j);

  b.SwitchTo(loop_j);
  b.ICmpLt(kT0, kJ, kM);
  b.BranchIfZero(kT0, end_j, body_j);

  b.SwitchTo(body_j);
  b.LoadF(kF1, coef, kJ);
  b.IAdd(kT1, kI, kJ);
  b.LoadF(kF2, in, kT1);  // in[i+j]
  b.FMul(kF3, kF1, kF2);
  b.FAdd(kF0, kF0, kF3);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(loop_j);

  b.SwitchTo(end_j);
  b.StoreF(out, kI, kF0);
  b.IAddImm(kI, kI, 1);
  b.Jump(loop_i);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeCrcProgram(int words, std::uint64_t link_offset) {
  SPTA_REQUIRE(words >= 1);
  ProgramBuilder b("crc");
  const auto table = b.AddIntArray("table", 256);
  const auto msg = b.AddIntArray("msg", static_cast<std::size_t>(words));

  constexpr RegId kCrc = 20;
  constexpr RegId kMask = 11;

  const BlockId entry = b.NewBlock();
  const BlockId loop = b.NewBlock();
  const BlockId body = b.NewBlock();
  const BlockId exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, words);
  b.IConst(kI, 0);
  b.IConst(kCrc, 0x1d0f);
  b.IConst(kMask, 0xff);
  b.Jump(loop);

  b.SwitchTo(loop);
  b.ICmpLt(kT0, kI, kN);
  b.BranchIfZero(kT0, exit, body);

  b.SwitchTo(body);
  b.LoadI(kT1, msg, kI);     // w = msg[i]
  b.IXor(kT2, kCrc, kT1);    // x = crc ^ w
  b.IAnd(kT3, kT2, kMask);   // idx = x & 0xff
  b.LoadI(kT4, table, kT3);  // t = table[idx]
  b.IShr(kT2, kCrc, 8);      // crc >> 8
  b.IXor(kCrc, kT2, kT4);    // crc = (crc >> 8) ^ t
  b.IAddImm(kI, kI, 1);
  b.Jump(loop);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeAttitudeProgram(int steps, std::uint64_t link_offset) {
  SPTA_REQUIRE(steps >= 1);
  ProgramBuilder b("attitude");
  // state[0..3] = quaternion, state[4..6] = body rates estimate,
  // state[7] = accumulated correction energy.
  const auto state = b.AddFpArray("state", 8);
  const auto rates =
      b.AddFpArray("rates", static_cast<std::size_t>(steps) * 3);

  constexpr RegId kQ0 = 1, kQ1 = 2, kQ2 = 3, kQ3 = 4;
  constexpr RegId kWx = 7, kWy = 8, kWz = 9;
  constexpr RegId kTmp = 10, kTmp2 = 11, kNorm = 12, kHalfDt = 13;
  constexpr RegId kThresh = 14;
  constexpr RegId kZero = 15;  // integer register pinned to 0

  const BlockId entry = b.NewBlock();
  const BlockId loop = b.NewBlock();
  const BlockId body = b.NewBlock();
  const BlockId correct = b.NewBlock();
  const BlockId renorm = b.NewBlock();
  const BlockId exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, steps);
  b.IConst(kI, 0);
  b.IConst(kZero, 0);
  b.LoadF(kQ0, state, kI, 0);
  b.LoadF(kQ1, state, kI, 1);
  b.LoadF(kQ2, state, kI, 2);
  b.LoadF(kQ3, state, kI, 3);
  b.FConst(kHalfDt, 0.5 * 0.01);
  b.FConst(kThresh, 0.25);  // |w|^2 threshold for the correction path
  b.Jump(loop);

  b.SwitchTo(loop);
  b.ICmpLt(kT0, kI, kN);
  b.BranchIfZero(kT0, exit, body);

  b.SwitchTo(body);
  // Load the body rates for this step: rates[3*i + {0,1,2}].
  b.IConst(kT1, 3);
  b.IMul(kT2, kI, kT1);
  b.IMove(kT3, kT2);
  b.LoadF(kWx, rates, kT3, 0);
  b.LoadF(kWy, rates, kT3, 1);
  b.LoadF(kWz, rates, kT3, 2);
  // Quaternion derivative (first-order): q += 0.5*dt * (w ⊗ q), abridged.
  b.FMul(kTmp, kWx, kQ1);
  b.FMul(kTmp2, kTmp, kHalfDt);
  b.FAdd(kQ0, kQ0, kTmp2);
  b.FMul(kTmp, kWy, kQ2);
  b.FMul(kTmp2, kTmp, kHalfDt);
  b.FAdd(kQ1, kQ1, kTmp2);
  b.FMul(kTmp, kWz, kQ3);
  b.FMul(kTmp2, kTmp, kHalfDt);
  b.FAdd(kQ2, kQ2, kTmp2);
  b.FMul(kTmp, kWx, kQ0);
  b.FMul(kTmp2, kTmp, kHalfDt);
  b.FSub(kQ3, kQ3, kTmp2);
  // Rate magnitude check: large maneuvers take the correction path.
  b.FMul(kTmp, kWx, kWx);
  b.FMul(kTmp2, kWy, kWy);
  b.FAdd(kTmp, kTmp, kTmp2);
  b.FMul(kTmp2, kWz, kWz);
  b.FAdd(kTmp, kTmp, kTmp2);
  b.FCmpLt(kT0, kThresh, kTmp);  // 1 if |w|^2 > thresh
  b.BranchIfZero(kT0, renorm, correct);

  b.SwitchTo(correct);
  // Data-dependent extra work: damped correction with divide + sqrt.
  b.FSqrt(kTmp2, kTmp);          // |w|
  b.FConst(kTmp, 1.0);
  b.FAdd(kTmp, kTmp, kTmp2);     // 1 + |w|
  b.FDiv(kTmp2, kHalfDt, kTmp);  // halfdt / (1+|w|)
  b.FMul(kQ0, kQ0, kTmp);        // stiffen the quaternion
  b.FMul(kQ1, kQ1, kTmp);
  b.LoadF(kTmp, state, kZero, 7);  // accumulate correction energy
  b.FAdd(kTmp, kTmp, kTmp2);
  b.StoreF(state, kZero, kTmp, 7);
  b.Jump(renorm);

  b.SwitchTo(renorm);
  // Renormalize: q /= sqrt(q0^2+q1^2+q2^2+q3^2) — FSQRT + 4 FDIVs whose
  // latency depends on the operand values (jittery on the DET platform).
  b.FMul(kNorm, kQ0, kQ0);
  b.FMul(kTmp, kQ1, kQ1);
  b.FAdd(kNorm, kNorm, kTmp);
  b.FMul(kTmp, kQ2, kQ2);
  b.FAdd(kNorm, kNorm, kTmp);
  b.FMul(kTmp, kQ3, kQ3);
  b.FAdd(kNorm, kNorm, kTmp);
  b.FSqrt(kNorm, kNorm);
  b.FDiv(kQ0, kQ0, kNorm);
  b.FDiv(kQ1, kQ1, kNorm);
  b.FDiv(kQ2, kQ2, kNorm);
  b.FDiv(kQ3, kQ3, kNorm);
  b.IAddImm(kI, kI, 1);
  b.Jump(loop);

  b.SwitchTo(exit);
  // Write back the quaternion.
  b.IConst(kI, 0);
  b.StoreF(state, kI, kQ0, 0);
  b.StoreF(state, kI, kQ1, 1);
  b.StoreF(state, kI, kQ2, 2);
  b.StoreF(state, kI, kQ3, 3);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeBubbleSortProgram(int n, std::uint64_t link_offset) {
  SPTA_REQUIRE(n >= 2);
  ProgramBuilder b("bubble-sort");
  const auto keys = b.AddIntArray("keys", static_cast<std::size_t>(n));

  const BlockId entry = b.NewBlock();
  const BlockId outer = b.NewBlock();
  const BlockId outer_body = b.NewBlock();
  const BlockId inner = b.NewBlock();
  const BlockId inner_body = b.NewBlock();
  const BlockId do_swap = b.NewBlock();
  const BlockId no_swap = b.NewBlock();
  const BlockId outer_end = b.NewBlock();
  const BlockId exit = b.NewBlock();

  // r1 = i, r2 = j, r4 = n, r5 = n-1, r7 = inner limit, r8/r9 = elements.
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, n);
  b.IAddImm(kM, kN, -1);
  b.IConst(kI, 0);
  b.Jump(outer);

  b.SwitchTo(outer);
  b.ICmpLt(kT0, kI, kM);
  b.BranchIfZero(kT0, exit, outer_body);

  b.SwitchTo(outer_body);
  b.IConst(kJ, 0);
  b.ISub(kT1, kM, kI);  // n-1-i
  b.Jump(inner);

  b.SwitchTo(inner);
  b.ICmpLt(kT0, kJ, kT1);
  b.BranchIfZero(kT0, outer_end, inner_body);

  b.SwitchTo(inner_body);
  b.LoadI(kT2, keys, kJ, 0);  // keys[j]
  b.LoadI(kT3, keys, kJ, 1);  // keys[j+1]
  b.ICmpLt(kT0, kT3, kT2);    // out of order?
  b.BranchIfZero(kT0, no_swap, do_swap);

  b.SwitchTo(do_swap);
  b.StoreI(keys, kJ, kT3, 0);
  b.StoreI(keys, kJ, kT2, 1);
  b.Jump(no_swap);

  b.SwitchTo(no_swap);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(inner);

  b.SwitchTo(outer_end);
  b.IAddImm(kI, kI, 1);
  b.Jump(outer);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeBinarySearchProgram(int n, int queries,
                                std::uint64_t link_offset) {
  SPTA_REQUIRE(n >= 1 && queries >= 1);
  ProgramBuilder b("binary-search");
  const auto table = b.AddIntArray("table", static_cast<std::size_t>(n));
  const auto query =
      b.AddIntArray("queries", static_cast<std::size_t>(queries));
  const auto results =
      b.AddIntArray("results", static_cast<std::size_t>(queries));

  const BlockId entry = b.NewBlock();
  const BlockId qloop = b.NewBlock();
  const BlockId qbody = b.NewBlock();
  const BlockId sloop = b.NewBlock();
  const BlockId sbody = b.NewBlock();
  const BlockId go_right = b.NewBlock();
  const BlockId not_less = b.NewBlock();
  const BlockId go_left = b.NewBlock();
  const BlockId found = b.NewBlock();
  const BlockId sdone = b.NewBlock();
  const BlockId exit = b.NewBlock();

  // r1 = query index, r2 = lo, r3 = hi (inclusive), r4 = n, r5 = queries,
  // r7 = mid, r8 = table[mid], r10 = key, r12 = result.
  constexpr RegId kKey = 11, kResult = 12;
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, n);  // reuse kB0 alias: r4
  b.IConst(kM, queries);
  b.IConst(kI, 0);
  b.Jump(qloop);

  b.SwitchTo(qloop);
  b.ICmpLt(kT0, kI, kM);
  b.BranchIfZero(kT0, exit, qbody);

  b.SwitchTo(qbody);
  b.LoadI(kKey, query, kI);
  b.IConst(kJ, 0);          // lo
  b.IAddImm(kK, kN, -1);    // hi
  b.IConst(kResult, -1);
  b.Jump(sloop);

  b.SwitchTo(sloop);
  b.ICmpLt(kT0, kK, kJ);  // hi < lo -> done
  b.BranchIfZero(kT0, sbody, sdone);

  b.SwitchTo(sbody);
  b.IAdd(kT1, kJ, kK);
  b.IShr(kT1, kT1, 1);      // mid
  b.LoadI(kT2, table, kT1);
  b.ICmpLt(kT0, kT2, kKey);  // table[mid] < key?
  b.BranchIfZero(kT0, not_less, go_right);

  b.SwitchTo(go_right);
  b.IAddImm(kJ, kT1, 1);
  b.Jump(sloop);

  b.SwitchTo(not_less);
  b.ICmpLt(kT0, kKey, kT2);  // key < table[mid]?
  b.BranchIfZero(kT0, found, go_left);

  b.SwitchTo(go_left);
  b.IAddImm(kK, kT1, -1);
  b.Jump(sloop);

  b.SwitchTo(found);
  b.IMove(kResult, kT1);
  b.Jump(sdone);

  b.SwitchTo(sdone);
  b.StoreI(results, kI, kResult);
  b.IAddImm(kI, kI, 1);
  b.Jump(qloop);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeInterpolationProgram(int table_size, int queries,
                                 std::uint64_t link_offset) {
  SPTA_REQUIRE(table_size >= 2 && queries >= 1);
  ProgramBuilder b("interpolation");
  const auto bx =
      b.AddFpArray("breakpoints", static_cast<std::size_t>(table_size));
  const auto by = b.AddFpArray("values", static_cast<std::size_t>(table_size));
  const auto query = b.AddFpArray("queries", static_cast<std::size_t>(queries));
  const auto out = b.AddFpArray("outputs", static_cast<std::size_t>(queries));

  const BlockId entry = b.NewBlock();
  const BlockId qloop = b.NewBlock();
  const BlockId qbody = b.NewBlock();
  const BlockId clamp_lo = b.NewBlock();
  const BlockId check_hi = b.NewBlock();
  const BlockId clamp_hi = b.NewBlock();
  const BlockId scan = b.NewBlock();
  const BlockId scan_inc = b.NewBlock();
  const BlockId interp = b.NewBlock();
  const BlockId store = b.NewBlock();
  const BlockId exit = b.NewBlock();

  // r1 = query index, r2 = scan index, r4 = table_size, r5 = queries,
  // r15 = 0; f1 = key, f2..f7 = temps, f8 = result.
  constexpr RegId kFKey = 1, kFA = 2, kFB = 3, kFC = 4, kFD = 5, kFT = 6,
                  kFU = 7, kFOut = 8;
  constexpr RegId kZero = 15;
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, table_size);
  b.IConst(kM, queries);
  b.IConst(kZero, 0);
  b.IConst(kI, 0);
  b.Jump(qloop);

  b.SwitchTo(qloop);
  b.ICmpLt(kT0, kI, kM);
  b.BranchIfZero(kT0, exit, qbody);

  b.SwitchTo(qbody);
  b.LoadF(kFKey, query, kI);
  b.LoadF(kFA, bx, kZero, 0);  // first breakpoint
  b.FCmpLt(kT0, kFKey, kFA);
  b.BranchIfZero(kT0, check_hi, clamp_lo);

  b.SwitchTo(clamp_lo);
  b.LoadF(kFOut, by, kZero, 0);
  b.Jump(store);

  b.SwitchTo(check_hi);
  b.IAddImm(kT1, kN, -1);
  b.LoadF(kFB, bx, kT1);  // last breakpoint
  b.FCmpLt(kT0, kFB, kFKey);
  b.BranchIfZero(kT0, scan, clamp_hi);

  b.SwitchTo(clamp_hi);
  b.LoadF(kFOut, by, kT1);
  b.Jump(store);

  // Linear scan for the first breakpoint >= key (bounded: the clamp
  // checks guarantee termination before the table end). `scan` tests the
  // current index; `scan_inc` bumps it and loops back.
  b.SwitchTo(scan);
  b.IConst(kJ, 1);
  b.LoadF(kFA, bx, kJ);
  b.FCmpLt(kT0, kFA, kFKey);  // bx[j] < key: keep scanning
  b.BranchIfZero(kT0, interp, scan_inc);

  b.SwitchTo(scan_inc);
  b.IAddImm(kJ, kJ, 1);
  b.LoadF(kFA, bx, kJ);
  b.FCmpLt(kT0, kFA, kFKey);
  b.BranchIfZero(kT0, interp, scan_inc);

  b.SwitchTo(interp);
  b.LoadF(kFA, bx, kJ, -1);  // x0
  b.LoadF(kFB, bx, kJ, 0);   // x1
  b.LoadF(kFC, by, kJ, -1);  // y0
  b.LoadF(kFD, by, kJ, 0);   // y1
  b.FSub(kFT, kFKey, kFA);
  b.FSub(kFU, kFB, kFA);
  b.FDiv(kFT, kFT, kFU);   // t = (key-x0)/(x1-x0), value-dependent FDIV
  b.FSub(kFU, kFD, kFC);
  b.FMul(kFT, kFT, kFU);
  b.FAdd(kFOut, kFC, kFT);
  b.Jump(store);

  b.SwitchTo(store);
  b.StoreF(out, kI, kFOut);
  b.IAddImm(kI, kI, 1);
  b.Jump(qloop);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

Program MakeLuSolveProgram(int n, std::uint64_t link_offset) {
  SPTA_REQUIRE(n >= 2);
  ProgramBuilder b("lu-solve");
  const auto mat = b.AddFpArray("A", static_cast<std::size_t>(n) * n);
  const auto rhs = b.AddFpArray("b", static_cast<std::size_t>(n));

  const BlockId entry = b.NewBlock();
  // LU factorization loops.
  const BlockId k_loop = b.NewBlock();
  const BlockId k_body = b.NewBlock();
  const BlockId i_loop = b.NewBlock();
  const BlockId i_body = b.NewBlock();
  const BlockId j_loop = b.NewBlock();
  const BlockId j_body = b.NewBlock();
  const BlockId i_end = b.NewBlock();
  const BlockId k_end = b.NewBlock();
  // Forward substitution.
  const BlockId f_loop = b.NewBlock();
  const BlockId f_body = b.NewBlock();
  const BlockId fj_loop = b.NewBlock();
  const BlockId fj_body = b.NewBlock();
  const BlockId fj_work = b.NewBlock();
  const BlockId f_end = b.NewBlock();
  // Backward substitution.
  const BlockId b_init = b.NewBlock();
  const BlockId b_loop = b.NewBlock();
  const BlockId b_body = b.NewBlock();
  const BlockId bj_loop = b.NewBlock();
  const BlockId bj_body = b.NewBlock();
  const BlockId b_end = b.NewBlock();
  const BlockId exit = b.NewBlock();

  // r1 = k, r2 = i, r3 = j, r4 = n, r7..r10 temps; f1..f5 temps.
  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kN, n);
  b.IConst(kI, 0);  // k
  b.Jump(k_loop);

  b.SwitchTo(k_loop);
  b.ICmpLt(kT0, kI, kN);
  b.BranchIfZero(kT0, f_loop, k_body);

  b.SwitchTo(k_body);
  b.IAddImm(kJ, kI, 1);  // i = k+1
  b.Jump(i_loop);

  b.SwitchTo(i_loop);
  b.ICmpLt(kT0, kJ, kN);
  b.BranchIfZero(kT0, k_end, i_body);

  b.SwitchTo(i_body);
  // A[i][k] /= A[k][k]
  b.IMul(kT1, kJ, kN);
  b.IAdd(kT1, kT1, kI);   // i*n+k
  b.LoadF(kF2, mat, kT1);
  b.IMul(kT2, kI, kN);
  b.IAdd(kT2, kT2, kI);   // k*n+k
  b.LoadF(kF3, mat, kT2);
  b.FDiv(kF2, kF2, kF3);  // multiplier (value-dependent FDIV)
  b.StoreF(mat, kT1, kF2);
  b.IAddImm(kK, kI, 1);   // j = k+1
  b.Jump(j_loop);

  b.SwitchTo(j_loop);
  b.ICmpLt(kT0, kK, kN);
  b.BranchIfZero(kT0, i_end, j_body);

  b.SwitchTo(j_body);
  // A[i][j] -= A[i][k] * A[k][j]
  b.IMul(kT3, kI, kN);
  b.IAdd(kT3, kT3, kK);   // k*n+j
  b.LoadF(kF4, mat, kT3);
  b.FMul(kF5, kF2, kF4);
  b.IMul(kT3, kJ, kN);
  b.IAdd(kT3, kT3, kK);   // i*n+j
  b.LoadF(kF4, mat, kT3);
  b.FSub(kF4, kF4, kF5);
  b.StoreF(mat, kT3, kF4);
  b.IAddImm(kK, kK, 1);
  b.Jump(j_loop);

  b.SwitchTo(i_end);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(i_loop);

  b.SwitchTo(k_end);
  b.IAddImm(kI, kI, 1);
  b.Jump(k_loop);

  // Forward substitution (y overwrites b): for i = 1..n-1,
  //   b[i] -= sum_{j<i} A[i][j] * b[j].
  b.SwitchTo(f_loop);
  b.IConst(kJ, 1);  // i
  b.Jump(f_body);

  b.SwitchTo(f_body);
  b.ICmpLt(kT0, kJ, kN);
  b.BranchIfZero(kT0, b_init, fj_loop);

  b.SwitchTo(fj_loop);
  b.IConst(kK, 0);        // j
  b.LoadF(kF2, rhs, kJ);  // acc = b[i]
  b.Jump(fj_body);

  b.SwitchTo(fj_body);
  b.ICmpLt(kT0, kK, kJ);
  b.BranchIfZero(kT0, f_end, fj_work);

  b.SwitchTo(fj_work);
  b.IMul(kT1, kJ, kN);
  b.IAdd(kT1, kT1, kK);   // i*n+j
  b.LoadF(kF3, mat, kT1);
  b.LoadF(kF4, rhs, kK);
  b.FMul(kF5, kF3, kF4);
  b.FSub(kF2, kF2, kF5);
  b.IAddImm(kK, kK, 1);
  b.Jump(fj_body);

  b.SwitchTo(f_end);
  b.StoreF(rhs, kJ, kF2);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(f_body);

  // Backward substitution: for i = n-1..0,
  //   b[i] = (b[i] - sum_{j>i} A[i][j]*b[j]) / A[i][i].
  b.SwitchTo(b_init);
  b.IAddImm(kJ, kN, -1);  // i = n-1
  b.Jump(b_loop);

  b.SwitchTo(b_loop);
  b.BranchIfNeg(kJ, exit, b_body);

  b.SwitchTo(b_body);
  b.IAddImm(kK, kJ, 1);   // j = i+1
  b.LoadF(kF2, rhs, kJ);  // acc = b[i]
  b.Jump(bj_loop);

  b.SwitchTo(bj_loop);
  b.ICmpLt(kT0, kK, kN);
  b.BranchIfZero(kT0, b_end, bj_body);

  b.SwitchTo(bj_body);
  b.IMul(kT1, kJ, kN);
  b.IAdd(kT1, kT1, kK);   // i*n+j
  b.LoadF(kF3, mat, kT1);
  b.LoadF(kF4, rhs, kK);
  b.FMul(kF5, kF3, kF4);
  b.FSub(kF2, kF2, kF5);
  b.IAddImm(kK, kK, 1);
  b.Jump(bj_loop);

  b.SwitchTo(b_end);
  b.IMul(kT1, kJ, kN);
  b.IAdd(kT1, kT1, kJ);   // i*n+i
  b.LoadF(kF3, mat, kT1);
  b.FDiv(kF2, kF2, kF3);  // divide by the pivot (value-dependent FDIV)
  b.StoreF(rhs, kJ, kF2);
  b.IAddImm(kJ, kJ, -1);
  b.Jump(b_loop);

  b.SwitchTo(exit);
  b.Halt();

  return b.Build(link_offset);
}

}  // namespace spta::apps
