// Reusable IR workload kernels.
//
// These are the building blocks of the TVCA model and of the ablation
// benches: dense linear algebra, FIR filtering, CRC integrity checks and a
// quaternion-style attitude integrator — the kind of code a model-based
// control-application generator emits. Each factory returns a validated,
// laid-out Program; inputs are poked through the named arrays.
#pragma once

#include <cstdint>

#include "trace/program.hpp"

namespace spta::apps {

/// Dense n x n FP matrix multiply C = A*B (triple loop).
/// Arrays: 0 = A (n*n doubles), 1 = B, 2 = C.
trace::Program MakeMatMulProgram(int n, std::uint64_t link_offset = 0);

/// FIR filter: `samples` outputs of a `taps`-tap filter.
/// Arrays: 0 = coefficients (taps), 1 = input (samples+taps), 2 = output.
trace::Program MakeFirProgram(int taps, int samples,
                              std::uint64_t link_offset = 0);

/// Table-driven CRC over `words` 32-bit words.
/// Arrays: 0 = lookup table (256 ints), 1 = message (words ints).
/// Result register: r20 holds the final CRC.
trace::Program MakeCrcProgram(int words, std::uint64_t link_offset = 0);

/// Quaternion-style attitude integrator: `steps` integration steps, each
/// with a vector update and an FSQRT-based renormalization, plus a
/// data-dependent "large error" correction branch.
/// Arrays: 0 = state (8 doubles), 1 = rates (3*steps doubles).
trace::Program MakeAttitudeProgram(int steps, std::uint64_t link_offset = 0);

/// Bubble sort over `n` int32 keys — the classic WCET benchmark with a
/// data-dependent branch (swap / no swap) in the innermost loop.
/// Arrays: 0 = keys (n ints). Sorts ascending in place.
trace::Program MakeBubbleSortProgram(int n, std::uint64_t link_offset = 0);

/// `queries` binary searches over a sorted table of `n` int32 keys; the
/// path per query depends on where the probe lands.
/// Arrays: 0 = table (n ints, must be sorted ascending), 1 = queries
/// (`queries` ints), 2 = results (`queries` ints: index or -1).
trace::Program MakeBinarySearchProgram(int n, int queries,
                                       std::uint64_t link_offset = 0);

/// Piecewise-linear table interpolation (sensor linearization): `queries`
/// lookups into a `table_size`-breakpoint curve with clamping at both
/// ends (three paths per query: below / inside / above).
/// Arrays: 0 = breakpoints x (table_size doubles, ascending),
///         1 = values y (table_size doubles), 2 = queries (doubles),
///         3 = outputs (doubles).
trace::Program MakeInterpolationProgram(int table_size, int queries,
                                        std::uint64_t link_offset = 0);

/// In-place LU decomposition (Doolittle, no pivoting) of an n x n system
/// followed by forward/backward substitution — FDIV-heavy dense linear
/// algebra, the core of onboard estimators.
/// Arrays: 0 = A (n*n doubles, overwritten with LU), 1 = b (n doubles,
/// overwritten with the solution x).
trace::Program MakeLuSolveProgram(int n, std::uint64_t link_offset = 0);

}  // namespace spta::apps
