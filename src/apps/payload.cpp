#include "apps/payload.hpp"

#include <cmath>

#include "apps/kernels.hpp"
#include "apps/scheduler.hpp"
#include "common/assert.hpp"
#include "common/hash.hpp"
#include "prng/xoshiro.hpp"
#include "trace/interpreter.hpp"

namespace spta::apps {

PayloadApp::PayloadApp(const PayloadConfig& config)
    : config_(config),
      crc_(MakeCrcProgram(config.telemetry_words)),
      sort_(MakeBubbleSortProgram(config.event_queue)),
      calib_(MakeInterpolationProgram(config.calib_table,
                                      config.calib_queries)),
      fir_(MakeFirProgram(config.fir_taps, config.fir_samples)) {
  SPTA_REQUIRE(config.telemetry_words >= 1 && config.event_queue >= 2);
  // Each stage is its own linked region within the payload partition.
  trace::Program* programs[] = {&crc_, &sort_, &calib_, &fir_};
  for (std::size_t i = 0; i < 4; ++i) {
    programs[i]->AssignLayout(config.code_base + 0x10000ULL * i,
                              config.data_base + 0x40000ULL * i);
  }
}

trace::Trace PayloadApp::BuildFrame(std::uint64_t seed) const {
  prng::Xoshiro128pp rng(DeriveSeed(seed, "payload"));

  trace::Interpreter crc(crc_);
  for (int i = 0; i < 256; ++i) {
    crc.WriteInt(0, static_cast<std::size_t>(i),
                 static_cast<std::int32_t>(rng.Next() & 0x7fffffff));
  }
  for (int i = 0; i < config_.telemetry_words; ++i) {
    crc.WriteInt(1, static_cast<std::size_t>(i),
                 static_cast<std::int32_t>(rng.Next() & 0xffff));
  }

  trace::Interpreter sort(sort_);
  for (int i = 0; i < config_.event_queue; ++i) {
    sort.WriteInt(0, static_cast<std::size_t>(i),
                  static_cast<std::int32_t>(rng.UniformBelow(1 << 20)));
  }

  trace::Interpreter calib(calib_);
  for (int i = 0; i < config_.calib_table; ++i) {
    calib.WriteFp(0, static_cast<std::size_t>(i), 0.5 * i);
    calib.WriteFp(1, static_cast<std::size_t>(i),
                  20.0 + 5.0 * std::sin(0.1 * i));
  }
  for (int q = 0; q < config_.calib_queries; ++q) {
    calib.WriteFp(2, static_cast<std::size_t>(q),
                  rng.UniformReal(-2.0,
                                  0.5 * config_.calib_table + 2.0));
  }

  trace::Interpreter fir(fir_);
  for (int k = 0; k < config_.fir_taps; ++k) {
    fir.WriteFp(0, static_cast<std::size_t>(k),
                1.0 / config_.fir_taps);
  }
  for (int i = 0; i < config_.fir_samples + config_.fir_taps; ++i) {
    fir.WriteFp(1, static_cast<std::size_t>(i), rng.Normal());
  }

  const trace::Trace t_crc = crc.Run();
  const trace::Trace t_sort = sort.Run();
  const trace::Trace t_calib = calib.Run();
  const trace::Trace t_fir = fir.Run();

  FrameComposer::Options opts;
  opts.dispatch_overhead_instructions = 128;
  opts.kernel_code_base = config_.code_base + 0xf0000;
  opts.kernel_data_base = config_.data_base + 0x100000;
  const FrameComposer composer(opts);
  return composer.ComposeMajorFrame({
      {&t_crc, 1, /*priority=*/1, /*minor=*/0},
      {&t_sort, 1, 2, 0},
      {&t_calib, 1, 3, 0},
      {&t_fir, 1, 4, 0},
  });
}

}  // namespace spta::apps
