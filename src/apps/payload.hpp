// Payload application model: the "other" software on the multicore.
//
// Integrated architectures (the avionics case studies the paper cites) put
// payload processing — telemetry integrity, event triage, sensor
// calibration, signal conditioning — on the cores the control partition
// does not use. This model composes those stages from the kernel suite
// into a periodic payload frame, linked into its own address region so it
// only interacts with the control application through the shared bus, L2
// and DRAM.
#pragma once

#include <cstdint>

#include "trace/program.hpp"
#include "trace/record.hpp"

namespace spta::apps {

struct PayloadConfig {
  int telemetry_words = 4096;  ///< CRC'd telemetry block (words).
  int event_queue = 96;        ///< Events triaged (sorted) per frame.
  int calib_table = 128;       ///< Calibration curve breakpoints.
  int calib_queries = 96;      ///< Samples calibrated per frame.
  int fir_taps = 24;
  int fir_samples = 256;
  /// Base of the payload's address region (must not overlap the control
  /// application's region).
  Address code_base = 0x70000000;
  Address data_base = 0x70400000;
};

class PayloadApp {
 public:
  PayloadApp() : PayloadApp(PayloadConfig{}) {}
  explicit PayloadApp(const PayloadConfig& config);

  /// Builds one payload frame trace with inputs drawn from `seed`
  /// (deterministic per seed): CRC -> event sort -> calibration -> FIR,
  /// composed with dispatcher overhead like the control frame.
  trace::Trace BuildFrame(std::uint64_t seed) const;

  const PayloadConfig& config() const { return config_; }

 private:
  PayloadConfig config_;
  trace::Program crc_;
  trace::Program sort_;
  trace::Program calib_;
  trace::Program fir_;
};

}  // namespace spta::apps
