#include "apps/rta.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace spta::apps {

std::vector<RtaResult> ResponseTimeAnalysis(
    const std::vector<PeriodicTaskSpec>& tasks,
    const std::vector<Cycles>& wcet) {
  SPTA_REQUIRE(!tasks.empty());
  SPTA_REQUIRE(tasks.size() == wcet.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    SPTA_REQUIRE(wcet[i] >= 1);
    SPTA_REQUIRE(tasks[i].period > 0 && tasks[i].deadline > 0);
  }

  std::vector<RtaResult> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out[i].name = tasks[i].name;
    Cycles r = wcet[i];
    bool converged = false;
    // Fixed-point iteration; bounded by the deadline, so it terminates.
    for (int iter = 0; iter < 10000; ++iter) {
      Cycles next = wcet[i];
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (j == i || tasks[j].priority >= tasks[i].priority) continue;
        const Cycles releases = (r + tasks[j].period - 1) / tasks[j].period;
        next += releases * wcet[j];
      }
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > tasks[i].deadline) break;  // already unschedulable
    }
    out[i].response_time = r;
    out[i].converged = converged;
    out[i].schedulable = converged && r <= tasks[i].deadline;
  }
  return out;
}

}  // namespace spta::apps
