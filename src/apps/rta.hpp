// Classic response-time analysis (RTA) for fixed-priority preemptive
// scheduling (Joseph & Pandya / Audsley).
//
// Downstream use of MBPTA: the pWCET at the standard-mandated cutoff
// probability becomes the execution-time budget C_i, and RTA converts the
// budgets into a schedulability verdict. Cross-checked in tests against
// SimulateFixedPriority.
#pragma once

#include <vector>

#include "apps/scheduler.hpp"
#include "common/types.hpp"

namespace spta::apps {

/// RTA outcome for one task.
struct RtaResult {
  std::string name;
  Cycles response_time = 0;  ///< Fixed point R_i (0 if diverged).
  bool schedulable = false;  ///< R_i <= deadline.
  bool converged = false;    ///< Fixed point found within the deadline.
};

/// Computes response times R_i = C_i + sum_{j in hp(i)} ceil(R_i/T_j)*C_j
/// by fixed-point iteration. Requires distinct priorities, wcet[i] >= 1.
/// Iteration stops (converged=false) once R exceeds the deadline.
std::vector<RtaResult> ResponseTimeAnalysis(
    const std::vector<PeriodicTaskSpec>& tasks,
    const std::vector<Cycles>& wcet);

}  // namespace spta::apps
