#include "apps/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::apps {

FrameComposer::FrameComposer(Options options) : options_(options) {}

void FrameComposer::AppendDispatcher(trace::Trace& out, int job_index) const {
  // A deterministic stand-in for the RTOS dispatch path: walk the TCB
  // array (loads), update the ready queue (stores), take the dispatch
  // branch. Code and data live in a dedicated kernel region so the
  // dispatcher competes for cache space with the tasks, as on real systems.
  using trace::OpClass;
  using trace::TraceRecord;
  const std::size_t n = options_.dispatch_overhead_instructions;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.pc = options_.kernel_code_base + 4 * (i % 160);
    const std::size_t phase = i % 8;
    if (phase < 2) {
      r.op = OpClass::kLoad;  // TCB fields
      r.mem_addr = options_.kernel_data_base +
                   32ULL * static_cast<std::uint64_t>(job_index % 16) +
                   4 * phase;
    } else if (phase == 2) {
      r.op = OpClass::kStore;  // ready-queue update
      r.mem_addr = options_.kernel_data_base + 0x400 +
                   8ULL * static_cast<std::uint64_t>(job_index % 32);
    } else if (phase == 7) {
      r.op = OpClass::kBranch;
      r.branch_taken = true;
    } else {
      r.op = OpClass::kIntAlu;
    }
    out.records.push_back(r);
  }
}

trace::Trace FrameComposer::ComposeMajorFrame(
    const std::vector<FrameSlot>& slots) const {
  SPTA_REQUIRE(!slots.empty());
  std::vector<const FrameSlot*> order;
  order.reserve(slots.size());
  int max_minor = 0;
  for (const auto& s : slots) {
    SPTA_REQUIRE(s.job_trace != nullptr && s.jobs >= 1 && s.minor >= 0);
    order.push_back(&s);
    max_minor = std::max(max_minor, s.minor);
  }
  // Minor frame first, then priority within the minor frame.
  std::stable_sort(order.begin(), order.end(),
                   [](const FrameSlot* a, const FrameSlot* b) {
                     if (a->minor != b->minor) return a->minor < b->minor;
                     return a->priority < b->priority;
                   });
  trace::Trace out;
  std::uint64_t sig = 0x9e3779b9u;
  int job_index = 0;
  for (const FrameSlot* slot : order) {
    for (int j = 0; j < slot->jobs; ++j) {
      AppendDispatcher(out, job_index++);
      out.records.insert(out.records.end(), slot->job_trace->records.begin(),
                         slot->job_trace->records.end());
      sig = HashCombine(sig, slot->job_trace->path_signature);
    }
  }
  out.path_signature = sig;
  return out;
}

Cycles Hyperperiod(const std::vector<PeriodicTaskSpec>& tasks) {
  SPTA_REQUIRE(!tasks.empty());
  Cycles l = 1;
  constexpr Cycles kCap = 1ULL << 62;
  for (const auto& t : tasks) {
    SPTA_REQUIRE(t.period > 0);
    const Cycles g = std::gcd(l, t.period);
    if (l / g > kCap / t.period) return kCap;
    l = l / g * t.period;
  }
  return l;
}

double Utilization(const std::vector<PeriodicTaskSpec>& tasks,
                   const std::vector<Cycles>& wcet) {
  SPTA_REQUIRE(tasks.size() == wcet.size());
  double u = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    u += static_cast<double>(wcet[i]) / static_cast<double>(tasks[i].period);
  }
  return u;
}

std::vector<ScheduledTaskResult> SimulateFixedPriority(
    const std::vector<PeriodicTaskSpec>& tasks,
    const std::vector<Cycles>& wcet, Cycles horizon) {
  SPTA_REQUIRE(!tasks.empty());
  SPTA_REQUIRE(tasks.size() == wcet.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    SPTA_REQUIRE(tasks[i].period > 0 && tasks[i].deadline > 0);
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      SPTA_REQUIRE_MSG(tasks[i].priority != tasks[j].priority,
                       "priorities must be distinct");
    }
  }

  struct Job {
    std::size_t task;
    Cycles release;
    Cycles remaining;
    Cycles absolute_deadline;
  };
  std::vector<ScheduledTaskResult> results(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    results[i].name = tasks[i].name;
  }

  // Event-driven simulation: at any moment run the highest-priority ready
  // job until it finishes or the next release preempts it.
  std::vector<Job> ready;
  std::vector<Cycles> next_release(tasks.size(), 0);
  Cycles now = 0;
  while (now < horizon) {
    // Release everything due at `now`.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      while (next_release[i] <= now) {
        ready.push_back({i, next_release[i], wcet[i],
                         next_release[i] + tasks[i].deadline});
        ++results[i].jobs_released;
        next_release[i] += tasks[i].period;
      }
    }
    // Earliest future release (preemption point).
    Cycles next_event = horizon;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      next_event = std::min(next_event, next_release[i]);
    }
    if (ready.empty()) {
      now = next_event;
      continue;
    }
    // Pick the highest-priority ready job.
    auto it = std::min_element(
        ready.begin(), ready.end(), [&](const Job& a, const Job& b) {
          return tasks[a.task].priority < tasks[b.task].priority;
        });
    const Cycles slice = std::min(it->remaining, next_event - now);
    SPTA_CHECK(slice > 0);
    it->remaining -= slice;
    now += slice;
    if (it->remaining == 0) {
      ScheduledTaskResult& r = results[it->task];
      const Cycles response = now - it->release;
      r.worst_response = std::max(r.worst_response, response);
      if (now > it->absolute_deadline) ++r.deadline_misses;
      ready.erase(it);
    }
  }
  return results;
}

}  // namespace spta::apps
