// Fixed-priority scheduling: trace-level frame composition and a
// discrete-time preemptive scheduler simulator.
//
// TVCA runs bare-metal with a fixed-priority scheduler over 3 periodic
// tasks (paper Section III). Two complementary views are provided:
//
//  * FrameComposer — builds the *measured entity*: the end-to-end dynamic
//    trace of one major frame, with each task's jobs dispatched in priority
//    order and explicit dispatcher-overhead instructions between jobs (the
//    RTOS tick/dispatch code also occupies cache and costs time).
//
//  * SimulateFixedPriority / within rta.hpp — scheduling analysis over
//    execution-time *budgets*, used to turn pWCET estimates into
//    schedulability statements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace spta::apps {

/// Static description of a periodic task.
struct PeriodicTaskSpec {
  std::string name;
  Cycles period = 0;    ///< Release period.
  Cycles deadline = 0;  ///< Relative deadline (<= period).
  int priority = 0;     ///< Smaller value = higher priority.
};

/// One job of a major frame: a task's trace, its priority, and the minor
/// frame in which it is released (harmonic schedules release jobs of the
/// faster tasks in every minor frame).
struct FrameSlot {
  const trace::Trace* job_trace = nullptr;
  int jobs = 1;      ///< Back-to-back repeats of this trace in the minor.
  int priority = 0;  ///< Smaller = higher priority.
  int minor = 0;     ///< Minor frame index this job is released in.
};

/// Composes the dynamic trace of one major frame, cyclic-executive style:
/// minor frames run in order; within a minor frame the released jobs run
/// in priority order (highest first). Each job is preceded by dispatcher
/// overhead of `dispatch_overhead_instructions` synthetic RTOS instructions
/// touching the kernel's TCB region. The frame's path signature combines
/// the slot signatures, so per-path analysis distinguishes frames whose
/// tasks took different paths.
class FrameComposer {
 public:
  struct Options {
    std::size_t dispatch_overhead_instructions = 64;
    Address kernel_code_base = 0x40f00000;
    Address kernel_data_base = 0x40f80000;
  };

  FrameComposer() : FrameComposer(Options{}) {}
  explicit FrameComposer(Options options);

  trace::Trace ComposeMajorFrame(const std::vector<FrameSlot>& slots) const;

 private:
  void AppendDispatcher(trace::Trace& out, int job_index) const;

  Options options_;
};

/// Result of simulating one task under fixed-priority preemptive scheduling.
struct ScheduledTaskResult {
  std::string name;
  Cycles worst_response = 0;  ///< Max response time over simulated jobs.
  std::uint64_t jobs_released = 0;
  std::uint64_t deadline_misses = 0;
};

/// Simulates preemptive fixed-priority scheduling of `tasks` (budgets in
/// `wcet[i]` cycles) over `horizon` cycles on one core, releases at t=0 and
/// every period. Returns per-task worst response times and deadline misses.
/// Requires distinct priorities.
std::vector<ScheduledTaskResult> SimulateFixedPriority(
    const std::vector<PeriodicTaskSpec>& tasks,
    const std::vector<Cycles>& wcet, Cycles horizon);

/// Least common multiple of the task periods (the hyperperiod); saturates
/// at ~2^62 to avoid overflow.
Cycles Hyperperiod(const std::vector<PeriodicTaskSpec>& tasks);

/// Total utilization sum(wcet_i / period_i).
double Utilization(const std::vector<PeriodicTaskSpec>& tasks,
                   const std::vector<Cycles>& wcet);

}  // namespace spta::apps
