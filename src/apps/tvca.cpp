#include "apps/tvca.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "prng/xoshiro.hpp"
#include "trace/interpreter.hpp"

namespace spta::apps {

using trace::ArrayId;
using trace::BlockId;
using trace::Program;
using trace::ProgramBuilder;
using trace::RegId;

const char* ToString(TvcaTask task) {
  switch (task) {
    case TvcaTask::kSensorAcq:
      return "sensor-acq";
    case TvcaTask::kActuatorX:
      return "actuator-x";
    case TvcaTask::kActuatorY:
      return "actuator-y";
  }
  return "?";
}

namespace {

// Emits `count` straight-line instructions into the builder's current
// block: the large inlined arithmetic sections typical of model-generated
// control code. The mix (FP multiply-accumulate with interspersed loads,
// stores and integer updates) is deterministic, so the program — and with
// it the code footprint that pressures the IL1 — is identical on every
// build. `scratch` must be an FP array of at least `scratch_len` elements,
// and integer register 15 must hold zero.
void AppendStraightline(ProgramBuilder& b, ArrayId scratch,
                        std::int64_t scratch_len, int count) {
  std::uint32_t lcg = 0x2545f491u;
  for (int i = 0; i < count; ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    const std::int64_t idx =
        static_cast<std::int64_t>(lcg >> 8) % scratch_len;
    switch (lcg % 8u) {
      case 0:
      case 1:
        b.LoadF(3, scratch, 15, idx);
        break;
      case 2:
        b.StoreF(scratch, 15, 4, idx);
        break;
      case 3:
        b.FMul(4, 3, 3);
        break;
      case 4:
        b.FAdd(4, 4, 3);
        break;
      case 5:
        b.IAddImm(7, 7, 1);
        break;
      case 6:
        b.FSub(4, 4, 3);
        break;
      default:
        b.IXor(8, 7, 7);
        break;
    }
  }
}

// Shared register conventions.
constexpr RegId kC = 1;      // outer loop counter
constexpr RegId kJ = 2;      // middle loop counter
constexpr RegId kK = 3;      // inner loop counter
constexpr RegId kB0 = 4;     // outer bound
constexpr RegId kB1 = 5;     // middle bound
constexpr RegId kCond = 6;   // branch condition
constexpr RegId kT0 = 7, kT1 = 8, kT2 = 9, kT3 = 10;
constexpr RegId kZero = 15;
constexpr RegId kB2 = 16;    // inner bound
constexpr RegId kRowLen = 17;

constexpr RegId kAcc = 1;    // FP accumulator
constexpr RegId kF2 = 2, kF3 = 3, kF4 = 4, kF5 = 5, kF6 = 6, kF7 = 7;
constexpr RegId kLimit = 10;
constexpr RegId kQ0 = 11, kQ1 = 12, kQ2 = 13, kQ3 = 14;

// Sensor program array ids (order of declaration below).
constexpr ArrayId kRaw = 0, kGains = 1, kCoef = 2, kFiltered = 3,
                  kFaults = 4, kSMode = 5, kOffsets = 6;
// Actuator program array ids.
constexpr ArrayId kMatA = 0, kGainK = 1, kStateX = 2, kWorkY = 3, kCmdU = 4,
                  kAMode = 5, kRates = 6, kQState = 7, kSched = 8;
// Telemetry scratch region per task (written by the straight-line telemetry
// sections): 512 doubles = 4KB, a quarter of the DL1.
constexpr std::int64_t kTelemetryLen = 512;
}  // namespace

TvcaApp::TvcaApp(const TvcaConfig& config)
    : config_(config),
      programs_{BuildSensorProgram(),
                BuildActuatorProgram("actuator-x", config.state_dim,
                                     config.integrator_steps / 2 + 1),
                BuildActuatorProgram("actuator-y", config.state_dim,
                                     config.integrator_steps)} {
  SPTA_REQUIRE(config.sensor_channels >= 1 && config.samples_per_frame >= 1);
  SPTA_REQUIRE(config.fir_taps >= 1 && config.state_dim >= 2);
  SPTA_REQUIRE(config.integrator_steps >= 1);
  // Each task is a separately linked binary region: disjoint code and data
  // addresses (otherwise the tasks would artificially alias in the caches).
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    programs_[i].AssignLayout(0x40000000 + 0x10000ULL * i,
                              0x40100000 + 0x40000ULL * i,
                              /*link_offset=*/0, config.layout_seed);
  }
}

const Program& TvcaApp::program(TvcaTask task) const {
  return programs_[static_cast<std::size_t>(task)];
}

Program TvcaApp::BuildSensorProgram() const {
  const int channels = config_.sensor_channels;
  const int samples = config_.samples_per_frame;
  const int taps = config_.fir_taps;
  const int row = samples + taps;

  ProgramBuilder b("tvca-sensor");
  const auto raw =
      b.AddIntArray("raw", static_cast<std::size_t>(channels) * row);
  const auto gains = b.AddFpArray("gains", static_cast<std::size_t>(channels));
  const auto coef = b.AddFpArray("coef", static_cast<std::size_t>(taps));
  const auto filtered = b.AddFpArray(
      "filtered", static_cast<std::size_t>(channels) * samples);
  const auto faults =
      b.AddIntArray("faults", static_cast<std::size_t>(channels));
  const auto mode = b.AddIntArray("mode", 1);
  const auto offsets =
      b.AddFpArray("offsets", static_cast<std::size_t>(channels));
  const auto telemetry = b.AddFpArray("telemetry", kTelemetryLen);
  SPTA_CHECK(raw == kRaw && gains == kGains && coef == kCoef &&
             filtered == kFiltered && faults == kFaults && mode == kSMode &&
             offsets == kOffsets);

  const BlockId entry = b.NewBlock();
  const BlockId chan_loop = b.NewBlock();
  const BlockId chan_body = b.NewBlock();
  const BlockId samp_loop = b.NewBlock();
  const BlockId samp_body = b.NewBlock();
  const BlockId conv_loop = b.NewBlock();
  const BlockId conv_body = b.NewBlock();
  const BlockId conv_end = b.NewBlock();
  const BlockId saturate = b.NewBlock();
  const BlockId store_ok = b.NewBlock();
  const BlockId chan_end = b.NewBlock();
  const BlockId calib_check = b.NewBlock();
  const BlockId calib_init = b.NewBlock();
  const BlockId calib_loop = b.NewBlock();
  const BlockId calib_body = b.NewBlock();
  const BlockId cal_sum_loop = b.NewBlock();
  const BlockId cal_sum_body = b.NewBlock();
  const BlockId cal_store = b.NewBlock();
  const BlockId exit = b.NewBlock();

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kB0, channels);
  b.IConst(kB1, samples);
  b.IConst(kB2, taps);
  b.IConst(kRowLen, row);
  b.IConst(kZero, 0);
  b.FConst(kLimit, 3.0);  // engineering-unit saturation limit
  b.IConst(kC, 0);
  b.Jump(chan_loop);

  b.SwitchTo(chan_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, calib_check, chan_body);

  b.SwitchTo(chan_body);
  b.IConst(kJ, 0);
  b.Jump(samp_loop);

  b.SwitchTo(samp_loop);
  b.ICmpLt(kCond, kJ, kB1);
  b.BranchIfZero(kCond, chan_end, samp_body);

  b.SwitchTo(samp_body);
  b.FConst(kAcc, 0.0);
  b.IConst(kK, 0);
  b.Jump(conv_loop);

  b.SwitchTo(conv_loop);
  b.ICmpLt(kCond, kK, kB2);
  b.BranchIfZero(kCond, conv_end, conv_body);

  b.SwitchTo(conv_body);
  // raw[c*row + j + k]: ADC word -> scale by channel gain -> FIR tap.
  b.IMul(kT0, kC, kRowLen);
  b.IAdd(kT1, kT0, kJ);
  b.IAdd(kT1, kT1, kK);
  b.LoadI(kT2, kRaw, kT1);
  b.IToF(kF2, kT2);
  b.LoadF(kF3, kGains, kC);
  b.FMul(kF2, kF2, kF3);
  b.LoadF(kF4, kCoef, kK);
  b.FMul(kF5, kF2, kF4);
  b.FAdd(kAcc, kAcc, kF5);
  b.IAddImm(kK, kK, 1);
  b.Jump(conv_loop);

  b.SwitchTo(conv_end);
  // Range check: |y| > limit takes the saturation path.
  b.FAbs(kF2, kAcc);
  b.FCmpLt(kCond, kLimit, kF2);
  b.BranchIfZero(kCond, store_ok, saturate);

  b.SwitchTo(saturate);
  b.FMove(kAcc, kLimit);
  b.LoadI(kT2, kFaults, kC);
  b.IAddImm(kT2, kT2, 1);
  b.StoreI(kFaults, kC, kT2);
  b.Jump(store_ok);

  b.SwitchTo(store_ok);
  b.IMul(kT0, kC, kB1);
  b.IAdd(kT1, kT0, kJ);
  b.StoreF(kFiltered, kT1, kAcc);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(samp_loop);

  b.SwitchTo(chan_end);
  b.IAddImm(kC, kC, 1);
  b.Jump(chan_loop);

  b.SwitchTo(calib_check);
  b.LoadI(kT0, kSMode, kZero);
  b.BranchIfZero(kT0, exit, calib_init);

  b.SwitchTo(calib_init);
  b.IConst(kC, 0);
  b.Jump(calib_loop);

  b.SwitchTo(calib_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, exit, calib_body);

  b.SwitchTo(calib_body);
  b.FConst(kAcc, 0.0);
  b.IConst(kJ, 0);
  b.Jump(cal_sum_loop);

  b.SwitchTo(cal_sum_loop);
  b.ICmpLt(kCond, kJ, kB1);
  b.BranchIfZero(kCond, cal_store, cal_sum_body);

  b.SwitchTo(cal_sum_body);
  b.IMul(kT0, kC, kB1);
  b.IAdd(kT1, kT0, kJ);
  b.LoadF(kF2, kFiltered, kT1);
  b.FAdd(kAcc, kAcc, kF2);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(cal_sum_loop);

  b.SwitchTo(cal_store);
  b.IToF(kF3, kB1);
  b.FDiv(kF2, kAcc, kF3);  // channel mean (value-dependent FDIV)
  b.StoreF(kOffsets, kC, kF2);
  b.IAddImm(kC, kC, 1);
  b.Jump(calib_loop);

  b.SwitchTo(exit);
  // Inlined post-processing section (health/telemetry conditioning in the
  // real generated code): straight-line, executed once per job.
  AppendStraightline(b, telemetry, kTelemetryLen,
                     config_.straightline_instructions);
  b.Halt();

  return b.Build();
}

Program TvcaApp::BuildActuatorProgram(const char* name, int dim,
                                      int steps) const {
  SPTA_REQUIRE(dim >= 2 && steps >= 1);
  ProgramBuilder b(name);
  const auto mat_a =
      b.AddFpArray("A", static_cast<std::size_t>(dim) * dim);
  const auto gain_k = b.AddFpArray("K", static_cast<std::size_t>(dim));
  const auto state_x = b.AddFpArray("x", static_cast<std::size_t>(dim));
  const auto work_y = b.AddFpArray("y", static_cast<std::size_t>(dim));
  const auto cmd_u = b.AddFpArray("u", static_cast<std::size_t>(dim));
  const auto mode = b.AddIntArray("mode", 1);
  const auto rates =
      b.AddFpArray("rates", static_cast<std::size_t>(steps) * 3);
  const auto qstate = b.AddFpArray("q", 8);
  const auto sched =
      b.AddFpArray("sched", static_cast<std::size_t>(dim) * dim);
  const auto telemetry = b.AddFpArray("telemetry", kTelemetryLen);
  SPTA_CHECK(mat_a == kMatA && gain_k == kGainK && state_x == kStateX &&
             work_y == kWorkY && cmd_u == kCmdU && mode == kAMode &&
             rates == kRates && qstate == kQState && sched == kSched);

  const BlockId entry = b.NewBlock();
  const BlockId refine_loop = b.NewBlock();
  const BlockId refine_body = b.NewBlock();
  const BlockId refine_end = b.NewBlock();
  const BlockId mv_loop = b.NewBlock();
  const BlockId mv_body = b.NewBlock();
  const BlockId mv_inner = b.NewBlock();
  const BlockId mv_inner_body = b.NewBlock();
  const BlockId mv_store = b.NewBlock();
  const BlockId dot_init = b.NewBlock();
  const BlockId dot_loop = b.NewBlock();
  const BlockId dot_body = b.NewBlock();
  const BlockId u_init = b.NewBlock();
  const BlockId u_loop = b.NewBlock();
  const BlockId u_body = b.NewBlock();
  const BlockId mag_check = b.NewBlock();
  const BlockId clamp_init = b.NewBlock();
  const BlockId clamp_loop = b.NewBlock();
  const BlockId clamp_body = b.NewBlock();
  const BlockId mode_check = b.NewBlock();
  const BlockId stab_init = b.NewBlock();
  const BlockId stab_loop = b.NewBlock();
  const BlockId stab_body = b.NewBlock();
  const BlockId stab_exit = b.NewBlock();
  const BlockId exit = b.NewBlock();

  constexpr RegId kIter = 18;
  constexpr RegId kIters = 19;

  b.SetEntry(entry);
  b.SwitchTo(entry);
  b.IConst(kB0, dim);
  b.IConst(kB1, steps);
  b.IConst(kZero, 0);
  b.FConst(kLimit, 2.0);  // command magnitude limit
  b.IConst(kIter, 0);
  b.IConst(kIters, config_.control_iterations);
  b.Jump(refine_loop);

  // --- control-law refinement loop ----------------------------------------
  b.SwitchTo(refine_loop);
  b.ICmpLt(kCond, kIter, kIters);
  b.BranchIfZero(kCond, mode_check, refine_body);

  b.SwitchTo(refine_body);
  b.IConst(kC, 0);
  b.Jump(mv_loop);

  b.SwitchTo(refine_end);
  b.IAddImm(kIter, kIter, 1);
  b.Jump(refine_loop);

  // --- y = A * x ---------------------------------------------------------
  b.SwitchTo(mv_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, dot_init, mv_body);

  b.SwitchTo(mv_body);
  b.FConst(kAcc, 0.0);
  b.IConst(kJ, 0);
  b.Jump(mv_inner);

  b.SwitchTo(mv_inner);
  b.ICmpLt(kCond, kJ, kB0);
  b.BranchIfZero(kCond, mv_store, mv_inner_body);

  b.SwitchTo(mv_inner_body);
  b.IMul(kT0, kC, kB0);
  b.IAdd(kT1, kT0, kJ);
  b.LoadF(kF2, kMatA, kT1);
  b.LoadF(kF6, kSched, kT1);  // gain-scheduled correction term
  b.FAdd(kF2, kF2, kF6);
  b.LoadF(kF3, kStateX, kJ);
  b.FMul(kF4, kF2, kF3);
  b.FAdd(kAcc, kAcc, kF4);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(mv_inner);

  b.SwitchTo(mv_store);
  b.StoreF(kWorkY, kC, kAcc);
  b.IAddImm(kC, kC, 1);
  b.Jump(mv_loop);

  // --- d = K . y ----------------------------------------------------------
  b.SwitchTo(dot_init);
  b.FConst(kF5, 0.0);
  b.IConst(kC, 0);
  b.Jump(dot_loop);

  b.SwitchTo(dot_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, u_init, dot_body);

  b.SwitchTo(dot_body);
  b.LoadF(kF2, kGainK, kC);
  b.LoadF(kF3, kWorkY, kC);
  b.FMul(kF4, kF2, kF3);
  b.FAdd(kF5, kF5, kF4);
  b.IAddImm(kC, kC, 1);
  b.Jump(dot_loop);

  // --- u = y - d*K; magsq = |u|^2 ----------------------------------------
  b.SwitchTo(u_init);
  b.FConst(kF6, 0.0);
  b.IConst(kC, 0);
  b.Jump(u_loop);

  b.SwitchTo(u_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, mag_check, u_body);

  b.SwitchTo(u_body);
  b.LoadF(kF2, kWorkY, kC);
  b.LoadF(kF3, kGainK, kC);
  b.FMul(kF4, kF5, kF3);
  b.FSub(kF2, kF2, kF4);
  b.StoreF(kCmdU, kC, kF2);
  b.FMul(kF4, kF2, kF2);
  b.FAdd(kF6, kF6, kF4);
  b.IAddImm(kC, kC, 1);
  b.Jump(u_loop);

  // --- magnitude limiting -------------------------------------------------
  b.SwitchTo(mag_check);
  b.FSqrt(kF7, kF6);  // |u| (value-dependent FSQRT)
  b.FCmpLt(kCond, kLimit, kF7);
  b.BranchIfZero(kCond, refine_end, clamp_init);

  b.SwitchTo(clamp_init);
  b.IConst(kC, 0);
  b.Jump(clamp_loop);

  b.SwitchTo(clamp_loop);
  b.ICmpLt(kCond, kC, kB0);
  b.BranchIfZero(kCond, refine_end, clamp_body);

  b.SwitchTo(clamp_body);
  b.LoadF(kF2, kCmdU, kC);
  b.FDiv(kF2, kF2, kF7);   // normalize (value-dependent FDIV)
  b.FMul(kF2, kF2, kLimit);
  b.StoreF(kCmdU, kC, kF2);
  b.IAddImm(kC, kC, 1);
  b.Jump(clamp_loop);

  // --- maneuver-mode stabilization pass ------------------------------------
  b.SwitchTo(mode_check);
  b.LoadI(kT0, kAMode, kZero);
  b.BranchIfZero(kT0, exit, stab_init);

  b.SwitchTo(stab_init);
  b.LoadF(kQ0, kQState, kZero, 0);
  b.LoadF(kQ1, kQState, kZero, 1);
  b.LoadF(kQ2, kQState, kZero, 2);
  b.LoadF(kQ3, kQState, kZero, 3);
  b.FConst(kF7, 0.005);  // half dt
  b.IConst(kJ, 0);
  b.Jump(stab_loop);

  b.SwitchTo(stab_loop);
  b.ICmpLt(kCond, kJ, kB1);
  b.BranchIfZero(kCond, stab_exit, stab_body);

  b.SwitchTo(stab_body);
  b.IConst(kT0, 3);
  b.IMul(kT1, kJ, kT0);
  b.LoadF(kF2, kRates, kT1, 0);  // wx
  b.LoadF(kF3, kRates, kT1, 1);  // wy
  b.LoadF(kF4, kRates, kT1, 2);  // wz
  // First-order quaternion update.
  b.FMul(kF5, kF2, kQ1);
  b.FMul(kF5, kF5, kF7);
  b.FAdd(kQ0, kQ0, kF5);
  b.FMul(kF5, kF3, kQ2);
  b.FMul(kF5, kF5, kF7);
  b.FAdd(kQ1, kQ1, kF5);
  b.FMul(kF5, kF4, kQ3);
  b.FMul(kF5, kF5, kF7);
  b.FAdd(kQ2, kQ2, kF5);
  b.FMul(kF5, kF2, kQ0);
  b.FMul(kF5, kF5, kF7);
  b.FSub(kQ3, kQ3, kF5);
  // Renormalize: FSQRT + 4 value-dependent FDIVs.
  b.FMul(kF6, kQ0, kQ0);
  b.FMul(kF5, kQ1, kQ1);
  b.FAdd(kF6, kF6, kF5);
  b.FMul(kF5, kQ2, kQ2);
  b.FAdd(kF6, kF6, kF5);
  b.FMul(kF5, kQ3, kQ3);
  b.FAdd(kF6, kF6, kF5);
  b.FSqrt(kF6, kF6);
  b.FDiv(kQ0, kQ0, kF6);
  b.FDiv(kQ1, kQ1, kF6);
  b.FDiv(kQ2, kQ2, kF6);
  b.FDiv(kQ3, kQ3, kF6);
  b.IAddImm(kJ, kJ, 1);
  b.Jump(stab_loop);

  b.SwitchTo(stab_exit);
  b.StoreF(kQState, kZero, kQ0, 0);
  b.StoreF(kQState, kZero, kQ1, 1);
  b.StoreF(kQState, kZero, kQ2, 2);
  b.StoreF(kQState, kZero, kQ3, 3);
  b.Jump(exit);

  b.SwitchTo(exit);
  // Inlined gain-scheduling / telemetry section, straight-line per job.
  AppendStraightline(b, telemetry, kTelemetryLen,
                     config_.straightline_instructions);
  b.Halt();

  return b.Build();
}

TvcaScenario TvcaApp::DrawScenario(std::uint64_t scenario_seed) const {
  prng::Xoshiro128pp rng(DeriveSeed(scenario_seed, "modes"));
  TvcaScenario s;
  s.calibration = rng.UniformUnit() < config_.calibration_prob;
  s.maneuver_x = rng.UniformUnit() < config_.maneuver_x_prob;
  s.maneuver_y = rng.UniformUnit() < config_.maneuver_y_prob;
  return s;
}

trace::Trace TvcaApp::BuildTaskTrace(TvcaTask task,
                                     std::uint64_t scenario_seed) const {
  return BuildTaskTrace(task, scenario_seed, DrawScenario(scenario_seed));
}

trace::Trace TvcaApp::BuildTaskTrace(TvcaTask task, std::uint64_t input_seed,
                                     const TvcaScenario& scenario) const {
  const Program& prog = program(task);
  trace::Interpreter interp(prog);
  prng::Xoshiro128pp rng(DeriveSeed(input_seed, ToString(task)));

  if (task == TvcaTask::kSensorAcq) {
    const int channels = config_.sensor_channels;
    const int row = config_.samples_per_frame + config_.fir_taps;
    for (int c = 0; c < channels; ++c) {
      for (int i = 0; i < row; ++i) {
        double v = 2048.0 +
                   600.0 * std::sin(0.31 * static_cast<double>(i) +
                                    0.8 * static_cast<double>(c)) +
                   50.0 * rng.Normal();
        if (rng.UniformUnit() < config_.spike_prob) v += 4000.0;
        interp.WriteInt(kRaw, static_cast<std::size_t>(c * row + i),
                        static_cast<std::int32_t>(v));
      }
      interp.WriteFp(kGains, static_cast<std::size_t>(c),
                     0.0005 * rng.UniformReal(0.9, 1.1));
    }
    for (int k = 0; k < config_.fir_taps; ++k) {
      interp.WriteFp(kCoef, static_cast<std::size_t>(k),
                     (1.0 / config_.fir_taps) * rng.UniformReal(0.8, 1.2));
    }
    interp.WriteInt(kSMode, 0, scenario.calibration ? 1 : 0);
  } else {
    const bool maneuver = task == TvcaTask::kActuatorX ? scenario.maneuver_x
                                                       : scenario.maneuver_y;
    const int dim = config_.state_dim;
    const int steps = task == TvcaTask::kActuatorX
                          ? config_.integrator_steps / 2 + 1
                          : config_.integrator_steps;
    for (int i = 0; i < dim; ++i) {
      for (int j = 0; j < dim; ++j) {
        double a = 0.1 * (rng.UniformUnit() - 0.5);
        if (i == j) a += 0.85;
        interp.WriteFp(kMatA, static_cast<std::size_t>(i * dim + j), a);
        interp.WriteFp(kSched, static_cast<std::size_t>(i * dim + j),
                       0.05 * (rng.UniformUnit() - 0.5));
      }
      interp.WriteFp(kGainK, static_cast<std::size_t>(i),
                     rng.UniformReal(0.3, 0.5));
      const double amp = maneuver ? 1.4 : 0.35;
      interp.WriteFp(kStateX, static_cast<std::size_t>(i),
                     amp * rng.Normal());
    }
    interp.WriteInt(kAMode, 0, maneuver ? 1 : 0);
    for (int s = 0; s < 3 * steps; ++s) {
      const double amp = maneuver ? rng.UniformReal(0.6, 1.4)
                                  : rng.UniformReal(0.02, 0.12);
      interp.WriteFp(kRates, static_cast<std::size_t>(s),
                     amp * (rng.UniformUnit() < 0.5 ? -1.0 : 1.0));
    }
    // Unit quaternion initial attitude.
    interp.WriteFp(kQState, 0, 1.0);
    interp.WriteFp(kQState, 1, 0.0);
    interp.WriteFp(kQState, 2, 0.0);
    interp.WriteFp(kQState, 3, 0.0);
  }
  return interp.Run();
}

TvcaFrame TvcaApp::BuildFrame(std::uint64_t scenario_seed) const {
  TvcaFrame frame;
  frame.scenario = DrawScenario(scenario_seed);
  frame.path_id = frame.scenario.PathId();

  // Job inputs differ across the two releases of each actuator task, but
  // every job of the frame shares the frame's mode flags (the path).
  const trace::Trace sensor =
      BuildTaskTrace(TvcaTask::kSensorAcq, scenario_seed, frame.scenario);
  const trace::Trace x1 =
      BuildTaskTrace(TvcaTask::kActuatorX, scenario_seed, frame.scenario);
  const trace::Trace x2 =
      BuildTaskTrace(TvcaTask::kActuatorX,
                     DeriveSeed(scenario_seed, "x-job2"), frame.scenario);
  const trace::Trace y1 =
      BuildTaskTrace(TvcaTask::kActuatorY, scenario_seed, frame.scenario);
  const trace::Trace y2 =
      BuildTaskTrace(TvcaTask::kActuatorY,
                     DeriveSeed(scenario_seed, "y-job2"), frame.scenario);

  FrameComposer::Options opts;
  opts.dispatch_overhead_instructions = config_.dispatch_overhead;
  const FrameComposer composer(opts);
  // Cyclic executive: sensor at the major-frame rate, actuators at twice
  // that rate (one job per minor frame). Minor frame 1 re-executes the
  // actuator code and data after the sensor task has competed for cache
  // space — the reuse pattern a real rate-group schedule produces.
  const std::vector<FrameSlot> slots = {
      {&sensor, 1, /*priority=*/1, /*minor=*/0},
      {&x1, 1, 2, 0},
      {&y1, 1, 3, 0},
      {&x2, 1, 2, 1},
      {&y2, 1, 3, 1},
  };
  frame.trace = composer.ComposeMajorFrame(slots);
  // Ensure runs on the same modes but different fine-grained inputs are
  // still distinguishable as the same application path.
  frame.trace.path_signature = frame.path_id;
  return frame;
}

std::vector<PeriodicTaskSpec> TvcaApp::TaskSpecs() const {
  // Periods sized so the default workload's per-task pWCET budgets load
  // the core to ~70-75% (a realistic design point with certification
  // headroom): sensor at the fast rate, actuators at half that rate.
  return {
      {"sensor-acq", 600'000, 600'000, 1},
      {"actuator-x", 1'200'000, 1'200'000, 2},
      {"actuator-y", 1'200'000, 1'200'000, 3},
  };
}

}  // namespace spta::apps
