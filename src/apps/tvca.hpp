// Thrust Vector Control Application (TVCA) model.
//
// The paper's case study is an ESA-developed hard-real-time TVC application:
// C code auto-generated from a closed-loop control model, running bare-metal
// under a fixed-priority scheduler with 3 periodic tasks — sensor data
// acquisition, actuator control in the x axis, actuator control in the y
// axis. The original is proprietary, so this module builds a synthetic
// equivalent with the same structure:
//
//  * kSensorAcq — per-channel ADC scaling + FIR filtering + range checks,
//    with an occasional frame-level calibration pass.
//  * kActuatorX / kActuatorY — state-space control law (matrix-vector
//    products), command-magnitude limiting with FSQRT/FDIV, and an optional
//    maneuver-mode stabilization pass with an attitude-style integrator.
//
// Inputs for each frame are drawn deterministically from a scenario seed
// (sensor noise/spikes, state estimates, body rates, mode flags). Frame
// modes define the application-level *path* used by MBPTA per-path
// analysis: 8 paths from the {calibration, maneuver-x, maneuver-y} flags.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/scheduler.hpp"
#include "common/types.hpp"
#include "trace/program.hpp"
#include "trace/record.hpp"

namespace spta::apps {

enum class TvcaTask : std::uint8_t {
  kSensorAcq = 0,
  kActuatorX = 1,
  kActuatorY = 2,
};

const char* ToString(TvcaTask task);

/// Workload sizing knobs (defaults produce ~60k instructions per frame,
/// with a data footprint comparable to the 16KB L1 caches so that cache
/// placement genuinely matters — as for the real TVCA on the real LEON3).
struct TvcaConfig {
  int sensor_channels = 12;
  int samples_per_frame = 24;
  int fir_taps = 12;
  int state_dim = 32;
  int integrator_steps = 24;
  /// Iterations of the control-law refinement loop (each re-walks the
  /// state matrices, creating the reuse that makes cache placement matter).
  int control_iterations = 3;
  /// Auto-generated control code is dominated by large inlined
  /// straight-line sections; each task executes one of this many static
  /// instructions per job. Sized so the three tasks' code together
  /// overflows the 16KB IL1 (the real TVCA binary dwarfs L1).
  int straightline_instructions = 1800;
  /// Probability of the frame-level modes (per frame).
  double calibration_prob = 0.2;
  double maneuver_x_prob = 0.3;
  double maneuver_y_prob = 0.3;
  /// Per-sample probability of a sensor spike (takes the saturation path).
  double spike_prob = 0.02;
  /// Dispatcher overhead instructions per job.
  std::size_t dispatch_overhead = 192;
  /// Link-map seed: 0 = canonical packed layout; nonzero inserts
  /// deterministic inter-array padding (a different link map). Changes the
  /// relative cache alignment of data objects — the layout risk that
  /// random placement removes.
  std::uint64_t layout_seed = 0;
};

/// Frame-level operating modes; these determine the application path.
struct TvcaScenario {
  bool calibration = false;
  bool maneuver_x = false;
  bool maneuver_y = false;

  /// Path identifier in [0, 8).
  std::uint32_t PathId() const {
    return (calibration ? 1u : 0u) | (maneuver_x ? 2u : 0u) |
           (maneuver_y ? 4u : 0u);
  }
};

/// One composed major frame ready for measurement.
struct TvcaFrame {
  trace::Trace trace;
  TvcaScenario scenario;
  std::uint32_t path_id = 0;
};

class TvcaApp {
 public:
  TvcaApp() : TvcaApp(TvcaConfig{}) {}
  explicit TvcaApp(const TvcaConfig& config);

  /// Draws the frame scenario (modes) for `scenario_seed`.
  TvcaScenario DrawScenario(std::uint64_t scenario_seed) const;

  /// Builds the dynamic trace of one job of `task` under `scenario_seed`
  /// (deterministic: same seed -> same trace). The frame modes are drawn
  /// from the same seed.
  trace::Trace BuildTaskTrace(TvcaTask task,
                              std::uint64_t scenario_seed) const;

  /// As above but with the frame modes pinned to `scenario` while the
  /// fine-grained inputs still derive from `input_seed` (used so all jobs
  /// of one frame agree on the application path).
  trace::Trace BuildTaskTrace(TvcaTask task, std::uint64_t input_seed,
                              const TvcaScenario& scenario) const;

  /// Builds the full major frame: sensor acquisition (highest priority),
  /// then two actuator-X jobs, then two actuator-Y jobs, composed with
  /// dispatcher overhead between jobs.
  TvcaFrame BuildFrame(std::uint64_t scenario_seed) const;

  /// The periodic task set (periods/deadlines in cycles, rate-monotonic
  /// priorities) used by the schedulability examples.
  std::vector<PeriodicTaskSpec> TaskSpecs() const;

  const TvcaConfig& config() const { return config_; }

  /// Access to the underlying programs (for inspection/tests).
  const trace::Program& program(TvcaTask task) const;

 private:
  trace::Program BuildSensorProgram() const;
  trace::Program BuildActuatorProgram(const char* name, int dim,
                                      int steps) const;

  TvcaConfig config_;
  std::array<trace::Program, 3> programs_;
};

}  // namespace spta::apps
