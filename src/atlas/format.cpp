#include "atlas/format.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "trace/trace_io.hpp"

namespace spta::atlas {
namespace {

using trace::OpClass;
using trace::TraceRecord;

// 48-byte fixed part + two 8-byte digest words per column.
constexpr std::size_t kHeaderBytes = 48 + 16 * kColumnCount;
constexpr std::size_t kIndexEntryBytes = 16;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const unsigned char* data, std::size_t size, std::size_t* pos,
               std::uint64_t* v) {
  std::uint64_t result = 0;
  for (unsigned shift = 0; *pos < size && shift < 64; shift += 7) {
    const unsigned char b = data[(*pos)++];
    result |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

// PackBits-style RLE. Control byte c < 0x80: copy the next c+1 literal
// bytes; c >= 0x80: repeat the next byte c-0x80+2 times. Repeats are only
// emitted for runs of >= 3, so literals never pay for short runs.
void RleEncode(const std::string& in, std::string* out) {
  const std::size_t n = in.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && in[i + run] == in[i] && run < 129) ++run;
    if (run >= 3) {
      out->push_back(static_cast<char>(0x80 + run - 2));
      out->push_back(in[i]);
      i += run;
      continue;
    }
    std::size_t lit = i;
    while (lit < n && lit - i < 128) {
      std::size_t r = 1;
      while (lit + r < n && in[lit + r] == in[lit] && r < 3) ++r;
      if (r >= 3) break;
      lit += r;
    }
    std::size_t len = lit - i;
    if (len > 128) len = 128;
    out->push_back(static_cast<char>(len - 1));
    out->append(in, i, len);
    i += len;
  }
}

bool RleDecode(const unsigned char* data, std::size_t size,
               std::size_t max_out, std::string* out) {
  out->clear();
  std::size_t i = 0;
  while (i < size) {
    const unsigned char c = data[i++];
    if (c < 0x80) {
      const std::size_t len = static_cast<std::size_t>(c) + 1;
      if (len > size - i || out->size() + len > max_out) return false;
      out->append(reinterpret_cast<const char*>(data + i), len);
      i += len;
    } else {
      const std::size_t len = static_cast<std::size_t>(c - 0x80) + 2;
      if (i >= size || out->size() + len > max_out) return false;
      out->append(len, static_cast<char>(data[i++]));
    }
  }
  return true;
}

bool IsMemOp(OpClass op) {
  return op == OpClass::kLoad || op == OpClass::kStore;
}

/// Builds the raw (pre-RLE) column byte streams of one block.
void BuildRawColumns(const TraceRecord* recs, std::size_t count,
                     std::string raw[kColumnCount]) {
  std::uint64_t prev_pc = 0;
  std::uint64_t prev_mem = 0;
  std::string exc;
  std::uint64_t exc_count = 0;
  std::uint64_t last_exc_index = 0;
  raw[kBranch].assign((count + 7) / 8, '\0');
  for (std::size_t i = 0; i < count; ++i) {
    const TraceRecord& r = recs[i];
    raw[kOp].push_back(static_cast<char>(r.op));
    PutVarint(&raw[kPc], ZigZag(static_cast<std::int64_t>(r.pc) -
                                static_cast<std::int64_t>(prev_pc)));
    prev_pc = r.pc;
    if (IsMemOp(r.op)) {
      PutVarint(&raw[kMem], ZigZag(static_cast<std::int64_t>(r.mem_addr) -
                                   static_cast<std::int64_t>(prev_mem)));
      prev_mem = r.mem_addr;
    } else if (r.mem_addr != 0) {
      PutVarint(&exc, i - last_exc_index);
      PutVarint(&exc, r.mem_addr);
      last_exc_index = i;
      ++exc_count;
    }
    raw[kFpuClass].push_back(static_cast<char>(r.fpu_operand_class));
    if (r.branch_taken) {
      raw[kBranch][i >> 3] |= static_cast<char>(1 << (i & 7));
    }
    raw[kDst].push_back(static_cast<char>(r.dst_reg));
    raw[kSrc1].push_back(static_cast<char>(r.src1_reg));
    raw[kSrc2].push_back(static_cast<char>(r.src2_reg));
  }
  PutVarint(&raw[kMemExc], exc_count);
  raw[kMemExc] += exc;
}

std::string EncodeBlock(const TraceRecord* recs, std::size_t count) {
  std::string raw[kColumnCount];
  BuildRawColumns(recs, count, raw);
  std::string block;
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    std::string encoded;
    RleEncode(raw[c], &encoded);
    SPTA_CHECK(encoded.size() <= 0xffffffffu);
    PutU32(&block, static_cast<std::uint32_t>(encoded.size()));
    block += encoded;
  }
  return block;
}

void ColumnDigests(const trace::Trace& t, DualHash digests[kColumnCount]) {
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    const TraceRecord& r = t.records[i];
    digests[kOp].Mix(static_cast<std::uint8_t>(r.op));
    digests[kPc].Mix(r.pc);
    if (IsMemOp(r.op)) {
      digests[kMem].Mix(r.mem_addr);
    } else if (r.mem_addr != 0) {
      digests[kMemExc].Mix(i);
      digests[kMemExc].Mix(r.mem_addr);
    }
    digests[kFpuClass].Mix(r.fpu_operand_class);
    digests[kBranch].Mix(r.branch_taken ? 1 : 0);
    digests[kDst].Mix(r.dst_reg);
    digests[kSrc1].Mix(r.src1_reg);
    digests[kSrc2].Mix(r.src2_reg);
  }
}

}  // namespace

const char* ColumnName(Column c) {
  switch (c) {
    case kOp: return "op";
    case kPc: return "pc";
    case kMem: return "mem";
    case kMemExc: return "mem-exc";
    case kFpuClass: return "fpu-class";
    case kBranch: return "branch";
    case kDst: return "dst";
    case kSrc1: return "src1";
    case kSrc2: return "src2";
    case kColumnCount: break;
  }
  return "?";
}

const char* ToString(TraceFormat format) {
  return format == TraceFormat::kAtlas ? "atlas" : "legacy";
}

DualHash TraceContentDigest(const trace::Trace& t) {
  DualHash h;
  h.Mix(t.path_signature);
  h.Mix(t.records.size());
  for (const TraceRecord& r : t.records) {
    h.Mix(r.pc);
    h.Mix(static_cast<std::uint8_t>(r.op));
    h.Mix(r.mem_addr);
    h.Mix(r.fpu_operand_class);
    h.Mix(r.branch_taken ? 1 : 0);
    h.Mix(r.dst_reg);
    h.Mix(r.src1_reg);
    h.Mix(r.src2_reg);
  }
  return h;
}

void WriteAtlas(std::ostream& out, const trace::Trace& t,
                std::uint32_t block_records) {
  SPTA_REQUIRE(block_records >= 1);
  const std::size_t n = t.records.size();
  SPTA_REQUIRE_MSG(n <= (1ULL << 32), "implausible record count");
  const std::uint32_t block_count = static_cast<std::uint32_t>(
      (n + block_records - 1) / block_records);

  std::vector<std::string> blocks;
  blocks.reserve(block_count);
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const std::size_t begin = static_cast<std::size_t>(b) * block_records;
    const std::size_t count = std::min<std::size_t>(block_records, n - begin);
    blocks.push_back(EncodeBlock(t.records.data() + begin, count));
  }

  const DualHash content = TraceContentDigest(t);
  DualHash columns[kColumnCount];
  ColumnDigests(t, columns);

  std::string header;
  header.reserve(kHeaderBytes);
  PutU32(&header, kAtlasMagic);
  PutU32(&header, kAtlasVersion);
  PutU64(&header, t.path_signature);
  PutU64(&header, n);
  PutU32(&header, block_records);
  PutU32(&header, block_count);
  PutU64(&header, content.lo);
  PutU64(&header, content.hi);
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    PutU64(&header, columns[c].lo);
    PutU64(&header, columns[c].hi);
  }
  SPTA_CHECK(header.size() == kHeaderBytes);

  std::string index;
  index.reserve(block_count * kIndexEntryBytes);
  std::uint64_t offset = kHeaderBytes + static_cast<std::uint64_t>(
                                            block_count) * kIndexEntryBytes;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const std::size_t begin = static_cast<std::size_t>(b) * block_records;
    const std::size_t count = std::min<std::size_t>(block_records, n - begin);
    PutU64(&index, offset);
    PutU32(&index, static_cast<std::uint32_t>(blocks[b].size()));
    PutU32(&index, static_cast<std::uint32_t>(count));
    offset += blocks[b].size();
  }

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(index.data(), static_cast<std::streamsize>(index.size()));
  for (const std::string& block : blocks) {
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  SPTA_CHECK_MSG(out.good(), "atlas write failed");
}

bool AtlasReader::TryParse(std::string bytes, AtlasReader* out,
                           std::string* error) {
  out->bytes_ = std::move(bytes);
  out->blocks_.clear();
  out->info_ = AtlasInfo{};
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(out->bytes_.data());
  const std::size_t size = out->bytes_.size();
  if (size < 8) {
    *error = "truncated atlas header";
    return false;
  }
  if (GetU32(data) != kAtlasMagic) {
    *error = "not an atlas trace (bad magic)";
    return false;
  }
  const std::uint32_t version = GetU32(data + 4);
  if (version != kAtlasVersion) {
    *error = "unsupported atlas version " + std::to_string(version);
    return false;
  }
  if (size < kHeaderBytes) {
    *error = "truncated atlas header";
    return false;
  }
  AtlasInfo& info = out->info_;
  info.path_signature = GetU64(data + 8);
  info.record_count = GetU64(data + 16);
  info.block_records = GetU32(data + 24);
  info.block_count = GetU32(data + 28);
  info.content_digest.lo = GetU64(data + 32);
  info.content_digest.hi = GetU64(data + 40);
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    info.column_digests[c].lo = GetU64(data + 48 + 16 * c);
    info.column_digests[c].hi = GetU64(data + 56 + 16 * c);
  }
  if (info.record_count > (1ULL << 32)) {
    *error = "implausible record count " +
             std::to_string(info.record_count);
    return false;
  }
  if (info.block_records == 0) {
    *error = "corrupt atlas header: zero block size";
    return false;
  }
  const std::uint64_t expected_blocks =
      (info.record_count + info.block_records - 1) / info.block_records;
  if (info.block_count != expected_blocks) {
    *error = "corrupt atlas header: block count " +
             std::to_string(info.block_count) + " does not cover " +
             std::to_string(info.record_count) + " records";
    return false;
  }
  const std::uint64_t index_end =
      kHeaderBytes +
      static_cast<std::uint64_t>(info.block_count) * kIndexEntryBytes;
  if (size < index_end) {
    *error = "truncated atlas block index";
    return false;
  }
  out->blocks_.reserve(info.block_count);
  std::uint64_t remaining = info.record_count;
  for (std::uint32_t b = 0; b < info.block_count; ++b) {
    const unsigned char* entry = data + kHeaderBytes + b * kIndexEntryBytes;
    BlockEntry block;
    block.offset = GetU64(entry);
    block.encoded_bytes = GetU32(entry + 8);
    block.records = GetU32(entry + 12);
    const std::uint64_t expected_records =
        std::min<std::uint64_t>(info.block_records, remaining);
    if (block.records != expected_records) {
      *error = "corrupt atlas index: block " + std::to_string(b) +
               " claims " + std::to_string(block.records) + " records";
      return false;
    }
    remaining -= expected_records;
    if (block.offset < index_end || block.offset > size ||
        block.encoded_bytes > size - block.offset) {
      *error = "corrupt atlas index: block " + std::to_string(b) +
               " extends past end of file";
      return false;
    }
    out->blocks_.push_back(block);
  }
  return true;
}

bool AtlasReader::DecodeBlock(std::uint32_t index,
                              std::vector<trace::TraceRecord>* out,
                              std::string* error) const {
  SPTA_REQUIRE(index < blocks_.size());
  const BlockEntry& block = blocks_[index];
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(bytes_.data()) + block.offset;
  const std::size_t size = block.encoded_bytes;
  const std::size_t count = block.records;
  const auto fail = [&](const std::string& what) {
    *error = "atlas block " + std::to_string(index) + ": " + what;
    return false;
  };

  // Split the block into its column streams.
  const unsigned char* col[kColumnCount];
  std::size_t col_size[kColumnCount];
  std::size_t pos = 0;
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    if (size - pos < 4) return fail("truncated column table");
    const std::uint32_t len = GetU32(data + pos);
    pos += 4;
    if (len > size - pos) {
      return fail(std::string("column ") +
                  ColumnName(static_cast<Column>(c)) + " overruns block");
    }
    col[c] = data + pos;
    col_size[c] = len;
    pos += len;
  }
  if (pos != size) return fail("trailing bytes after columns");

  // Expand the RLE layers. Fixed-width columns must decode to exactly
  // their expected size; varint columns are bounded by the worst-case
  // encoding (10 bytes per value) and validated by exact consumption.
  const std::size_t varint_cap = count * 11 + 16;
  std::string raw[kColumnCount];
  const std::size_t expected[kColumnCount] = {
      count, varint_cap, varint_cap, varint_cap,
      count, (count + 7) / 8, count, count, count,
  };
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    if (!RleDecode(col[c], col_size[c], expected[c], &raw[c])) {
      return fail(std::string("corrupt RLE in column ") +
                  ColumnName(static_cast<Column>(c)));
    }
  }
  for (const std::uint32_t c : {kOp, kFpuClass, kBranch, kDst, kSrc1,
                                kSrc2}) {
    if (raw[c].size() != expected[c]) {
      return fail(std::string("column ") +
                  ColumnName(static_cast<Column>(c)) + " has " +
                  std::to_string(raw[c].size()) + " bytes, expected " +
                  std::to_string(expected[c]));
    }
  }
  // The writer zeroes the unused padding bits in the branch bitmap's last
  // byte; enforce that on read so every encoded byte is load-bearing (a
  // flipped padding bit must not round-trip silently).
  if (count % 8 != 0 &&
      (static_cast<unsigned char>(raw[kBranch][count / 8]) >>
       (count % 8)) != 0) {
    return fail("nonzero padding bits in branch column");
  }

  const std::size_t base = out->size();
  out->resize(base + count);
  const unsigned char* pc_data =
      reinterpret_cast<const unsigned char*>(raw[kPc].data());
  const unsigned char* mem_data =
      reinterpret_cast<const unsigned char*>(raw[kMem].data());
  std::size_t pc_pos = 0;
  std::size_t mem_pos = 0;
  std::uint64_t prev_pc = 0;
  std::uint64_t prev_mem = 0;
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord& r = (*out)[base + i];
    const unsigned char op = static_cast<unsigned char>(raw[kOp][i]);
    if (op > static_cast<unsigned char>(OpClass::kNop)) {
      return fail("corrupt op class " + std::to_string(op) + " at record " +
                  std::to_string(i));
    }
    r.op = static_cast<OpClass>(op);
    std::uint64_t zz = 0;
    if (!GetVarint(pc_data, raw[kPc].size(), &pc_pos, &zz)) {
      return fail("truncated pc column");
    }
    prev_pc = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev_pc) +
                                         UnZigZag(zz));
    r.pc = prev_pc;
    if (IsMemOp(r.op)) {
      if (!GetVarint(mem_data, raw[kMem].size(), &mem_pos, &zz)) {
        return fail("truncated mem column");
      }
      prev_mem = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prev_mem) + UnZigZag(zz));
      r.mem_addr = prev_mem;
    } else {
      r.mem_addr = 0;
    }
    const unsigned char fpu = static_cast<unsigned char>(raw[kFpuClass][i]);
    if (fpu >= trace::kFpuOperandClasses) {
      return fail("corrupt FPU operand class " + std::to_string(fpu) +
                  " at record " + std::to_string(i));
    }
    r.fpu_operand_class = fpu;
    r.branch_taken =
        (static_cast<unsigned char>(raw[kBranch][i >> 3]) >> (i & 7)) & 1;
    r.dst_reg = static_cast<std::uint8_t>(raw[kDst][i]);
    r.src1_reg = static_cast<std::uint8_t>(raw[kSrc1][i]);
    r.src2_reg = static_cast<std::uint8_t>(raw[kSrc2][i]);
  }
  if (pc_pos != raw[kPc].size()) return fail("trailing bytes in pc column");
  if (mem_pos != raw[kMem].size()) {
    return fail("trailing bytes in mem column");
  }

  // Exceptions: effective addresses carried by non-memory records.
  const unsigned char* exc_data =
      reinterpret_cast<const unsigned char*>(raw[kMemExc].data());
  std::size_t exc_pos = 0;
  std::uint64_t exc_count = 0;
  if (!GetVarint(exc_data, raw[kMemExc].size(), &exc_pos, &exc_count)) {
    return fail("truncated mem exception column");
  }
  if (exc_count > count) {
    return fail("implausible mem exception count " +
                std::to_string(exc_count));
  }
  std::uint64_t exc_index = 0;
  for (std::uint64_t e = 0; e < exc_count; ++e) {
    std::uint64_t delta = 0;
    std::uint64_t value = 0;
    if (!GetVarint(exc_data, raw[kMemExc].size(), &exc_pos, &delta) ||
        !GetVarint(exc_data, raw[kMemExc].size(), &exc_pos, &value)) {
      return fail("truncated mem exception column");
    }
    exc_index = (e == 0) ? delta : exc_index + delta;
    if (exc_index >= count) {
      return fail("mem exception index " + std::to_string(exc_index) +
                  " out of range");
    }
    TraceRecord& r = (*out)[base + exc_index];
    if (IsMemOp(r.op) || value == 0) {
      return fail("invalid mem exception at record " +
                  std::to_string(exc_index));
    }
    r.mem_addr = value;
  }
  if (exc_pos != raw[kMemExc].size()) {
    return fail("trailing bytes in mem exception column");
  }
  return true;
}

bool AtlasReader::ReadAll(trace::Trace* out, std::string* error) const {
  out->records.clear();
  // Bounded reserve: the header count is validated for plausibility but a
  // hostile file could still claim 2^32 records backed by nothing. Growth
  // past the bound tracks blocks that actually decode.
  out->records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(info_.record_count, 1ULL << 20)));
  out->path_signature = info_.path_signature;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (!DecodeBlock(b, &out->records, error)) return false;
  }
  DualHash columns[kColumnCount];
  ColumnDigests(*out, columns);
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    if (columns[c] != info_.column_digests[c]) {
      *error = std::string("atlas column digest mismatch in column ") +
               ColumnName(static_cast<Column>(c)) +
               " (bit damage not caught by structural checks)";
      return false;
    }
  }
  if (TraceContentDigest(*out) != info_.content_digest) {
    *error = "atlas content digest mismatch";
    return false;
  }
  return true;
}

namespace {

bool ReadStream(std::istream& in, std::string* out) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = std::move(buffer).str();
  return true;
}

}  // namespace

bool TryReadAtlas(std::istream& in, trace::Trace* out, std::string* error) {
  std::string bytes;
  if (!ReadStream(in, &bytes)) {
    *error = "atlas read failed";
    return false;
  }
  AtlasReader reader;
  if (!AtlasReader::TryParse(std::move(bytes), &reader, error)) return false;
  return reader.ReadAll(out, error);
}

void SaveAtlasFile(const std::string& path, const trace::Trace& t) {
  std::ofstream out(path, std::ios::binary);
  SPTA_REQUIRE_MSG(out.good(), "cannot open '" << path << "' for writing");
  WriteAtlas(out, t);
}

bool TryLoadAtlasFile(const std::string& path, trace::Trace* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  if (!TryReadAtlas(in, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool TryReadAnyTrace(std::istream& in, trace::Trace* out,
                     TraceFormat* format, std::string* error) {
  std::string bytes;
  if (!ReadStream(in, &bytes)) {
    *error = "trace read failed";
    return false;
  }
  if (bytes.size() >= 4 &&
      GetU32(reinterpret_cast<const unsigned char*>(bytes.data())) ==
          kAtlasMagic) {
    if (format != nullptr) *format = TraceFormat::kAtlas;
    AtlasReader reader;
    if (!AtlasReader::TryParse(std::move(bytes), &reader, error)) {
      return false;
    }
    return reader.ReadAll(out, error);
  }
  if (format != nullptr) *format = TraceFormat::kLegacy;
  std::istringstream legacy(bytes);
  return trace::TryReadTrace(legacy, out, error);
}

bool TryLoadAnyTraceFile(const std::string& path, trace::Trace* out,
                         TraceFormat* format, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  if (!TryReadAnyTrace(in, out, format, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace spta::atlas
