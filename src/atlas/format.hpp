// spta-atlas v1: columnar compressed trace container.
//
// The legacy trace format (trace/trace_io.hpp) stores 24 bytes per record
// row-wise. Campaign traces are extremely regular — sequential pc deltas,
// strided effective addresses, tiny op/register alphabets — so storing each
// field as its own column and encoding columns with delta + varint +
// run-length coding shrinks frozen traces well past the 3x target while
// staying dependency-free.
//
// Layout (all scalars little-endian):
//
//   header   magic "ATLS" | version | path_signature | record_count
//            | block_records | block_count | content digest (lo, hi)
//            | per-column digests (kColumnCount x (lo, hi))
//   index    block_count x { u64 offset, u32 encoded_bytes, u32 records }
//   blocks   each: kColumnCount x { u32 encoded_bytes, bytes }
//
// The block index makes the container streamable: a reader seeks straight
// to any block and decodes it in isolation (every delta chain restarts at
// each block boundary), so consumers can iterate records without ever
// materializing the whole vector. Offsets are relative to the file start,
// so the index works equally over an mmap'd buffer or a loaded one.
//
// Column encodings (per block, `n` = records in the block):
//   kOp        n op-class bytes, RLE
//   kPc        zigzag varint of pc delta vs previous record (prev=0 at
//              block start), RLE over the varint bytes
//   kMem       zigzag varint of mem_addr delta vs previous load/store
//              (prev=0 at block start), loads/stores only, RLE
//   kMemExc    exception list for non-memory records with mem_addr != 0:
//              varint count, then (varint record-index delta, varint value)
//              pairs — keeps arbitrary records round-trippable
//   kFpuClass  n operand-class bytes, RLE
//   kBranch    ceil(n/8) bytes of branch_taken bits (LSB-first), RLE
//   kDst/kSrc1/kSrc2  n register bytes each, RLE
//
// RLE is PackBits-style: control byte c < 128 copies the next c+1 literal
// bytes; c >= 128 repeats the next byte c-128+2 times. Worst-case overhead
// is 1 byte per 128 (incompressible data stays within ~1%).
//
// Integrity: the header carries a DualHash content digest over the decoded
// record stream plus one DualHash per column. Full reads recompute and
// verify the content digest, so any surviving bit damage that slips past
// structural validation is still rejected.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "trace/record.hpp"

namespace spta::atlas {

inline constexpr std::uint32_t kAtlasMagic = 0x534c5441;  // "ATLS"
inline constexpr std::uint32_t kAtlasVersion = 1;
/// Records per block; bounds peak decode memory for streaming readers.
inline constexpr std::uint32_t kDefaultBlockRecords = 4096;

/// Column identities (order is the on-disk stream order within a block).
enum Column : std::uint32_t {
  kOp = 0,
  kPc,
  kMem,
  kMemExc,
  kFpuClass,
  kBranch,
  kDst,
  kSrc1,
  kSrc2,
  kColumnCount,
};

/// Short column name ("op", "pc", ...), for `spta_cli trace info`.
const char* ColumnName(Column c);

/// Header summary of an atlas container.
struct AtlasInfo {
  std::uint64_t path_signature = 0;
  std::uint64_t record_count = 0;
  std::uint32_t block_records = 0;
  std::uint32_t block_count = 0;
  DualHash content_digest;
  DualHash column_digests[kColumnCount];
};

/// Content identity of a trace, independent of container format: a
/// DualHash over the path signature, record count and every record field
/// in order. Equal traces have equal digests whether they came from the
/// legacy or the atlas container — the pack/unpack round-trip check.
DualHash TraceContentDigest(const trace::Trace& t);

/// Encodes `t` into the atlas container on `out` (binary-clean stream).
void WriteAtlas(std::ostream& out, const trace::Trace& t,
                std::uint32_t block_records = kDefaultBlockRecords);

/// Streaming reader over a fully loaded (or mapped) atlas image. Parsing
/// validates the header and index only; record columns are decoded block
/// by block on demand.
class AtlasReader {
 public:
  /// Parses the container structure of `bytes` (which the reader takes
  /// ownership of). Returns false + `error` on any malformation.
  static bool TryParse(std::string bytes, AtlasReader* out,
                       std::string* error);

  const AtlasInfo& info() const { return info_; }

  /// Decodes block `index` into `out` (appended). Returns false + `error`
  /// on damaged column data; `out` may then hold a partial block.
  bool DecodeBlock(std::uint32_t index,
                   std::vector<trace::TraceRecord>* out,
                   std::string* error) const;

  /// Decodes every block and verifies the recomputed content digest
  /// against the header. Returns false + `error` on damage.
  bool ReadAll(trace::Trace* out, std::string* error) const;

 private:
  struct BlockEntry {
    std::uint64_t offset = 0;
    std::uint32_t encoded_bytes = 0;
    std::uint32_t records = 0;
  };

  AtlasInfo info_;
  std::vector<BlockEntry> blocks_;
  std::string bytes_;
};

/// Whole-stream decode with content-digest verification (typed errors,
/// never aborts on hostile input).
bool TryReadAtlas(std::istream& in, trace::Trace* out, std::string* error);

/// File wrappers. SaveAtlasFile aborts on I/O failure (trusted output
/// path); TryLoadAtlasFile returns typed errors.
void SaveAtlasFile(const std::string& path, const trace::Trace& t);
bool TryLoadAtlasFile(const std::string& path, trace::Trace* out,
                      std::string* error);

/// Container format of a trace stream, sniffed from the magic.
enum class TraceFormat { kLegacy, kAtlas };
const char* ToString(TraceFormat format);

/// Reads a trace in either container format (sniffs the leading magic).
/// `format` (optional) receives the detected container. Typed errors.
bool TryReadAnyTrace(std::istream& in, trace::Trace* out,
                     TraceFormat* format, std::string* error);
bool TryLoadAnyTraceFile(const std::string& path, trace::Trace* out,
                         TraceFormat* format, std::string* error);

}  // namespace spta::atlas
