// Content-addressed store of memoized per-kernel iteration timings.
//
// An entry is keyed by a DualHash over (platform config digest, kernel
// body digest, entry micro-architectural state digest) and records the
// exact ReplayDelta one simulated iteration produced from that entry
// state, plus the exit-state digest. The `fixed_point` flag marks entries
// whose exit digest equals their entry digest: only those may be replayed
// by Core::ApplyReplay (the state provably does not change, so skipping
// the simulation is bit-identical by construction); non-fixed-point
// entries still let the runner reuse the recorded exit digest after
// re-simulating, skipping one full state-digest pass.
//
// Collision discipline follows the service result cache: the map is
// bucketed by the key's `lo` word and every probe verifies the `hi` word;
// a lo-collision with a different hi reads as a miss (never a wrong
// replay). Entry-state digests include per-run placement seeds and PRNG
// registers, so entries can never match across runs — the store is safely
// shared across the runs of one worker.
//
// The store is single-threaded (one per campaign worker) and bounded:
// when `capacity` entries are reached it is cleared wholesale, which
// keeps memory flat and costs at most one warm-up miss per live kernel.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/hash.hpp"
#include "sim/core.hpp"

namespace spta::atlas {

class KernelStore {
 public:
  struct Entry {
    sim::ReplayDelta delta;
    DualHash exit;
    bool fixed_point = false;
  };

  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t clears = 0;       ///< Capacity overflow wipes.
    std::uint64_t collisions = 0;   ///< lo matched, hi did not.
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  explicit KernelStore(std::size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the entry for `key`, or nullptr (miss or verifier mismatch).
  const Entry* Lookup(const DualHash& key) {
    const auto it = entries_.find(key.lo);
    if (it == entries_.end()) return nullptr;
    if (it->second.first != key.hi) {
      ++stats_.collisions;
      return nullptr;
    }
    return &it->second.second;
  }

  void Insert(const DualHash& key, Entry entry) {
    if (entries_.size() >= capacity_) {
      entries_.clear();
      ++stats_.clears;
    }
    entries_.insert_or_assign(key.lo, std::make_pair(key.hi,
                                                     std::move(entry)));
    ++stats_.inserts;
  }

  Stats stats() const {
    Stats s = stats_;
    s.size = entries_.size();
    s.capacity = capacity_;
    return s;
  }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, Entry>>
      entries_;
  Stats stats_;
};

}  // namespace spta::atlas
