#include "atlas/memo_runner.hpp"

#include "common/assert.hpp"

namespace spta::atlas {
namespace {

using sim::Core;
using sim::ReplayDelta;

/// Counter snapshot of everything a ReplayDelta covers.
struct Snapshot {
  Cycles now = 0;
  sim::CacheStats il1;
  sim::CacheStats dl1;
  sim::TlbStats itlb;
  sim::TlbStats dtlb;
  sim::FpuStats fpu;
  sim::StoreBufferStats store_buffer;
  sim::BusStats bus;
  sim::DramStats dram;
  sim::CacheStats l2;
  prng::DrawStats draws[ReplayDelta::kStreamCount];
};

Snapshot Take(Core& core) {
  Snapshot s;
  s.now = core.now();
  s.il1 = core.il1().stats();
  s.dl1 = core.dl1().stats();
  s.itlb = core.itlb().stats();
  s.dtlb = core.dtlb().stats();
  s.fpu = core.fpu().stats();
  s.store_buffer = core.store_buffer().stats();
  s.bus = core.memory().bus().stats();
  s.dram = core.memory().dram().stats();
  s.draws[ReplayDelta::kIl1] = core.il1().draw_stats();
  s.draws[ReplayDelta::kDl1] = core.dl1().draw_stats();
  s.draws[ReplayDelta::kItlb] = core.itlb().draw_stats();
  s.draws[ReplayDelta::kDtlb] = core.dtlb().draw_stats();
  if (const sim::Cache* l2 = core.memory().l2()) {
    s.l2 = l2->stats();
    s.draws[ReplayDelta::kL2] = l2->draw_stats();
  }
  return s;
}

ReplayDelta Diff(const Snapshot& before, const Snapshot& after,
                 std::uint64_t instructions) {
  ReplayDelta d;
  d.cycles = after.now - before.now;
  d.instructions = instructions;
  d.il1 = {after.il1.accesses - before.il1.accesses,
           after.il1.misses - before.il1.misses};
  d.dl1 = {after.dl1.accesses - before.dl1.accesses,
           after.dl1.misses - before.dl1.misses};
  d.itlb = {after.itlb.accesses - before.itlb.accesses,
            after.itlb.misses - before.itlb.misses};
  d.dtlb = {after.dtlb.accesses - before.dtlb.accesses,
            after.dtlb.misses - before.dtlb.misses};
  d.fpu = {after.fpu.operations - before.fpu.operations,
           after.fpu.total_cycles - before.fpu.total_cycles};
  d.store_buffer.stores =
      after.store_buffer.stores - before.store_buffer.stores;
  d.store_buffer.full_stalls =
      after.store_buffer.full_stalls - before.store_buffer.full_stalls;
  d.store_buffer.stall_cycles =
      after.store_buffer.stall_cycles - before.store_buffer.stall_cycles;
  // The high-water mark is not a sum: within one monotone run the value
  // at replay time already dominates the recorded one, so carrying the
  // recorded absolute and applying it as a max is exact (see
  // StoreBuffer::ApplyStatsDelta).
  d.store_buffer.high_water = after.store_buffer.high_water;
  d.bus = {after.bus.transactions - before.bus.transactions,
           after.bus.busy_cycles - before.bus.busy_cycles,
           after.bus.wait_cycles - before.bus.wait_cycles};
  d.dram = {after.dram.accesses - before.dram.accesses,
            after.dram.row_hits - before.dram.row_hits,
            after.dram.refresh_stall_cycles -
                before.dram.refresh_stall_cycles};
  d.l2 = {after.l2.accesses - before.l2.accesses,
          after.l2.misses - before.l2.misses};
  for (int i = 0; i < ReplayDelta::kStreamCount; ++i) {
    d.rng_words[i] = after.draws[i].words - before.draws[i].words;
    d.rng_rejections[i] =
        after.draws[i].rejections - before.draws[i].rejections;
  }
  return d;
}

DualHash StateDigest(const Core& core) {
  DualHash h;
  core.AppendStateDigest(h);
  return h;
}

}  // namespace

sim::RunResult RunMemoized(sim::Platform& platform, const trace::Trace& t,
                           const Segmentation& segmentation, Seed run_seed,
                           const DualHash& config_digest, KernelStore* store,
                           MemoRunStats* stats) {
  SPTA_REQUIRE(store != nullptr);
  SPTA_REQUIRE_MSG(segmentation.total_records == t.records.size(),
                   "segmentation does not match the trace");
  platform.BeginRun(run_seed);
  Core& core = platform.core(0);
  const trace::TraceRecord* recs = t.records.data();
  MemoRunStats local;

  for (const Segment& seg : segmentation.segments) {
    if (seg.kernel == kNoKernel || seg.iterations < 2) {
      core.RetireSpan(recs + seg.begin, seg.records_covered());
      continue;
    }
    const trace::TraceRecord* body = recs + seg.begin;
    const DualHash& kernel_digest =
        segmentation.kernels[seg.kernel].digest;
    // Key prefix shared by every iteration: config + kernel identity.
    DualHash prefix = config_digest;
    prefix.Mix(kernel_digest.lo);
    prefix.Mix(kernel_digest.hi);

    local.kernel_iterations += seg.iterations;
    DualHash entry;
    bool entry_valid = false;
    std::size_t consecutive_simulated = 0;
    for (std::size_t iter = 0; iter < seg.iterations; ++iter) {
      if (consecutive_simulated >= kBypassAfterMisses) {
        // Not converging — stop paying the digest tax for this segment.
        const std::size_t remaining = seg.iterations - iter;
        core.RetireSpan(recs + seg.begin + iter * seg.length,
                        seg.length * remaining);
        local.bypasses += remaining;
        break;
      }
      if (!entry_valid) {
        entry = StateDigest(core);
        entry_valid = true;
      }
      DualHash key = prefix;
      key.Mix(entry.lo);
      key.Mix(entry.hi);
      const KernelStore::Entry* hit = store->Lookup(key);
      if (hit != nullptr && hit->fixed_point) {
        core.ApplyReplay(hit->delta);
        ++local.hits;
        local.fast_forwarded_records += seg.length;
        consecutive_simulated = 0;
        // Fixed point: the state (digest) is unchanged; `entry` stays
        // valid for the next iteration at zero cost.
        continue;
      }
      const Snapshot before = Take(core);
      core.RetireSpan(body, seg.length);
      DualHash exit;
      if (hit != nullptr) {
        // Same entry state as a recorded simulation: determinism makes
        // the exit state identical, so reuse the recorded exit digest.
        exit = hit->exit;
      } else {
        const Snapshot after = Take(core);
        exit = StateDigest(core);
        KernelStore::Entry entry_record;
        entry_record.delta = Diff(before, after, seg.length);
        entry_record.exit = exit;
        entry_record.fixed_point = (exit == entry);
        store->Insert(key, std::move(entry_record));
      }
      ++local.misses;
      ++consecutive_simulated;
      entry = exit;
      entry_valid = true;
    }
  }

  if (stats != nullptr) stats->Accumulate(local);
  return core.FinishResult();
}

}  // namespace spta::atlas
