// Memoized segment-at-a-time execution of a mined trace.
//
// RunMemoized replays a trace through the normal Platform/Core timing
// machinery, but drives it segment by segment (mine.hpp) instead of
// record by record. For every iteration of a kernel segment it digests
// the core's complete micro-architectural state (Core::AppendStateDigest)
// and consults the KernelStore:
//
//   hit, fixed-point  — the exact same entry state was simulated before
//                       and provably exits in the same state, so the
//                       iteration fast-forwards: cycles and counters are
//                       applied wholesale, PRNG streams skip exactly the
//                       recorded draw words (Core::ApplyReplay). Because
//                       the state (PRNG registers included) does not
//                       change, the next iteration hits without even
//                       re-digesting — steady-state cost is O(1) per
//                       iteration.
//   hit, non-fixed    — the iteration must be simulated (the state is
//                       still converging), but the recorded exit digest
//                       is reused, saving a digest pass.
//   miss              — the iteration is simulated, its deltas recorded
//                       and inserted.
//
// A kernel whose state never converges (e.g. refresh-phase-dependent
// timing) would pay the digest overhead forever; after
// kBypassAfterMisses consecutive non-converging iterations the segment
// falls back to plain simulation and the remaining iterations are
// counted as bypasses.
//
// Determinism contract: RunMemoized(platform, t, seg, seed) returns a
// RunResult bit-identical to Platform::Run(t, seed) for every trace,
// segmentation and seed — fast-forwards only ever replace simulation
// steps whose entire observable effect is proven (by 128-bit state-digest
// equality) to be the recorded delta. docs/TRACES.md spells out the
// argument.
#pragma once

#include <cstdint>

#include "atlas/kernel_store.hpp"
#include "atlas/mine.hpp"
#include "sim/platform.hpp"
#include "trace/record.hpp"

namespace spta::atlas {

/// Consecutive simulated (non-fixed-point) iterations of one kernel
/// segment before memoization is bypassed for its remainder.
inline constexpr std::size_t kBypassAfterMisses = 8;

struct MemoRunStats {
  std::uint64_t kernel_iterations = 0;  ///< Iterations in kernel segments.
  std::uint64_t hits = 0;               ///< Fast-forwarded iterations.
  std::uint64_t misses = 0;             ///< Simulated + recorded.
  std::uint64_t bypasses = 0;           ///< Simulated without memoization.
  std::uint64_t fast_forwarded_records = 0;

  void Accumulate(const MemoRunStats& other) {
    kernel_iterations += other.kernel_iterations;
    hits += other.hits;
    misses += other.misses;
    bypasses += other.bypasses;
    fast_forwarded_records += other.fast_forwarded_records;
  }

  double HitRate() const {
    return kernel_iterations == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(kernel_iterations);
  }
};

/// One measurement run of `t` on core 0 under the full per-run reset
/// protocol with `run_seed`, fast-forwarding memoized kernel iterations.
/// `config_digest` must be ConfigDigest(platform.config())
/// (state_digest.hpp) — hoisted out so campaigns compute it once.
/// `stats` (optional) accumulates hit/miss/bypass counters.
sim::RunResult RunMemoized(sim::Platform& platform, const trace::Trace& t,
                           const Segmentation& segmentation, Seed run_seed,
                           const DualHash& config_digest, KernelStore* store,
                           MemoRunStats* stats = nullptr);

}  // namespace spta::atlas
