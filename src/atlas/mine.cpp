#include "atlas/mine.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace spta::atlas {
namespace {

using trace::TraceRecord;

bool SpansEqual(const TraceRecord* a, const TraceRecord* b,
                std::size_t length) {
  for (std::size_t i = 0; i < length; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

DualHash KernelDigest(const TraceRecord* body, std::size_t length) {
  DualHash h;
  h.Mix(length);
  for (std::size_t i = 0; i < length; ++i) {
    const TraceRecord& r = body[i];
    h.Mix(r.pc);
    h.Mix(static_cast<std::uint8_t>(r.op));
    h.Mix(r.mem_addr);
    h.Mix(r.fpu_operand_class);
    h.Mix(r.branch_taken ? 1 : 0);
    h.Mix(r.dst_reg);
    h.Mix(r.src1_reg);
    h.Mix(r.src2_reg);
  }
  return h;
}

Segmentation MineKernels(const trace::Trace& t, const MineOptions& options) {
  const TraceRecord* recs = t.records.data();
  const std::size_t n = t.records.size();
  Segmentation result;
  result.total_records = n;

  // Kernel digests seen so far, deduplicated across segments.
  std::unordered_map<std::uint64_t, std::uint32_t> kernel_by_digest;
  // pc -> most recent index; a recurrence at distance <= max_period is a
  // loop-back-edge candidate.
  std::unordered_map<std::uint64_t, std::size_t> last_seen;

  std::size_t span_start = 0;
  const auto emit_span = [&](std::size_t end) {
    if (end > span_start) {
      result.segments.push_back(
          Segment{span_start, end - span_start, 1, kNoKernel});
    }
  };

  std::size_t i = 0;
  while (i < n) {
    const auto it = last_seen.find(recs[i].pc);
    const std::size_t j = (it != last_seen.end()) ? it->second : n;
    last_seen[recs[i].pc] = i;
    if (j >= i) {
      ++i;
      continue;
    }
    const std::size_t period = i - j;
    if (period > options.max_period || i + period > n ||
        !SpansEqual(recs + j, recs + i, period)) {
      ++i;
      continue;
    }
    // Two verified iterations at j; extend to the maximal run.
    std::size_t iterations = 2;
    while (j + (iterations + 1) * period <= n &&
           SpansEqual(recs + j, recs + j + iterations * period, period)) {
      ++iterations;
    }
    if (iterations < options.min_iterations) {
      ++i;
      continue;
    }
    emit_span(j);
    const DualHash digest = KernelDigest(recs + j, period);
    std::uint32_t kernel_index;
    const auto found = kernel_by_digest.find(digest.lo);
    if (found != kernel_by_digest.end() &&
        result.kernels[found->second].digest == digest) {
      kernel_index = found->second;
    } else {
      kernel_index = static_cast<std::uint32_t>(result.kernels.size());
      result.kernels.push_back(KernelInfo{digest, j, period, 0});
      kernel_by_digest.emplace(digest.lo, kernel_index);
    }
    result.kernels[kernel_index].iterations += iterations;
    result.segments.push_back(Segment{j, period, iterations, kernel_index});
    i = j + iterations * period;
    span_start = i;
    // Stale indices from inside the consumed kernel must not seed
    // candidates that straddle the segment boundary.
    last_seen.clear();
  }
  emit_span(n);

  std::size_t covered = 0;
  for (const Segment& s : result.segments) covered += s.records_covered();
  SPTA_CHECK_MSG(covered == n, "segmentation does not cover the trace");
  return result;
}

}  // namespace spta::atlas
