// Kernel mining: detecting repeated basic-block sequences in a trace.
//
// Campaign traces are dominated by loops — the same record sequence (one
// or a few basic blocks) retired hundreds of times back to back. Mining
// finds those repetitions and rewrites the trace as a segmented view
//
//   prologue . kernel x N . epilogue
//
// without touching the records themselves: a Segment is a (begin, length,
// iterations) window into the original record array, so the concatenation
// of all segments replays the trace exactly. The memoized runner
// (memo_runner.hpp) uses the segmentation to fast-forward kernel
// iterations whose entry micro-architectural state it has already timed.
//
// Detection is the classic back-edge heuristic: scanning left to right,
// a pc that recurs at distance p is a loop-candidate period; the candidate
// is verified by field-wise record comparison (records[i-p, i) ==
// records[i, i+p)), extended greedily to the maximal run of consecutive
// equal periods, and emitted as a kernel. Verification compares actual
// records, so mining never mislabels: every claimed iteration is exactly
// equal to the kernel body.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/hash.hpp"
#include "trace/record.hpp"

namespace spta::atlas {

/// A distinct kernel body discovered by mining.
struct KernelInfo {
  /// Content digest of the body records (kernel identity across traces).
  DualHash digest;
  /// First occurrence of the body in the record array.
  std::size_t body_begin = 0;
  /// Body length in records.
  std::size_t length = 0;
  /// Total iterations across all segments referencing this kernel.
  std::size_t iterations = 0;
};

inline constexpr std::uint32_t kNoKernel =
    std::numeric_limits<std::uint32_t>::max();

/// One window of the segmented view. Plain spans have iterations == 1 and
/// kernel == kNoKernel; kernel segments repeat records
/// [begin, begin + length) exactly `iterations` times, i.e. they cover
/// records [begin, begin + length * iterations).
struct Segment {
  std::size_t begin = 0;
  std::size_t length = 0;
  std::size_t iterations = 1;
  std::uint32_t kernel = kNoKernel;

  std::size_t records_covered() const { return length * iterations; }
};

struct Segmentation {
  std::vector<Segment> segments;
  std::vector<KernelInfo> kernels;
  /// Records covered by all segments (== trace record count; invariant).
  std::size_t total_records = 0;

  /// Records inside kernel segments with >= 2 iterations.
  std::size_t KernelRecords() const {
    std::size_t total = 0;
    for (const Segment& s : segments) {
      if (s.kernel != kNoKernel) total += s.records_covered();
    }
    return total;
  }
};

struct MineOptions {
  /// Longest kernel body considered (bounds verification cost).
  std::size_t max_period = 4096;
  /// Minimum iterations for a repetition to be emitted as a kernel.
  std::size_t min_iterations = 4;
};

/// Mines `t` into a segmented view. Deterministic; the returned segments
/// partition [0, records.size()) in order.
Segmentation MineKernels(const trace::Trace& t,
                         const MineOptions& options = {});

/// Content digest of one kernel body (the identity used by the kernel
/// store and the service-side kernel-table cache).
DualHash KernelDigest(const trace::TraceRecord* body, std::size_t length);

}  // namespace spta::atlas
