#include "atlas/state_digest.hpp"

namespace spta::atlas {
namespace {

void MixCache(DualHash& h, const sim::CacheConfig& c) {
  h.Mix(c.size_bytes);
  h.Mix(c.line_bytes);
  h.Mix(c.ways);
  h.Mix(static_cast<std::uint8_t>(c.placement));
  h.Mix(static_cast<std::uint8_t>(c.replacement));
}

void MixTlb(DualHash& h, const sim::TlbConfig& c) {
  h.Mix(c.entries);
  h.Mix(c.page_bytes);
  h.Mix(static_cast<std::uint8_t>(c.replacement));
  h.Mix(c.miss_penalty);
}

}  // namespace

void AppendConfigDigest(DualHash& h, const sim::PlatformConfig& config) {
  h.Mix(config.cores);
  MixCache(h, config.il1);
  MixCache(h, config.dl1);
  MixTlb(h, config.itlb);
  MixTlb(h, config.dtlb);
  h.Mix(static_cast<std::uint8_t>(config.fpu.mode));
  h.Mix(config.fpu.add_latency);
  h.Mix(config.fpu.mul_latency);
  h.Mix(config.fpu.div_base);
  h.Mix(config.fpu.div_step);
  h.Mix(config.fpu.sqrt_base);
  h.Mix(config.fpu.sqrt_step);
  h.Mix(config.bus.line_transfer_cycles);
  h.Mix(config.bus.store_transfer_cycles);
  h.Mix(config.dram.banks);
  h.Mix(config.dram.row_bytes);
  h.Mix(config.dram.row_hit_latency);
  h.Mix(config.dram.row_miss_latency);
  h.Mix(config.dram.refresh_interval);
  h.Mix(config.dram.refresh_duration);
  h.Mix(config.l2.enabled ? 1 : 0);
  MixCache(h, config.l2.cache);
  h.Mix(config.l2.hit_latency);
  h.Mix(config.pipeline.int_alu);
  h.Mix(config.pipeline.int_mul);
  h.Mix(config.pipeline.int_div);
  h.Mix(config.pipeline.taken_branch_penalty);
  h.Mix(config.pipeline.load_use_stall);
  h.Mix(config.store_buffer.depth);
}

DualHash ConfigDigest(const sim::PlatformConfig& config) {
  DualHash h;
  AppendConfigDigest(h, config);
  return h;
}

}  // namespace spta::atlas
