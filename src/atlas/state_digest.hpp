// Platform timing-configuration digest for kernel-store keys.
//
// A memoized kernel timing is only replayable on a platform whose timing
// behavior is identical, so kernel-store keys mix in a digest of every
// PlatformConfig field that can influence cycle accounting or PRNG
// consumption. This is deliberately broader than batch::TimingDigest
// (sim/batch), which covers only the fields the lockstep batch kernel
// reads — here the whole machine replays, so the whole config counts.
//
// Per-run state (placement seeds, replacement-stream registers) is NOT
// part of this digest; it lives in the entry-state digest that
// Core::AppendStateDigest computes, which keys every store entry to its
// exact micro-architectural context.
#pragma once

#include "common/hash.hpp"
#include "sim/config.hpp"

namespace spta::atlas {

/// Mixes every timing-relevant PlatformConfig field into `h`.
void AppendConfigDigest(DualHash& h, const sim::PlatformConfig& config);

/// Convenience: a fresh digest of `config`.
DualHash ConfigDigest(const sim::PlatformConfig& config);

}  // namespace spta::atlas
