#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace spta {

void ContractFailure(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace detail {

std::string FormatCheckMessage(const char* kind, const char* expr,
                               const std::string& detail) {
  std::string out = "spta ";
  out += kind;
  out += " violated: ";
  out += expr;
  if (!detail.empty()) {
    out += " [";
    out += detail;
    out += "]";
  }
  return out;
}

}  // namespace detail

}  // namespace spta
