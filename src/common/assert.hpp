// Runtime contract checking for the SpacePTA libraries.
//
// The simulator and the statistical analysis are used to produce evidence for
// certification arguments, so internal invariant violations must never be
// silently ignored: SPTA_CHECK / SPTA_REQUIRE abort with a precise message in
// every build type (they are NOT compiled out in release builds).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace spta {

/// Aborts the process after printing `file:line: message` to stderr.
/// Used by the SPTA_CHECK family; exposed for tests via death assertions.
[[noreturn]] void ContractFailure(const char* file, int line,
                                  const std::string& message);

namespace detail {

/// Formats the textual expansion of a failed check plus optional context.
std::string FormatCheckMessage(const char* kind, const char* expr,
                               const std::string& detail);

}  // namespace detail

}  // namespace spta

/// Internal invariant: a violation indicates a bug inside the library.
#define SPTA_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::spta::ContractFailure(                                               \
          __FILE__, __LINE__,                                                \
          ::spta::detail::FormatCheckMessage("invariant", #cond, ""));       \
    }                                                                        \
  } while (false)

/// Internal invariant with a streamed detail message:
///   SPTA_CHECK_MSG(a < b, "a=" << a << " b=" << b);
#define SPTA_CHECK_MSG(cond, stream_expr)                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream spta_check_oss_;                                    \
      spta_check_oss_ << stream_expr;                                        \
      ::spta::ContractFailure(                                               \
          __FILE__, __LINE__,                                                \
          ::spta::detail::FormatCheckMessage("invariant", #cond,             \
                                             spta_check_oss_.str()));        \
    }                                                                        \
  } while (false)

/// Precondition on a public API argument: a violation indicates caller error.
#define SPTA_REQUIRE(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::spta::ContractFailure(                                               \
          __FILE__, __LINE__,                                                \
          ::spta::detail::FormatCheckMessage("precondition", #cond, ""));    \
    }                                                                        \
  } while (false)

/// Precondition with a streamed detail message.
#define SPTA_REQUIRE_MSG(cond, stream_expr)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream spta_req_oss_;                                      \
      spta_req_oss_ << stream_expr;                                          \
      ::spta::ContractFailure(                                               \
          __FILE__, __LINE__,                                                \
          ::spta::detail::FormatCheckMessage("precondition", #cond,          \
                                             spta_req_oss_.str()));          \
    }                                                                        \
  } while (false)
