#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace spta {
namespace {

void SetError(std::string* error, const char* stage, const std::string& path) {
  if (error != nullptr) {
    *error = std::string(stage) + " " + path + ": " + std::strerror(errno);
  }
}

bool WriteAll(int fd, const char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool FsyncFd(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = FsyncFd(fd);
  ::close(fd);
  return ok;
}

bool AtomicWriteFile(const std::string& path, std::string_view contents,
                     std::string* error) {
  // Unique-enough sibling name: pid disambiguates concurrent writers; the
  // tmp file lives next to the destination so the rename never crosses a
  // filesystem boundary.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "open", tmp);
    return false;
  }
  if (!WriteAll(fd, contents.data(), contents.size())) {
    SetError(error, "write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (!FsyncFd(fd)) {
    SetError(error, "fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, "close", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable. Failure here is reported, but the
  // destination already holds complete contents either way.
  if (!FsyncParentDir(path)) {
    SetError(error, "fsync dir of", path);
    return false;
  }
  return true;
}

}  // namespace spta
