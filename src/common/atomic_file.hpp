// Crash-safe whole-file writes (tmp file + fsync + rename).
//
// POSIX rename(2) is atomic within a filesystem, so writing the full
// contents to a sibling temporary file, fsyncing it, and renaming it over
// the destination guarantees that a reader (or a post-crash restart) sees
// either the complete old file or the complete new file — never a
// truncated hybrid. Used for campaign sample exports and checkpoint
// finalization, where a half-written CSV would otherwise be silently
// half-ingested by a later --resume or TryReadSamplesCsv.
#pragma once

#include <string>
#include <string_view>

namespace spta {

/// Writes `contents` to `path` atomically: the data lands in
/// `path.<suffix>.tmp` first, is fsync'd, and is renamed over `path`; the
/// containing directory is fsync'd afterwards so the rename itself is
/// durable. Returns false and fills `error` (never dereferenced when null)
/// on any failure; a failed write never leaves a partial `path`.
bool AtomicWriteFile(const std::string& path, std::string_view contents,
                     std::string* error);

/// Flushes an open O_WRONLY/O_RDWR descriptor to stable storage.
/// Returns false on failure (EINTR is retried).
bool FsyncFd(int fd);

/// fsyncs the directory containing `path` so a just-created or
/// just-renamed entry is durable. Returns false on failure.
bool FsyncParentDir(const std::string& path);

}  // namespace spta
