#include "common/csv.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace spta {

std::string CsvQuote(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::Header(std::initializer_list<std::string> columns) {
  SPTA_REQUIRE(!header_written_ && rows_written_ == 0 && !row_open_);
  BeginRow();
  for (const auto& c : columns) RawField(c);
  out_ << '\n';
  row_open_ = false;
  header_written_ = true;
}

void CsvWriter::BeginRow() {
  SPTA_REQUIRE(!row_open_);
  row_open_ = true;
  first_in_row_ = true;
}

void CsvWriter::RawField(const std::string& value) {
  SPTA_REQUIRE(row_open_);
  if (!first_in_row_) out_ << ',';
  out_ << CsvQuote(value);
  first_in_row_ = false;
}

void CsvWriter::Field(const std::string& value) { RawField(value); }

void CsvWriter::Field(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  RawField(buf);
}

void CsvWriter::Field(std::uint64_t value) {
  RawField(std::to_string(value));
}

void CsvWriter::Field(std::int64_t value) {
  RawField(std::to_string(value));
}

void CsvWriter::EndRow() {
  SPTA_REQUIRE(row_open_);
  out_ << '\n';
  row_open_ = false;
  ++rows_written_;
}

void CsvWriter::Row(const std::vector<std::string>& fields) {
  BeginRow();
  for (const auto& f : fields) RawField(f);
  EndRow();
}

}  // namespace spta
