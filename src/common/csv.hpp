// Minimal CSV emission used by the benchmark harnesses to dump the series
// behind each reproduced table/figure in a machine-readable form.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace spta {

/// Streams rows of comma-separated values with RFC-4180-style quoting of
/// fields that contain commas, quotes or newlines.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Emits a header row. May be called once, before any data row.
  void Header(std::initializer_list<std::string> columns);

  /// Starts a new row; fields are appended with Field().
  void BeginRow();

  /// Appends one field to the current row.
  void Field(const std::string& value);
  void Field(double value, int precision = 6);
  void Field(std::uint64_t value);
  void Field(std::int64_t value);

  /// Terminates the current row with a newline.
  void EndRow();

  /// Convenience: emits an entire row of preformatted fields.
  void Row(const std::vector<std::string>& fields);

  /// Number of data rows fully emitted so far (header excluded).
  std::size_t rows_written() const { return rows_written_; }

 private:
  void RawField(const std::string& value);

  std::ostream& out_;
  bool row_open_ = false;
  bool first_in_row_ = true;
  bool header_written_ = false;
  std::size_t rows_written_ = 0;
};

/// Quotes a single CSV field if needed (exposed for tests).
std::string CsvQuote(const std::string& field);

}  // namespace spta
