#include "common/flags.hpp"

#include <cstdlib>

#include "common/assert.hpp"

namespace spta {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    SPTA_REQUIRE_MSG(arg.size() > 2, "malformed flag '" << arg << "'");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another flag (boolean form).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  SPTA_REQUIRE_MSG(end != it->second.c_str() && *end == '\0',
                   "flag --" << name << " expects an integer, got '"
                             << it->second << "'");
  return v;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SPTA_REQUIRE_MSG(end != it->second.c_str() && *end == '\0',
                   "flag --" << name << " expects a number, got '"
                             << it->second << "'");
  return v;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  SPTA_REQUIRE_MSG(false, "flag --" << name << " expects a boolean, got '"
                                    << it->second << "'");
  return fallback;
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const auto& k : known) found |= k == name;
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace spta
