// Minimal command-line flag parsing for the CLI tools (no dependencies).
//
// Syntax: positional arguments and `--key value` pairs (plus `--key=value`
// and boolean `--key`). Unknown-flag detection is the caller's job via
// CheckOnly().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spta {

class Flags {
 public:
  /// Parses argv[1..argc). Aborts (precondition) on a malformed flag
  /// (`--` with no name).
  Flags(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed access with defaults. GetInt/GetDouble abort on non-numeric
  /// values (precondition: the operator passed garbage).
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Returns the flag names that are present but NOT in `known` — for
  /// catching operator typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace spta
