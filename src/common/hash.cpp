#include "common/hash.hpp"

namespace spta {

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  // Boost-style combiner lifted to 64 bits with a golden-ratio constant.
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index) {
  return Mix64(master + 0x9e3779b97f4a7c15ULL * (index + 1));
}

std::uint64_t DeriveSeed(std::uint64_t master, const char* tag) {
  std::uint64_t h = master;
  for (const char* p = tag; *p != '\0'; ++p) {
    h = HashCombine(h, static_cast<std::uint64_t>(
                           static_cast<unsigned char>(*p)));
  }
  return Mix64(h);
}

}  // namespace spta
