// Deterministic, seedable mixing functions.
//
// These are used (a) to derive independent sub-seeds from a campaign master
// seed and (b) as the parametric hash inside hash-based random cache
// placement. They are fully specified here (no std::hash, whose value is
// implementation-defined) so that simulation results are bit-reproducible
// across compilers and platforms.
#pragma once

#include <cstdint>

namespace spta {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix (Stafford variant 13).
/// Bijective on uint64, so distinct inputs never collide.
std::uint64_t Mix64(std::uint64_t x);

/// Combines a running hash with a new value (order-sensitive).
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value);

/// Derives the `index`-th independent sub-seed from `master`.
/// Guaranteed deterministic; used to give every platform component and every
/// measurement run its own seed without correlation.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index);

/// Derives a sub-seed from a master seed and a component name tag.
std::uint64_t DeriveSeed(std::uint64_t master, const char* tag);

/// Two independently constructed 64-bit running hashes over one value
/// stream. Single 64-bit digests over arbitrarily long inputs are not
/// injective; consumers that must never act on a colliding digest (the
/// service result cache, the atlas kernel store) mix every value into two
/// decorrelated accumulators and require BOTH to match. The second stream
/// pre-whitens each value with an odd multiplier so the two hashes never
/// see the same input sequence.
struct DualHash {
  std::uint64_t lo = 0x243f6a8885a308d3ULL;  // pi fractional bits
  std::uint64_t hi = 0x13198a2e03707344ULL;

  void Mix(std::uint64_t value) {
    lo = HashCombine(lo, value);
    hi = HashCombine(hi, value * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  }

  bool operator==(const DualHash& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const DualHash& other) const { return !(*this == other); }
};

}  // namespace spta
