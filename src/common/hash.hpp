// Deterministic, seedable mixing functions.
//
// These are used (a) to derive independent sub-seeds from a campaign master
// seed and (b) as the parametric hash inside hash-based random cache
// placement. They are fully specified here (no std::hash, whose value is
// implementation-defined) so that simulation results are bit-reproducible
// across compilers and platforms.
#pragma once

#include <cstdint>

namespace spta {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix (Stafford variant 13).
/// Bijective on uint64, so distinct inputs never collide.
std::uint64_t Mix64(std::uint64_t x);

/// Combines a running hash with a new value (order-sensitive).
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value);

/// Derives the `index`-th independent sub-seed from `master`.
/// Guaranteed deterministic; used to give every platform component and every
/// measurement run its own seed without correlation.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index);

/// Derives a sub-seed from a master seed and a component name tag.
std::uint64_t DeriveSeed(std::uint64_t master, const char* tag);

}  // namespace spta
