// Deterministic, seedable mixing functions.
//
// These are used (a) to derive independent sub-seeds from a campaign master
// seed and (b) as the parametric hash inside hash-based random cache
// placement. They are fully specified here (no std::hash, whose value is
// implementation-defined) so that simulation results are bit-reproducible
// across compilers and platforms.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace spta {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix (Stafford variant 13).
/// Bijective on uint64, so distinct inputs never collide.
std::uint64_t Mix64(std::uint64_t x);

/// Combines a running hash with a new value (order-sensitive).
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value);

/// Derives the `index`-th independent sub-seed from `master`.
/// Guaranteed deterministic; used to give every platform component and every
/// measurement run its own seed without correlation.
std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t index);

/// Derives a sub-seed from a master seed and a component name tag.
std::uint64_t DeriveSeed(std::uint64_t master, const char* tag);

/// Two independently constructed 64-bit running hashes over one value
/// stream. Single 64-bit digests over arbitrarily long inputs are not
/// injective; consumers that must never act on a colliding digest (the
/// service result cache, the atlas kernel store) mix every value into two
/// decorrelated accumulators and require BOTH to match. The second stream
/// pre-whitens each value with an odd multiplier so the two hashes never
/// see the same input sequence.
struct DualHash {
  std::uint64_t lo = 0x243f6a8885a308d3ULL;  // pi fractional bits
  std::uint64_t hi = 0x13198a2e03707344ULL;

  void Mix(std::uint64_t value) {
    lo = HashCombine(lo, value);
    hi = HashCombine(hi, value * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  }

  bool operator==(const DualHash& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const DualHash& other) const { return !(*this == other); }
};

/// DualHash over raw bytes: length first, then 8-byte little-endian words,
/// then the zero-padded tail. Deterministic across platforms (byte order
/// of the words does not matter for collision resistance, and we only ever
/// compare digests produced by this same function). Used wherever bytes —
/// not structured values — are the content being addressed: the service's
/// request-routing digest, the memoized warm path, and the persistent
/// result-cache entry checksum.
inline DualHash HashBytes(std::string_view bytes) {
  DualHash digest;
  digest.Mix(bytes.size());
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, 8);
    digest.Mix(word);
  }
  if (i < bytes.size()) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    digest.Mix(tail);
  }
  return digest;
}

}  // namespace spta
