#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace spta {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SPTA_REQUIRE_MSG(lo < hi, "lo=" << lo << " hi=" << hi);
  SPTA_REQUIRE(bins > 0);
}

Histogram Histogram::FromSample(std::span<const double> sample,
                                std::size_t bins) {
  SPTA_REQUIRE(!sample.empty());
  auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
  double lo = *mn;
  double hi = *mx;
  if (lo == hi) hi = lo + 1.0;  // degenerate constant sample
  // Nudge hi so the max lands inside the last bin rather than overflow.
  hi = std::nextafter(hi, hi + 1.0);
  Histogram h(lo, hi, bins);
  h.AddAll(sample);
  return h;
}

void Histogram::Add(double value) {
  ++total_;
  std::size_t bin;
  if (value < lo_) {
    ++underflow_;
    bin = 0;
  } else if (value >= hi_) {
    ++overflow_;
    bin = counts_.size() - 1;
  } else {
    double frac = (value - lo_) / (hi_ - lo_);
    bin = std::min(counts_.size() - 1,
                   static_cast<std::size_t>(frac * counts_.size()));
  }
  ++counts_[bin];
}

void Histogram::AddAll(std::span<const double> values) {
  for (double v : values) Add(v);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  SPTA_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  SPTA_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  SPTA_REQUIRE(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::Density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::Ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream oss;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[b]) * width / peak);
    oss << "[" << FormatG(bin_lo(b), 6) << ", " << FormatG(bin_hi(b), 6)
        << ") " << std::string(bar, '#') << " " << counts_[b] << '\n';
  }
  return oss.str();
}

Histogram MakeLatencyHistogram() {
  return Histogram(kLatencyBinLoMicros, kLatencyBinHiMicros,
                   kLatencyBinCount);
}

}  // namespace spta
