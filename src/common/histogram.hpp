// Simple fixed-bin histogram for execution-time distributions.
//
// Used by reports and the DET-vs-RAND comparison to summarize the shape of a
// sample without storing it, and by tests to compare distributions cheaply.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spta {

/// Equal-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin and counted in underflow()/overflow() as well.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Requires lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: builds a histogram spanning [min(sample), max(sample)].
  static Histogram FromSample(std::span<const double> sample,
                              std::size_t bins);

  /// Records one observation.
  void Add(double value);

  /// Records many observations.
  void AddAll(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  /// Inclusive lower edge of `bin`.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  double bin_hi(std::size_t bin) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Fraction of observations in `bin` (0 if the histogram is empty).
  double Density(std::size_t bin) const;

  /// Renders an ASCII bar chart, `width` characters for the largest bin.
  std::string Ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

// --- Shared service-latency bin spec --------------------------------------
// Single source of truth for every latency histogram in the system: the
// service's hit/miss ANALYZE latencies, its queue-wait distribution, and
// the Prometheus `le` bucket edges rendered from them (src/obs). 40 bins
// over [0, 200ms): a cache hit lands in the first bin; a cold 3,000-sample
// analysis lands mid-range; anything pathological shows up in overflow()
// rather than being lost. Changing these constants changes the wire-visible
// bucket edges — update docs/OBSERVABILITY.md alongside.
inline constexpr double kLatencyBinLoMicros = 0.0;
inline constexpr double kLatencyBinHiMicros = 200'000.0;
inline constexpr std::size_t kLatencyBinCount = 40;

/// A histogram with the shared latency shape above (microsecond units).
Histogram MakeLatencyHistogram();

}  // namespace spta
