#include "common/jsonlog.hpp"

#include <chrono>
#include <cinttypes>

#include <unistd.h>

namespace spta {

namespace {

void AppendEscaped(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char raw : value) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (c == '"') {
      out->append("\\\"");
    } else if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
  out->push_back('"');
}

}  // namespace

JsonLogLine::JsonLogLine(std::string_view component, std::string_view event) {
  const std::int64_t ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char head[64];
  std::snprintf(head, sizeof head, "{\"ts_ms\":%" PRId64 ",\"pid\":%ld",
                ts_ms, static_cast<long>(::getpid()));
  line_.append(head);
  line_.append(",\"component\":");
  AppendEscaped(&line_, component);
  line_.append(",\"event\":");
  AppendEscaped(&line_, event);
}

JsonLogLine& JsonLogLine::Int(std::string_view key, std::int64_t value) {
  line_.append(",");
  AppendEscaped(&line_, key);
  char buf[32];
  std::snprintf(buf, sizeof buf, ":%" PRId64, value);
  line_.append(buf);
  return *this;
}

JsonLogLine& JsonLogLine::Str(std::string_view key, std::string_view value) {
  line_.append(",");
  AppendEscaped(&line_, key);
  line_.push_back(':');
  AppendEscaped(&line_, value);
  return *this;
}

std::string JsonLogLine::Finish() const { return line_ + "}"; }

void JsonLogLine::Emit(std::FILE* out) const {
  const std::string line = Finish();
  std::fprintf(out, "%s\n", line.c_str());
  std::fflush(out);
}

}  // namespace spta
