// Structured one-line-JSON logging for long-running supervisors.
//
// The fleet supervisor's stderr is a machine-parsed surface: the chaos
// test follows child lifecycles through it, and operators grep it next
// to the flight-recorder dumps. Prose lines made that contract brittle
// (every wording tweak broke a sscanf), so supervisor events are one
// JSON object per line with a stable shape:
//
//   {"ts_ms":1754700000123,"pid":4242,"component":"spta_fleet",
//    "event":"spawned","child_pid":4250,"slot":1}
//
// `ts_ms` (wall-clock Unix milliseconds), `pid` (the logging process)
// and `component` are stamped automatically; `event` names what
// happened; everything else is typed key/value fields added by the call
// site. Keys are emitted in insertion order, values are either JSON
// numbers (Int) or escaped strings (Str) — parsers may rely on
// `"key":value` substrings without a full JSON parser.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace spta {

class JsonLogLine {
 public:
  /// Starts a line for `event`; `component` names the logging program.
  JsonLogLine(std::string_view component, std::string_view event);

  /// Adds an integer field.
  JsonLogLine& Int(std::string_view key, std::int64_t value);

  /// Adds a string field (JSON-escaped).
  JsonLogLine& Str(std::string_view key, std::string_view value);

  /// The completed line, without the trailing newline.
  std::string Finish() const;

  /// Writes the line + '\n' to `out` and flushes (supervisor logs must
  /// survive an abrupt exit).
  void Emit(std::FILE* out = stderr) const;

 private:
  std::string line_;
};

}  // namespace spta
