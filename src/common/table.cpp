#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace spta {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SPTA_REQUIRE(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  SPTA_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Render(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
      out << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::ToString() const {
  std::ostringstream oss;
  Render(oss);
  return oss.str();
}

std::string FormatG(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string FormatF(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatProb(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0e", p);
  // Normalize e.g. "1e-012" (some libcs) to "1e-12".
  std::string s = buf;
  auto epos = s.find('e');
  if (epos != std::string::npos) {
    std::string mant = s.substr(0, epos);
    std::string exp = s.substr(epos + 1);
    bool neg = !exp.empty() && exp[0] == '-';
    if (neg || (!exp.empty() && exp[0] == '+')) exp.erase(0, 1);
    while (exp.size() > 1 && exp[0] == '0') exp.erase(0, 1);
    s = mant + "e" + (neg ? "-" : "") + exp;
  }
  return s;
}

}  // namespace spta
