// Fixed-width text table rendering for benchmark/report output.
//
// The bench binaries print paper tables/figures as aligned text so the
// reproduction can be compared against the paper by eye, plus CSV (csv.hpp)
// for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace spta {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `out`.
  void Render(std::ostream& out) const;

  /// Renders to a string (convenience for tests).
  std::string ToString() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits.
std::string FormatG(double value, int precision = 6);

/// Formats a double in fixed notation with `decimals` decimal places.
std::string FormatF(double value, int decimals = 2);

/// Formats a probability as a power-of-ten style string, e.g. "1e-12".
std::string FormatProb(double p);

}  // namespace spta
