#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace spta {

namespace {
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SPTA_REQUIRE(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] { return unfinished_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining work even when stopping, so a destructed pool
      // never drops submitted tasks.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --unfinished_;
      if (unfinished_ == 0) batch_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Chunked dynamic claiming: big enough to amortize the atomic, small
  // enough (~8 chunks per worker) to balance uneven iteration costs.
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (pool.size() * 8));
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t pumps = std::min(pool.size(), count);
  for (std::size_t p = 0; p < pumps; ++p) {
    pool.Submit([next, count, chunk, &body] {
      for (;;) {
        const std::size_t begin =
            next->fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk, count);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace spta
