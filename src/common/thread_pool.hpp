// Fixed-size worker pool for fanning deterministic work across threads.
//
// The pool exists to parallelize measurement campaigns: thousands of
// independent simulation runs whose results are written into pre-sized
// output slots by run index, so the sample vector is invariant to thread
// count and scheduling order. The pool itself is generic: submit void()
// tasks, then Wait() for the batch to drain. One orchestrating thread
// submits and waits; the workers never submit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spta {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are still executed (the destructor
  /// drains the queue before the workers exit).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Thread-safe, but intended for a single
  /// orchestrating thread (Wait() waits for ALL outstanding tasks).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (later ones are dropped). The
  /// pool stays usable for further batches afterwards.
  void Wait();

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static std::size_t DefaultThreadCount();

  /// Index of the calling pool worker in [0, size()), or kNotAWorker when
  /// the caller is not a pool worker thread. Lets task bodies keep
  /// per-worker scratch state (e.g. a reusable simulation arena) without
  /// locks: slot i is only ever touched by worker i.
  static std::size_t CurrentWorkerIndex();
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

 private:
  void WorkerLoop(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t unfinished_ = 0;  ///< queued + currently executing
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every i in [0, count) on `pool`'s workers and blocks
/// until all iterations are done (rethrows the first task exception).
/// Iterations are claimed dynamically in contiguous chunks, so the
/// ASSIGNMENT of index to thread is scheduling-dependent — determinism is
/// the body's job: write results only to slot i, never append.
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace spta
