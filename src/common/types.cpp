#include "common/types.hpp"

namespace spta {

const char* ToString(Phase phase) {
  switch (phase) {
    case Phase::kAnalysis:
      return "analysis";
    case Phase::kOperation:
      return "operation";
  }
  return "unknown";
}

}  // namespace spta
