// Fundamental value types shared across the SpacePTA libraries.
#pragma once

#include <cstdint>

namespace spta {

/// Simulated time, in processor clock cycles.
using Cycles = std::uint64_t;

/// Physical/virtual byte address inside the simulated platform.
using Address = std::uint64_t;

/// Identifier of a core in the multicore platform (0-based).
using CoreId = std::uint32_t;

/// Seed material for any of the platform or workload PRNGs.
using Seed = std::uint64_t;

/// Whether the platform operates in the MBPTA *analysis* phase (jittery
/// resources forced to their upper-bounding configuration) or in the
/// *operation* phase (nominal, value-dependent behaviour).
enum class Phase : std::uint8_t {
  kAnalysis,
  kOperation,
};

/// Returns a short human-readable name ("analysis" / "operation").
const char* ToString(Phase phase);

}  // namespace spta
