#include "evt/ad_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace spta::evt {

AdResult AndersonDarlingGumbel(std::span<const double> xs,
                               const GumbelDist& dist) {
  SPTA_REQUIRE(xs.size() >= 8);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double dn = static_cast<double>(n);

  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // log F(x_(i)) computed via the stable LogCdf; log(1 - F(x_(n-1-i)))
    // via log1p(-exp(logF)) guarded against logF == 0.
    const double log_f = dist.LogCdf(sorted[i]);
    const double log_f_rev = dist.LogCdf(sorted[n - 1 - i]);
    double log_sf_rev;
    if (log_f_rev > -1e-300) {
      // F == 1 numerically: 1-F underflows; clamp to a representable tail.
      log_sf_rev = -745.0;  // ~log(DBL_MIN)
    } else {
      log_sf_rev = std::log(-std::expm1(log_f_rev));
    }
    sum += (2.0 * static_cast<double>(i) + 1.0) * (log_f + log_sf_rev);
  }
  AdResult r;
  r.a_squared = -dn - sum / dn;
  r.adjusted = r.a_squared * (1.0 + 0.2 / std::sqrt(dn));
  return r;
}

}  // namespace spta::evt
