// Anderson-Darling goodness-of-fit test for a fitted Gumbel tail.
//
// The AD statistic weights the tails more heavily than KS or chi-square —
// exactly where a pWCET model must not be wrong. Critical values follow
// Stephens' tables for the Gumbel case with both parameters estimated
// (case 3), using the small-sample adjustment A* = A^2 * (1 + 0.2/sqrt(n)).
#pragma once

#include <span>

#include "evt/gumbel.hpp"

namespace spta::evt {

struct AdResult {
  double a_squared = 0.0;  ///< Raw Anderson-Darling statistic.
  double adjusted = 0.0;   ///< Stephens small-sample adjusted statistic.
  double critical_5pct = 0.757;  ///< Case-3 Gumbel critical value at 5%.

  /// True when the adjusted statistic is below the 5% critical value
  /// (fit NOT rejected).
  bool NotRejected() const { return adjusted < critical_5pct; }
};

/// Computes the AD statistic of `xs` against the fitted `dist`.
/// Requires xs.size() >= 8.
AdResult AndersonDarlingGumbel(std::span<const double> xs,
                               const GumbelDist& dist);

}  // namespace spta::evt
