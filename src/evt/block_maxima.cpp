#include "evt/block_maxima.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace spta::evt {

std::vector<double> BlockMaxima(std::span<const double> xs,
                                std::size_t block_size) {
  SPTA_REQUIRE(block_size >= 1);
  const std::size_t n_blocks = xs.size() / block_size;
  SPTA_REQUIRE_MSG(n_blocks >= 1, "sample of " << xs.size()
                                               << " has no complete block of "
                                               << block_size);
  std::vector<double> maxima;
  maxima.reserve(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const auto block = xs.subspan(b * block_size, block_size);
    maxima.push_back(*std::max_element(block.begin(), block.end()));
  }
  return maxima;
}

std::size_t CompleteBlockCount(std::size_t sample_size,
                               std::size_t block_size) {
  SPTA_REQUIRE(block_size >= 1);
  return sample_size / block_size;
}

std::size_t SuggestBlockSize(std::size_t sample_size, std::size_t min_blocks) {
  SPTA_REQUIRE(min_blocks >= 1);
  SPTA_REQUIRE_MSG(sample_size >= min_blocks,
                   "sample=" << sample_size << " min_blocks=" << min_blocks);
  return std::max<std::size_t>(1, sample_size / min_blocks);
}

}  // namespace spta::evt
