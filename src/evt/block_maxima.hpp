// Block-maxima extraction for MBPTA.
//
// The Cucu-Grosjean MBPTA protocol groups the time-ordered execution-time
// sample into consecutive blocks of size b and keeps each block's maximum;
// EVT then models the maxima. A trailing partial block is discarded (it
// would bias the maxima low).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spta::evt {

/// Returns the maxima of consecutive `block_size`-sized blocks of `xs`,
/// discarding a trailing partial block. Requires block_size >= 1 and at
/// least one complete block.
std::vector<double> BlockMaxima(std::span<const double> xs,
                                std::size_t block_size);

/// Number of complete blocks available for the given sample/block sizes.
std::size_t CompleteBlockCount(std::size_t sample_size,
                               std::size_t block_size);

/// Suggests a block size giving at least `min_blocks` maxima while keeping
/// blocks as large as possible (larger blocks = better EVT convergence).
/// Requires sample_size >= min_blocks. Returns at least 1.
std::size_t SuggestBlockSize(std::size_t sample_size,
                             std::size_t min_blocks = 30);

}  // namespace spta::evt
