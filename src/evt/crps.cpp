#include "evt/crps.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace spta::evt {

double CrpsNumeric(const std::function<double(double)>& quantile,
                   std::span<const double> xs, int nodes) {
  SPTA_REQUIRE(!xs.empty());
  SPTA_REQUIRE(nodes >= 16);
  // Precompute the quantile grid once; reuse across observations.
  std::vector<double> q(static_cast<std::size_t>(nodes));
  std::vector<double> alpha(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    alpha[static_cast<std::size_t>(i)] =
        (static_cast<double>(i) + 0.5) / static_cast<double>(nodes);
    q[static_cast<std::size_t>(i)] =
        quantile(alpha[static_cast<std::size_t>(i)]);
  }
  double total = 0.0;
  for (const double y : xs) {
    double crps = 0.0;
    for (int i = 0; i < nodes; ++i) {
      const double a = alpha[static_cast<std::size_t>(i)];
      const double qi = q[static_cast<std::size_t>(i)];
      const double indicator = y < qi ? 1.0 : 0.0;
      crps += 2.0 * (indicator - a) * (qi - y);
    }
    total += crps / static_cast<double>(nodes);
  }
  return total / static_cast<double>(xs.size());
}

double CrpsGumbel(const GumbelDist& dist, std::span<const double> xs) {
  return CrpsNumeric([&](double p) { return dist.Quantile(p); }, xs);
}

}  // namespace spta::evt
