// Continuous Ranked Probability Score (CRPS) for tail-model selection.
//
// CRPS measures the distance between a forecast CDF and observed values
// (lower = better); unlike p-value tests it ranks competing models on a
// continuous scale, which is how tools in the chronovise line select
// between candidate tail fits. Computed via the quantile-score identity
//   CRPS(F, y) = integral_0^1 2*(1{y < F^-1(a)} - a)*(F^-1(a) - y) da
// with midpoint quadrature over the probability axis — model-agnostic,
// needing only the quantile function.
#pragma once

#include <functional>
#include <span>

#include "evt/gumbel.hpp"

namespace spta::evt {

/// Average CRPS of the quantile function `quantile` over observations
/// `xs`, with `nodes` quadrature nodes. Requires a non-empty sample.
double CrpsNumeric(const std::function<double(double)>& quantile,
                   std::span<const double> xs, int nodes = 512);

/// Convenience: CRPS of a fitted Gumbel.
double CrpsGumbel(const GumbelDist& dist, std::span<const double> xs);

}  // namespace spta::evt
