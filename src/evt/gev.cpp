#include "evt/gev.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <limits>

#include "common/assert.hpp"
#include "stats/optimize.hpp"
#include "stats/special.hpp"

namespace spta::evt {

double GevDist::Cdf(double x) const {
  if (xi == 0.0) {
    return std::exp(-std::exp(-(x - mu) / sigma));
  }
  const double t = 1.0 + xi * (x - mu) / sigma;
  if (t <= 0.0) {
    // Outside the support: lower end for xi > 0, upper end for xi < 0.
    return xi > 0.0 ? 0.0 : 1.0;
  }
  return std::exp(-std::pow(t, -1.0 / xi));
}

double GevDist::Quantile(double p) const {
  SPTA_REQUIRE_MSG(p > 0.0 && p < 1.0, "p=" << p);
  const double y = -std::log(p);  // exp(1) variate under H0
  if (xi == 0.0) return mu - sigma * std::log(y);
  return mu + sigma * (std::pow(y, -xi) - 1.0) / xi;
}

bool GevDist::IsEffectivelyGumbel(double tol) const {
  return std::fabs(xi) < tol;
}

double GevDist::LogLikelihood(std::span<const double> xs) const {
  if (sigma <= 0.0) return -std::numeric_limits<double>::infinity();
  double ll = 0.0;
  for (double x : xs) {
    const double z = (x - mu) / sigma;
    if (std::fabs(xi) < 1e-12) {
      ll += -std::log(sigma) - z - std::exp(-z);
      continue;
    }
    const double t = 1.0 + xi * z;
    if (t <= 0.0) return -std::numeric_limits<double>::infinity();
    ll += -std::log(sigma) - (1.0 + 1.0 / xi) * std::log(t) -
          std::pow(t, -1.0 / xi);
  }
  return ll;
}

GevDist FitGevMle(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 10);
  const GevDist start = FitGevPwm(xs);
  const auto objective = [&](const std::vector<double>& p) {
    GevDist d{p[0], p[1], p[2]};
    if (d.sigma <= 0.0) return std::numeric_limits<double>::infinity();
    return -d.LogLikelihood(xs);
  };
  const auto result = stats::NelderMead(
      objective, {start.mu, start.sigma, start.xi},
      {0.1 * start.sigma, 0.1 * start.sigma, 0.05});
  GevDist fit{result.x[0], result.x[1], result.x[2]};
  // Never return something worse than the starting point.
  if (fit.sigma <= 0.0 || fit.LogLikelihood(xs) < start.LogLikelihood(xs)) {
    return start;
  }
  return fit;
}

GevDist FitGevPwm(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 3);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    const double i = static_cast<double>(j);  // 0-based order index
    b0 += sorted[j];
    b1 += sorted[j] * i / (n - 1.0);
    b2 += sorted[j] * i * (i - 1.0) / ((n - 1.0) * (n - 2.0));
  }
  b0 /= n;
  b1 /= n;
  b2 /= n;
  const double lambda2 = 2.0 * b1 - b0;
  SPTA_CHECK_MSG(lambda2 > 0.0, "degenerate sample: lambda2=" << lambda2);

  // Hosking's estimator for the shape (their k = -xi):
  const double c =
      (2.0 * b1 - b0) / (3.0 * b2 - b0) - std::log(2.0) / std::log(3.0);
  const double k = 7.8590 * c + 2.9554 * c * c;

  GevDist d;
  if (std::fabs(k) < 1e-8) {
    // Gumbel limit.
    d.xi = 0.0;
    d.sigma = lambda2 / std::log(2.0);
    d.mu = b0 - stats::kEulerGamma * d.sigma;
    return d;
  }
  const double gamma_1pk = std::tgamma(1.0 + k);
  d.xi = -k;
  d.sigma = lambda2 * k / (gamma_1pk * (1.0 - std::pow(2.0, -k)));
  d.mu = b0 + d.sigma * (gamma_1pk - 1.0) / k;
  SPTA_CHECK_MSG(d.sigma > 0.0, "PWM fit produced sigma=" << d.sigma);
  return d;
}

}  // namespace spta::evt
