// Generalized extreme value (GEV) distribution and PWM fitting.
//
// The GEV generalizes the Gumbel with a shape parameter xi; MBPTA practice
// checks that the fitted shape is ~0 (light tail) before trusting a Gumbel
// projection. We fit by probability-weighted moments (Hosking, Wallis &
// Wood 1985), the standard robust estimator for small block-maxima samples.
#pragma once

#include <span>

namespace spta::evt {

/// GEV distribution. For xi != 0:
///   F(x) = exp(-(1 + xi*(x-mu)/sigma)^(-1/xi))  on its support;
/// xi == 0 degenerates to the Gumbel.
struct GevDist {
  double mu = 0.0;     ///< Location.
  double sigma = 1.0;  ///< Scale (> 0).
  double xi = 0.0;     ///< Shape: > 0 heavy tail, < 0 bounded tail.

  /// CDF value in [0, 1] (handles points outside the support).
  double Cdf(double x) const;

  /// Quantile for p in (0, 1).
  double Quantile(double p) const;

  /// True when |xi| is small enough to treat the model as Gumbel.
  bool IsEffectivelyGumbel(double tol = 1e-3) const;

  /// Log-likelihood of `xs` under this distribution (-inf when any point
  /// falls outside the support).
  double LogLikelihood(std::span<const double> xs) const;
};

/// Fits a GEV by PWM / L-moments. Requires xs.size() >= 3 and a
/// non-constant sample.
GevDist FitGevPwm(std::span<const double> xs);

/// Fits a GEV by maximum likelihood: Nelder-Mead from the PWM starting
/// point; guaranteed to return a fit with likelihood >= the PWM fit's.
/// Requires xs.size() >= 10 and a non-constant sample.
GevDist FitGevMle(std::span<const double> xs);

}  // namespace spta::evt
