#include "evt/gof.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "stats/special.hpp"

namespace spta::evt {

std::vector<std::pair<double, double>> QqPoints(std::span<const double> xs,
                                                const GumbelDist& dist) {
  SPTA_REQUIRE(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  std::vector<std::pair<double, double>> pts;
  pts.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double p = (static_cast<double>(i) + 0.5) / n;
    pts.emplace_back(dist.Quantile(p), sorted[i]);
  }
  return pts;
}

ChiSquareGofResult ChiSquareGof(std::span<const double> xs,
                                const GumbelDist& dist, std::size_t bins,
                                std::size_t fitted_params) {
  SPTA_REQUIRE(bins >= 3);
  SPTA_REQUIRE_MSG(xs.size() / bins >= 5,
                   "need >= 5 expected per bin; n=" << xs.size()
                                                    << " bins=" << bins);
  SPTA_REQUIRE(bins > fitted_params + 1);
  const double n = static_cast<double>(xs.size());
  const double expected = n / static_cast<double>(bins);
  std::vector<std::size_t> counts(bins, 0);
  for (double x : xs) {
    double u = dist.Cdf(x);
    u = std::min(std::max(u, 0.0), std::nextafter(1.0, 0.0));
    const auto b = std::min(
        bins - 1, static_cast<std::size_t>(u * static_cast<double>(bins)));
    ++counts[b];
  }
  double stat = 0.0;
  for (std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  ChiSquareGofResult r;
  r.statistic = stat;
  r.bins = bins;
  r.df = static_cast<double>(bins - 1 - fitted_params);
  r.p_value = stats::ChiSquareSf(stat, r.df);
  return r;
}

ExceedanceCheckResult ExceedanceCheck(std::span<const double> xs,
                                      const GumbelDist& dist, double level) {
  SPTA_REQUIRE(level > 0.0 && level < 1.0);
  SPTA_REQUIRE(!xs.empty());
  ExceedanceCheckResult r;
  r.quantile_level = level;
  r.bound = dist.Quantile(level);
  const double n = static_cast<double>(xs.size());
  const double p = 1.0 - level;
  r.expected = static_cast<std::size_t>(std::llround(n * p));
  r.observed = static_cast<std::size_t>(
      std::count_if(xs.begin(), xs.end(),
                    [&](double x) { return x > r.bound; }));
  const double sigma = std::sqrt(n * p * (1.0 - p));
  r.z_score = sigma > 0.0
                  ? (static_cast<double>(r.observed) - n * p) / sigma
                  : 0.0;
  r.consistent = std::fabs(r.z_score) <= 3.0;
  return r;
}

double Ppcc(std::span<const double> xs, const GumbelDist& dist) {
  const auto pts = QqPoints(xs, dist);
  SPTA_REQUIRE(pts.size() >= 3);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  const double n = static_cast<double>(pts.size());
  for (const auto& [x, y] : pts) {
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  SPTA_REQUIRE_MSG(vx > 0.0 && vy > 0.0, "degenerate QQ points");
  return cov / std::sqrt(vx * vy);
}

}  // namespace spta::evt
