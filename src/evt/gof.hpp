// Goodness-of-fit diagnostics for EVT tail models.
//
// MBPTA's credibility rests on the fitted tail actually matching the block
// maxima: we provide QQ points, a chi-square binned test, the one-sample KS
// test against the fitted CDF, and an upper-tail exceedance-count check.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "evt/gumbel.hpp"

namespace spta::evt {

/// QQ plot points: (theoretical quantile, observed order statistic) for the
/// fitted Gumbel using plotting positions p_i = (i - 0.5)/n. A good fit
/// lies near the diagonal.
std::vector<std::pair<double, double>> QqPoints(std::span<const double> xs,
                                                const GumbelDist& dist);

/// Result of a chi-square binned GOF test.
struct ChiSquareGofResult {
  double statistic = 0.0;
  std::size_t bins = 0;
  double df = 0.0;      ///< bins - 1 - fitted_params.
  double p_value = 0.0;
  bool NotRejected(double alpha = 0.05) const { return p_value >= alpha; }
};

/// Chi-square GOF of `xs` against the fitted Gumbel using equiprobable bins
/// (expected count = n/bins in each). `fitted_params` (default 2: mu, beta)
/// is subtracted from the degrees of freedom. Requires n/bins >= 5.
ChiSquareGofResult ChiSquareGof(std::span<const double> xs,
                                const GumbelDist& dist, std::size_t bins = 10,
                                std::size_t fitted_params = 2);

/// Result of the exceedance-count check at a fitted quantile.
struct ExceedanceCheckResult {
  double quantile_level = 0.0;   ///< e.g. 0.99.
  double bound = 0.0;            ///< dist.Quantile(level).
  std::size_t expected = 0;      ///< round(n * (1-level)).
  std::size_t observed = 0;      ///< # observations above the bound.
  /// Normal-approximation z-score of the observed count.
  double z_score = 0.0;
  /// True when |z| <= 3 (observed exceedances consistent with the model).
  bool consistent = false;
};

/// Counts observations above the fitted `level`-quantile and compares with
/// the binomial expectation — a direct check that the model does not
/// underestimate the tail.
ExceedanceCheckResult ExceedanceCheck(std::span<const double> xs,
                                      const GumbelDist& dist,
                                      double level = 0.99);

/// Probability-plot correlation coefficient (PPCC): the Pearson
/// correlation of the QQ points. 1.0 = perfect fit; values below ~0.98
/// on a few hundred points indicate a poor distributional match.
double Ppcc(std::span<const double> xs, const GumbelDist& dist);

}  // namespace spta::evt
