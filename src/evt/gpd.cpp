#include "evt/gpd.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace spta::evt {

double GpdDist::Cdf(double y) const { return 1.0 - Sf(y); }

double GpdDist::Sf(double y) const {
  if (y <= 0.0) return 1.0;
  if (xi == 0.0) return std::exp(-y / sigma);
  const double t = 1.0 + xi * y / sigma;
  if (t <= 0.0) return 0.0;  // beyond the upper endpoint (xi < 0)
  return std::pow(t, -1.0 / xi);
}

double GpdDist::Quantile(double p) const {
  SPTA_REQUIRE_MSG(p > 0.0 && p < 1.0, "p=" << p);
  if (xi == 0.0) return -sigma * std::log(1.0 - p);
  return sigma * (std::pow(1.0 - p, -xi) - 1.0) / xi;
}

GpdDist FitGpdPwm(std::span<const double> excesses) {
  SPTA_REQUIRE(excesses.size() >= 2);
  std::vector<double> sorted(excesses.begin(), excesses.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double a0 = 0.0;
  double a1 = 0.0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    a0 += sorted[j];
    // Hosking-Wallis alpha_1 = M(1,0,1) uses decreasing weights (n-1-j)/(n-1).
    a1 += sorted[j] * (n - 1.0 - static_cast<double>(j)) / (n - 1.0);
  }
  a0 /= n;
  a1 /= n;
  const double denom = a0 - 2.0 * a1;
  SPTA_CHECK_MSG(denom != 0.0, "degenerate excesses for GPD PWM");
  // Hosking-Wallis k (their convention), xi = -k.
  const double k = a0 / denom - 2.0;
  GpdDist d;
  d.xi = -k;
  d.sigma = 2.0 * a0 * a1 / denom;
  SPTA_CHECK_MSG(d.sigma > 0.0, "PWM fit produced sigma=" << d.sigma);
  return d;
}

double PotModel::Exceedance(double x) const {
  if (x < threshold) return zeta;  // model only valid above the threshold
  return zeta * gpd.Sf(x - threshold);
}

double PotModel::QuantileForExceedance(double p) const {
  SPTA_REQUIRE_MSG(p > 0.0 && p < zeta, "p=" << p << " zeta=" << zeta);
  // Solve zeta * Sf(y) = p  =>  Sf(y) = p/zeta  =>  y = Quantile(1 - p/zeta).
  return threshold + gpd.Quantile(1.0 - p / zeta);
}

PotModel FitPot(std::span<const double> sample, double tail_fraction) {
  SPTA_REQUIRE(tail_fraction > 0.0 && tail_fraction < 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n_exc = static_cast<std::size_t>(
      tail_fraction * static_cast<double>(sorted.size()));
  SPTA_REQUIRE_MSG(n_exc >= 20, "too few excesses: " << n_exc);
  const std::size_t cut = sorted.size() - n_exc;
  PotModel m;
  m.threshold = sorted[cut - 1];
  std::vector<double> excesses;
  excesses.reserve(n_exc);
  for (std::size_t i = cut; i < sorted.size(); ++i) {
    excesses.push_back(sorted[i] - m.threshold);
  }
  m.zeta = static_cast<double>(n_exc) / static_cast<double>(sorted.size());
  m.gpd = FitGpdPwm(excesses);
  m.n_excesses = n_exc;
  return m;
}

}  // namespace spta::evt
