// Generalized Pareto distribution (GPD) and peaks-over-threshold fitting.
//
// The alternative EVT route to block maxima: model the excesses over a high
// threshold with a GPD (Pickands-Balkema-de Haan). Provided both as a
// cross-check on the Gumbel projection and for the EVT-sensitivity ablation.
#pragma once

#include <span>
#include <vector>

namespace spta::evt {

/// GPD over excesses y = x - threshold >= 0. For xi != 0:
///   F(y) = 1 - (1 + xi*y/sigma)^(-1/xi); xi == 0 is the exponential.
struct GpdDist {
  double sigma = 1.0;  ///< Scale (> 0).
  double xi = 0.0;     ///< Shape.

  /// CDF of an excess y >= 0.
  double Cdf(double y) const;

  /// Survival function P[Y > y].
  double Sf(double y) const;

  /// Quantile of the excess distribution for p in (0, 1).
  double Quantile(double p) const;
};

/// Fits a GPD to non-negative excesses by probability-weighted moments
/// (Hosking & Wallis 1987). Requires xs.size() >= 2, non-constant.
GpdDist FitGpdPwm(std::span<const double> excesses);

/// Peaks-over-threshold model for a full sample: threshold, exceedance
/// fraction zeta_u = P[X > u], and the fitted GPD of the excesses.
struct PotModel {
  double threshold = 0.0;
  double zeta = 0.0;  ///< Empirical P[X > threshold].
  GpdDist gpd;
  std::size_t n_excesses = 0;

  /// Per-observation exceedance probability P[X > x] for x >= threshold.
  double Exceedance(double x) const;

  /// Value with per-observation exceedance probability p (the pWCET at p).
  /// Requires 0 < p < zeta.
  double QuantileForExceedance(double p) const;
};

/// Builds a PoT model using the `tail_fraction` largest observations as
/// excesses (e.g. 0.1 keeps the top 10%). Requires at least 20 excesses.
PotModel FitPot(std::span<const double> sample, double tail_fraction);

}  // namespace spta::evt
