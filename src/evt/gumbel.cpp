#include "evt/gumbel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace spta::evt {

double GumbelDist::Cdf(double x) const {
  return std::exp(LogCdf(x));
}

double GumbelDist::LogCdf(double x) const {
  return -std::exp(-(x - mu) / beta);
}

double GumbelDist::Pdf(double x) const {
  const double z = (x - mu) / beta;
  return std::exp(-z - std::exp(-z)) / beta;
}

double GumbelDist::Quantile(double p) const {
  SPTA_REQUIRE_MSG(p > 0.0 && p < 1.0, "p=" << p);
  return mu - beta * std::log(-std::log(p));
}

double GumbelDist::Mean() const { return mu + stats::kEulerGamma * beta; }

double GumbelDist::LogLikelihood(std::span<const double> xs) const {
  double ll = 0.0;
  for (double x : xs) {
    const double z = (x - mu) / beta;
    ll += -std::log(beta) - z - std::exp(-z);
  }
  return ll;
}

namespace {

// Profile MLE score for beta:
//   g(beta) = beta - mean(x) + sum(x_i w_i)/sum(w_i),  w_i = exp(-x_i/beta).
// Shifting the exponent by the sample MINIMUM keeps every exponent <= 0
// (weights decrease in x), so nothing overflows even for tiny beta; weights
// of large observations harmlessly underflow to zero. The MLE beta is the
// root of g: g(0+) = min - mean < 0, g(inf) -> +inf.
double GumbelBetaScore(std::span<const double> xs, double x_mean, double x_min,
                       double beta) {
  double sum_w = 0.0;
  double sum_xw = 0.0;
  for (double x : xs) {
    const double w = std::exp(-(x - x_min) / beta);
    sum_w += w;
    sum_xw += x * w;
  }
  return beta - x_mean + sum_xw / sum_w;
}

}  // namespace

GumbelDist FitGumbelMle(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 2);
  const double x_mean = stats::Mean(xs);
  const double sd = stats::StdDev(xs);
  SPTA_REQUIRE_MSG(sd > 0.0, "constant sample cannot be Gumbel-fitted");
  const double x_min = stats::Min(xs);

  // Moment estimate beta0 = sd*sqrt(6)/pi brackets the MLE well; widen the
  // bracket geometrically until the score changes sign.
  const double beta0 = sd * std::sqrt(6.0) / M_PI;
  double lo = beta0 / 64.0;
  double hi = beta0 * 64.0;
  auto score = [&](double b) { return GumbelBetaScore(xs, x_mean, x_min, b); };
  int guard = 0;
  while (score(lo) * score(hi) > 0.0 && guard++ < 20) {
    lo /= 4.0;
    hi *= 4.0;
  }
  GumbelDist d;
  d.beta = stats::SolveBisection(score, lo, hi, beta0 * 1e-12);
  // Closed-form mu given beta: mu = -beta*log(mean(exp(-x/beta))), with the
  // same min-shift applied.
  double sum_w = 0.0;
  for (double x : xs) sum_w += std::exp(-(x - x_min) / d.beta);
  d.mu = x_min -
         d.beta * std::log(sum_w / static_cast<double>(xs.size()));
  return d;
}

GumbelDist FitGumbelPwm(std::span<const double> xs) {
  SPTA_REQUIRE(xs.size() >= 2);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double b0 = 0.0;
  double b1 = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    b0 += sorted[i];
    b1 += sorted[i] * static_cast<double>(i) / (n - 1.0);
  }
  b0 /= n;
  b1 /= n;
  GumbelDist d;
  d.beta = (2.0 * b1 - b0) / std::log(2.0);
  SPTA_CHECK_MSG(d.beta > 0.0, "degenerate sample: beta=" << d.beta);
  d.mu = b0 - stats::kEulerGamma * d.beta;
  return d;
}

}  // namespace spta::evt
