// Gumbel (type-I extreme value) distribution and fitting.
//
// MBPTA (Cucu-Grosjean et al., ECRTS 2012) models block maxima of execution
// times with a Gumbel distribution; the fitted tail, reprojected to per-run
// probabilities, is the pWCET curve of paper Figure 2.
#pragma once

#include <span>

namespace spta::evt {

/// Gumbel distribution G(x) = exp(-exp(-(x-mu)/beta)), beta > 0.
struct GumbelDist {
  double mu = 0.0;    ///< Location parameter.
  double beta = 1.0;  ///< Scale parameter (> 0).

  /// CDF value in [0, 1].
  double Cdf(double x) const;

  /// log(CDF), computed without underflow (= -exp(-(x-mu)/beta)).
  double LogCdf(double x) const;

  /// Probability density.
  double Pdf(double x) const;

  /// Quantile for probability p in (0, 1).
  double Quantile(double p) const;

  /// Mean = mu + gamma*beta.
  double Mean() const;

  /// Log-likelihood of a sample under this distribution.
  double LogLikelihood(std::span<const double> xs) const;
};

/// Fits a Gumbel by maximum likelihood (profile equation for beta solved by
/// bracketed bisection, then closed-form mu). Requires xs.size() >= 2 and a
/// non-constant sample.
GumbelDist FitGumbelMle(std::span<const double> xs);

/// Fits a Gumbel by probability-weighted moments (Hosking): closed-form,
/// robust, used both as a cross-check and as the bisection starting bracket.
/// Requires xs.size() >= 2 and a non-constant sample.
GumbelDist FitGumbelPwm(std::span<const double> xs);

}  // namespace spta::evt
