#include "evt/mean_excess.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "stats/descriptive.hpp"

namespace spta::evt {

std::vector<MeanExcessPoint> MeanExcessFunction(std::span<const double> xs,
                                                std::size_t points,
                                                double tail_start,
                                                double tail_end) {
  SPTA_REQUIRE(points >= 2);
  SPTA_REQUIRE(tail_end > 0.0 && tail_end < tail_start && tail_start < 1.0);
  SPTA_REQUIRE(xs.size() >= 10);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  SPTA_REQUIRE_MSG(sorted.front() < sorted.back(), "constant sample");

  std::vector<MeanExcessPoint> out;
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double frac =
        tail_start +
        (tail_end - tail_start) * static_cast<double>(k) /
            static_cast<double>(points - 1);
    const double u = stats::QuantileSorted(sorted, 1.0 - frac);
    double sum = 0.0;
    std::size_t count = 0;
    for (auto it = std::upper_bound(sorted.begin(), sorted.end(), u);
         it != sorted.end(); ++it) {
      sum += *it - u;
      ++count;
    }
    if (count == 0) continue;
    out.push_back({u, sum / static_cast<double>(count), count});
  }
  return out;
}

double MeanExcessSlope(std::span<const MeanExcessPoint> points) {
  SPTA_REQUIRE(points.size() >= 2);
  // Weighted least squares with weight = number of exceedances (points
  // deep in the tail are noisier).
  double sw = 0.0;
  double swx = 0.0;
  double swy = 0.0;
  double swxx = 0.0;
  double swxy = 0.0;
  for (const auto& p : points) {
    const double w = static_cast<double>(p.exceedances);
    sw += w;
    swx += w * p.threshold;
    swy += w * p.mean_excess;
    swxx += w * p.threshold * p.threshold;
    swxy += w * p.threshold * p.mean_excess;
  }
  const double denom = sw * swxx - swx * swx;
  SPTA_REQUIRE_MSG(denom != 0.0, "degenerate thresholds");
  return (sw * swxy - swx * swy) / denom;
}

}  // namespace spta::evt
