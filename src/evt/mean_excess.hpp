// Mean-excess (mean residual life) diagnostics for PoT threshold choice.
//
// For a GPD tail with shape xi < 1, the mean excess e(u) = E[X - u | X > u]
// is LINEAR in u: slope xi/(1-xi). Practitioners pick the PoT threshold
// where the empirical mean-excess plot turns linear; an estimated slope
// near 0 supports the exponential/Gumbel (light-tail) model MBPTA uses.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace spta::evt {

/// One point of the empirical mean-excess function.
struct MeanExcessPoint {
  double threshold = 0.0;
  double mean_excess = 0.0;
  std::size_t exceedances = 0;
};

/// Evaluates the empirical mean-excess function at `points` thresholds
/// spread over the upper part of the sample: thresholds are the
/// (1 - tail_start)…(1 - tail_end) empirical quantiles. Requires a
/// non-constant sample, points >= 2 and 0 < tail_end < tail_start < 1.
std::vector<MeanExcessPoint> MeanExcessFunction(std::span<const double> xs,
                                                std::size_t points = 20,
                                                double tail_start = 0.5,
                                                double tail_end = 0.02);

/// Least-squares slope of the mean-excess points (exceedance-weighted).
/// Slope ~ 0: exponential tail; > 0: heavy; < 0: bounded.
double MeanExcessSlope(std::span<const MeanExcessPoint> points);

}  // namespace spta::evt
