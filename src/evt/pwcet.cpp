#include "evt/pwcet.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "evt/block_maxima.hpp"

namespace spta::evt {

PwcetCurve::PwcetCurve(GumbelDist tail, std::size_t block_size,
                       std::size_t sample_size)
    : tail_(tail), block_size_(block_size), sample_size_(sample_size) {
  SPTA_REQUIRE(block_size >= 1);
  SPTA_REQUIRE(tail.beta > 0.0);
}

PwcetCurve PwcetCurve::FitFromSample(std::span<const double> exec_times,
                                     std::size_t block_size) {
  const auto maxima = BlockMaxima(exec_times, block_size);
  SPTA_REQUIRE_MSG(maxima.size() >= 10,
                   "only " << maxima.size() << " block maxima; need >= 10");
  return PwcetCurve(FitGumbelMle(maxima), block_size, exec_times.size());
}

double PwcetCurve::QuantileForExceedance(double p) const {
  SPTA_REQUIRE_MSG(p > 0.0 && p < 1.0, "p=" << p);
  // Want v with 1 - G(v)^(1/b) = p, i.e. G(v) = (1-p)^b.
  // Gumbel quantile: v = mu - beta*log(-log q) with q = (1-p)^b, so
  // -log q = -b*log(1-p) = -b*log1p(-p), computed without cancellation.
  const double neg_log_q = -static_cast<double>(block_size_) * std::log1p(-p);
  SPTA_CHECK(neg_log_q > 0.0);
  return tail_.mu - tail_.beta * std::log(neg_log_q);
}

double PwcetCurve::ExceedanceAt(double value) const {
  // p = 1 - G(v)^(1/b) = -expm1(logG(v)/b); logG(v) = -exp(-(v-mu)/beta).
  const double log_g = tail_.LogCdf(value);
  return -std::expm1(log_g / static_cast<double>(block_size_));
}

std::vector<std::pair<double, double>> PwcetCurve::CurvePoints(
    int max_exp10) const {
  SPTA_REQUIRE(max_exp10 >= 1);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(static_cast<std::size_t>(max_exp10));
  for (int e = 1; e <= max_exp10; ++e) {
    const double p = std::pow(10.0, -e);
    pts.emplace_back(p, QuantileForExceedance(p));
  }
  return pts;
}

}  // namespace spta::evt
