// Probabilistic WCET curve: the central MBPTA artifact (paper Figure 2).
//
// A PwcetCurve is a Gumbel tail fitted on block maxima of size b from n
// observations, reprojected to *per-run* exceedance probabilities:
//   P[run > v] = 1 - G(v)^(1/b)
// so that pWCET(p) = G^{-1}((1-p)^b). Both directions are computed with
// log1p/expm1 so probabilities down to 1e-16 and beyond stay accurate.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "evt/gumbel.hpp"

namespace spta::evt {

/// Immutable fitted pWCET model.
class PwcetCurve {
 public:
  /// Wraps an already-fitted Gumbel over block maxima of size `block_size`
  /// obtained from `sample_size` per-run observations.
  PwcetCurve(GumbelDist tail, std::size_t block_size, std::size_t sample_size);

  /// Fits from raw per-run execution times: extracts block maxima of
  /// `block_size` and fits a Gumbel by MLE.
  static PwcetCurve FitFromSample(std::span<const double> exec_times,
                                  std::size_t block_size);

  /// Execution-time bound whose per-run exceedance probability is `p`.
  /// Requires 0 < p < 1. Monotonically decreasing in p.
  double QuantileForExceedance(double p) const;

  /// Per-run exceedance probability of bound `value`.
  double ExceedanceAt(double value) const;

  /// Series of (exceedance-probability, pWCET) points for probabilities
  /// 10^-1 .. 10^-max_exp10 (one point per decade), ready to plot against
  /// the observed tail.
  std::vector<std::pair<double, double>> CurvePoints(int max_exp10 = 16) const;

  const GumbelDist& tail() const { return tail_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t sample_size() const { return sample_size_; }

 private:
  GumbelDist tail_;
  std::size_t block_size_;
  std::size_t sample_size_;
};

}  // namespace spta::evt
