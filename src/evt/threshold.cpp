#include "evt/threshold.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace spta::evt {

const ThresholdPoint& ThresholdSweepResult::chosen_point() const {
  SPTA_REQUIRE_MSG(chosen >= 0, "sweep produced no usable choice");
  return points[static_cast<std::size_t>(chosen)];
}

ThresholdSweepResult SweepThresholds(std::span<const double> sample,
                                     double reference_prob,
                                     double max_fraction, double min_fraction,
                                     int steps) {
  SPTA_REQUIRE(steps >= 3);
  SPTA_REQUIRE(0.0 < min_fraction && min_fraction < max_fraction &&
               max_fraction < 1.0);
  SPTA_REQUIRE(reference_prob > 0.0 && reference_prob < min_fraction);
  SPTA_REQUIRE(static_cast<double>(sample.size()) * min_fraction >= 20.0);

  ThresholdSweepResult result;
  const double log_hi = std::log(max_fraction);
  const double log_lo = std::log(min_fraction);
  for (int i = 0; i < steps; ++i) {
    const double frac = std::exp(
        log_hi + (log_lo - log_hi) * static_cast<double>(i) /
                     static_cast<double>(steps - 1));
    const PotModel pot = FitPot(sample, frac);
    ThresholdPoint pt;
    pt.tail_fraction = frac;
    pt.threshold = pot.threshold;
    pt.xi = pot.gpd.xi;
    pt.q_deep = pot.QuantileForExceedance(reference_prob);
    pt.excesses = pot.n_excesses;
    result.points.push_back(pt);
  }

  // Plateau heuristic: the candidate whose deep quantile varies least
  // against its immediate neighbors.
  if (result.points.size() >= 3) {
    double best_var = 1e300;
    for (std::size_t i = 1; i + 1 < result.points.size(); ++i) {
      const double a = result.points[i - 1].q_deep;
      const double b = result.points[i].q_deep;
      const double c = result.points[i + 1].q_deep;
      const double var =
          std::fabs(a - b) + std::fabs(c - b);
      if (var < best_var) {
        best_var = var;
        result.chosen = static_cast<int>(i);
      }
    }
  }
  return result;
}

}  // namespace spta::evt
