// PoT threshold selection by stability sweep.
//
// The peaks-over-threshold route needs a threshold high enough that the
// GPD approximation holds and low enough to keep data. Standard practice
// sweeps candidate thresholds and looks for the region where the fitted
// shape and a deep quantile stabilize; this module automates the sweep and
// a simple plateau pick.
#pragma once

#include <span>
#include <vector>

#include "evt/gpd.hpp"

namespace spta::evt {

/// One threshold candidate.
struct ThresholdPoint {
  double tail_fraction = 0.0;  ///< Fraction of the sample kept as excesses.
  double threshold = 0.0;
  double xi = 0.0;             ///< Fitted GPD shape.
  double q_deep = 0.0;         ///< PoT quantile at the reference prob.
  std::size_t excesses = 0;
};

struct ThresholdSweepResult {
  std::vector<ThresholdPoint> points;
  /// Index of the chosen point (most stable neighborhood), or -1 if the
  /// sweep produced fewer than 3 usable points.
  int chosen = -1;

  const ThresholdPoint& chosen_point() const;
};

/// Sweeps tail fractions between `max_fraction` and `min_fraction`
/// (logarithmically, `steps` candidates), fitting a GPD at each and
/// evaluating the quantile at `reference_prob`. The chosen point minimizes
/// the local variation of the deep quantile across its neighbors (the
/// plateau heuristic). Requires enough data for >= 20 excesses at
/// min_fraction.
ThresholdSweepResult SweepThresholds(std::span<const double> sample,
                                     double reference_prob = 1e-9,
                                     double max_fraction = 0.25,
                                     double min_fraction = 0.02,
                                     int steps = 8);

}  // namespace spta::evt
