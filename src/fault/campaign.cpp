#include "fault/campaign.hpp"

#include <atomic>
#include <memory>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "fault/plan.hpp"
#include "sim/platform.hpp"

namespace spta::fault {
namespace {

/// Per-worker reusable Platform, mirroring the arena pattern of
/// analysis/parallel_campaign.cpp: Run/RunWithHook performs the full
/// per-run reset protocol, so reuse is bit-identical to a fresh Platform
/// per run and the steady state allocates nothing.
class PlatformArenas {
 public:
  PlatformArenas(const sim::PlatformConfig& config, std::size_t workers)
      : config_(config), arenas_(workers) {}

  sim::Platform& ForCurrentWorker() {
    const std::size_t w = ThreadPool::CurrentWorkerIndex();
    SPTA_CHECK_MSG(w != ThreadPool::kNotAWorker && w < arenas_.size(),
                   "campaign body must run on a pool worker");
    auto& arena = arenas_[w];
    if (arena == nullptr) {
      arena = std::make_unique<sim::Platform>(config_, /*master_seed=*/0);
    }
    return *arena;
  }

 private:
  const sim::PlatformConfig& config_;
  std::vector<std::unique_ptr<sim::Platform>> arenas_;
};

/// True when run `r`'s reseed write is dropped. Run 0 never drops: its
/// seed is the value the stale register holds.
bool ReseedDropped(const FaultCampaignConfig& config, std::size_t r) {
  if (r == 0 || config.reseed_dropout <= 0.0) return false;
  return Roll(config.EffectiveFaultSeed(), "reseed", r)
      .Chance(config.reseed_dropout);
}

}  // namespace

Seed FaultedTvcaRunSeed(const FaultCampaignConfig& config, std::size_t r,
                        bool* dropped) {
  const bool d = ReseedDropped(config, r);
  if (dropped != nullptr) *dropped = d;
  return analysis::TvcaRunSeed(config.base, d ? 0 : r);
}

Seed FaultedFixedTraceRunSeed(const FaultCampaignConfig& config, std::size_t r,
                              bool* dropped) {
  const bool d = ReseedDropped(config, r);
  if (dropped != nullptr) *dropped = d;
  return analysis::FixedTraceRunSeed(config.base.master_seed, d ? 0 : r);
}

FaultCampaignResult RunTvcaCampaignWithFaults(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const FaultCampaignConfig& config, std::size_t jobs) {
  SPTA_REQUIRE(config.base.runs >= 1);
  FaultCampaignResult result;
  result.samples.resize(config.base.runs);
  std::atomic<std::uint64_t> flips{0};
  std::atomic<std::uint64_t> drops{0};
  const Seed fault_seed = config.EffectiveFaultSeed();

  std::vector<apps::TvcaFrame> suite;
  if (config.base.distinct_scenarios > 0) {
    suite.reserve(config.base.distinct_scenarios);
    for (std::size_t i = 0; i < config.base.distinct_scenarios; ++i) {
      suite.push_back(app.BuildFrame(analysis::TvcaScenarioSeed(config.base, i)));
    }
  }

  ThreadPool pool(jobs);
  PlatformArenas arenas(platform_config, pool.size());
  ParallelFor(pool, config.base.runs, [&](std::size_t r) {
    bool dropped = false;
    const Seed run_seed = FaultedTvcaRunSeed(config, r, &dropped);
    if (dropped) drops.fetch_add(1, std::memory_order_relaxed);
    apps::TvcaFrame local;
    const apps::TvcaFrame* frame;
    if (!suite.empty()) {
      frame = &suite[r % config.base.distinct_scenarios];
    } else {
      local = app.BuildFrame(analysis::TvcaScenarioSeed(config.base, r));
      frame = &local;
    }
    analysis::RunSample s;
    if (config.seu.Enabled()) {
      s.detail = arenas.ForCurrentWorker().RunWithHook(
          frame->trace, run_seed, [&](sim::Platform& p) {
            const SeuReport rep = InjectSeus(p, config.seu, fault_seed, r);
            flips.fetch_add(rep.flips, std::memory_order_relaxed);
          });
    } else {
      s.detail = arenas.ForCurrentWorker().Run(frame->trace, run_seed);
    }
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = frame->path_id;
    result.samples[r] = s;
  });
  result.faults_injected = flips.load();
  result.reseeds_dropped = drops.load();
  return result;
}

FaultCampaignResult RunFixedTraceCampaignWithFaults(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    const FaultCampaignConfig& config, std::size_t jobs) {
  SPTA_REQUIRE(config.base.runs >= 1);
  FaultCampaignResult result;
  result.samples.resize(config.base.runs);
  std::atomic<std::uint64_t> flips{0};
  std::atomic<std::uint64_t> drops{0};
  const Seed fault_seed = config.EffectiveFaultSeed();

  ThreadPool pool(jobs);
  PlatformArenas arenas(platform_config, pool.size());
  ParallelFor(pool, config.base.runs, [&](std::size_t r) {
    bool dropped = false;
    const Seed run_seed = FaultedFixedTraceRunSeed(config, r, &dropped);
    if (dropped) drops.fetch_add(1, std::memory_order_relaxed);
    analysis::RunSample s;
    if (config.seu.Enabled()) {
      s.detail = arenas.ForCurrentWorker().RunWithHook(
          t, run_seed, [&](sim::Platform& p) {
            const SeuReport rep = InjectSeus(p, config.seu, fault_seed, r);
            flips.fetch_add(rep.flips, std::memory_order_relaxed);
          });
    } else {
      s.detail = arenas.ForCurrentWorker().Run(t, run_seed);
    }
    s.cycles = static_cast<double>(s.detail.cycles);
    s.path_id = static_cast<std::uint32_t>(t.path_signature);
    result.samples[r] = s;
  });
  result.faults_injected = flips.load();
  result.reseeds_dropped = drops.load();
  return result;
}

}  // namespace spta::fault
