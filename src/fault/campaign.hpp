// Measurement campaigns executed under an active fault plan.
//
// Same seed-derivation contract as the healthy runners (analysis::
// campaign.hpp): the platform seed, the scenario seed AND the fault
// schedule of run r are pure functions of the configuration, so the
// faulted campaign is bit-replayable in any execution order and for any
// --jobs. The runners mirror analysis::Run*CampaignParallel (per-worker
// Platform arenas, pre-sized result vector) with two additions:
//   - SEU flips applied in the post-reset injection window of every run
//     (sim::Platform::RunWithHook),
//   - reseed dropout: with probability `reseed_dropout` per run, the
//     per-run seed write is "dropped" and the run executes under run 0's
//     randomization — the PRNG-degradation failure where the platform
//     silently stops re-randomizing between runs.
// The returned taint counters feed the campaign-integrity accounting
// (analysis::Diagnosis): a campaign with faults_injected > 0 must never
// be served as a clean pWCET.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/campaign.hpp"
#include "apps/tvca.hpp"
#include "fault/seu.hpp"
#include "sim/config.hpp"
#include "trace/record.hpp"

namespace spta::fault {

struct FaultCampaignConfig {
  analysis::CampaignConfig base;
  SeuConfig seu;
  /// Per-run probability that the reseed write is dropped (the run reuses
  /// run 0's platform seed). 0 = healthy protocol.
  double reseed_dropout = 0.0;
  /// Campaign-level fault seed; 0 = derive from base.master_seed so one
  /// master seed fully specifies the experiment.
  Seed fault_seed = 0;

  Seed EffectiveFaultSeed() const {
    return fault_seed != 0 ? fault_seed : base.master_seed;
  }
};

struct FaultCampaignResult {
  std::vector<analysis::RunSample> samples;
  /// Total SEU bit flips injected across all runs.
  std::uint64_t faults_injected = 0;
  /// Runs that executed under a stale (dropped) reseed.
  std::uint64_t reseeds_dropped = 0;

  bool Tainted() const { return faults_injected + reseeds_dropped > 0; }
};

/// The seed run `r` actually executes under, after reseed dropout.
/// Pure function of the configuration (replay contract).
Seed FaultedTvcaRunSeed(const FaultCampaignConfig& config, std::size_t r,
                        bool* dropped);
Seed FaultedFixedTraceRunSeed(const FaultCampaignConfig& config, std::size_t r,
                              bool* dropped);

/// TVCA campaign under the fault plan; `jobs` as in the parallel runners.
/// With a disabled plan (no SEU, no dropout) the samples are bit-identical
/// to analysis::RunTvcaCampaignParallel.
FaultCampaignResult RunTvcaCampaignWithFaults(
    const sim::PlatformConfig& platform_config, const apps::TvcaApp& app,
    const FaultCampaignConfig& config, std::size_t jobs);

/// Fixed-trace campaign under the fault plan (config.base.runs runs of
/// `t`, seeds from config.base.master_seed).
FaultCampaignResult RunFixedTraceCampaignWithFaults(
    const sim::PlatformConfig& platform_config, const trace::Trace& t,
    const FaultCampaignConfig& config, std::size_t jobs);

}  // namespace spta::fault
