#include "fault/io_plan.hpp"

#include <cerrno>
#include <chrono>
#include <thread>

#include "common/hash.hpp"
#include "fault/plan.hpp"

namespace spta::fault {

FleetChaosPlan::Decision FleetChaosPlan::Next(std::size_t targets) {
  Decision decision;
  if (!config_.Enabled() || targets == 0) return decision;
  Roll roll(campaign_seed_, "fleet",
            ordinal_.fetch_add(1, std::memory_order_relaxed));
  if (roll.Chance(config_.kill_rate)) {
    decision.action = FleetChaosAction::kKillChild;
  } else if (roll.Chance(config_.wedge_rate)) {
    decision.action = FleetChaosAction::kWedgeChild;
  } else if (roll.Chance(config_.disk_full_rate)) {
    decision.action = FleetChaosAction::kDiskFull;
  }
  if (decision.action != FleetChaosAction::kNone) {
    decision.target = roll.Below(targets);
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

service::IoFault IoFaultPlan::Next(service::IoOp op, std::size_t requested) {
  service::IoFault fault;
  if (!config_.Enabled()) return fault;
  // One Roll per syscall, keyed by (stream, ordinal): replaying the same
  // connection replays the same fault sequence regardless of buffering.
  Roll roll(campaign_seed_, "io",
            HashCombine(stream_index_,
                        ordinal_.fetch_add(1, std::memory_order_relaxed)));
  if (roll.Chance(config_.stall_rate) && config_.stall_ms > 0) {
    // A stall is not an error: the syscall proceeds after the delay. It
    // still counts as a fired fault (it exercises peer deadlines).
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  if (roll.Chance(config_.eintr_rate)) {
    fault.error = EINTR;
  } else if (roll.Chance(config_.eagain_rate)) {
    fault.error = EAGAIN;
  } else if (roll.Chance(config_.short_io_rate) && requested > 1) {
    fault.cap = 1 + roll.Below(requested - 1);
  } else if (roll.Chance(config_.disconnect_rate)) {
    fault.disconnect = true;
  }
  (void)op;
  if (!fault.None()) faults_fired_.fetch_add(1, std::memory_order_relaxed);
  return fault;
}

}  // namespace spta::fault
