// Seeded syscall-level I/O fault plan for the service layer.
//
// Generates service::IoFault decisions — short reads/writes, injected
// EINTR/EAGAIN storms, slow-peer stalls, mid-frame disconnects — as a
// pure function of (campaign_seed, "io", syscall_ordinal), so a failing
// service interaction is replayable from the seed alone. The plan object
// is handed to FdStreambuf (one per stream direction pair) through the
// service::IoFaultHook test hook; the daemon converts resulting stream
// failures into per-session ERR + metrics, never process death.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.hpp"
#include "service/fd_stream.hpp"

namespace spta::fault {

struct IoFaultConfig {
  /// Per-syscall probabilities; evaluated in this order, first hit wins.
  double eintr_rate = 0.0;       ///< Injected EINTR (retried away).
  double eagain_rate = 0.0;      ///< Injected EAGAIN (bounded retries).
  double short_io_rate = 0.0;    ///< Cap the byte count (short read/write).
  double disconnect_rate = 0.0;  ///< Peer vanishes mid-frame (terminal).
  /// Stall before the syscall proceeds, in milliseconds, with probability
  /// stall_rate (models a slow peer; exercises deadlines, not errors).
  double stall_rate = 0.0;
  unsigned stall_ms = 0;

  bool Enabled() const {
    return eintr_rate > 0.0 || eagain_rate > 0.0 || short_io_rate > 0.0 ||
           disconnect_rate > 0.0 || stall_rate > 0.0;
  }
};

/// One step of the fleet-level chaos schedule (tests/fleet_chaos_test and
/// the resilience bench leg).
enum class FleetChaosAction {
  kNone = 0,
  kKillChild,   ///< SIGKILL a child process (crash injection).
  kWedgeChild,  ///< SIGSTOP a child: alive but unresponsive (watchdog bait).
  kDiskFull,    ///< Drive the persistent cache into (simulated) ENOSPC.
};

struct FleetChaosConfig {
  /// Per-step probabilities; evaluated in this order, first hit wins.
  double kill_rate = 0.0;
  double wedge_rate = 0.0;
  double disk_full_rate = 0.0;

  bool Enabled() const {
    return kill_rate > 0.0 || wedge_rate > 0.0 || disk_full_rate > 0.0;
  }
};

/// Seeded process-level chaos: where IoFaultPlan perturbs one connection's
/// syscalls, this decides which CHILD of a fleet gets killed, wedged, or
/// starved of disk at each step of a soak. Decisions are a pure function
/// of (campaign_seed, "fleet", ordinal), so a failing soak replays from
/// the seed alone.
class FleetChaosPlan {
 public:
  struct Decision {
    FleetChaosAction action = FleetChaosAction::kNone;
    std::size_t target = 0;  ///< Child index for kill/wedge; else unused.
  };

  FleetChaosPlan(const FleetChaosConfig& config, Seed campaign_seed)
      : config_(config), campaign_seed_(campaign_seed) {}

  /// The decision for the next soak step (advances the ordinal).
  /// `targets` is how many children are eligible; 0 forces kNone.
  Decision Next(std::size_t targets);

  std::uint64_t faults_fired() const {
    return faults_fired_.load(std::memory_order_relaxed);
  }

 private:
  FleetChaosConfig config_;
  Seed campaign_seed_;
  std::atomic<std::uint64_t> ordinal_{0};
  std::atomic<std::uint64_t> faults_fired_{0};
};

/// A deterministic per-connection fault schedule: create one IoFaultPlan
/// per connection; the syscall ordinal is the per-plan counter. Thread-safe
/// within a connection (the reader thread and response-flushing workers
/// may consult it concurrently; ordinal assignment is atomic, so each
/// decision is used exactly once even though their interleaving follows
/// the thread schedule). faults_fired() reports how many syscalls received
/// a non-clean decision — the daemon feeds this into the `faults_injected`
/// metrics counter.
class IoFaultPlan {
 public:
  IoFaultPlan(const IoFaultConfig& config, Seed campaign_seed,
              std::uint64_t stream_index)
      : config_(config),
        campaign_seed_(campaign_seed),
        stream_index_(stream_index) {}

  /// The decision for the next syscall (advances the ordinal).
  service::IoFault Next(service::IoOp op, std::size_t requested);

  /// Adapts the plan to the FdStreambuf hook signature. The plan must
  /// outlive the streambuf.
  service::IoFaultHook Hook() {
    return [this](service::IoOp op, std::size_t n) { return Next(op, n); };
  }

  std::uint64_t faults_fired() const {
    return faults_fired_.load(std::memory_order_relaxed);
  }

 private:
  IoFaultConfig config_;
  Seed campaign_seed_;
  std::uint64_t stream_index_;
  std::atomic<std::uint64_t> ordinal_{0};
  /// Atomic only so concurrent readers (metrics scrape) see a sane value;
  /// the writer is always the stream's own thread.
  std::atomic<std::uint64_t> faults_fired_{0};
};

}  // namespace spta::fault
