#include "fault/plan.hpp"

namespace spta::fault {

Seed SiteSeed(Seed campaign_seed, const char* site, std::uint64_t index) {
  // Two-level derivation: a "fault" domain tag first, so fault streams can
  // never collide with the platform/component streams derived from the
  // same master seed, then the site name, then the opportunity index.
  return DeriveSeed(DeriveSeed(DeriveSeed(campaign_seed, "fault"), site),
                    index);
}

std::uint64_t Roll::Below(std::uint64_t bound) {
  // Lemire-style rejection on the top bits: accept draws below the largest
  // multiple of `bound`, so each residue class is equally likely.
  const std::uint64_t limit = bound * ((~0ULL) / bound);
  for (;;) {
    const std::uint64_t draw = Next64();
    if (draw < limit) return draw % bound;
  }
}

}  // namespace spta::fault
