// Deterministic fault scheduling: the seeding and replay contract.
//
// Every injected fault in this subsystem — an SEU bit flip, a degraded
// PRNG word, a corrupted sample, an I/O syscall failure — is a pure
// function of (campaign_seed, site, index):
//
//   campaign_seed  the campaign-level fault seed (one per experiment),
//   site           a short string naming the injector ("seu", "reseed",
//                  "samples", "io", ...),
//   index          the injection opportunity (run index, sample index,
//                  syscall ordinal, ...).
//
// Reporting that triple is therefore a complete reproduction recipe: the
// same triple replays the same fault bit-for-bit, on any thread schedule,
// in any process. The derivation reuses the library's seed functions
// (common/hash.hpp) so fault streams are uncorrelated with the platform
// randomization streams even when they share a master seed.
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace spta::fault {

/// The derived seed of one fault site instance.
Seed SiteSeed(Seed campaign_seed, const char* site, std::uint64_t index);

/// A deterministic value stream for one (campaign_seed, site, index)
/// triple: counter-mode Mix64 over the site seed. Cheap to construct (two
/// hash evaluations), stateless across instances — re-creating a Roll for
/// the same triple replays the same stream.
class Roll {
 public:
  Roll(Seed campaign_seed, const char* site, std::uint64_t index)
      : state_(SiteSeed(campaign_seed, site, index)) {}

  /// Next 64 uniform bits.
  std::uint64_t Next64() { return Mix64(state_ += kGamma); }

  /// Uniform integer in [0, bound), bound > 0; rejection-based so every
  /// residue is equally likely (determinism matters more than speed here,
  /// but bias would skew configured fault rates).
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double Unit() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Unit() < p;
  }

 private:
  /// SplitMix64's golden-gamma increment; with Mix64's full avalanche the
  /// counter stream is equidistributed over 64-bit outputs.
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

  std::uint64_t state_;
};

}  // namespace spta::fault
