#include "fault/prng_degrade.hpp"

#include "prng/self_test.hpp"

namespace spta::fault {

bool DegradationDetected(std::uint64_t seed, const PrngDegradeConfig& config,
                         std::size_t n_words) {
  DegradedHwPrng gen(seed, config);
  return !prng::PassesAllBitTests([&gen] { return gen.Next(); }, n_words);
}

}  // namespace spta::fault
