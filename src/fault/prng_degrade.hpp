// Degraded-PRNG models: what a failing hardware randomizer looks like.
//
// The MBPTA argument leans on the platform PRNG being statistically sound
// (the paper's generator is IEC-61508 SIL-3 qualified). This injector
// models the qualified generator going bad in the field: output bits stuck
// at 0/1 (a latched flip-flop), reduced effective entropy (part of the
// LFSR/CASR state frozen), and — at the campaign level, see
// fault::FaultCampaignConfig::reseed_dropout — the per-run reseed write
// being dropped so consecutive runs share a randomization.
//
// Detection point: the FIPS-style bitstream battery in prng/self_test.hpp
// (monobit/poker/runs). A platform bring-up that runs PassesAllBitTests on
// the degraded stream rejects it; campaigns executed anyway produce
// clustered/duplicated times that trip the i.i.d. gate downstream.
#pragma once

#include <cstdint>

#include "prng/hw_prng.hpp"

namespace spta::fault {

struct PrngDegradeConfig {
  /// Output bits forced to 1 (stuck-at-one upsets in the output latch).
  std::uint32_t stuck_one_mask = 0;
  /// Output bits forced to 0. Applied after stuck_one_mask.
  std::uint32_t stuck_zero_mask = 0;
  /// Effective entropy: only the low `entropy_bits` of each word vary,
  /// the rest read as 0. 32 = healthy.
  unsigned entropy_bits = 32;

  bool Degraded() const {
    return stuck_one_mask != 0 || stuck_zero_mask != 0 || entropy_bits < 32;
  }
};

/// HwPrng with the configured output degradation applied to every word.
/// Satisfies std::uniform_random_bit_generator, so it can stand anywhere
/// the healthy generator does (including prng::PassesAllBitTests).
class DegradedHwPrng {
 public:
  using result_type = std::uint32_t;

  DegradedHwPrng(std::uint64_t seed, const PrngDegradeConfig& config)
      : inner_(seed),
        keep_mask_((config.entropy_bits >= 32
                        ? 0xffffffffu
                        : ((1u << config.entropy_bits) - 1u)) &
                   ~config.stuck_zero_mask),
        or_mask_(config.stuck_one_mask & ~config.stuck_zero_mask) {}

  std::uint32_t Next() { return (inner_.Next() & keep_mask_) | or_mask_; }

  result_type operator()() { return Next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

 private:
  prng::HwPrng inner_;
  std::uint32_t keep_mask_;
  std::uint32_t or_mask_;
};

/// Runs the FIPS-style battery (monobit, poker, runs) over `n_words`
/// outputs of a degraded generator. Returns true when the degradation is
/// caught — i.e. at least one test fails. A healthy config returns false.
bool DegradationDetected(std::uint64_t seed, const PrngDegradeConfig& config,
                         std::size_t n_words = 4096);

}  // namespace spta::fault
