#include "fault/sample_corruption.hpp"

#include <cmath>

#include "fault/plan.hpp"

namespace spta::fault {

CorruptionReport CorruptObservations(std::vector<mbpta::PathObservation>* obs,
                                     const SampleCorruptionConfig& config,
                                     Seed campaign_seed) {
  CorruptionReport report;
  if (!config.Enabled() || obs->empty()) return report;

  // Truncation first (a dropped log tail happens before any per-record
  // glitching can touch the records that no longer exist).
  if (config.truncate_fraction > 0.0) {
    const double keep_frac =
        config.truncate_fraction >= 1.0 ? 0.0 : 1.0 - config.truncate_fraction;
    const std::size_t keep = static_cast<std::size_t>(
        std::floor(static_cast<double>(obs->size()) * keep_frac));
    report.dropped = obs->size() - keep;
    obs->resize(keep);
  }

  for (std::size_t k = 0; k < obs->size(); ++k) {
    Roll roll(campaign_seed, "samples", k);
    if (k >= 1 && roll.Chance(config.duplicate_rate)) {
      (*obs)[k] = (*obs)[k - 1];
      ++report.duplicates;
      continue;
    }
    if (roll.Chance(config.outlier_rate)) {
      (*obs)[k].time *= config.outlier_factor;
      ++report.outliers;
    }
  }
  return report;
}

}  // namespace spta::fault
