// Seeded corruption of a measurement sample stream.
//
// Models what reaches the analysis stage when the path from the target
// board to the MBPTA pipeline is faulty: spurious outliers (a probe
// glitch or counter wrap), duplicated observations (a retransmitted or
// re-read record) and truncation (a dropped tail of the log). All three
// are applied ahead of the i.i.d. gate, which is exactly where the
// pipeline must catch them: the defense is the campaign-integrity digest
// (analysis::ObservationsDigest) plus the statistical gate, never a
// silently altered pWCET.
//
// Every mutation is a pure function of (campaign_seed, "samples", k) per
// the fault::Roll contract, so a corrupted stream is replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mbpta/per_path.hpp"

namespace spta::fault {

struct SampleCorruptionConfig {
  /// Per-observation probability of being scaled into an outlier.
  double outlier_rate = 0.0;
  /// Multiplier applied to outlier observations (>1 inflates the tail).
  double outlier_factor = 64.0;
  /// Per-observation probability (index >= 1) of being overwritten with a
  /// copy of its predecessor — duplicated records defeat independence.
  double duplicate_rate = 0.0;
  /// Fraction of the stream's tail dropped (0 = none, 0.25 = last quarter).
  double truncate_fraction = 0.0;

  bool Enabled() const {
    return outlier_rate > 0.0 || duplicate_rate > 0.0 ||
           truncate_fraction > 0.0;
  }
};

struct CorruptionReport {
  std::size_t outliers = 0;
  std::size_t duplicates = 0;
  std::size_t dropped = 0;

  std::size_t Total() const { return outliers + duplicates + dropped; }
};

/// Applies the configured corruption to `obs` in place. Deterministic in
/// (campaign_seed, config, original contents).
CorruptionReport CorruptObservations(std::vector<mbpta::PathObservation>* obs,
                                     const SampleCorruptionConfig& config,
                                     Seed campaign_seed);

}  // namespace spta::fault
