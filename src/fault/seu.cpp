#include "fault/seu.hpp"

#include <array>
#include <cmath>

#include "fault/plan.hpp"
#include "sim/cache.hpp"
#include "sim/tlb.hpp"

namespace spta::fault {
namespace {

/// One vulnerable word array: either a cache's tag slots or a TLB's VPN
/// entries, unified behind (slot count, flip function).
struct Target {
  sim::Cache* cache = nullptr;
  sim::Tlb* tlb = nullptr;

  std::size_t Slots() const {
    return cache != nullptr ? cache->TagSlots() : tlb->EntrySlots();
  }
  void Flip(std::size_t slot, unsigned bit) const {
    if (cache != nullptr) {
      cache->CorruptTagBit(slot, bit);
    } else {
      tlb->CorruptVpnBit(slot, bit);
    }
  }
};

}  // namespace

SeuReport InjectSeus(sim::Platform& platform, const SeuConfig& config,
                     Seed campaign_seed, std::uint64_t run_index) {
  SeuReport report;
  if (!config.Enabled()) return report;

  sim::Core& core = platform.core(0);
  std::array<Target, 5> targets;
  std::size_t n_targets = 0;
  if (config.target_il1) targets[n_targets++] = Target{&core.il1(), nullptr};
  if (config.target_dl1) targets[n_targets++] = Target{&core.dl1(), nullptr};
  if (config.target_itlb) targets[n_targets++] = Target{nullptr, &core.itlb()};
  if (config.target_dtlb) targets[n_targets++] = Target{nullptr, &core.dtlb()};
  if (config.target_l2) {
    sim::Cache* l2 = platform.MutableMemory().MutableL2();
    if (l2 != nullptr) targets[n_targets++] = Target{l2, nullptr};
  }
  if (n_targets == 0) return report;

  Roll roll(campaign_seed, "seu", run_index);
  const double whole = std::floor(config.upsets_per_run);
  std::uint64_t count = static_cast<std::uint64_t>(whole);
  if (roll.Chance(config.upsets_per_run - whole)) ++count;

  for (std::uint64_t i = 0; i < count; ++i) {
    const Target& t = targets[roll.Below(n_targets)];
    const std::size_t slot = static_cast<std::size_t>(roll.Below(t.Slots()));
    const unsigned bit = static_cast<unsigned>(roll.Below(64));
    t.Flip(slot, bit);
    ++report.flips;
  }
  return report;
}

}  // namespace spta::fault
