// Seeded SEU (single-event upset) injection into the platform state.
//
// Space-grade context: ionizing particles flip individual SRAM bits; in a
// cache or TLB the vulnerable words are the tag/valid arrays (a data-array
// flip is a functional error, not a timing one, and this simulator tracks
// timing). Because both models encode validity as a sentinel tag, one
// XORed bit reproduces the two real failure modes of a tag RAM upset:
//   - a flip in an invalid way forges a bogus "valid" line (spurious hits
//     or displaced allocations),
//   - a flip in a valid way retags or invalidates a live line (spurious
//     misses).
// Either way the hit/miss stream — and therefore the measured execution
// time — changes, which is exactly the hazard MBPTA must detect rather
// than absorb into the pWCET.
//
// Faults are applied between the per-run reset protocol and execution
// (Platform::RunWithHook's injection window), so the measurement hot path
// carries zero fault-checking code. Every flip is a pure function of
// (campaign_seed, "seu", run_index) per the fault::Roll contract.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/platform.hpp"

namespace spta::fault {

/// Which tag/valid arrays are vulnerable and how often they are struck.
struct SeuConfig {
  /// Expected upsets per measurement run. The integer part is injected
  /// always; the fractional part is a per-run Bernoulli draw. 0 disables
  /// the injector entirely.
  double upsets_per_run = 0.0;
  bool target_il1 = true;
  bool target_dl1 = true;
  bool target_itlb = true;
  bool target_dtlb = true;
  bool target_l2 = true;

  bool Enabled() const { return upsets_per_run > 0.0; }
};

/// What one run's injection actually did (for taint accounting).
struct SeuReport {
  std::uint64_t flips = 0;
};

/// Applies run `run_index`'s SEU schedule to `platform` (core 0 + shared
/// L2). Must be called inside the post-reset injection window; the flips
/// are deterministic in (campaign_seed, run_index) and independent of
/// thread schedule.
SeuReport InjectSeus(sim::Platform& platform, const SeuConfig& config,
                     Seed campaign_seed, std::uint64_t run_index);

}  // namespace spta::fault
