#include "mbpta/backtest.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "evt/block_maxima.hpp"

namespace spta::mbpta {

bool BacktestResult::AllConsistent() const {
  return std::all_of(points.begin(), points.end(),
                     [](const BacktestPoint& p) { return p.consistent; });
}

BacktestResult BacktestPwcet(std::span<const double> analysis,
                             std::span<const double> validation,
                             std::span<const double> probs,
                             const MbptaOptions& options) {
  SPTA_REQUIRE(!analysis.empty() && !validation.empty());
  MbptaOptions opts = options;
  opts.require_iid = false;  // caller gates separately
  const MbptaResult fit = AnalyzeSample(analysis, opts);
  SPTA_REQUIRE_MSG(fit.curve.has_value(),
                   "analysis sample is degenerate; nothing to backtest");

  BacktestResult result;
  result.analysis_runs = analysis.size();
  result.validation_runs = validation.size();
  const double n = static_cast<double>(validation.size());
  for (const double p : probs) {
    SPTA_REQUIRE(p > 0.0 && p < 1.0);
    // Need a handful of expected exceedances for the test to have power.
    if (p * n < 2.0) continue;
    BacktestPoint pt;
    pt.nominal_prob = p;
    pt.bound = fit.curve->QuantileForExceedance(p);
    pt.expected = static_cast<std::size_t>(std::llround(p * n));
    pt.observed = static_cast<std::size_t>(
        std::count_if(validation.begin(), validation.end(),
                      [&](double t) { return t > pt.bound; }));
    const double sigma = std::sqrt(n * p * (1.0 - p));
    pt.z_score =
        sigma > 0.0 ? (static_cast<double>(pt.observed) - n * p) / sigma
                    : 0.0;
    pt.consistent = pt.z_score <= 3.0;  // one-sided: over-estimation is OK
    result.points.push_back(pt);
  }
  return result;
}

BacktestResult SplitBacktest(std::span<const double> times,
                             const MbptaOptions& options) {
  SPTA_REQUIRE(times.size() >= 2 * options.min_blocks);
  const std::size_t half = times.size() / 2;
  const double n_valid = static_cast<double>(times.size() - half);
  const std::size_t block =
      options.block_size != 0
          ? options.block_size
          : evt::SuggestBlockSize(half, options.min_blocks);
  const double p_max = 3.0 / static_cast<double>(block);
  std::vector<double> grid;
  for (const double expected : {25.0, 10.0, 4.0}) {
    const double p = expected / n_valid;
    if (p < p_max && p < 1.0) grid.push_back(p);
  }
  SPTA_REQUIRE_MSG(!grid.empty(),
                   "validation half too small for any observable target");
  return BacktestPwcet(times.subspan(0, half), times.subspan(half), grid,
                       options);
}

}  // namespace spta::mbpta
