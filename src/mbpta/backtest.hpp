// pWCET backtesting: out-of-sample validation of the projection.
//
// The avionics MBPTA case studies validate estimates by splitting the
// measurements: fit on the analysis half, then count how often the
// held-out half exceeds the fitted quantiles. At observable probabilities
// the observed exceedance frequency must be statistically consistent with
// (or below) the nominal probability — a direct, evidence-based check that
// the projection does not under-estimate.
#pragma once

#include <span>
#include <vector>

#include "mbpta/mbpta.hpp"

namespace spta::mbpta {

/// Outcome at one nominal exceedance probability.
struct BacktestPoint {
  double nominal_prob = 0.0;   ///< Per-run probability the bound targets.
  double bound = 0.0;          ///< Fitted pWCET at that probability.
  std::size_t expected = 0;    ///< round(nominal * validation size).
  std::size_t observed = 0;    ///< Held-out runs above the bound.
  double z_score = 0.0;        ///< Normal-approx z of observed vs nominal.
  /// Consistent = observed not significantly ABOVE nominal (one-sided,
  /// z <= 3); being below nominal is conservative and fine.
  bool consistent = false;
};

struct BacktestResult {
  std::vector<BacktestPoint> points;
  std::size_t analysis_runs = 0;
  std::size_t validation_runs = 0;
  /// True when every tested probability is consistent.
  bool AllConsistent() const;
};

/// Fits MBPTA on `analysis` (i.i.d. gate not enforced here — run it
/// separately) and backtests the quantiles at `probs` against
/// `validation`. Probabilities below ~10/validation.size() carry little
/// power and are skipped. Requires non-empty inputs and a fittable
/// analysis sample.
BacktestResult BacktestPwcet(std::span<const double> analysis,
                             std::span<const double> validation,
                             std::span<const double> probs,
                             const MbptaOptions& options = {});

/// Convenience: split `times` in half (first = analysis) and backtest at
/// an adaptive grid of observable tail probabilities — targets with ~25,
/// ~10 and ~4 expected exceedances in the validation half, clamped to the
/// region where a block-maxima model makes per-run statements at all
/// (p <= ~3/block: larger p reprojects into the LEFT tail of the maxima
/// distribution, which the Gumbel tail fit never claimed to model).
BacktestResult SplitBacktest(std::span<const double> times,
                             const MbptaOptions& options = {});

}  // namespace spta::mbpta
