#include "mbpta/confidence.hpp"

#include "common/assert.hpp"
#include "evt/block_maxima.hpp"
#include "evt/gumbel.hpp"
#include "evt/pwcet.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace spta::mbpta {

PwcetConfidence BootstrapPwcetCi(std::span<const double> times,
                                 double exceedance_prob,
                                 std::size_t block_size,
                                 std::size_t replicates, double level,
                                 std::uint64_t seed) {
  SPTA_REQUIRE(exceedance_prob > 0.0 && exceedance_prob < 1.0);
  const auto maxima = evt::BlockMaxima(times, block_size);
  SPTA_REQUIRE_MSG(maxima.size() >= 10,
                   "only " << maxima.size() << " block maxima");
  SPTA_REQUIRE_MSG(stats::Max(maxima) > stats::Min(maxima),
                   "degenerate (constant) maxima sample");

  const auto statistic = [&](std::span<const double> resampled) {
    // A bootstrap replicate can be (nearly) constant; fall back to its max
    // (the quantile of a point mass) rather than aborting the fit.
    if (stats::Max(resampled) <= stats::Min(resampled)) {
      return stats::Max(resampled);
    }
    const evt::PwcetCurve curve(evt::FitGumbelMle(resampled), block_size,
                                times.size());
    return curve.QuantileForExceedance(exceedance_prob);
  };
  const auto ci =
      stats::BootstrapCi(maxima, statistic, replicates, level, seed);

  PwcetConfidence out;
  out.exceedance_prob = exceedance_prob;
  out.point = ci.point;
  out.lower = ci.lower;
  out.upper = ci.upper;
  out.level = level;
  out.replicates = replicates;
  return out;
}

}  // namespace spta::mbpta
