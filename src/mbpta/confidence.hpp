// Bootstrap confidence intervals for pWCET estimates.
//
// A pWCET number without uncertainty is hard to defend in a certification
// argument (Stephenson et al., INDIN 2013 call for explicit argumentation).
// This module attaches a percentile-bootstrap CI to the pWCET at a given
// cutoff: block maxima are resampled with replacement, the Gumbel tail is
// refitted, and the quantile re-projected.
#pragma once

#include <cstdint>
#include <span>

namespace spta::mbpta {

struct PwcetConfidence {
  double exceedance_prob = 0.0;
  double point = 0.0;   ///< Estimate from the original sample.
  double lower = 0.0;   ///< CI lower bound.
  double upper = 0.0;   ///< CI upper bound.
  double level = 0.0;   ///< Confidence level, e.g. 0.95.
  std::size_t replicates = 0;

  /// Width of the interval relative to the point estimate.
  double RelativeWidth() const {
    return point > 0.0 ? (upper - lower) / point : 0.0;
  }
};

/// Bootstraps the pWCET at `exceedance_prob` from per-run `times`:
/// extracts block maxima of `block_size`, then for each replicate
/// resamples the maxima, refits a Gumbel by MLE and re-projects the
/// per-run quantile. Deterministic in `seed`. Requires enough data for at
/// least 10 complete blocks, replicates >= 100, 0 < level < 1.
PwcetConfidence BootstrapPwcetCi(std::span<const double> times,
                                 double exceedance_prob,
                                 std::size_t block_size,
                                 std::size_t replicates = 500,
                                 double level = 0.95,
                                 std::uint64_t seed = 1);

}  // namespace spta::mbpta
