#include "mbpta/convergence.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace spta::mbpta {

ConvergenceResult CheckConvergence(std::span<const double> times,
                                   const ConvergenceOptions& options) {
  SPTA_REQUIRE(options.initial_runs >= options.mbpta.min_blocks);
  SPTA_REQUIRE(options.step_runs >= 1);
  SPTA_REQUIRE(times.size() >= options.initial_runs);
  SPTA_OBS_SPAN_ARG("analysis", "convergence", "n", times.size());

  ConvergenceResult result;
  int stable = 0;
  double prev = 0.0;
  bool have_prev = false;

  for (std::size_t n = options.initial_runs; n <= times.size();
       n += options.step_runs) {
    ConvergencePoint pt;
    pt.runs = n;
    // The i.i.d. gate is evaluated on the full sample by the caller; for
    // prefix re-estimation only the fit matters.
    MbptaOptions opts = options.mbpta;
    opts.require_iid = false;
    const MbptaResult est = AnalyzeSample(times.subspan(0, n), opts);
    if (est.curve.has_value()) {
      pt.usable = true;
      pt.pwcet = est.curve->QuantileForExceedance(options.reference_prob);
      if (have_prev && prev > 0.0) {
        pt.rel_delta = std::fabs(pt.pwcet - prev) / prev;
        if (pt.rel_delta <= options.rel_tolerance) {
          ++stable;
          if (stable >= options.stable_steps_required &&
              !result.converged) {
            result.converged = true;
            result.runs_required = n;
          }
        } else {
          stable = 0;
          // Later instability invalidates an earlier tentative convergence
          // only if we have not yet locked it in; MBPTA practice stops
          // collecting at the first stable point, so we keep it.
        }
      }
      prev = pt.pwcet;
      have_prev = true;
    } else {
      stable = 0;
      have_prev = false;
    }
    result.points.push_back(pt);
  }
  return result;
}

}  // namespace spta::mbpta
