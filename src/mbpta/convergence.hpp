// MBPTA convergence criterion.
//
// The protocol collects runs until the pWCET estimate stabilizes ("We
// execute TVCA 3,000 times ... which satisfied the convergence criteria
// defined in the MBPTA process"). We implement it as: re-estimate the
// pWCET at a reference cutoff probability on growing sample prefixes; the
// sample has converged once the relative change stays below a tolerance
// for a number of consecutive steps.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mbpta/mbpta.hpp"

namespace spta::mbpta {

struct ConvergenceOptions {
  std::size_t initial_runs = 250;
  std::size_t step_runs = 250;
  /// Reference per-run exceedance probability at which stability is judged.
  double reference_prob = 1e-12;
  /// Relative-change tolerance between consecutive estimates.
  double rel_tolerance = 0.02;
  /// Number of consecutive in-tolerance steps required.
  int stable_steps_required = 2;
  MbptaOptions mbpta;
};

/// One prefix re-estimate.
struct ConvergencePoint {
  std::size_t runs = 0;
  double pwcet = 0.0;      ///< Estimate at reference_prob (0 if unusable).
  double rel_delta = 0.0;  ///< |pwcet - prev| / prev (0 for the first).
  bool usable = false;
};

struct ConvergenceResult {
  std::vector<ConvergencePoint> points;
  bool converged = false;
  /// Smallest prefix length at which the criterion was met (0 if never).
  std::size_t runs_required = 0;
};

/// Applies the criterion over prefixes of the time-ordered sample.
ConvergenceResult CheckConvergence(std::span<const double> times,
                                   const ConvergenceOptions& options = {});

}  // namespace spta::mbpta
