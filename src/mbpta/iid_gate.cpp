#include "mbpta/iid_gate.hpp"

#include "common/assert.hpp"

namespace spta::mbpta {

IidGateResult RunIidGate(std::span<const double> times,
                         const IidGateOptions& options) {
  SPTA_REQUIRE(times.size() >= 4);
  IidGateResult r;
  r.alpha = options.alpha;
  r.independence = stats::LjungBoxTest(times, options.ljung_box_lags);
  r.identical_distribution = stats::SplitSampleKs(times);
  return r;
}

}  // namespace spta::mbpta
