// The MBPTA i.i.d. admissibility gate.
//
// Before EVT may be applied, the execution-time observations must be
// independent and identically distributed. Following the paper (Section
// III): independence via Ljung-Box, identical distribution via a two-sample
// Kolmogorov-Smirnov test between sample halves, both at a 5% significance
// level — "i.i.d. is rejected only if the value for any of the tests is
// lower than 0.05".
#pragma once

#include <span>

#include "stats/ks_test.hpp"
#include "stats/ljung_box.hpp"

namespace spta::mbpta {

struct IidGateOptions {
  std::size_t ljung_box_lags = 20;
  double alpha = 0.05;
};

struct IidGateResult {
  stats::LjungBoxResult independence;
  stats::KsResult identical_distribution;
  double alpha = 0.05;

  /// True when neither test rejects at `alpha` — MBPTA may proceed.
  bool Passed() const {
    return independence.p_value >= alpha &&
           identical_distribution.p_value >= alpha;
  }
};

/// Runs both tests on the time-ordered sample. Requires enough data for the
/// requested lags and a non-constant sample.
IidGateResult RunIidGate(std::span<const double> times,
                         const IidGateOptions& options = {});

}  // namespace spta::mbpta
