#include "mbpta/mbpta.hpp"

#include "common/assert.hpp"
#include "evt/block_maxima.hpp"
#include "evt/crps.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"

namespace spta::mbpta {

double MbptaResult::PwcetAt(double p) const {
  SPTA_REQUIRE_MSG(curve.has_value(), "no fitted pWCET model");
  return curve->QuantileForExceedance(p);
}

MbptaResult AnalyzeSample(std::span<const double> times,
                          const MbptaOptions& options) {
  SPTA_REQUIRE(times.size() >= options.min_blocks);
  SPTA_OBS_SPAN_ARG("analysis", "analyze_sample", "n", times.size());
  MbptaResult r;
  r.sample_size = times.size();
  {
    SPTA_OBS_SPAN("analysis", "iid_gate");
    r.iid = RunIidGate(times, options.iid);
  }

  r.block_size = options.block_size != 0
                     ? options.block_size
                     : evt::SuggestBlockSize(times.size(), options.min_blocks);
  const auto maxima = evt::BlockMaxima(times, r.block_size);

  // A degenerate (constant) maxima sample admits no EVT fit: the platform
  // is effectively jitterless and the high watermark IS the WCET.
  if (stats::Max(maxima) > stats::Min(maxima)) {
    {
      SPTA_OBS_SPAN_ARG("analysis", "evt_fit", "maxima", maxima.size());
      r.curve = evt::PwcetCurve(evt::FitGumbelMle(maxima), r.block_size,
                                times.size());
      r.gev_check = evt::FitGevPwm(maxima);
    }
    SPTA_OBS_SPAN("analysis", "gof");
    if (maxima.size() >= 50) {
      r.gof = evt::ChiSquareGof(maxima, r.curve->tail(), /*bins=*/10);
    }
    if (maxima.size() >= 8) {
      r.ad = evt::AndersonDarlingGumbel(maxima, r.curve->tail());
    }
    r.ppcc = evt::Ppcc(maxima, r.curve->tail());
    r.crps = evt::CrpsGumbel(r.curve->tail(), maxima);
  }

  r.usable = r.curve.has_value() &&
             (!options.require_iid || r.iid.Passed());
  return r;
}

}  // namespace spta::mbpta
