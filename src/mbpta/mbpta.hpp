// The MBPTA estimation pipeline (Cucu-Grosjean et al., ECRTS 2012, as
// applied in the paper): i.i.d. gate -> block maxima -> Gumbel tail fit ->
// goodness-of-fit diagnostics -> pWCET curve.
#pragma once

#include <optional>
#include <span>

#include "evt/ad_test.hpp"
#include "evt/gev.hpp"
#include "evt/gof.hpp"
#include "evt/pwcet.hpp"
#include "mbpta/iid_gate.hpp"

namespace spta::mbpta {

struct MbptaOptions {
  /// Block size for maxima extraction; 0 = automatic (largest block size
  /// that still yields at least `min_blocks` maxima).
  std::size_t block_size = 0;
  std::size_t min_blocks = 30;
  IidGateOptions iid;
  /// When true (default), a failed i.i.d. gate marks the result unusable.
  bool require_iid = true;
};

/// Complete outcome of one MBPTA analysis.
struct MbptaResult {
  IidGateResult iid;
  std::size_t block_size = 0;
  std::size_t sample_size = 0;
  /// The fitted pWCET model (absent if the sample was degenerate).
  std::optional<evt::PwcetCurve> curve;
  /// GEV shape cross-check on the block maxima (xi should be ~<= 0 for a
  /// trustworthy light-tailed Gumbel projection).
  evt::GevDist gev_check;
  /// Chi-square GOF of the Gumbel fit on the block maxima (absent when the
  /// maxima sample is too small to bin).
  std::optional<evt::ChiSquareGofResult> gof;
  /// Anderson-Darling GOF on the block maxima (tail-weighted; absent for
  /// very small maxima samples).
  std::optional<evt::AdResult> ad;
  /// Probability-plot correlation coefficient of the Gumbel fit on the
  /// block maxima (0 when no fit).
  double ppcc = 0.0;
  /// CRPS of the Gumbel fit on the block maxima (0 when no fit); lower is
  /// better, comparable across candidate fits of the same sample.
  double crps = 0.0;

  /// True when the analysis produced a defensible pWCET model: fit present,
  /// i.i.d. passed (if required).
  bool usable = false;

  /// pWCET at per-run exceedance probability p. Requires usable.
  double PwcetAt(double p) const;
};

/// Runs the full pipeline on a time-ordered execution-time sample.
/// Requires at least `min_blocks` observations.
MbptaResult AnalyzeSample(std::span<const double> times,
                          const MbptaOptions& options = {});

}  // namespace spta::mbpta
