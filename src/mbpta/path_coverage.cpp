#include "mbpta/path_coverage.hpp"

#include <map>

#include "common/assert.hpp"

namespace spta::mbpta {

PathCoverageResult EstimatePathCoverage(
    std::span<const PathObservation> observations) {
  SPTA_REQUIRE(!observations.empty());
  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& obs : observations) ++counts[obs.path_id];

  PathCoverageResult r;
  r.runs = observations.size();
  r.observed_paths = counts.size();
  for (const auto& [path, count] : counts) {
    if (count == 1) ++r.singleton_paths;
  }
  r.missing_mass = static_cast<double>(r.singleton_paths) /
                   static_cast<double>(r.runs);
  r.coverage = 1.0 - r.missing_mass;
  return r;
}

}  // namespace spta::mbpta
