// Path-coverage estimation for per-path MBPTA.
//
// Per-path analysis can only bound the paths it has SEEN. The Good-Turing
// missing-mass estimator quantifies the residual risk: the expected
// probability that the next run takes a never-observed path is estimated
// by (number of paths seen exactly once) / (number of runs). Certification
// argumentation (INDIN 2013) wants exactly this number alongside the
// pWCET.
#pragma once

#include <cstdint>
#include <span>

#include "mbpta/per_path.hpp"

namespace spta::mbpta {

struct PathCoverageResult {
  std::size_t runs = 0;
  std::size_t observed_paths = 0;
  std::size_t singleton_paths = 0;  ///< Paths seen exactly once.
  /// Good-Turing estimate of P[next run takes an unseen path].
  double missing_mass = 0.0;
  /// 1 - missing_mass.
  double coverage = 1.0;

  /// True when the unseen-path probability estimate is below `target`
  /// (e.g. the cutoff probability the pWCET is quoted at — otherwise the
  /// per-path envelope's guarantee is weaker than its number suggests).
  bool SufficientFor(double target) const { return missing_mass <= target; }
};

/// Computes the estimator over the observations' path ids.
PathCoverageResult EstimatePathCoverage(
    std::span<const PathObservation> observations);

}  // namespace spta::mbpta
