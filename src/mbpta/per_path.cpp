#include "mbpta/per_path.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "stats/descriptive.hpp"

namespace spta::mbpta {

double PerPathResult::EnvelopeAt(double p) const {
  SPTA_REQUIRE(analyzed_count() >= 1);
  double envelope = 0.0;
  for (const auto& path : paths) {
    if (path.analyzed && path.result.curve.has_value()) {
      envelope = std::max(envelope,
                          path.result.curve->QuantileForExceedance(p));
    }
    // Every path's observed maximum is a hard lower bound on any defensible
    // program WCET estimate.
    envelope = std::max(envelope, path.high_watermark);
  }
  return envelope;
}

bool PerPathResult::AllIidPassed() const {
  for (const auto& path : paths) {
    if (path.analyzed && !path.result.iid.Passed()) return false;
  }
  return true;
}

std::size_t PerPathResult::analyzed_count() const {
  return static_cast<std::size_t>(
      std::count_if(paths.begin(), paths.end(),
                    [](const PathAnalysis& p) { return p.analyzed; }));
}

PerPathResult AnalyzePerPath(std::span<const PathObservation> observations,
                             const PerPathOptions& options) {
  SPTA_REQUIRE(!observations.empty());
  std::map<std::uint64_t, std::vector<double>> by_path;
  for (const auto& obs : observations) {
    by_path[obs.path_id].push_back(obs.time);
  }
  PerPathResult result;
  result.total_samples = observations.size();
  for (auto& [path_id, times] : by_path) {
    PathAnalysis pa;
    pa.path_id = path_id;
    pa.samples = times.size();
    pa.high_watermark = stats::Max(times);
    const std::size_t required =
        std::max(options.min_samples_per_path, options.mbpta.min_blocks);
    if (times.size() >= required && stats::Max(times) > stats::Min(times)) {
      pa.result = AnalyzeSample(times, options.mbpta);
      pa.analyzed = pa.result.curve.has_value();
    }
    result.paths.push_back(std::move(pa));
  }
  return result;
}

}  // namespace spta::mbpta
