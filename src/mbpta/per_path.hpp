// Per-path MBPTA analysis.
//
// Multi-path programs break identical distribution when paths mix; the
// paper therefore performs "per-path analysis taking the maximum across
// paths": observations are grouped by execution path, each path gets its
// own pWCET model, and the program-level pWCET at probability p is the
// envelope (maximum) across paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mbpta/mbpta.hpp"

namespace spta::mbpta {

/// One observation: which path the run took and how long it ran.
struct PathObservation {
  std::uint64_t path_id = 0;
  double time = 0.0;
};

struct PerPathOptions {
  /// Paths with fewer observations than this are not independently
  /// analyzable; they are reported as skipped (their high watermark still
  /// participates in the envelope, conservatively inflated below).
  std::size_t min_samples_per_path = 100;
  MbptaOptions mbpta;
};

/// Analysis of one path.
struct PathAnalysis {
  std::uint64_t path_id = 0;
  std::size_t samples = 0;
  bool analyzed = false;  ///< False when below min_samples_per_path.
  MbptaResult result;     ///< Valid when analyzed.
  double high_watermark = 0.0;
};

struct PerPathResult {
  std::vector<PathAnalysis> paths;
  std::size_t total_samples = 0;

  /// Program-level pWCET at per-run exceedance probability p: the maximum
  /// over analyzed paths' curves, and at least the high watermark of every
  /// path (including skipped ones). Requires at least one analyzed path.
  double EnvelopeAt(double p) const;

  /// True iff every analyzed path's i.i.d. gate passed.
  bool AllIidPassed() const;

  /// Count of paths that could be analyzed.
  std::size_t analyzed_count() const;
};

/// Groups observations by path and analyzes each group.
PerPathResult AnalyzePerPath(std::span<const PathObservation> observations,
                             const PerPathOptions& options = {});

}  // namespace spta::mbpta
