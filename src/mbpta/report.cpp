#include "mbpta/report.hpp"

#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace spta::mbpta {

std::vector<double> DefaultCutoffs() {
  std::vector<double> cutoffs;
  for (int e = 3; e <= 15; e += 3) {
    cutoffs.push_back(std::pow(10.0, -e));
  }
  return cutoffs;
}

std::string RenderReport(const MbptaResult& result,
                         const std::string& title) {
  std::ostringstream oss;
  oss << "=== " << title << " ===\n";
  oss << "runs: " << result.sample_size
      << "  block size: " << result.block_size << "\n";
  oss << "i.i.d. gate (alpha=" << FormatG(result.iid.alpha, 3) << "): "
      << (result.iid.Passed() ? "PASSED" : "REJECTED") << "\n";
  oss << "  Ljung-Box (independence):      p=" <<
      FormatF(result.iid.independence.p_value, 3) << "\n";
  oss << "  KS two-sample (identical dist): p="
      << FormatF(result.iid.identical_distribution.p_value, 3) << "\n";
  if (result.curve.has_value()) {
    const auto& tail = result.curve->tail();
    oss << "Gumbel tail: mu=" << FormatG(tail.mu, 8)
        << " beta=" << FormatG(tail.beta, 8) << "\n";
    oss << "GEV shape cross-check: xi=" << FormatG(result.gev_check.xi, 4)
        << (result.gev_check.IsEffectivelyGumbel(0.1)
                ? " (Gumbel-compatible)"
                : " (NOT Gumbel-compatible)")
        << "\n";
    if (result.gof.has_value()) {
      oss << "Chi-square GOF: p=" << FormatF(result.gof->p_value, 3)
          << (result.gof->NotRejected() ? " (not rejected)" : " (rejected)")
          << "\n";
    }
    if (result.ad.has_value()) {
      oss << "Anderson-Darling GOF: A*=" << FormatF(result.ad->adjusted, 3)
          << " vs 5% critical " << FormatF(result.ad->critical_5pct, 3)
          << (result.ad->NotRejected() ? " (not rejected)" : " (rejected)")
          << "\n";
    }
    oss << "PPCC: " << FormatF(result.ppcc, 4)
        << "  CRPS: " << FormatG(result.crps, 4) << "\n";
    TextTable t({"exceedance prob", "pWCET (cycles)"});
    for (double p : DefaultCutoffs()) {
      t.AddRow({FormatProb(p),
                FormatF(result.curve->QuantileForExceedance(p), 0)});
    }
    t.Render(oss);
  } else {
    oss << "no EVT fit (degenerate sample)\n";
  }
  oss << "verdict: " << (result.usable ? "usable" : "NOT usable") << "\n";
  return oss.str();
}

std::string RenderReport(const PerPathResult& result,
                         const std::string& title) {
  std::ostringstream oss;
  oss << "=== " << title << " ===\n";
  oss << "total runs: " << result.total_samples
      << "  paths: " << result.paths.size()
      << "  analyzed: " << result.analyzed_count() << "\n";
  TextTable paths({"path", "runs", "analyzed", "iid", "HWM",
                   "pWCET@1e-12"});
  for (const auto& p : result.paths) {
    std::string pwcet = "-";
    std::string iid = "-";
    if (p.analyzed && p.result.curve.has_value()) {
      pwcet = FormatF(p.result.curve->QuantileForExceedance(1e-12), 0);
      iid = p.result.iid.Passed() ? "pass" : "FAIL";
    }
    paths.AddRow({std::to_string(p.path_id), std::to_string(p.samples),
                  p.analyzed ? "yes" : "no", iid, FormatF(p.high_watermark, 0),
                  pwcet});
  }
  paths.Render(oss);
  if (result.analyzed_count() >= 1) {
    TextTable env({"exceedance prob", "envelope pWCET (cycles)"});
    for (double p : DefaultCutoffs()) {
      env.AddRow({FormatProb(p), FormatF(result.EnvelopeAt(p), 0)});
    }
    env.Render(oss);
  }
  return oss.str();
}

}  // namespace spta::mbpta
