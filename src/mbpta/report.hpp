// Human-readable MBPTA analysis report (the library's equivalent of the
// output an enhanced commercial timing-analysis tool would show).
#pragma once

#include <string>
#include <vector>

#include "mbpta/mbpta.hpp"
#include "mbpta/per_path.hpp"

namespace spta::mbpta {

/// Renders the single-sample analysis: sample summary, i.i.d. gate values,
/// fit parameters, GOF diagnostics, pWCET at the standard cutoffs.
std::string RenderReport(const MbptaResult& result,
                         const std::string& title = "MBPTA analysis");

/// Renders the per-path analysis with the path envelope.
std::string RenderReport(const PerPathResult& result,
                         const std::string& title = "MBPTA per-path analysis");

/// The cutoff probabilities reported by default (10^-3 .. 10^-15, the range
/// spanned by paper Figure 3).
std::vector<double> DefaultCutoffs();

}  // namespace spta::mbpta
