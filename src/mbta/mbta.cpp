#include "mbta/mbta.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "stats/descriptive.hpp"

namespace spta::mbta {

MbtaEstimate Estimate(std::span<const double> times, double margin) {
  SPTA_REQUIRE(!times.empty());
  SPTA_REQUIRE(margin >= 0.0);
  MbtaEstimate e;
  e.high_watermark = stats::Max(times);
  e.margin = margin;
  e.wcet_estimate = e.high_watermark * (1.0 + margin);
  e.sample_size = times.size();
  return e;
}

std::vector<MbtaEstimate> MarginSweep(std::span<const double> times,
                                      std::span<const double> margins) {
  std::vector<MbtaEstimate> out;
  out.reserve(margins.size());
  for (double m : margins) out.push_back(Estimate(times, m));
  return out;
}

double ExceedanceFraction(const MbtaEstimate& estimate,
                          std::span<const double> validation) {
  SPTA_REQUIRE(!validation.empty());
  const auto over = std::count_if(
      validation.begin(), validation.end(),
      [&](double t) { return t > estimate.wcet_estimate; });
  return static_cast<double>(over) / static_cast<double>(validation.size());
}

}  // namespace spta::mbta
