// Industrial measurement-based timing analysis (MBTA) baseline.
//
// The practice the paper compares against (Section III): take the highest
// observed execution time on the deterministic platform (the "high
// watermark") and inflate it by an engineering factor, e.g. +50%. Cheap,
// but its confidence rests on the untestable assumption that the analysis
// runs exercised (or nearly exercised) worst-case conditions such as the
// worst cache layout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spta::mbta {

/// One high-watermark + margin WCET estimate.
struct MbtaEstimate {
  double high_watermark = 0.0;  ///< Max observed execution time.
  double margin = 0.0;          ///< Engineering factor, e.g. 0.5 = +50%.
  double wcet_estimate = 0.0;   ///< high_watermark * (1 + margin).
  std::size_t sample_size = 0;
};

/// Computes the estimate from a non-empty sample. Requires margin >= 0.
MbtaEstimate Estimate(std::span<const double> times, double margin = 0.5);

/// One estimate per margin (for the margin-sensitivity comparison).
std::vector<MbtaEstimate> MarginSweep(std::span<const double> times,
                                      std::span<const double> margins);

/// Fraction of `validation` observations exceeding the estimate — the
/// empirical failure rate of an MBTA bound on an independent sample.
double ExceedanceFraction(const MbtaEstimate& estimate,
                          std::span<const double> validation);

}  // namespace spta::mbta
