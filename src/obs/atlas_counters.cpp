#include "obs/atlas_counters.hpp"

#include <atomic>

namespace spta::obs {
namespace {

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_bypasses{0};
std::atomic<std::uint64_t> g_inserts{0};
std::atomic<std::uint64_t> g_fast_forwarded{0};
std::atomic<std::uint64_t> g_packed{0};
std::atomic<std::uint64_t> g_unpacked{0};

}  // namespace

void AddAtlasMemoCounters(std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t bypasses, std::uint64_t inserts,
                          std::uint64_t fast_forwarded_records) {
  g_hits.fetch_add(hits, std::memory_order_relaxed);
  g_misses.fetch_add(misses, std::memory_order_relaxed);
  g_bypasses.fetch_add(bypasses, std::memory_order_relaxed);
  g_inserts.fetch_add(inserts, std::memory_order_relaxed);
  g_fast_forwarded.fetch_add(fast_forwarded_records,
                             std::memory_order_relaxed);
}

void CountAtlasPack() { g_packed.fetch_add(1, std::memory_order_relaxed); }

void CountAtlasUnpack() {
  g_unpacked.fetch_add(1, std::memory_order_relaxed);
}

AtlasCountersSnapshot AtlasCounters() {
  AtlasCountersSnapshot s;
  s.kernel_hits = g_hits.load(std::memory_order_relaxed);
  s.kernel_misses = g_misses.load(std::memory_order_relaxed);
  s.kernel_bypasses = g_bypasses.load(std::memory_order_relaxed);
  s.kernel_inserts = g_inserts.load(std::memory_order_relaxed);
  s.fast_forwarded_records =
      g_fast_forwarded.load(std::memory_order_relaxed);
  s.traces_packed = g_packed.load(std::memory_order_relaxed);
  s.traces_unpacked = g_unpacked.load(std::memory_order_relaxed);
  return s;
}

void ResetAtlasCountersForTest() {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
  g_bypasses.store(0, std::memory_order_relaxed);
  g_inserts.store(0, std::memory_order_relaxed);
  g_fast_forwarded.store(0, std::memory_order_relaxed);
  g_packed.store(0, std::memory_order_relaxed);
  g_unpacked.store(0, std::memory_order_relaxed);
}

}  // namespace spta::obs
