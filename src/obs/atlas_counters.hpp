// Process-wide atlas (src/atlas) counters.
//
// The kernel-memoization layer runs inside per-worker arenas with no
// shared state; campaigns fold their per-worker MemoRunStats into these
// global atomics when they finish so operators can see hit/miss/bypass
// behavior through the usual surfaces (spta_cli --obs-* outputs and the
// spta_serve METRICS / METRICS_PROM endpoints) without threading stats
// through every call site. Deliberately separate from RunCounters, whose
// per-run CSV schema is frozen by golden tests.
#pragma once

#include <cstdint>

namespace spta::obs {

struct AtlasCountersSnapshot {
  std::uint64_t kernel_hits = 0;       ///< Fast-forwarded iterations.
  std::uint64_t kernel_misses = 0;     ///< Simulated + recorded.
  std::uint64_t kernel_bypasses = 0;   ///< Simulated, memoization off.
  std::uint64_t kernel_inserts = 0;    ///< Kernel-store insertions.
  std::uint64_t fast_forwarded_records = 0;
  std::uint64_t traces_packed = 0;     ///< Atlas containers written.
  std::uint64_t traces_unpacked = 0;   ///< Atlas containers decoded.
};

/// Folds one campaign's (or one worker's) memoization totals in.
void AddAtlasMemoCounters(std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t bypasses, std::uint64_t inserts,
                          std::uint64_t fast_forwarded_records);

/// Counts one atlas container written / decoded.
void CountAtlasPack();
void CountAtlasUnpack();

/// Consistent snapshot of all counters.
AtlasCountersSnapshot AtlasCounters();

/// Zeroes everything (test isolation only).
void ResetAtlasCountersForTest();

}  // namespace spta::obs
