#include "obs/counters.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace spta::obs {

RunCounters RunCounters::From(std::uint64_t run, std::uint32_t path_id,
                              const sim::RunResult& d) {
  RunCounters c;
  c.run = run;
  c.path_id = path_id;
  c.cycles = d.cycles;
  c.instructions = d.instructions;
  c.il1_accesses = d.il1.accesses;
  c.il1_misses = d.il1.misses;
  c.dl1_accesses = d.dl1.accesses;
  c.dl1_misses = d.dl1.misses;
  c.itlb_accesses = d.itlb.accesses;
  c.itlb_misses = d.itlb.misses;
  c.dtlb_accesses = d.dtlb.accesses;
  c.dtlb_misses = d.dtlb.misses;
  c.fpu_ops = d.fpu.operations;
  c.fpu_cycles = d.fpu.total_cycles;
  c.prng_words = d.prng.words;
  c.prng_rejections = d.prng.rejections;
  c.sb_stores = d.store_buffer.stores;
  c.sb_full_stalls = d.store_buffer.full_stalls;
  c.sb_stall_cycles = d.store_buffer.stall_cycles;
  c.sb_high_water = d.store_buffer.high_water;
  return c;
}

void CounterAggregate::Add(const RunCounters& c) {
  if (runs == 0) {
    cycles_min = c.cycles;
    cycles_max = c.cycles;
  } else {
    cycles_min = std::min(cycles_min, c.cycles);
    cycles_max = std::max(cycles_max, c.cycles);
  }
  ++runs;
  cycles += c.cycles;
  instructions += c.instructions;
  il1_accesses += c.il1_accesses;
  il1_misses += c.il1_misses;
  dl1_accesses += c.dl1_accesses;
  dl1_misses += c.dl1_misses;
  itlb_accesses += c.itlb_accesses;
  itlb_misses += c.itlb_misses;
  dtlb_accesses += c.dtlb_accesses;
  dtlb_misses += c.dtlb_misses;
  fpu_ops += c.fpu_ops;
  fpu_cycles += c.fpu_cycles;
  prng_words += c.prng_words;
  prng_rejections += c.prng_rejections;
  sb_stores += c.sb_stores;
  sb_full_stalls += c.sb_full_stalls;
  sb_stall_cycles += c.sb_stall_cycles;
  sb_high_water_max = std::max(sb_high_water_max, c.sb_high_water);
}

void WriteCountersCsvHeader(std::ostream& out) {
  out << "# spta per-run microarchitectural counters "
         "(docs/OBSERVABILITY.md)\n"
      << "run,path_id,cycles,instructions,"
         "il1_accesses,il1_misses,dl1_accesses,dl1_misses,"
         "itlb_accesses,itlb_misses,dtlb_accesses,dtlb_misses,"
         "fpu_ops,fpu_cycles,prng_words,prng_rejections,"
         "sb_stores,sb_full_stalls,sb_stall_cycles,sb_high_water\n";
}

void WriteCountersCsvRow(std::ostream& out, const RunCounters& c) {
  out << c.run << ',' << c.path_id << ',' << c.cycles << ','
      << c.instructions << ',' << c.il1_accesses << ',' << c.il1_misses
      << ',' << c.dl1_accesses << ',' << c.dl1_misses << ','
      << c.itlb_accesses << ',' << c.itlb_misses << ',' << c.dtlb_accesses
      << ',' << c.dtlb_misses << ',' << c.fpu_ops << ',' << c.fpu_cycles
      << ',' << c.prng_words << ',' << c.prng_rejections << ','
      << c.sb_stores << ',' << c.sb_full_stalls << ',' << c.sb_stall_cycles
      << ',' << c.sb_high_water << '\n';
}

std::string RenderAggregateJson(const CounterAggregate& a) {
  std::ostringstream os;
  os << "{\n";
  auto field = [&os, first = true](const char* key,
                                   std::uint64_t value) mutable {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << key << "\": " << value;
  };
  field("runs", a.runs);
  field("cycles", a.cycles);
  field("cycles_min", a.cycles_min);
  field("cycles_max", a.cycles_max);
  field("instructions", a.instructions);
  field("il1_accesses", a.il1_accesses);
  field("il1_misses", a.il1_misses);
  field("dl1_accesses", a.dl1_accesses);
  field("dl1_misses", a.dl1_misses);
  field("itlb_accesses", a.itlb_accesses);
  field("itlb_misses", a.itlb_misses);
  field("dtlb_accesses", a.dtlb_accesses);
  field("dtlb_misses", a.dtlb_misses);
  field("fpu_ops", a.fpu_ops);
  field("fpu_cycles", a.fpu_cycles);
  field("prng_words", a.prng_words);
  field("prng_rejections", a.prng_rejections);
  field("sb_stores", a.sb_stores);
  field("sb_full_stalls", a.sb_full_stalls);
  field("sb_stall_cycles", a.sb_stall_cycles);
  field("sb_high_water_max", a.sb_high_water_max);
  os << "\n}\n";
  return os.str();
}

}  // namespace spta::obs
