// Per-run microarchitectural counters: the attributable complement to the
// end-to-end execution times the campaigns already export.
//
// The paper's DET-vs-RAND comparison argues from *where* variability comes
// from — random placement/replacement in IL1/DL1/ITLB/DTLB, the jitterless
// FPU, the store buffer. `RunCounters` flattens one sim::RunResult into the
// per-component hit/miss/stall event counts plus the PRNG consumption
// (words drawn and rejection retries) of that run, so a campaign's sample
// CSV can sit next to a counter CSV that attributes each time to its
// microarchitectural causes. `CounterAggregate` sums a campaign (with
// high-water maxima where a sum is meaningless) for the JSON summary and
// the Prometheus surface.
//
// Everything here is pure post-processing of RunResult values the simulator
// already produces — recording costs the hot path nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/core.hpp"

namespace spta::obs {

/// One run's counters, flattened for CSV export. Field names match the CSV
/// column header exactly (see WriteCountersCsvHeader).
struct RunCounters {
  std::uint64_t run = 0;
  std::uint32_t path_id = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t il1_accesses = 0;
  std::uint64_t il1_misses = 0;
  std::uint64_t dl1_accesses = 0;
  std::uint64_t dl1_misses = 0;
  std::uint64_t itlb_accesses = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t dtlb_accesses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t fpu_ops = 0;
  std::uint64_t fpu_cycles = 0;
  std::uint64_t prng_words = 0;
  std::uint64_t prng_rejections = 0;
  std::uint64_t sb_stores = 0;
  std::uint64_t sb_full_stalls = 0;
  std::uint64_t sb_stall_cycles = 0;
  std::uint64_t sb_high_water = 0;

  static RunCounters From(std::uint64_t run, std::uint32_t path_id,
                          const sim::RunResult& detail);
};

/// Campaign-level rollup: event counts sum; occupancy high-waters take the
/// max across runs; cycles keep min/max for a quick spread read-out.
struct CounterAggregate {
  std::uint64_t runs = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cycles_min = 0;
  std::uint64_t cycles_max = 0;
  std::uint64_t instructions = 0;
  std::uint64_t il1_accesses = 0;
  std::uint64_t il1_misses = 0;
  std::uint64_t dl1_accesses = 0;
  std::uint64_t dl1_misses = 0;
  std::uint64_t itlb_accesses = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t dtlb_accesses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t fpu_ops = 0;
  std::uint64_t fpu_cycles = 0;
  std::uint64_t prng_words = 0;
  std::uint64_t prng_rejections = 0;
  std::uint64_t sb_stores = 0;
  std::uint64_t sb_full_stalls = 0;
  std::uint64_t sb_stall_cycles = 0;
  std::uint64_t sb_high_water_max = 0;

  void Add(const RunCounters& c);
};

/// Writes the canonical CSV header line (leading `#` comment documents the
/// producing subsystem, then the column row).
void WriteCountersCsvHeader(std::ostream& out);

/// Writes one data row in header order.
void WriteCountersCsvRow(std::ostream& out, const RunCounters& c);

/// Renders the aggregate as one flat JSON object (keys mirror the struct),
/// suitable to sit next to BENCH_*.json artifacts.
std::string RenderAggregateJson(const CounterAggregate& a);

}  // namespace spta::obs
