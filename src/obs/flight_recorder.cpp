#include "obs/flight_recorder.hpp"

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace spta::obs {

namespace {

std::atomic<FlightRecorder*> g_flight{nullptr};

/// Copies a C string into a fixed ring field, truncating, always
/// NUL-terminated.
template <std::size_t N>
void CopyField(char (&dst)[N], const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < N && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

std::uint32_t PayloadChecksum(const unsigned char* payload, std::size_t len) {
  const DualHash digest = HashBytes(
      std::string_view(reinterpret_cast<const char*>(payload), len));
  return static_cast<std::uint32_t>(digest.lo ^ (digest.lo >> 32));
}

/// JSON string escape for post-crash ring fields: the payload passed a
/// checksum, but its bytes are still whatever the dead process wrote.
void AppendJsonString(std::string* out, const char* s, std::size_t max_len) {
  out->push_back('"');
  for (std::size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      out->append("\\\"");
    } else if (c == '\\') {
      out->append("\\\\");
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
  out->push_back('"');
}

void AppendMicros(std::string* out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}

void AppendHexId(std::string* out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":\"%016" PRIx64 "\"", key, value);
  out->append(buf);
}

}  // namespace

/// The ring header. Lives at offset 0 of the shared mapping; `cursor`
/// counts records ever claimed (slot index = cursor % slot_count) and is
/// the only mutable field — bumped with std::atomic_ref so concurrent
/// recording threads in the child never hand out the same claim.
struct RingHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t slot_size;
  std::uint64_t slot_count;
  std::uint64_t writer_pid;
  std::uint64_t cursor;
  std::uint64_t reserved[3];
};
static_assert(sizeof(RingHeader) == FlightRecorder::kHeaderSize,
              "ring header layout is part of the harvest contract");
static_assert(sizeof(FlightRecord) + 8 <= FlightRecorder::kSlotSize,
              "FlightRecord must fit a slot after the length+checksum");

int FlightRecorder::CreateRingFd(std::size_t slots, std::string* error) {
  if (slots == 0) slots = 1;
  // No MFD_CLOEXEC: the fd must survive execv into the service child.
  const int fd = ::memfd_create("spta-flight", 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("memfd_create: ") + std::strerror(errno);
    }
    return -1;
  }
  if (::ftruncate(fd, static_cast<off_t>(RingBytes(slots))) != 0) {
    if (error != nullptr) {
      *error = std::string("ftruncate: ") + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  // Stamp the header at creation so a child that dies before
  // AttachWriter (exec failure, SIGKILL during startup) still harvests
  // as a valid-but-empty ring. AttachWriter re-stamps writer_pid.
  void* base = ::mmap(nullptr, RingBytes(slots), PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = std::string("mmap flight ring: ") + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  auto* header = static_cast<RingHeader*>(base);
  header->magic = kMagic;
  header->version = kVersion;
  header->slot_size = static_cast<std::uint32_t>(kSlotSize);
  header->slot_count = slots;
  header->writer_pid = 0;
  header->cursor = 0;
  ::munmap(base, RingBytes(slots));
  return fd;
}

bool FlightRecorder::AttachWriter(int fd, std::string* error) {
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < RingBytes(1)) {
    if (error != nullptr) *error = "flight ring fd: bad size";
    return false;
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  const std::uint64_t slots = (bytes - kHeaderSize) / kSlotSize;
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) {
      *error = std::string("mmap flight ring: ") + std::strerror(errno);
    }
    return false;
  }
  auto* header = static_cast<RingHeader*>(base);
  header->magic = kMagic;
  header->version = kVersion;
  header->slot_size = static_cast<std::uint32_t>(kSlotSize);
  header->slot_count = slots;
  header->writer_pid = static_cast<std::uint64_t>(::getpid());
  std::atomic_ref<std::uint64_t>(header->cursor)
      .store(0, std::memory_order_relaxed);
  base_ = base;
  map_bytes_ = bytes;
  header_ = header;
  slots_ = static_cast<unsigned char*>(base) + kHeaderSize;
  slot_count_ = slots;
  return true;
}

FlightRecorder::~FlightRecorder() {
  if (base_ != nullptr) ::munmap(base_, map_bytes_);
}

void FlightRecorder::RecordEvent(const TraceEvent& event, std::uint32_t tid) {
  if (header_ == nullptr) return;
  FlightRecord record;
  record.ts_ns = event.ts_ns;
  record.dur_ns = event.dur_ns;
  record.trace_id = event.trace_id;
  record.span_id = event.span_id;
  record.parent_id = event.parent_id;
  record.arg_value = event.arg_value;
  record.tid = tid;
  record.phase = event.phase;
  CopyField(record.category, event.category);
  CopyField(record.name, event.name);
  CopyField(record.arg_name, event.arg_name);

  const std::uint64_t claim = std::atomic_ref<std::uint64_t>(header_->cursor)
                                  .fetch_add(1, std::memory_order_acq_rel);
  unsigned char* slot = slots_ + (claim % slot_count_) * kSlotSize;
  auto* len_field = reinterpret_cast<std::uint32_t*>(slot);
  auto* sum_field = reinterpret_cast<std::uint32_t*>(slot + 4);
  unsigned char* payload = slot + 8;
  // Invalidate, then payload, then checksum, then length: a writer
  // killed anywhere in this sequence leaves a slot the harvester can
  // only reject (length 0, or checksum over half-written payload).
  *len_field = 0;
  std::memcpy(payload, &record, sizeof record);
  *sum_field = PayloadChecksum(payload, sizeof record);
  *len_field = static_cast<std::uint32_t>(sizeof record);
}

void FlightRecorder::RecordMetric(const char* name, std::uint64_t value) {
  if (header_ == nullptr) return;
  TraceEvent e;
  e.category = "metric";
  e.name = name;
  e.arg_name = "value";
  e.arg_value = value;
  e.ts_ns = Tracer::NowNs();
  e.dur_ns = 0;
  e.phase = 'i';
  RecordEvent(e, 0);
}

FlightRecorder::Harvest FlightRecorder::HarvestFd(int fd) {
  Harvest harvest;
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kHeaderSize) {
    return harvest;
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) return harvest;

  const auto* header = static_cast<const RingHeader*>(base);
  // Validate geometry against the actual file size, not the header's
  // word: a corrupt slot_count must not walk the map out of bounds.
  const std::uint64_t mappable = (bytes - kHeaderSize) / kSlotSize;
  if (header->magic != kMagic || header->version != kVersion ||
      header->slot_size != kSlotSize || header->slot_count == 0 ||
      header->slot_count > mappable) {
    ::munmap(base, bytes);
    return harvest;
  }
  harvest.valid = true;
  harvest.writer_pid = header->writer_pid;
  const std::uint64_t slot_count = header->slot_count;
  const std::uint64_t claimed =
      std::atomic_ref<const std::uint64_t>(header->cursor)
          .load(std::memory_order_acquire);
  harvest.claimed = claimed;
  const unsigned char* slots =
      static_cast<const unsigned char*>(base) + kHeaderSize;

  // Oldest surviving record first. A cursor beyond slot_count means the
  // ring wrapped; everything older was overwritten by design.
  const std::uint64_t first = claimed > slot_count ? claimed - slot_count : 0;
  const std::uint64_t scanned =
      claimed > slot_count ? slot_count : claimed;
  harvest.records.reserve(static_cast<std::size_t>(scanned));
  for (std::uint64_t i = first; i < claimed; ++i) {
    const unsigned char* slot = slots + (i % slot_count) * kSlotSize;
    std::uint32_t len = 0;
    std::uint32_t sum = 0;
    std::memcpy(&len, slot, 4);
    std::memcpy(&sum, slot + 4, 4);
    if (len != sizeof(FlightRecord) ||
        PayloadChecksum(slot + 8, len) != sum) {
      ++harvest.torn;
      continue;
    }
    FlightRecord record;
    std::memcpy(&record, slot + 8, sizeof record);
    harvest.records.push_back(record);
  }
  ::munmap(base, bytes);
  return harvest;
}

std::string FlightRecorder::HarvestToChromeJson(const Harvest& harvest) {
  std::string out;
  out.reserve(256 + harvest.records.size() * 200);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const FlightRecord& r : harvest.records) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, r.name, sizeof r.name);
    out.append(",\"cat\":");
    AppendJsonString(&out, r.category[0] == '\0' ? "default" : r.category,
                     sizeof r.category);
    out.append(",\"ph\":\"");
    out.push_back(r.phase == 'X' ? 'X' : 'i');
    out.append("\",\"ts\":");
    AppendMicros(&out, r.ts_ns);
    if (r.phase == 'X') {
      out.append(",\"dur\":");
      AppendMicros(&out, r.dur_ns);
    } else {
      out.append(",\"s\":\"t\"");
    }
    char ids[64];
    std::snprintf(ids, sizeof ids, ",\"pid\":%" PRIu64 ",\"tid\":%u",
                  harvest.writer_pid, r.tid);
    out.append(ids);
    const bool has_arg = r.arg_name[0] != '\0';
    if (has_arg || r.trace_id != 0) {
      out.append(",\"args\":{");
      bool inner_first = true;
      if (has_arg) {
        AppendJsonString(&out, r.arg_name, sizeof r.arg_name);
        char value[32];
        std::snprintf(value, sizeof value, ":%" PRIu64, r.arg_value);
        out.append(value);
        inner_first = false;
      }
      if (r.trace_id != 0) {
        if (inner_first) {
          char id[40];
          std::snprintf(id, sizeof id, "\"trace_id\":\"%016" PRIx64 "\"",
                        r.trace_id);
          out.append(id);
        } else {
          AppendHexId(&out, "trace_id", r.trace_id);
        }
        AppendHexId(&out, "span_id", r.span_id);
        AppendHexId(&out, "parent_span_id", r.parent_id);
      }
      out.append("}");
    }
    out.append("}");
  }
  char summary[192];
  std::snprintf(summary, sizeof summary,
                "\n],\"displayTimeUnit\":\"ms\",\"flightRecorder\":{"
                "\"valid\":%s,\"writer_pid\":%" PRIu64
                ",\"claimed\":%" PRIu64 ",\"recovered\":%zu,\"torn\":%" PRIu64
                "}}\n",
                harvest.valid ? "true" : "false", harvest.writer_pid,
                harvest.claimed, harvest.records.size(), harvest.torn);
  out.append(summary);
  return out;
}

bool FlightRecorder::DumpFd(int fd, const std::string& path,
                            std::string* error) {
  const Harvest harvest = HarvestFd(fd);
  return AtomicWriteFile(path, HarvestToChromeJson(harvest), error);
}

FlightRecorder* GlobalFlightRecorder() {
  return g_flight.load(std::memory_order_acquire);
}

void SetGlobalFlightRecorder(FlightRecorder* recorder) {
  g_flight.store(recorder, std::memory_order_release);
}

void FlightRecordEvent(const TraceEvent& event, std::uint32_t tid) {
  FlightRecorder* recorder = g_flight.load(std::memory_order_acquire);
  if (recorder != nullptr) recorder->RecordEvent(event, tid);
}

}  // namespace spta::obs
