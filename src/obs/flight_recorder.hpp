// Crash-surviving flight recorder: a bounded shared-memory ring of the
// most recent spans, instants, and metric snapshots, written lock-free
// by a service child and harvested by the fleet supervisor *after* the
// child dies — including SIGKILL, where the child gets no chance to
// flush anything itself.
//
// Mechanics: the supervisor creates an anonymous memfd sized for the
// ring and passes it across fork+execv as `--flight-fd N` (the same
// inheritance pattern as the watchdog's `--health-fd`). Both sides mmap
// the same pages MAP_SHARED, so every byte the child wrote before the
// fatal signal is still there when the supervisor maps it post-mortem.
//
// Ring layout (one file = one child incarnation):
//
//   [RingHeader: magic, version, slot geometry, writer pid, cursor]
//   [slot 0][slot 1] ... [slot N-1]
//
// Each slot is fixed-size: a 4-byte payload length, a 4-byte checksum
// (common/hash HashBytes, truncated), then the FlightRecord payload.
// Writers claim a slot with an atomic fetch-add on the header cursor
// (total records ever claimed; slot = claim % N) and write payload
// before checksum before length. A writer killed mid-slot therefore
// leaves a record whose checksum cannot match — the harvester validates
// length + checksum per slot, **skips and counts** torn records, and
// never aborts: losing one record to a crash is the design, losing the
// supervisor to a corrupt ring would be a bug (pinned by the seeded
// torn-write test in tests/obs_test.cpp).
//
// The writer side piggybacks on the tracer: every event recorded by
// obs::Tracer is mirrored into the global flight recorder when one is
// attached (see FlightRecordEvent), so the ring always holds the last N
// spans without separate instrumentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spta::obs {

struct TraceEvent;

/// One ring record. Plain bytes only — the ring is shared memory, so
/// strings are copied into fixed fields (truncated if longer), never
/// stored as pointers.
struct FlightRecord {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t arg_value = 0;
  std::uint32_t tid = 0;
  char phase = 'X';  ///< 'X' span, 'i' instant (metric snapshots are
                     ///< instants in category "metric").
  char category[23] = {};
  char name[40] = {};
  char arg_name[16] = {};
};

class FlightRecorder {
 public:
  static constexpr std::uint64_t kMagic = 0x31305246'41545053ULL;  // "SPTAFR01"
  static constexpr std::uint32_t kVersion = 1;
  /// 4-byte length + 4-byte checksum + payload, padded for alignment.
  static constexpr std::size_t kSlotSize = 160;
  static constexpr std::size_t kHeaderSize = 64;
  static constexpr std::size_t kDefaultSlots = 1024;

  /// Total ring file size for `slots` records.
  static std::size_t RingBytes(std::size_t slots) {
    return kHeaderSize + slots * kSlotSize;
  }

  /// Creates and sizes the memfd backing one ring (no close-on-exec, so
  /// it survives execv into the child). Returns -1 and fills `error` on
  /// failure.
  static int CreateRingFd(std::size_t slots, std::string* error);

  /// Writer side: maps `fd` and initializes the header (this process
  /// becomes the ring's writer). The fd itself stays owned by the
  /// caller. Returns false (and leaves the recorder detached) on a
  /// mapping/geometry failure — recording then no-ops.
  bool AttachWriter(int fd, std::string* error);

  bool attached() const { return header_ != nullptr; }

  /// Mirrors one tracer event into the ring. Lock-free; safe from any
  /// thread. No-op when detached.
  void RecordEvent(const TraceEvent& event, std::uint32_t tid);

  /// Records a metric snapshot (an instant in category "metric" with
  /// arg "value"). No-op when detached.
  void RecordMetric(const char* name, std::uint64_t value);

  ~FlightRecorder();

  /// What a post-mortem read of a ring recovered.
  struct Harvest {
    bool valid = false;  ///< Header magic/version/geometry checked out.
    std::uint64_t writer_pid = 0;
    std::uint64_t claimed = 0;  ///< Records ever claimed by the writer.
    std::uint64_t torn = 0;     ///< Slots skipped: bad length or checksum.
    std::vector<FlightRecord> records;  ///< Oldest first.
  };

  /// Reads a ring fd post-mortem. Tolerates any corruption — a garbage
  /// header yields valid=false, torn slots are skipped and counted —
  /// and never throws: the supervisor must survive whatever the dead
  /// child left behind.
  static Harvest HarvestFd(int fd);

  /// Renders a harvest as Chrome trace_event JSON (same schema as
  /// Tracer::WriteChromeTrace, with the writer's pid on every event and
  /// a harvest summary in metadata).
  static std::string HarvestToChromeJson(const Harvest& harvest);

  /// Harvests `fd` and writes the Chrome JSON dump atomically to
  /// `path`. Returns false and fills `error` on write failure (an
  /// invalid/empty ring still dumps — the summary says so).
  static bool DumpFd(int fd, const std::string& path, std::string* error);

 private:
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  struct RingHeader* header_ = nullptr;
  unsigned char* slots_ = nullptr;
  std::uint64_t slot_count_ = 0;
};

/// Process-global recorder the tracer mirrors into (nullptr = none).
FlightRecorder* GlobalFlightRecorder();
void SetGlobalFlightRecorder(FlightRecorder* recorder);

/// Tracer → flight recorder bridge: mirrors `event` into the global
/// recorder if one is attached. Called on every recorded event.
void FlightRecordEvent(const TraceEvent& event, std::uint32_t tid);

}  // namespace spta::obs
