#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace spta::obs {

void PromText::AppendNumber(double value) {
  if (std::isnan(value)) {
    out_ += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out_ += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  // Integral values print without an exponent or trailing zeros (counters
  // are integers in practice); everything else gets shortest-round-trip.
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out_ += buf;
}

void PromText::Declare(std::string_view name, std::string_view type,
                       std::string_view help) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PromText::Sample(std::string_view name, double value) {
  out_ += name;
  out_ += ' ';
  AppendNumber(value);
  out_ += '\n';
}

void PromText::Sample(std::string_view name, std::string_view labels,
                      double value) {
  out_ += name;
  out_ += '{';
  out_ += labels;
  out_ += "} ";
  AppendNumber(value);
  out_ += '\n';
}

void PromText::HistogramSeries(std::string_view name,
                               std::string_view labels, const Histogram& h,
                               double scale, double sum) {
  const std::string bucket = std::string(name) + "_bucket";
  const std::string prefix = labels.empty()
                                 ? std::string()
                                 : std::string(labels) + ",";
  // Cumulative finite buckets. Histogram::Add clamps values >= hi into the
  // last bin (and counts them in overflow()), but those observations exceed
  // the last finite edge — exclude them there and let +Inf pick them up.
  std::uint64_t cumulative = 0;
  for (std::size_t bin = 0; bin < h.bin_count(); ++bin) {
    cumulative += h.count(bin);
    std::uint64_t le_count = cumulative;
    if (bin + 1 == h.bin_count()) le_count -= h.overflow();
    char le[64];
    std::snprintf(le, sizeof le, "%.9g", h.bin_hi(bin) * scale);
    out_ += bucket;
    out_ += '{';
    out_ += prefix;
    out_ += "le=\"";
    out_ += le;
    out_ += "\"} ";
    AppendNumber(static_cast<double>(le_count));
    out_ += '\n';
  }
  out_ += bucket;
  out_ += '{';
  out_ += prefix;
  out_ += "le=\"+Inf\"} ";
  AppendNumber(static_cast<double>(h.total()));
  out_ += '\n';

  out_ += name;
  out_ += "_count";
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  AppendNumber(static_cast<double>(h.total()));
  out_ += '\n';

  out_ += name;
  out_ += "_sum";
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  AppendNumber(sum);
  out_ += '\n';
}

void PromText::Exemplar(std::uint64_t trace_id, double value) {
  if (trace_id == 0) return;
  char buf[64];
  std::snprintf(buf, sizeof buf, "# {trace_id=\"%016" PRIx64 "\"} ",
                trace_id);
  out_ += buf;
  AppendNumber(value);
  out_ += '\n';
}

}  // namespace spta::obs
