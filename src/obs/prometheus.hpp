// Prometheus text exposition format (version 0.0.4) renderer.
//
// A tiny append-only builder: each metric is declared once with # HELP and
// # TYPE lines, then one or more samples follow. Histograms render the
// cumulative `_bucket{le="..."}` series plus `_count`/`_sum` from the
// repo's fixed-bin spta::Histogram — values clamped into the last bin by
// Histogram::Add are excluded from finite buckets (they exceed the edge)
// and re-appear in `+Inf`, so every bucket honors the le invariant.
//
// The format contract (metric names, types, label sets) is documented in
// docs/OBSERVABILITY.md and pinned by tests; scrapers can rely on it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/histogram.hpp"

namespace spta::obs {

class PromText {
 public:
  /// Declares a metric: emits `# HELP name help` and `# TYPE name type`.
  /// Call once per metric name, before its samples.
  void Declare(std::string_view name, std::string_view type,
               std::string_view help);

  /// Emits `name value`.
  void Sample(std::string_view name, double value);

  /// Emits `name{labels} value`; `labels` is the raw inner text, e.g.
  /// `verb="PING"` or `cache="hit"`.
  void Sample(std::string_view name, std::string_view labels, double value);

  /// Emits the histogram series for a declared `histogram` metric:
  /// `name_bucket{le="..."}` (cumulative, +Inf last), `name_count` and
  /// `name_sum`. Bin edges are scaled by `scale` (e.g. 1e-6 to turn
  /// microsecond bins into seconds); `sum` is already in target units.
  /// `labels` (may be empty) is merged before the `le` label.
  void HistogramSeries(std::string_view name, std::string_view labels,
                       const Histogram& h, double scale, double sum);

  /// Emits a trace-linked exemplar comment line:
  ///   # {trace_id="<16hex>"} value
  /// Classic text-format scrapers treat `#` lines as comments, so the
  /// exemplar is invisible to them; trace-aware consumers can join the
  /// preceding histogram to the distributed trace that produced its most
  /// recent observation. No-op when trace_id is 0 (no traced request has
  /// hit the series yet).
  void Exemplar(std::uint64_t trace_id, double value);

  const std::string& str() const { return out_; }

 private:
  void AppendNumber(double value);
  std::string out_;
};

}  // namespace spta::obs
