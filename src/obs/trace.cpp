#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "obs/flight_recorder.hpp"

namespace spta::obs {

std::atomic<bool> Tracer::enabled_{false};

Tracer& Tracer::Instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::NowNs() {
  // Raw CLOCK_MONOTONIC, shared by every process on the host, so traces
  // from the client, supervisor, and shards land on one timeline when
  // merged; steady_clock so suspend/adjtime never move recorded
  // timestamps.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::Enable(std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
  }
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  thread_local std::uint64_t local_generation = 0;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (local == nullptr || local_generation != generation) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    local = std::make_shared<ThreadBuffer>(capacity_, next_tid_++);
    buffers_.push_back(local);
    // Re-read under the lock: a Clear() racing the unlocked load above
    // lands this buffer in the post-Clear registry, which is the
    // generation it must adopt.
    local_generation = generation_.load(std::memory_order_relaxed);
  }
  return local.get();
}

void Tracer::RecordComplete(const char* category, const char* name,
                            std::uint64_t start_ns, std::uint64_t end_ns,
                            const char* arg_name, std::uint64_t arg_value) {
  const TraceContext ctx = CurrentTraceContext();
  RecordCompleteIds(category, name, start_ns, end_ns, arg_name, arg_value,
                    ctx.trace_id, ctx.valid() ? MintSpanId() : 0,
                    ctx.span_id);
}

void Tracer::RecordCompleteIds(const char* category, const char* name,
                               std::uint64_t start_ns, std::uint64_t end_ns,
                               const char* arg_name, std::uint64_t arg_value,
                               std::uint64_t trace_id, std::uint64_t span_id,
                               std::uint64_t parent_id) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_id = parent_id;
  e.phase = 'X';
  ThreadBuffer* buffer = LocalBuffer();
  buffer->Push(e);
  FlightRecordEvent(e, buffer->tid);
}

void Tracer::RecordInstant(const char* category, const char* name,
                           const char* arg_name, std::uint64_t arg_value) {
  const TraceContext ctx = CurrentTraceContext();
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_ns = NowNs();
  e.dur_ns = 0;
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.valid() ? MintSpanId() : 0;
  e.parent_id = ctx.span_id;
  e.phase = 'i';
  ThreadBuffer* buffer = LocalBuffer();
  buffer->Push(e);
  FlightRecordEvent(e, buffer->tid);
}

Tracer::Stats Tracer::GetStats() const {
  Stats stats;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  stats.threads = buffers_.size();
  for (const auto& buffer : buffers_) {
    stats.recorded += buffer->count.load(std::memory_order_acquire);
    stats.dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  return stats;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.clear();
  next_tid_ = 0;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

namespace {

/// Escapes a string for a JSON literal. Span names are static literals, so
/// this is belt-and-braces, not a hot path.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

/// Microseconds with nanosecond precision, the unit of trace_event `ts`.
void WriteMicros(std::ostream& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out << buf;
}

/// `,"key":"0123456789abcdef"` — ids render as 16-hex strings, matching
/// the wire token and the Prometheus exemplar format.
void WriteHexIdField(std::ostream& out, const char* key,
                     std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":\"%016" PRIx64 "\"", key, value);
  out << buf;
}

}  // namespace

bool Tracer::WriteChromeTrace(std::ostream& out) const {
  // Snapshot the registry, then read each buffer's published prefix without
  // the lock: `count` is release-published by the producer, so an acquire
  // load here sees fully written events.
  std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    snapshot = buffers_;
  }
  const long pid = static_cast<long>(::getpid());
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : snapshot) {
    const std::uint64_t n = buffer->count.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer->events[i];
      out << (first ? "\n" : ",\n");
      first = false;
      out << "{\"name\":";
      WriteJsonString(out, e.name);
      out << ",\"cat\":";
      WriteJsonString(out, e.category == nullptr ? "default" : e.category);
      out << ",\"ph\":\"" << e.phase << "\",\"ts\":";
      WriteMicros(out, e.ts_ns);
      if (e.phase == 'X') {
        out << ",\"dur\":";
        WriteMicros(out, e.dur_ns);
      } else {
        // Perfetto wants a scope on instants; "t" = thread-scoped.
        out << ",\"s\":\"t\"";
      }
      out << ",\"pid\":" << pid << ",\"tid\":" << buffer->tid;
      if (e.arg_name != nullptr) {
        out << ",\"args\":{";
        WriteJsonString(out, e.arg_name);
        out << ":" << e.arg_value;
        // Untraced events keep the exact one-key args object older
        // tooling (and tests) pin; traced events append their ids.
        if (e.trace_id != 0) {
          WriteHexIdField(out, "trace_id", e.trace_id);
          WriteHexIdField(out, "span_id", e.span_id);
          WriteHexIdField(out, "parent_span_id", e.parent_id);
        }
        out << "}";
      } else if (e.trace_id != 0) {
        out << ",\"args\":{\"trace_id\":\"";
        char buf[24];
        std::snprintf(buf, sizeof buf, "%016" PRIx64, e.trace_id);
        out << buf << "\"";
        WriteHexIdField(out, "span_id", e.span_id);
        WriteHexIdField(out, "parent_span_id", e.parent_id);
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return static_cast<bool>(out);
}

bool Tracer::WriteChromeTraceFile(const std::string& path,
                                  std::string* error) const {
  std::ostringstream buffer;
  if (!WriteChromeTrace(buffer)) {
    if (error != nullptr) *error = path + ": trace serialization failed";
    return false;
  }
  return AtomicWriteFile(path, buffer.str(), error);
}

}  // namespace spta::obs
