// Deterministic-safe trace spans: zero-cost-when-disabled instrumentation
// for the sim → analysis → service pipeline.
//
// Design constraints, in order:
//   1. The measurement fast path must not pay for observability it did not
//      ask for. The macros below compile to a single relaxed atomic load
//      plus a predicted-not-taken branch when tracing is runtime-disabled,
//      and to nothing at all when SPTA_OBS_TRACING is defined to 0.
//   2. Recording must never perturb determinism. Spans carry wall-clock
//      timestamps only; no simulator state, PRNG stream or sample value is
//      read or written. Bit-identity of cycles/misses/pWCET is therefore
//      structurally guaranteed (and re-checked by the A/B gate in
//      bench/micro_sim_hotpath).
//   3. Recording must be safe from ThreadPool workers without locks. Each
//      thread owns a bounded single-producer buffer; the exporter reads the
//      published prefix (acquire on the event count) from any thread. A
//      full buffer drops new events and counts the drops — it never tears
//      or overwrites events already published.
//
// Exported traces use the Chrome trace_event JSON format ("X" complete
// events, microsecond timestamps), loadable in Perfetto (ui.perfetto.dev)
// and chrome://tracing. See docs/OBSERVABILITY.md for the span taxonomy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace_context.hpp"

// Compile-time gate: building with -DSPTA_OBS_TRACING=0 (CMake option
// SPTA_OBS_TRACING=OFF) removes every span macro from the binary.
#ifndef SPTA_OBS_TRACING
#define SPTA_OBS_TRACING 1
#endif

namespace spta::obs {

/// One recorded span or instant. Name/category/argument-name pointers must
/// be string literals (or otherwise outlive the tracer): events store the
/// pointers, not copies, so recording never allocates.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< nullptr = no argument.
  std::uint64_t arg_value = 0;
  std::uint64_t ts_ns = 0;   ///< Start, nanoseconds since the tracer epoch.
  std::uint64_t dur_ns = 0;  ///< 0 for instants.
  std::uint64_t trace_id = 0;   ///< Distributed trace id; 0 = untraced.
  std::uint64_t span_id = 0;    ///< This span's id (0 when untraced).
  std::uint64_t parent_id = 0;  ///< Parent span id; 0 = trace root.
  char phase = 'X';          ///< 'X' complete span, 'i' instant.
};

/// Process-wide trace collector. All methods are safe to call from any
/// thread; recording is lock-free (the registry mutex is taken only the
/// first time a thread records after Enable/Clear).
class Tracer {
 public:
  /// Events retained per recording thread; beyond this, events are dropped
  /// and counted. 64Ki events ≈ 3 MiB per thread.
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  static Tracer& Instance();

  /// Starts collection with `capacity` events per thread. Idempotent while
  /// enabled (capacity changes apply to buffers created afterwards).
  void Enable(std::size_t capacity = kDefaultCapacity);

  /// Stops collection. Already-recorded events remain exportable.
  void Disable();

  /// The runtime gate the macros check. Relaxed: a span racing Enable() may
  /// be missed, never torn.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds (CLOCK_MONOTONIC epoch, not process start), so
  /// traces recorded by different processes on one host share a timeline
  /// and merge into a single causally-ordered view.
  static std::uint64_t NowNs();

  /// Records a completed span with explicit endpoints — for spans whose
  /// start and end live on different threads (e.g. service queue wait).
  /// If the calling thread carries a trace context, the event becomes a
  /// leaf of it: a fresh span id is minted, parent = the context's span.
  void RecordComplete(const char* category, const char* name,
                      std::uint64_t start_ns, std::uint64_t end_ns,
                      const char* arg_name = nullptr,
                      std::uint64_t arg_value = 0);

  /// RecordComplete with explicit trace/span/parent ids — used by
  /// ScopedSpan, which must pre-mint its id so nested children can link
  /// to it while it is still open. Pass trace_id 0 for untraced.
  void RecordCompleteIds(const char* category, const char* name,
                         std::uint64_t start_ns, std::uint64_t end_ns,
                         const char* arg_name, std::uint64_t arg_value,
                         std::uint64_t trace_id, std::uint64_t span_id,
                         std::uint64_t parent_id);

  /// Records a zero-duration instant event (leaf of the current trace
  /// context, like RecordComplete).
  void RecordInstant(const char* category, const char* name,
                     const char* arg_name = nullptr,
                     std::uint64_t arg_value = 0);

  struct Stats {
    std::uint64_t recorded = 0;  ///< Events retained in buffers.
    std::uint64_t dropped = 0;   ///< Events rejected by full buffers.
    std::uint64_t threads = 0;   ///< Distinct recording threads seen.
  };
  Stats GetStats() const;

  /// Forgets all recorded events and registered buffers. Threads holding a
  /// stale buffer keep writing into their (orphaned, never-exported) buffer
  /// until their next record call re-registers, so Clear is safe to call
  /// while producers run — but events raced this way are lost by design.
  void Clear();

  /// Writes all published events as Chrome trace_event JSON. Safe to call
  /// while producers are recording: only the published prefix of each
  /// buffer is read. Returns false on stream failure.
  bool WriteChromeTrace(std::ostream& out) const;

  /// Atomic file flavor (tmp + fsync + rename, common/atomic_file).
  bool WriteChromeTraceFile(const std::string& path, std::string* error) const;

 private:
  /// Bounded single-producer event buffer owned by one recording thread.
  /// The owner writes events[count] then publishes with a release store of
  /// count+1; readers acquire `count` and see fully-written events only.
  struct ThreadBuffer {
    ThreadBuffer(std::size_t capacity, std::uint32_t tid_arg)
        : events(capacity), tid(tid_arg) {}
    std::vector<TraceEvent> events;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;

    void Push(const TraceEvent& e) {
      const std::uint64_t n = count.load(std::memory_order_relaxed);
      if (n >= events.size()) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      events[n] = e;
      count.store(n + 1, std::memory_order_release);
    }
  };

  Tracer() = default;
  ThreadBuffer* LocalBuffer();

  static std::atomic<bool> enabled_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  /// Bumped by Clear(); threads re-register when their cached generation
  /// goes stale.
  std::atomic<std::uint64_t> generation_{1};
  std::uint32_t next_tid_ = 0;
};

/// RAII span: captures the start time at construction if tracing is enabled
/// and records a complete event at destruction. The enabled check is taken
/// once, at construction — a span straddling Disable() still records (into
/// a buffer that remains exportable), one straddling Enable() does not.
///
/// If the constructing thread carries a trace context, the span joins the
/// distributed tree: it mints its own span id, records the context's span
/// as its parent, and installs itself as the thread's current context for
/// its lifetime — so nested spans (and leaf RecordComplete/RecordInstant
/// calls) link to it automatically.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg_value = 0)
      : category_(category),
        name_(name),
        arg_name_(arg_name),
        arg_value_(arg_value),
        active_(Tracer::Enabled()),
        start_ns_(active_ ? Tracer::NowNs() : 0) {
    if (active_) {
      const TraceContext current = CurrentTraceContext();
      if (current.valid()) {
        parent_id_ = current.span_id;
        ctx_.trace_id = current.trace_id;
        ctx_.span_id = MintSpanId();
        prev_ = ExchangeTraceContext(ctx_);
        pushed_ = true;
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      Tracer::Instance().RecordCompleteIds(category_, name_, start_ns_,
                                           Tracer::NowNs(), arg_name_,
                                           arg_value_, ctx_.trace_id,
                                           ctx_.span_id, parent_id_);
      if (pushed_) ExchangeTraceContext(prev_);
    }
  }

  /// The span's own id (0 when untraced) — lets call sites stamp the id
  /// into exemplars or outgoing wire contexts while the span is open.
  std::uint64_t span_id() const { return ctx_.span_id; }

 private:
  const char* category_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t arg_value_;
  bool active_;
  std::uint64_t start_ns_;
  TraceContext ctx_;   ///< trace_id/span_id of this span when traced.
  TraceContext prev_;  ///< context to restore when pushed_.
  std::uint64_t parent_id_ = 0;
  bool pushed_ = false;
};

}  // namespace spta::obs

#if SPTA_OBS_TRACING
#define SPTA_OBS_CONCAT_IMPL(a, b) a##b
#define SPTA_OBS_CONCAT(a, b) SPTA_OBS_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block.
#define SPTA_OBS_SPAN(category, name) \
  ::spta::obs::ScopedSpan SPTA_OBS_CONCAT(spta_obs_span_, __LINE__)( \
      category, name)
/// Scoped span with one integer argument (shown in the Perfetto args pane).
#define SPTA_OBS_SPAN_ARG(category, name, arg_name, arg_value)       \
  ::spta::obs::ScopedSpan SPTA_OBS_CONCAT(spta_obs_span_, __LINE__)( \
      category, name, arg_name,                                      \
      static_cast<std::uint64_t>(arg_value))
/// Zero-duration marker.
#define SPTA_OBS_INSTANT(category, name)                            \
  do {                                                              \
    if (::spta::obs::Tracer::Enabled()) {                           \
      ::spta::obs::Tracer::Instance().RecordInstant(category, name); \
    }                                                               \
  } while (false)
#else
#define SPTA_OBS_SPAN(category, name) \
  do {                                \
  } while (false)
#define SPTA_OBS_SPAN_ARG(category, name, arg_name, arg_value) \
  do {                                                         \
  } while (false)
#define SPTA_OBS_INSTANT(category, name) \
  do {                                   \
  } while (false)
#endif
