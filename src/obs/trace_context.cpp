#include "obs/trace_context.hpp"

#include <atomic>
#include <chrono>

#include <unistd.h>

#include "common/hash.hpp"

namespace spta::obs {
namespace {

thread_local TraceContext t_current;

std::uint64_t MintId() {
  static std::atomic<std::uint64_t> counter{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  std::uint64_t id = 0;
  // Loop so a pathological Mix64 collision with 0 cannot mint the
  // reserved "absent" id.
  while (id == 0) {
    std::uint64_t seed = HashCombine(
        static_cast<std::uint64_t>(::getpid()),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count()));
    id = Mix64(HashCombine(seed, counter.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  return id;
}

bool ParseHex16(std::string_view text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;  // uppercase and everything else: lenient reject
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

void AppendHex16(std::uint64_t value, std::string* out) {
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kDigits[(value >> shift) & 0xF]);
  }
}

}  // namespace

std::string EncodeTraceContext(const TraceContext& ctx) {
  if (!ctx.valid()) return std::string();
  std::string out;
  out.reserve(33);
  AppendHex16(ctx.trace_id, &out);
  out.push_back('-');
  AppendHex16(ctx.span_id, &out);
  return out;
}

TraceContext ParseTraceContext(std::string_view value) {
  TraceContext ctx;
  if (value.size() != 33 || value[16] != '-') return ctx;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  if (!ParseHex16(value.substr(0, 16), &trace_id)) return ctx;
  if (!ParseHex16(value.substr(17, 16), &span_id)) return ctx;
  if (trace_id == 0) return ctx;  // zero trace id is "absent" by definition
  ctx.trace_id = trace_id;
  ctx.span_id = span_id;
  return ctx;
}

TraceContext MintTraceContext() {
  TraceContext ctx;
  ctx.trace_id = MintId();
  ctx.span_id = 0;
  return ctx;
}

std::uint64_t MintSpanId() { return MintId(); }

TraceContext CurrentTraceContext() { return t_current; }

TraceContext ExchangeTraceContext(const TraceContext& ctx) {
  TraceContext prev = t_current;
  t_current = ctx;
  return prev;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(t_current) {
  t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = prev_; }

}  // namespace spta::obs
