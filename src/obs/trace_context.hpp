// Cross-process trace-context propagation.
//
// A TraceContext is a (trace_id, span_id) pair: trace_id names one
// causally-linked request tree across every process it touches, span_id
// names the node that is currently "the parent" — a child span records
// span_id as its parent and substitutes its own id for nested work.
//
// The context travels two ways:
//
//  * **on the wire** as an optional fourth token of the spta1 frame
//    header (`trace=<16hex>-<16hex>`). Absent ⇒ the frame is
//    byte-identical to the pre-tracing format, so old clients and
//    servers interoperate; malformed values are treated as absent,
//    never as a protocol error (fuzzed by protocol_robustness_test).
//  * **in-process** via a thread-local current context that
//    `ScopedTraceContext` installs and `obs::ScopedSpan` consults, so
//    span trees link up without threading ids through every call site.
//    Cross-thread hops (event loop → shard worker, reader → pool
//    worker) carry the context explicitly and re-install it.
//
// Ids are minted from the common Mix64 hash over process entropy
// (pid, monotonic time, a per-process counter) — unique enough to
// correlate traces, with zero reserved as "absent".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace spta::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no context.
  std::uint64_t span_id = 0;   ///< parent for spans recorded under this
                               ///< context; 0 = root of the trace.

  bool valid() const { return trace_id != 0; }
};

/// Renders `ctx` as the wire token value `<16hex>-<16hex>`
/// (trace_id-span_id, lowercase, zero-padded). Returns "" for an
/// invalid context.
std::string EncodeTraceContext(const TraceContext& ctx);

/// Parses a wire token value produced by EncodeTraceContext. Lenient by
/// contract: any deviation — wrong length, bad separator, non-hex
/// digits, trailing garbage, a zero trace id — yields an invalid
/// (absent) context. Never throws, never signals an error.
TraceContext ParseTraceContext(std::string_view value);

/// Mints a fresh root context: a new trace id with span_id = 0 (the
/// first span recorded under it becomes the root of the tree).
TraceContext MintTraceContext();

/// Mints a fresh span id (never 0).
std::uint64_t MintSpanId();

/// The calling thread's current context ({} when none installed).
TraceContext CurrentTraceContext();

/// Installs `ctx` as the thread's current context and returns the
/// previous one. Prefer ScopedTraceContext; this raw form exists for
/// ScopedSpan, which must interleave the swap with event recording.
TraceContext ExchangeTraceContext(const TraceContext& ctx);

/// RAII install/restore of the thread-local current context. Install an
/// invalid context to explicitly clear it for a scope.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace spta::obs
