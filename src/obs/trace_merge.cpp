#include "obs/trace_merge.hpp"

#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"

namespace spta::obs {

namespace {

bool IsJsonWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

std::string ExtractTraceEvents(const std::string& doc) {
  const std::size_t key = doc.find("\"traceEvents\"");
  if (key == std::string::npos) return "";
  const std::size_t open = doc.find('[', key);
  if (open == std::string::npos) return "";
  // The array body ends at the bracket matching `open`. Events contain no
  // nested arrays (the exporters emit flat objects), but a string value
  // could in principle hold a ']' — track string state so a pathological
  // name cannot truncate the splice.
  std::size_t depth = 1;
  bool in_string = false;
  bool escaped = false;
  std::size_t close = std::string::npos;
  for (std::size_t i = open + 1; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      ++depth;
    } else if (c == ']') {
      if (--depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string::npos) return "";
  std::size_t begin = open + 1;
  std::size_t end = close;
  while (begin < end && IsJsonWs(doc[begin])) ++begin;
  while (end > begin && IsJsonWs(doc[end - 1])) --end;
  return doc.substr(begin, end - begin);
}

std::string MergeChromeTraces(const std::vector<std::string>& docs) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& doc : docs) {
    const std::string events = ExtractTraceEvents(doc);
    if (events.empty()) continue;
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append(events);
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

bool MergeChromeTraceFiles(const std::vector<std::string>& paths,
                           const std::string& out_path, std::size_t* merged,
                           std::string* error) {
  std::vector<std::string> docs;
  std::size_t contributed = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string doc = buffer.str();
    if (!ExtractTraceEvents(doc).empty()) ++contributed;
    docs.push_back(std::move(doc));
  }
  if (merged != nullptr) *merged = contributed;
  return AtomicWriteFile(out_path, MergeChromeTraces(docs), error);
}

}  // namespace spta::obs
