// Merging Chrome trace-event JSON documents into one loadable trace.
//
// Every per-process export in this repo — Tracer::WriteChromeTrace
// (spta_serve --trace-dir, spta_client --trace-out, the TRACE verb) and
// FlightRecorder::HarvestToChromeJson (spta_fleet --flight-dir) — is a
// JSON object whose traceEvents array carries the events. Because the
// distributed trace/span ids travel inside each event's args and the
// timestamps share one absolute CLOCK_MONOTONIC timeline per host,
// stitching a fleet-wide trace is pure concatenation: splice every
// document's traceEvents elements into one array. No JSON parser needed
// — the splice is textual (substring between the array brackets), which
// also keeps the merger safe to run on a harvest dump from a crashed
// writer.
//
// Consumers: spta_fleet --trace-dir (supervisor merges the children's
// exports at exit) and spta_cli trace-view --merge (offline stitching).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spta::obs {

/// Returns the comma-joined traceEvents array body of `doc` ("" when the
/// document has no traceEvents array or it is empty). Tolerates
/// arbitrary garbage input — worst case is an empty result.
std::string ExtractTraceEvents(const std::string& doc);

/// Splices the traceEvents of every document into one Chrome trace JSON
/// object (always well-formed, even for zero documents).
std::string MergeChromeTraces(const std::vector<std::string>& docs);

/// Reads every path, merges, and writes the result atomically to
/// `out_path`. Unreadable or event-less inputs are skipped (merging a
/// fleet's trace dir must survive a child that died before exporting);
/// `merged` (may be null) reports how many inputs contributed events.
/// False + `error` only on a write failure.
bool MergeChromeTraceFiles(const std::vector<std::string>& paths,
                           const std::string& out_path, std::size_t* merged,
                           std::string* error);

}  // namespace spta::obs
