// Batched PRNG front-end for the simulation hot path.
//
// Random cache/TLB replacement draws one word per eviction; at campaign
// scale that is millions of tiny generator calls interleaved with cache
// bookkeeping. BlockDraws amortizes them: it clocks the backing engine in
// chunks of kBlockSize words into a flat buffer (a tight, unrollable loop
// over the inline shift-register steps) and serves draws from the buffer.
//
// Equivalence contract (enforced by tests/block_draws_test.cpp): the word
// stream served by Next() is element-for-element identical to calling
// engine.Next() directly — refills merely pre-clock the engine, they never
// reorder, drop or duplicate words — and UniformBelow() replays exactly the
// rejection loop of HwPrng::UniformBelow over that stream. Swapping an
// engine for BlockDraws<Engine> therefore changes no observable behavior,
// for any refill boundary alignment.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "prng/hw_prng.hpp"

namespace spta::prng {

/// Consumption counters of one BlockDraws stream (src/obs attribution: how
/// much platform entropy a run burned, and how often the modulo-rejection
/// loop retried). Maintained off the per-draw path — refills count once per
/// kBlockSize words, rejections only on the rare retry branch — so the
/// accounting is free at simulation scale.
struct DrawStats {
  std::uint64_t words = 0;       ///< Engine words served to callers.
  std::uint64_t rejections = 0;  ///< UniformBelow retries (word discarded).
};

/// `Engine` needs `std::uint32_t Next()` (HwPrng, Xoshiro128pp, ...).
template <typename Engine>
class BlockDraws {
 public:
  /// Words clocked per refill. 256 words keep the buffer L1-resident while
  /// making the refill loop long enough to pipeline the register steps.
  static constexpr std::size_t kBlockSize = 256;

  explicit BlockDraws(Engine engine) : engine_(std::move(engine)) {}

  /// Next 32-bit word — identical to engine.Next() in sequence.
  std::uint32_t Next() {
    if (pos_ == fill_) Refill();
    return buffer_[pos_++];
  }

  /// Uniform integer in [0, bound), bound > 0 — bit-identical to
  /// HwPrng::UniformBelow over the same word stream (same acceptance
  /// threshold, same rejection order, same modulo).
  std::uint32_t UniformBelow(std::uint32_t bound) {
    SPTA_REQUIRE(bound > 0);
    const std::uint64_t threshold = HwPrng::RejectionThreshold(bound);
    for (;;) {
      const std::uint32_t v = Next();
      if (v < threshold) return v % bound;
      ++rejections_;  // Rare: threshold is >= 2^31 for any bound.
    }
  }

  /// Uniform double in [0, 1) — one word, identical to HwPrng::UniformUnit.
  double UniformUnit() {
    return static_cast<double>(Next()) * 0x1.0p-32;
  }

  /// Advances the stream by exactly `n` words, as if Next() had been
  /// called `n` times and the results discarded: the engine state, the
  /// buffer position and the `stats().words` accounting all land exactly
  /// where serving the words one by one would have put them, across any
  /// number of refill boundaries. This is the fast-forward primitive of
  /// the atlas kernel memoizer: replaying a cached kernel iteration must
  /// consume the recorded number of replacement-stream words word-exactly
  /// or every subsequent draw of the run would diverge.
  void SkipWords(std::uint64_t n) {
    while (n > 0) {
      if (pos_ == fill_) Refill();
      const std::uint64_t take =
          n < static_cast<std::uint64_t>(fill_ - pos_)
              ? n
              : static_cast<std::uint64_t>(fill_ - pos_);
      pos_ += static_cast<std::size_t>(take);
      n -= take;
    }
  }

  /// Folds `n` skipped-over UniformBelow rejections into the stats. The
  /// skipped words themselves are advanced by SkipWords; this keeps the
  /// rejection attribution bit-identical to a replayed run.
  void AddRejections(std::uint64_t n) { rejections_ += n; }

  /// Mixes the effective stream state into `h`: the engine registers plus
  /// the pre-clocked-but-unserved buffer words. Two streams with equal
  /// digests serve identical word sequences forever. Requires Engine to
  /// expose AppendStateDigest (HwPrng does); only instantiated when called.
  void AppendStateDigest(DualHash& h) const {
    engine_.AppendStateDigest(h);
    h.Mix(fill_ - pos_);
    for (std::size_t i = pos_; i < fill_; ++i) h.Mix(buffer_[i]);
  }

  /// Words already drawn from the engine but not yet served (test hook for
  /// exercising refill boundaries).
  std::size_t buffered() const { return fill_ - pos_; }

  /// Consumption counters since construction. `words` counts engine words
  /// actually handed to callers (pre-clocked but unserved buffer words are
  /// excluded), `rejections` the UniformBelow retries among them.
  DrawStats stats() const { return {clocked_ - buffered(), rejections_}; }

 private:
  void Refill() {
    for (std::size_t i = 0; i < kBlockSize; ++i) buffer_[i] = engine_.Next();
    fill_ = kBlockSize;
    pos_ = 0;
    // Track clocked words explicitly rather than deriving them as
    // refills * kBlockSize: the derivation silently over-counts the moment
    // any refill clocks fewer than kBlockSize words (a hazard for partial
    // or lane-interleaved refill strategies), and the batch kernel's
    // per-lane PRNG attribution depends on `stats().words` being exact at
    // every refill boundary.
    clocked_ += kBlockSize;
  }

  Engine engine_;
  std::array<std::uint32_t, kBlockSize> buffer_;
  std::size_t pos_ = 0;   ///< Next word to serve.
  std::size_t fill_ = 0;  ///< Valid words in the buffer.
  std::uint64_t clocked_ = 0;  ///< Engine words clocked into the buffer.
  std::uint64_t rejections_ = 0;
};

}  // namespace spta::prng
