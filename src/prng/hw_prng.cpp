#include "prng/hw_prng.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::prng {

HwPrng::HwPrng(std::uint64_t seed)
    : lfsr_(Mix64(seed)), casr_(Mix64(seed ^ 0xa5a5a5a5a5a5a5a5ULL)) {
  lfsr_.Discard(kWarmupSteps);
  casr_.Discard(kWarmupSteps);
}

std::uint32_t HwPrng::UniformBelow(std::uint32_t bound) {
  SPTA_REQUIRE(bound > 0);
  const std::uint64_t threshold = RejectionThreshold(bound);
  for (;;) {
    const std::uint32_t v = Next();
    if (v < threshold) return v % bound;
  }
}

double HwPrng::UniformUnit() {
  return static_cast<double>(Next()) * 0x1.0p-32;
}

}  // namespace spta::prng
