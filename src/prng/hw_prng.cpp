#include "prng/hw_prng.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::prng {

HwPrng::HwPrng(std::uint64_t seed)
    : lfsr_(Mix64(seed)), casr_(Mix64(seed ^ 0xa5a5a5a5a5a5a5a5ULL)) {
  lfsr_.Discard(kWarmupSteps);
  casr_.Discard(kWarmupSteps);
}

std::uint32_t HwPrng::Next() {
  const std::uint64_t l = lfsr_.Step();
  const std::uint64_t c = casr_.Step();
  return static_cast<std::uint32_t>(l) ^ static_cast<std::uint32_t>(c);
}

std::uint32_t HwPrng::UniformBelow(std::uint32_t bound) {
  SPTA_REQUIRE(bound > 0);
  // Classic rejection: accept draws below the largest multiple of `bound`
  // that fits in 2^32, so every residue class is equally likely.
  const std::uint64_t threshold = (0x1'0000'0000ULL / bound) * bound;
  for (;;) {
    const std::uint32_t v = Next();
    if (v < threshold) return v % bound;
  }
}

double HwPrng::UniformUnit() {
  return static_cast<double>(Next()) * 0x1.0p-32;
}

}  // namespace spta::prng
