// MBPTA-grade hardware-style pseudo-random number generator.
//
// Models the role of the IEC-61508 SIL-3 compliant PRNG the paper's platform
// uses to drive random cache placement and replacement (Agirre et al., DSD
// 2015): the classic LFSR ⊕ CASR construction (Tkacik), where a 43-bit
// maximal-length LFSR and a 37-bit maximal-length hybrid cellular automaton
// are clocked together and the low 32 bits of each are XORed to form the
// output word. The two periods (2^43-1 and 2^37-1) are coprime, giving a
// combined sequence period of their product.
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "prng/lfsr.hpp"

namespace spta::prng {

/// Combined LFSR⊕CASR generator with a 32-bit output word.
/// Satisfies std::uniform_random_bit_generator.
class HwPrng {
 public:
  using result_type = std::uint32_t;

  /// Seeds both registers from independent portions of `seed` and warms the
  /// generator up by a fixed number of clocks so that low-entropy seeds
  /// (e.g. small integers) diffuse through the state.
  explicit HwPrng(std::uint64_t seed);

  /// Returns the next 32-bit output word. Inline: one Next() per random
  /// replacement draw makes this the hottest PRNG call in the simulator.
  std::uint32_t Next() {
    const std::uint64_t l = lfsr_.Step();
    const std::uint64_t c = casr_.Step();
    return static_cast<std::uint32_t>(l) ^ static_cast<std::uint32_t>(c);
  }

  result_type operator()() { return Next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Uniform integer in [0, bound), bound > 0, rejection-based (unbiased).
  std::uint32_t UniformBelow(std::uint32_t bound);

  /// The exact acceptance threshold of UniformBelow's rejection loop:
  /// draws below the largest multiple of `bound` that fits in 2^32 are
  /// accepted, so every residue class is equally likely. Exposed so that
  /// batched front-ends (BlockDraws) can reproduce the rejection sequence
  /// word for word.
  static constexpr std::uint64_t RejectionThreshold(std::uint32_t bound) {
    return (0x1'0000'0000ULL / bound) * bound;
  }

  /// Uniform double in [0, 1).
  double UniformUnit();

  /// Number of warm-up clocks applied at construction.
  static constexpr int kWarmupSteps = 64;

  /// Mixes the full generator state (both registers) into `h`. Equal
  /// digests imply identical future output words — the generator is a pure
  /// function of its 43+37 register bits. Used by the atlas kernel
  /// memoizer's µarch-state digest.
  void AppendStateDigest(DualHash& h) const {
    h.Mix(lfsr_.state());
    h.Mix(casr_.state());
  }

 private:
  Lfsr43 lfsr_;
  Casr37 casr_;
};

}  // namespace spta::prng
