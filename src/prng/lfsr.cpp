#include "prng/lfsr.hpp"

namespace spta::prng {
namespace {

constexpr std::uint64_t kLfsrMask = (1ULL << Lfsr43::kBits) - 1;
// Galois feedback taps for x^43 + x^41 + x^20 + x + 1: after multiplying the
// state polynomial by x (shift left), a carry out of x^43 is reduced by
// XORing the remaining terms x^41 + x^20 + x^1 + x^0 into the state.
constexpr std::uint64_t kLfsrTaps =
    (1ULL << 41) | (1ULL << 20) | (1ULL << 1) | (1ULL << 0);

constexpr std::uint64_t kCasrMask = (1ULL << Casr37::kBits) - 1;

}  // namespace

Lfsr43::Lfsr43(std::uint64_t seed) {
  state_ = seed & kLfsrMask;
  if (state_ == 0) state_ = 0x1d872b41c2aULL & kLfsrMask;  // arbitrary nonzero
}

std::uint64_t Lfsr43::Step() {
  // Galois configuration: shift left, fold the out-bit back through the taps.
  const std::uint64_t out = (state_ >> (kBits - 1)) & 1ULL;
  state_ = (state_ << 1) & kLfsrMask;
  if (out != 0) state_ ^= kLfsrTaps & kLfsrMask;
  if (state_ == 0) state_ = 1;  // defensive: cannot happen from nonzero state
  return state_;
}

void Lfsr43::Discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) Step();
}

Casr37::Casr37(std::uint64_t seed) {
  state_ = seed & kCasrMask;
  if (state_ == 0) state_ = 0x0a5a5a5a5aULL & kCasrMask;
}

std::uint64_t Casr37::Step() {
  // Rule 90: next(i) = s(i-1) ^ s(i+1) with null boundaries; rule 150 adds
  // the cell's own state. Vectorized over the whole word with shifts.
  const std::uint64_t left = (state_ << 1) & kCasrMask;   // s(i-1) into cell i
  const std::uint64_t right = (state_ >> 1) & kCasrMask;  // s(i+1) into cell i
  std::uint64_t next = left ^ right;
  next ^= state_ & (1ULL << kRule150Cell);  // rule-150 self term at one cell
  state_ = next & kCasrMask;
  if (state_ == 0) state_ = 1;  // defensive lockup escape
  return state_;
}

void Casr37::Discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) Step();
}

}  // namespace spta::prng
