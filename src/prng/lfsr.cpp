#include "prng/lfsr.hpp"

namespace spta::prng {

Lfsr43::Lfsr43(std::uint64_t seed) {
  state_ = seed & kMask;
  if (state_ == 0) state_ = 0x1d872b41c2aULL & kMask;  // arbitrary nonzero
}

void Lfsr43::Discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) Step();
}

Casr37::Casr37(std::uint64_t seed) {
  state_ = seed & kMask;
  if (state_ == 0) state_ = 0x0a5a5a5a5aULL & kMask;
}

void Casr37::Discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) Step();
}

}  // namespace spta::prng
