// Hardware-style shift-register generators.
//
// The MBPTA-compliant LEON3 platform in the paper drives its random cache
// placement/replacement from an IEC-61508 SIL-3 qualified pseudo-random
// number generator (Agirre et al., DSD 2015), built from linear feedback
// shift registers and cellular-automaton shift registers — structures that
// are cheap in hardware. We model the same structures bit-exactly:
//
//  * Lfsr43  — 43-bit Galois LFSR, maximal-length polynomial
//              x^43 + x^41 + x^20 + x + 1 (period 2^43 - 1).
//  * Casr37  — 37-cell hybrid rule-90/150 cellular automaton shift register
//              (rule 150 at cell 27, rule 90 elsewhere), maximal period
//              2^37 - 1.
//
// Both registers reject the all-zero lockup state at seeding time.
#pragma once

#include <cstdint>

namespace spta::prng {

/// 43-bit maximal-length Galois LFSR.
class Lfsr43 {
 public:
  /// Seeds the register; a seed that reduces to zero in the low 43 bits is
  /// remapped to a fixed nonzero constant to avoid the lockup state.
  explicit Lfsr43(std::uint64_t seed);

  /// Advances one clock and returns the new 43-bit state. Inline: this is
  /// the innermost operation of every random replacement draw on the
  /// simulation hot path.
  std::uint64_t Step() {
    // Galois configuration: shift left, fold the out-bit back through the
    // taps.
    const std::uint64_t out = (state_ >> (kBits - 1)) & 1ULL;
    state_ = (state_ << 1) & kMask;
    if (out != 0) state_ ^= kTaps & kMask;
    if (state_ == 0) state_ = 1;  // defensive: cannot happen from nonzero
    return state_;
  }

  /// Advances `n` clocks (used to decorrelate streams).
  void Discard(std::uint64_t n);

  std::uint64_t state() const { return state_; }

  /// Register width in bits.
  static constexpr int kBits = 43;
  static constexpr std::uint64_t kMask = (1ULL << kBits) - 1;
  /// Galois feedback taps for x^43 + x^41 + x^20 + x + 1: after multiplying
  /// the state polynomial by x (shift left), a carry out of x^43 is reduced
  /// by XORing the remaining terms x^41 + x^20 + x^1 + x^0 into the state.
  static constexpr std::uint64_t kTaps =
      (1ULL << 41) | (1ULL << 20) | (1ULL << 1) | (1ULL << 0);

 private:
  std::uint64_t state_;
};

/// 37-cell hybrid rule-90/150 cellular automaton shift register.
///
/// Cell i next-state: left XOR right (rule 90), plus self for the single
/// rule-150 cell. Null boundary conditions (cells beyond the edges read 0).
class Casr37 {
 public:
  explicit Casr37(std::uint64_t seed);

  /// Advances one clock and returns the new 37-bit state. Inline for the
  /// same hot-path reason as Lfsr43::Step.
  std::uint64_t Step() {
    // Rule 90: next(i) = s(i-1) ^ s(i+1) with null boundaries; rule 150
    // adds the cell's own state. Vectorized over the whole word with shifts.
    const std::uint64_t left = (state_ << 1) & kMask;   // s(i-1) into cell i
    const std::uint64_t right = (state_ >> 1) & kMask;  // s(i+1) into cell i
    std::uint64_t next = left ^ right;
    next ^= state_ & (1ULL << kRule150Cell);  // rule-150 self term, one cell
    state_ = next & kMask;
    if (state_ == 0) state_ = 1;  // defensive lockup escape
    return state_;
  }

  void Discard(std::uint64_t n);

  std::uint64_t state() const { return state_; }

  static constexpr int kBits = 37;
  static constexpr std::uint64_t kMask = (1ULL << kBits) - 1;
  /// Index of the single rule-150 cell (Tkacik's published design).
  static constexpr int kRule150Cell = 27;

 private:
  std::uint64_t state_;
};

}  // namespace spta::prng
