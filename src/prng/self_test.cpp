#include "prng/self_test.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace spta::prng {

BitTestResult MonobitTest(std::span<const std::uint32_t> words) {
  SPTA_REQUIRE(!words.empty());
  const double n = static_cast<double>(words.size()) * 32.0;
  std::uint64_t ones = 0;
  for (std::uint32_t w : words) ones += std::popcount(w);
  BitTestResult r;
  r.statistic = static_cast<double>(ones);
  const double mean = n / 2.0;
  const double sigma = std::sqrt(n / 4.0);
  r.lower = mean - 4.0 * sigma;
  r.upper = mean + 4.0 * sigma;
  r.passed = r.statistic > r.lower && r.statistic < r.upper;
  return r;
}

BitTestResult PokerTest(std::span<const std::uint32_t> words) {
  SPTA_REQUIRE(!words.empty());
  std::array<std::uint64_t, 16> freq{};
  for (std::uint32_t w : words) {
    for (int shift = 0; shift < 32; shift += 4) {
      ++freq[(w >> shift) & 0xf];
    }
  }
  const double k = static_cast<double>(words.size()) * 8.0;  // nibble count
  double sum_sq = 0.0;
  for (std::uint64_t f : freq) {
    sum_sq += static_cast<double>(f) * static_cast<double>(f);
  }
  BitTestResult r;
  // FIPS 140-2 poker statistic: (16/k)·Σ f_i² − k. Under H0 this is
  // approximately chi-square with 15 degrees of freedom, so accept within
  // [chi2_0.0001, chi2_0.9999] ≈ [2.16, 46.25] independent of k.
  r.statistic = (16.0 / k) * sum_sq - k;
  r.lower = 2.16;
  r.upper = 46.25;
  r.passed = r.statistic > r.lower && r.statistic < r.upper;
  return r;
}

BitTestResult RunsTest(std::span<const std::uint32_t> words) {
  SPTA_REQUIRE(!words.empty());
  const std::size_t n_bits = words.size() * 32;
  std::uint64_t runs = 1;
  int prev = static_cast<int>(words[0] & 1u);
  for (std::size_t i = 1; i < n_bits; ++i) {
    const int bit =
        static_cast<int>((words[i / 32] >> (i % 32)) & 1u);
    if (bit != prev) {
      ++runs;
      prev = bit;
    }
  }
  BitTestResult r;
  r.statistic = static_cast<double>(runs);
  const double n = static_cast<double>(n_bits);
  const double mean = n / 2.0;  // expected runs for unbiased iid bits ≈ n/2
  const double sigma = std::sqrt(n) / 2.0;
  r.lower = mean - 4.0 * sigma;
  r.upper = mean + 4.0 * sigma;
  r.passed = r.statistic > r.lower && r.statistic < r.upper;
  return r;
}

}  // namespace spta::prng
