// Statistical self-tests for PRNG output quality.
//
// The paper's platform PRNG must be statistically sound for the MBPTA
// argument to hold (DSD-2015 qualifies it to IEC-61508 SIL-3). We implement
// the three classic FIPS-140-2-style bitstream tests — monobit, poker and
// runs — as pure functions over a bit sample, so any generator in the
// library can be checked in unit tests and at platform bring-up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spta::prng {

/// Result of one bitstream test.
struct BitTestResult {
  bool passed = false;      ///< True if the statistic is within bounds.
  double statistic = 0.0;   ///< The computed test statistic.
  double lower = 0.0;       ///< Acceptance interval lower bound.
  double upper = 0.0;       ///< Acceptance interval upper bound.
};

/// Monobit test over `bits.size()*32` bits: counts ones; for n bits the
/// count must lie within mean ± 4·sqrt(n/4) (≈4σ, FIPS-style).
BitTestResult MonobitTest(std::span<const std::uint32_t> words);

/// Poker test: partitions the stream into 4-bit nibbles and computes the
/// chi-square-like statistic over the 16 nibble frequencies. Passes when the
/// statistic is within the FIPS 140-2 interval scaled to the sample size.
BitTestResult PokerTest(std::span<const std::uint32_t> words);

/// Runs test: counts maximal runs of identical bits; the total number of
/// runs must be within 4σ of its expectation n/2 for an unbiased stream.
BitTestResult RunsTest(std::span<const std::uint32_t> words);

/// Convenience: runs all three tests on `n_words` outputs of `gen` and
/// returns true iff all pass. `gen` is any callable returning uint32_t.
template <typename Gen>
bool PassesAllBitTests(Gen&& gen, std::size_t n_words) {
  std::vector<std::uint32_t> words(n_words);
  for (auto& w : words) w = gen();
  return MonobitTest(words).passed && PokerTest(words).passed &&
         RunsTest(words).passed;
}

}  // namespace spta::prng
