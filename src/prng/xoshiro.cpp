#include "prng/xoshiro.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace spta::prng {
namespace {

inline std::uint32_t Rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro128pp::Xoshiro128pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  // Expand into four nonzero-overall 32-bit words.
  std::uint64_t a = sm.Next();
  std::uint64_t b = sm.Next();
  s_[0] = static_cast<std::uint32_t>(a);
  s_[1] = static_cast<std::uint32_t>(a >> 32);
  s_[2] = static_cast<std::uint32_t>(b);
  s_[3] = static_cast<std::uint32_t>(b >> 32);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint32_t Xoshiro128pp::Next() {
  const std::uint32_t result = Rotl32(s_[0] + s_[3], 7) + s_[0];
  const std::uint32_t t = s_[1] << 9;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl32(s_[3], 11);
  return result;
}

std::uint32_t Xoshiro128pp::UniformBelow(std::uint32_t bound) {
  SPTA_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>(Next()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(Next()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

double Xoshiro128pp::UniformUnit() {
  return static_cast<double>(Next()) * 0x1.0p-32;
}

double Xoshiro128pp::UniformReal(double lo, double hi) {
  SPTA_REQUIRE(lo <= hi);
  return lo + (hi - lo) * UniformUnit();
}

double Xoshiro128pp::Normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformUnit() - 1.0;
    v = 2.0 * UniformUnit() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

}  // namespace spta::prng
