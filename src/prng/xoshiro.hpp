// Fast, well-tested software PRNGs used for simulation infrastructure
// (workload input generation, bootstrap resampling). The *platform* random
// placement/replacement uses the hardware-style HwPrng instead (hw_prng.hpp),
// mirroring the paper's hardware PRNG; these software engines only drive the
// experiment harness.
#pragma once

#include <cstdint>

namespace spta::prng {

/// SplitMix64: a tiny 64-bit generator mainly used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/// xoshiro128++ 1.0 (Blackman & Vigna): 32-bit output, 2^128-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro128pp {
 public:
  using result_type = std::uint32_t;

  /// Seeds the 128-bit state via SplitMix64 expansion of `seed`.
  explicit Xoshiro128pp(std::uint64_t seed);

  /// Returns the next 32-bit value.
  std::uint32_t Next();

  /// std::uniform_random_bit_generator interface.
  result_type operator()() { return Next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Requires bound > 0.
  std::uint32_t UniformBelow(std::uint32_t bound);

  /// Uniform double in [0, 1) with 32 bits of resolution.
  double UniformUnit();

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Standard normal variate (polar Marsaglia method).
  double Normal();

 private:
  std::uint32_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace spta::prng
