#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spta::service {

std::string EncodeSamplePayload(
    std::span<const mbpta::PathObservation> observations) {
  std::string payload;
  payload.reserve(observations.size() * 24);
  for (const auto& obs : observations) {
    payload += EncodeDouble(obs.time);
    if (obs.path_id != 0) {
      payload.push_back(',');
      payload += std::to_string(obs.path_id);
    }
    payload.push_back('\n');
  }
  return payload;
}

bool Client::Send(const Request& request) {
  if (!request.trace.valid()) {
    const obs::TraceContext current = obs::CurrentTraceContext();
    if (current.valid()) {
      Request traced = request;
      traced.trace = current;
      return WriteRequest(out_, traced);
    }
  }
  return WriteRequest(out_, request);
}

bool Client::Receive(Response* response, std::string* error) {
  const ReadStatus status = ReadResponse(in_, response, error);
  if (status == ReadStatus::kEof) {
    *error = "connection closed";
    return false;
  }
  return status == ReadStatus::kOk;
}

Response Client::Call(const Request& request) {
  std::string error;
  if (!Send(request)) return ErrResponse("transport", "write failed");
  Response response;
  if (!Receive(&response, &error)) return ErrResponse("transport", error);
  return response;
}

Response Client::Ping() {
  Request request;
  request.kind = RequestKind::kPing;
  return Call(request);
}

Response Client::Open(const std::string& session) {
  Request request;
  request.kind = RequestKind::kOpen;
  request.args.Set("session", session);
  return Call(request);
}

Response Client::Append(
    const std::string& session,
    std::span<const mbpta::PathObservation> observations) {
  Request request;
  request.kind = RequestKind::kAppend;
  request.args.Set("session", session);
  request.args.SetUint("count", observations.size());
  request.payload = EncodeSamplePayload(observations);
  return Call(request);
}

Response Client::Status(const std::string& session) {
  Request request;
  request.kind = RequestKind::kStatus;
  request.args.Set("session", session);
  return Call(request);
}

Response Client::AnalyzeSession(const std::string& session, Args options) {
  Request request;
  request.kind = RequestKind::kAnalyze;
  request.args = std::move(options);
  request.args.Set("session", session);
  return Call(request);
}

Response Client::AnalyzeInline(
    std::span<const mbpta::PathObservation> observations, Args options) {
  Request request;
  request.kind = RequestKind::kAnalyze;
  request.args = std::move(options);
  request.args.SetUint("count", observations.size());
  request.payload = EncodeSamplePayload(observations);
  return Call(request);
}

Response Client::Close(const std::string& session) {
  Request request;
  request.kind = RequestKind::kClose;
  request.args.Set("session", session);
  return Call(request);
}

Response Client::Metrics() {
  Request request;
  request.kind = RequestKind::kMetrics;
  return Call(request);
}

Response Client::MetricsProm() {
  Request request;
  request.kind = RequestKind::kMetricsProm;
  return Call(request);
}

Response Client::Health() {
  Request request;
  request.kind = RequestKind::kHealth;
  return Call(request);
}

Response Client::Trace() {
  Request request;
  request.kind = RequestKind::kTrace;
  return Call(request);
}

Response Client::Shutdown() {
  Request request;
  request.kind = RequestKind::kShutdown;
  return Call(request);
}

namespace {

/// Installs SO_RCVTIMEO/SO_SNDTIMEO when io_timeout_ms > 0. False + errno
/// message on failure.
bool InstallIoTimeout(int fd, double io_timeout_ms, std::string* error) {
  if (io_timeout_ms <= 0.0) return true;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (io_timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // min 1ms
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    *error = std::string("setsockopt(timeout): ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

TcpConnection::TcpConnection(int fd)
    : fd_(fd),
      in_buf_(std::make_unique<FdStreambuf>(fd)),
      out_buf_(std::make_unique<FdStreambuf>(fd)),
      in_(std::make_unique<std::istream>(in_buf_.get())),
      out_(std::make_unique<std::ostream>(out_buf_.get())) {}

TcpConnection::~TcpConnection() {
  out_->flush();
  ::close(fd_);
}

std::unique_ptr<TcpConnection> TcpConnection::Connect(const std::string& host,
                                                      std::uint16_t port,
                                                      std::string* error,
                                                      double io_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return nullptr;
  }
  if (!InstallIoTimeout(fd, io_timeout_ms, error)) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad IPv4 address: " + host;
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "connect('" + host + ":" + std::to_string(port) +
             "'): " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpConnection>(new TcpConnection(fd));
}

UnixSocketConnection::UnixSocketConnection(int fd)
    : fd_(fd),
      in_buf_(std::make_unique<FdStreambuf>(fd)),
      out_buf_(std::make_unique<FdStreambuf>(fd)),
      in_(std::make_unique<std::istream>(in_buf_.get())),
      out_(std::make_unique<std::ostream>(out_buf_.get())) {}

UnixSocketConnection::~UnixSocketConnection() {
  out_->flush();
  ::close(fd_);
}

std::unique_ptr<UnixSocketConnection> UnixSocketConnection::Connect(
    const std::string& path, std::string* error, double io_timeout_ms) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    *error = "socket path too long: " + path;
    return nullptr;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return nullptr;
  }
  if (!InstallIoTimeout(fd, io_timeout_ms, error)) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "connect('" + path + "'): " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<UnixSocketConnection>(new UnixSocketConnection(fd));
}

}  // namespace spta::service
