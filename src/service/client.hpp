// Client side of the spta_serve protocol.
//
// A Client wraps a connected request/response stream pair (a Unix-socket
// connection, or any istream/ostream in tests) and offers both a
// synchronous call-per-request API and a raw Send/Receive split for
// pipelined use (the load generator fires a burst of requests and reaps
// the responses afterwards). Sample values travel as %.17g text, so the
// doubles the server analyzes are bit-identical to the client's — the
// foundation of the served-equals-batch golden guarantee.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>

#include "mbpta/per_path.hpp"
#include "service/fd_stream.hpp"
#include "service/protocol.hpp"

namespace spta::service {

/// Encodes observations as `cycles[,path]` payload lines with full double
/// precision (path 0 is left implicit, matching the CSV format).
std::string EncodeSamplePayload(
    std::span<const mbpta::PathObservation> observations);

class Client {
 public:
  /// Streams must outlive the client. `in` carries responses, `out`
  /// requests.
  Client(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  /// Fire one request without waiting (pipelining). False on write error.
  /// When the request carries no trace context and the calling thread
  /// does (obs::CurrentTraceContext), the thread's context is stamped on
  /// the outgoing frame header — so any code running under a ScopedSpan
  /// propagates its distributed trace to the server transparently.
  bool Send(const Request& request);

  /// Reap the next response in order. False on EOF/framing error, with a
  /// diagnostic in `error`.
  bool Receive(Response* response, std::string* error);

  /// Send + Receive. Transport failures surface as an ERR response with
  /// code=transport.
  Response Call(const Request& request);

  // Convenience wrappers (all synchronous).
  Response Ping();
  Response Open(const std::string& session);
  Response Append(const std::string& session,
                  std::span<const mbpta::PathObservation> observations);
  Response Status(const std::string& session);
  /// Analyze a session's ingested sample; extra args (prob=..., per_path=1)
  /// come from `options`.
  Response AnalyzeSession(const std::string& session, Args options = {});
  /// One-shot analysis of an inline sample.
  Response AnalyzeInline(std::span<const mbpta::PathObservation> observations,
                         Args options = {});
  Response Close(const std::string& session);
  Response Metrics();
  /// Prometheus text exposition (payload carries the scrape body).
  Response MetricsProm();
  /// Liveness/readiness probe (answered on the fleet's event loop).
  Response Health();
  /// Chrome trace-event JSON export of the server's in-process tracer
  /// (payload carries the JSON body; args carry events/dropped/enabled).
  Response Trace();
  Response Shutdown();

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// A TCP connection to a sharded fleet listener, owning its fd and stream
/// adapters. Same shape as UnixSocketConnection; TCP_NODELAY is set so the
/// request/response ping-pong of the synchronous Client API is not held
/// hostage by Nagle.
class TcpConnection {
 public:
  /// Connects to host:port (IPv4 dotted quad); nullptr + `error` on
  /// failure. `io_timeout_ms` as in UnixSocketConnection::Connect.
  static std::unique_ptr<TcpConnection> Connect(const std::string& host,
                                                std::uint16_t port,
                                                std::string* error,
                                                double io_timeout_ms = 0.0);

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  std::istream& in() { return *in_; }
  std::ostream& out() { return *out_; }

 private:
  explicit TcpConnection(int fd);

  int fd_;
  std::unique_ptr<FdStreambuf> in_buf_;
  std::unique_ptr<FdStreambuf> out_buf_;
  std::unique_ptr<std::istream> in_;
  std::unique_ptr<std::ostream> out_;
};

/// An AF_UNIX stream connection owning its fd and stream adapters.
class UnixSocketConnection {
 public:
  /// Connects to a listening spta_serve socket; nullptr + `error` on
  /// failure. `io_timeout_ms` > 0 installs SO_RCVTIMEO/SO_SNDTIMEO on the
  /// socket — the per-attempt deadline of the resilient client: a read or
  /// write that stalls past it fails the attempt (EAGAIN, not retried by
  /// FdStreambuf) instead of hanging on a dead or wedged peer.
  static std::unique_ptr<UnixSocketConnection> Connect(
      const std::string& path, std::string* error, double io_timeout_ms = 0.0);

  ~UnixSocketConnection();
  UnixSocketConnection(const UnixSocketConnection&) = delete;
  UnixSocketConnection& operator=(const UnixSocketConnection&) = delete;

  std::istream& in() { return *in_; }
  std::ostream& out() { return *out_; }

 private:
  explicit UnixSocketConnection(int fd);

  int fd_;
  std::unique_ptr<FdStreambuf> in_buf_;
  std::unique_ptr<FdStreambuf> out_buf_;
  std::unique_ptr<std::istream> in_;
  std::unique_ptr<std::ostream> out_;
};

}  // namespace spta::service
