#include "service/convergence_tracker.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace spta::service {

ConvergenceTracker::ConvergenceTracker(mbpta::ConvergenceOptions options)
    : options_(options), next_(options.initial_runs) {
  SPTA_REQUIRE(options_.initial_runs >= options_.mbpta.min_blocks);
  SPTA_REQUIRE(options_.step_runs >= 1);
}

void ConvergenceTracker::Update(std::span<const double> times) {
  // One iteration per newly crossed checkpoint — the body is a line-for-line
  // transplant of the batch loop in mbpta::CheckConvergence so the two stay
  // bit-equivalent.
  while (times.size() >= next_) {
    const std::size_t n = next_;
    mbpta::ConvergencePoint pt;
    pt.runs = n;
    mbpta::MbptaOptions opts = options_.mbpta;
    opts.require_iid = false;
    const mbpta::MbptaResult est =
        mbpta::AnalyzeSample(times.subspan(0, n), opts);
    if (est.curve.has_value()) {
      pt.usable = true;
      pt.pwcet = est.curve->QuantileForExceedance(options_.reference_prob);
      if (have_prev_ && prev_ > 0.0) {
        pt.rel_delta = std::fabs(pt.pwcet - prev_) / prev_;
        if (pt.rel_delta <= options_.rel_tolerance) {
          ++stable_;
          if (stable_ >= options_.stable_steps_required && !converged_) {
            converged_ = true;
            runs_required_ = n;
          }
        } else {
          stable_ = 0;
        }
      }
      prev_ = pt.pwcet;
      have_prev_ = true;
    } else {
      stable_ = 0;
      have_prev_ = false;
    }
    points_.push_back(pt);
    next_ += options_.step_runs;
  }
}

}  // namespace spta::service
