// Incremental MBPTA convergence tracking for streaming ingestion.
//
// A batch campaign runs mbpta::CheckConvergence once over the finished
// sample. A service session instead receives samples in chunks and wants
// to report "ready for EVT" the moment the 3,000-run-style criterion is
// met. This tracker evaluates exactly the same checkpoints as
// CheckConvergence (prefix lengths initial_runs, +step_runs, ...) but
// does so as the sample grows, so each Append only pays for checkpoints
// newly crossed — and the per-checkpoint state machine (stable-step
// counter, previous estimate) is carried across calls.
//
// Equivalence contract (tested): after ingesting a sample in any chunking,
// points()/converged()/runs_required() equal the batch CheckConvergence
// result on the full sample, checkpoint for checkpoint.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mbpta/convergence.hpp"

namespace spta::service {

class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(mbpta::ConvergenceOptions options = {});

  /// Feeds the session's full time-ordered sample as of now (the tracker
  /// remembers how far it has already evaluated; earlier prefixes are
  /// never re-examined, mirroring the batch loop).
  void Update(std::span<const double> times);

  bool converged() const { return converged_; }
  /// First checkpoint at which the criterion held (0 while not converged).
  std::size_t runs_required() const { return runs_required_; }
  /// The next prefix length at which an estimate will be made.
  std::size_t next_checkpoint() const { return next_; }
  const std::vector<mbpta::ConvergencePoint>& points() const {
    return points_;
  }
  const mbpta::ConvergenceOptions& options() const { return options_; }

 private:
  mbpta::ConvergenceOptions options_;
  std::vector<mbpta::ConvergencePoint> points_;
  std::size_t next_;  ///< Next checkpoint prefix length.
  int stable_ = 0;
  double prev_ = 0.0;
  bool have_prev_ = false;
  bool converged_ = false;
  std::size_t runs_required_ = 0;
};

}  // namespace spta::service
