#include "service/engine.hpp"

#include <bit>

#include <algorithm>

#include "common/hash.hpp"
#include "evt/block_maxima.hpp"
#include "mbpta/mbpta.hpp"
#include "mbpta/report.hpp"

namespace spta::service {
namespace {

std::uint64_t DoubleBits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

/// Murmur3-finalizer-based combiner — deliberately different constants,
/// mixing structure and traversal order (at the call sites) than the
/// Mix64/HashCombine chain, so AnalysisKey and AnalysisVerifier fail
/// independently: inputs that collide under one digest have no structural
/// reason to collide under the other. Word-at-a-time like HashCombine, so
/// the warm cache-probe path stays cheap.
std::uint64_t VerifierCombine(std::uint64_t h, std::uint64_t value) {
  value ^= value >> 33;
  value *= 0xff51afd7ed558ccdull;
  value ^= value >> 33;
  value *= 0xc4ceb9fe1a85ec53ull;
  value ^= value >> 33;
  return (h * 0x100000001b3ull) ^ value;  // FNV-style fold of mixed words
}

/// Cached bodies hold the result args on the first line and the rendered
/// report after it — the same split the wire frames use.
std::string EncodeBody(const Args& result, const std::string& report) {
  return result.Encode() + "\n" + report;
}

void DecodeBody(const std::string& body, Args* result, std::string* report) {
  const auto nl = body.find('\n');
  *result = Args::Parse(std::string_view(body).substr(0, nl));
  *report = nl == std::string::npos ? std::string() : body.substr(nl + 1);
}

}  // namespace

AnalysisConfig AnalysisConfig::FromArgs(const Args& args) {
  AnalysisConfig config;
  config.prob = args.GetDouble("prob", config.prob);
  config.block_size =
      static_cast<std::size_t>(args.GetUint("block_size", config.block_size));
  config.min_blocks =
      static_cast<std::size_t>(args.GetUint("min_blocks", config.min_blocks));
  config.alpha = args.GetDouble("alpha", config.alpha);
  config.lags = static_cast<std::size_t>(args.GetUint("lags", config.lags));
  config.require_iid = args.GetBool("require_iid", config.require_iid);
  config.per_path = args.GetBool("per_path", config.per_path);
  config.min_path_samples = static_cast<std::size_t>(
      args.GetUint("min_path_samples", config.min_path_samples));
  return config;
}

std::uint64_t AnalysisKey(std::span<const mbpta::PathObservation> observations,
                          const AnalysisConfig& config) {
  std::uint64_t h = Mix64(0x5054'4153'4552'5645ull);  // "PTASERVE" tag
  h = HashCombine(h, DoubleBits(config.prob));
  h = HashCombine(h, config.block_size);
  h = HashCombine(h, config.min_blocks);
  h = HashCombine(h, DoubleBits(config.alpha));
  h = HashCombine(h, config.lags);
  h = HashCombine(h, config.require_iid ? 1 : 0);
  h = HashCombine(h, config.per_path ? 1 : 0);
  h = HashCombine(h, config.min_path_samples);
  h = HashCombine(h, observations.size());
  for (const auto& obs : observations) {
    h = HashCombine(h, DoubleBits(obs.time));
    h = HashCombine(h, obs.path_id);
  }
  return h;
}

std::uint64_t AnalysisVerifier(
    std::span<const mbpta::PathObservation> observations,
    const AnalysisConfig& config) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  // Samples first, config last — the reverse of AnalysisKey's order.
  for (const auto& obs : observations) {
    h = VerifierCombine(h, obs.path_id);
    h = VerifierCombine(h, DoubleBits(obs.time));
  }
  h = VerifierCombine(h, observations.size());
  h = VerifierCombine(h, config.min_path_samples);
  h = VerifierCombine(h, config.per_path ? 1 : 0);
  h = VerifierCombine(h, config.require_iid ? 1 : 0);
  h = VerifierCombine(h, config.lags);
  h = VerifierCombine(h, DoubleBits(config.alpha));
  h = VerifierCombine(h, config.min_blocks);
  h = VerifierCombine(h, config.block_size);
  h = VerifierCombine(h, DoubleBits(config.prob));
  return h;
}

AnalysisEngine::AnalysisEngine(std::size_t cache_capacity)
    : cache_(cache_capacity) {}

void AnalysisEngine::InsertCached(std::uint64_t key, std::uint64_t verifier,
                                  std::string body) {
  if (store_ != nullptr) store_->Put(key, verifier, body);
  cache_.Insert(key, verifier, std::move(body));
}

bool AnalysisEngine::TryServeCached(
    std::span<const mbpta::PathObservation> observations,
    const AnalysisConfig& config, AnalysisOutcome* outcome) {
  outcome->key = AnalysisKey(observations, config);
  auto body = cache_.LookupIfPresent(outcome->key,
                                     AnalysisVerifier(observations, config));
  if (!body) return false;
  outcome->cache_hit = true;
  DecodeBody(*body, &outcome->result, &outcome->report);
  return true;
}

bool AnalysisEngine::Analyze(
    std::span<const mbpta::PathObservation> observations,
    const AnalysisConfig& config, AnalysisOutcome* outcome,
    std::string* error) {
  // Validate what the batch pipeline enforces as SPTA_REQUIRE
  // preconditions: a daemon answers ERR, it does not abort.
  if (config.min_blocks < 1) {
    *error = "min_blocks must be >= 1";
    return false;
  }
  if (observations.size() < config.min_blocks) {
    *error = "sample of " + std::to_string(observations.size()) +
             " is smaller than min_blocks " +
             std::to_string(config.min_blocks);
    return false;
  }
  if (config.block_size > observations.size()) {
    *error = "block_size " + std::to_string(config.block_size) +
             " exceeds sample size " + std::to_string(observations.size());
    return false;
  }
  if (!(config.prob > 0.0 && config.prob < 1.0)) {
    *error = "prob must be in (0, 1)";
    return false;
  }
  if (observations.size() < 4) {
    *error = "sample of " + std::to_string(observations.size()) +
             " is too small for the i.i.d. gate (need >= 4)";
    return false;
  }
  if (config.lags < 1 || config.lags >= observations.size()) {
    *error = "lags " + std::to_string(config.lags) +
             " must be >= 1 and < sample size " +
             std::to_string(observations.size());
    return false;
  }
  // The Gumbel/GEV cross-check and the PPCC diagnostic need at least 3
  // complete blocks; fewer would abort inside the batch pipeline.
  const std::size_t effective_block =
      config.block_size != 0
          ? config.block_size
          : evt::SuggestBlockSize(observations.size(), config.min_blocks);
  if (observations.size() / effective_block < 3) {
    *error = "sample of " + std::to_string(observations.size()) +
             " yields fewer than 3 complete blocks of " +
             std::to_string(effective_block);
    return false;
  }
  if (config.per_path) {
    // AnalyzePerPath runs the full pipeline on every path with at least
    // max(min_path_samples, min_blocks) samples, so that floor must keep
    // each per-path analysis within the preconditions checked above.
    const std::size_t path_floor =
        std::max(config.min_path_samples, config.min_blocks);
    if (path_floor < 4 || path_floor <= config.lags) {
      *error = "per-path floor max(min_path_samples, min_blocks) = " +
               std::to_string(path_floor) +
               " must be >= 4 and > lags " + std::to_string(config.lags);
      return false;
    }
    if (config.block_size != 0
            ? path_floor / config.block_size < 3
            : config.min_blocks < 3) {
      *error = "per-path analysis needs at least 3 complete blocks per "
               "analyzed path; raise min_path_samples/min_blocks or lower "
               "block_size";
      return false;
    }
  }

  outcome->key = AnalysisKey(observations, config);
  const std::uint64_t verifier = AnalysisVerifier(observations, config);
  if (auto body = cache_.Lookup(outcome->key, verifier)) {
    outcome->cache_hit = true;
    DecodeBody(*body, &outcome->result, &outcome->report);
    return true;
  }
  outcome->cache_hit = false;

  mbpta::MbptaOptions opts;
  opts.block_size = config.block_size;
  opts.min_blocks = config.min_blocks;
  opts.iid.alpha = config.alpha;
  opts.iid.ljung_box_lags = config.lags;
  opts.require_iid = config.require_iid;

  std::vector<double> times;
  times.reserve(observations.size());
  for (const auto& obs : observations) times.push_back(obs.time);

  const mbpta::MbptaResult result = mbpta::AnalyzeSample(times, opts);

  Args fields;
  fields.SetUint("usable", result.usable ? 1 : 0);
  fields.SetUint("sample_size", result.sample_size);
  fields.SetUint("block_size", result.block_size);
  fields.SetUint("iid_pass", result.iid.Passed() ? 1 : 0);
  fields.SetDouble("prob", config.prob);
  if (result.curve.has_value()) {
    fields.SetDouble("pwcet",
                     result.curve->QuantileForExceedance(config.prob));
  }
  std::string report = mbpta::RenderReport(result, "spta_serve analysis");

  if (config.per_path) {
    mbpta::PerPathOptions ppo;
    ppo.mbpta = opts;
    ppo.min_samples_per_path = config.min_path_samples;
    const mbpta::PerPathResult per_path =
        mbpta::AnalyzePerPath(observations, ppo);
    fields.SetUint("paths", per_path.paths.size());
    fields.SetUint("analyzed_paths", per_path.analyzed_count());
    if (per_path.analyzed_count() >= 1) {
      fields.SetDouble("envelope", per_path.EnvelopeAt(config.prob));
    }
    report += mbpta::RenderReport(per_path);
  }

  InsertCached(outcome->key, verifier, EncodeBody(fields, report));
  outcome->result = std::move(fields);
  outcome->report = std::move(report);
  return true;
}

}  // namespace spta::service
