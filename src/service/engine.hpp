// The servable analysis engine: MBPTA pipeline + content-addressed cache.
//
// One engine instance is shared by every connection and worker thread. An
// analysis request is keyed by a 64-bit digest of the exact sample bits
// and every option that influences the outcome, paired with a second
// independent verifier digest so a key collision is detected rather than
// served (see AnalysisKey/AnalysisVerifier); identical re-submissions
// are answered from the ResultCache without touching the EVT code. The
// rendered result is deterministic (key-sorted args, %.17g numbers), so a
// cached answer is byte-identical to a recomputed one — and the reported
// pWCET quantile is bit-identical to what the batch pipeline
// (mbpta::AnalyzeSample over RunTvcaCampaignParallel samples) produces,
// because both run the same code on the same doubles.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "mbpta/per_path.hpp"
#include "service/persistent_cache.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"

namespace spta::service {

/// Everything that influences an analysis outcome. Mirrors the spta_cli
/// analyze flags; defaults match the CLI's.
struct AnalysisConfig {
  /// Per-run exceedance probability at which the pWCET is reported.
  double prob = 1e-12;
  std::size_t block_size = 0;  ///< 0 = automatic.
  std::size_t min_blocks = 30;
  double alpha = 0.05;
  std::size_t lags = 20;
  bool require_iid = true;
  bool per_path = false;
  std::size_t min_path_samples = 100;

  /// Decodes the wire form (`prob=`, `block_size=`, ... keys; absent keys
  /// keep their defaults).
  static AnalysisConfig FromArgs(const Args& args);
};

/// Content address of (samples, config): a Mix64/HashCombine digest over
/// the raw IEEE-754 bits of every observation plus every config field.
/// NOT injective — a 64-bit digest over arbitrarily long inputs cannot
/// be — which is why every cache entry also stores the independent
/// AnalysisVerifier digest and a lookup hits only when both match.
std::uint64_t AnalysisKey(std::span<const mbpta::PathObservation> observations,
                          const AnalysisConfig& config);

/// Second, independently constructed digest over the same inputs (a
/// Murmur3-finalizer combiner with a different traversal order). Stored
/// alongside each cache entry
/// so a key collision between distinct requests is detected instead of
/// silently serving another request's pWCET result.
std::uint64_t AnalysisVerifier(
    std::span<const mbpta::PathObservation> observations,
    const AnalysisConfig& config);

struct AnalysisOutcome {
  bool cache_hit = false;
  std::uint64_t key = 0;
  /// Deterministic result fields (usable, pwcet, sample_size, ...).
  Args result;
  /// Human-readable report (mbpta::RenderReport output).
  std::string report;
};

class AnalysisEngine {
 public:
  explicit AnalysisEngine(std::size_t cache_capacity = 128);

  /// Runs (or recalls) the analysis. Returns false + diagnostic for
  /// requests the pipeline cannot accept (sample too small, block size
  /// larger than the sample, ...) — never aborts on untrusted input.
  bool Analyze(std::span<const mbpta::PathObservation> observations,
               const AnalysisConfig& config, AnalysisOutcome* outcome,
               std::string* error);

  /// Warm fast path: answers from the cache if the result is already
  /// resident, without validating or running anything. A miss is not
  /// counted against the cache statistics (the subsequent Analyze counts
  /// it), so callers may probe freely before dispatching to a worker.
  bool TryServeCached(std::span<const mbpta::PathObservation> observations,
                      const AnalysisConfig& config, AnalysisOutcome* outcome);

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }

  /// Attaches a disk store: every entry inserted from now on (fresh
  /// analyses, INGEST kernel tables via InsertCached) is also persisted,
  /// so a restart warm-starts from it. The store must outlive the engine.
  /// Pass nullptr to detach. Not a write-back cache — the in-memory LRU
  /// stays authoritative for lookups.
  void AttachStore(PersistentResultCache* store) { store_ = store; }
  PersistentResultCache* store() { return store_; }

  /// Insert that writes through to the attached store (if any). All cache
  /// fills that should survive a restart go through here.
  void InsertCached(std::uint64_t key, std::uint64_t verifier,
                    std::string body);

 private:
  ResultCache cache_;
  PersistentResultCache* store_ = nullptr;
};

}  // namespace spta::service
