#include "service/fd_stream.hpp"

#include <unistd.h>

#include <cerrno>

namespace spta::service {
namespace {

constexpr std::size_t kBufferBytes = 1 << 16;

}  // namespace

FdStreambuf::FdStreambuf(int fd)
    : fd_(fd), in_buffer_(kBufferBytes), out_buffer_(kBufferBytes) {
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data());
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
}

FdStreambuf::int_type FdStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(fd_, in_buffer_.data(), in_buffer_.size());
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data() + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreambuf::FlushBuffer() {
  const char* data = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
  return true;
}

FdStreambuf::int_type FdStreambuf::overflow(int_type ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreambuf::sync() { return FlushBuffer() ? 0 : -1; }

}  // namespace spta::service
