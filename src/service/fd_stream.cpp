#include "service/fd_stream.hpp"

#include <unistd.h>

#include <cerrno>
#include <utility>

namespace spta::service {
namespace {

constexpr std::size_t kBufferBytes = 1 << 16;

/// Injected-EAGAIN retry budget: a short storm is survived, a persistent
/// one fails the stream instead of spinning. EINTR has no budget — the
/// POSIX contract is to retry it indefinitely.
constexpr int kInjectedEagainBudget = 8;

}  // namespace

FdStreambuf::FdStreambuf(int fd) : FdStreambuf(fd, IoFaultHook{}) {}

FdStreambuf::FdStreambuf(int fd, IoFaultHook hook)
    : fd_(fd),
      hook_(std::move(hook)),
      in_buffer_(kBufferBytes),
      out_buffer_(kBufferBytes) {
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data());
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
}

ssize_t FdStreambuf::GuardedIo(IoOp op, char* read_buf, const char* write_buf,
                               std::size_t count) {
  int injected_eagain = 0;
  for (;;) {
    std::size_t n = count;
    if (hook_) {
      const IoFault fault = hook_(op, count);
      if (fault.disconnect) {
        if (op == IoOp::kRead) return 0;  // peer closed: reader sees EOF
        errno = EPIPE;
        return -1;
      }
      if (fault.error != 0) {
        if (fault.error == EINTR) continue;
        if (fault.error == EAGAIN || fault.error == EWOULDBLOCK) {
          if (++injected_eagain <= kInjectedEagainBudget) continue;
          errno = EAGAIN;
          return -1;
        }
        errno = fault.error;
        return -1;
      }
      if (fault.cap < n && fault.cap > 0) n = fault.cap;
    }
    const ssize_t r = op == IoOp::kRead
                          ? ::read(fd_, read_buf, n)
                          : ::write(fd_, write_buf, n);
    if (r < 0 && errno == EINTR) continue;
    // Real EAGAIN/EWOULDBLOCK is the per-attempt deadline firing
    // (SO_RCVTIMEO/SO_SNDTIMEO) — fail the attempt, don't retry it away.
    return r;
  }
}

FdStreambuf::int_type FdStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  const ssize_t n =
      GuardedIo(IoOp::kRead, in_buffer_.data(), nullptr, in_buffer_.size());
  if (n <= 0) return traits_type::eof();
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data() + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreambuf::FlushBuffer() {
  const char* data = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    const ssize_t n = GuardedIo(IoOp::kWrite, nullptr, data, left);
    if (n <= 0) return false;
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
  return true;
}

FdStreambuf::int_type FdStreambuf::overflow(int_type ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreambuf::sync() { return FlushBuffer() ? 0 : -1; }

}  // namespace spta::service
