// Minimal iostream adapter over a POSIX file descriptor.
//
// The service's protocol layer speaks std::istream/std::ostream so it can
// be driven identically over a Unix socket, a pipe, or an in-memory
// stringstream in tests. This streambuf is the socket glue: buffered
// read()/write() with no third-party dependencies. One FdStreambuf serves
// one direction; a connection uses two over the same fd (reads and writes
// on a stream socket are independent).
#pragma once

#include <streambuf>
#include <vector>

namespace spta::service {

class FdStreambuf : public std::streambuf {
 public:
  /// Does NOT own `fd` (the connection loop closes it).
  explicit FdStreambuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool FlushBuffer();

  int fd_;
  std::vector<char> in_buffer_;
  std::vector<char> out_buffer_;
};

}  // namespace spta::service
