// Minimal iostream adapter over a POSIX file descriptor.
//
// The service's protocol layer speaks std::istream/std::ostream so it can
// be driven identically over a Unix socket, a pipe, or an in-memory
// stringstream in tests. This streambuf is the socket glue: buffered
// read()/write() with no third-party dependencies. One FdStreambuf serves
// one direction; a connection uses two over the same fd (reads and writes
// on a stream socket are independent).
//
// Syscall discipline (the resilience contract exercised by
// tests/fd_stream_fault_test.cpp):
//   - EINTR is always retried (a signal must never tear a frame),
//   - EAGAIN/EWOULDBLOCK from the kernel fails the stream (with
//     SO_RCVTIMEO/SO_SNDTIMEO installed it IS the per-attempt deadline;
//     retrying would defeat it),
//   - injected EAGAIN (via the fault hook below) is retried up to a small
//     budget, so a transient storm is survived but a persistent one fails
//     the stream instead of spinning forever,
//   - short reads/writes are looped to completion as POSIX requires.
#pragma once

#include <cstddef>
#include <functional>
#include <streambuf>
#include <vector>

namespace spta::service {

/// Direction of the syscall an I/O fault decision applies to.
enum class IoOp { kRead, kWrite };

/// What the fault hook wants done to one read()/write() call.
struct IoFault {
  /// Nonzero: the syscall is NOT issued; the stream behaves as if it
  /// failed with this errno (EINTR/EAGAIN follow the retry discipline
  /// above; anything else fails the stream).
  int error = 0;
  /// Caps the byte count passed to the syscall (models short reads and
  /// partial writes). Ignored when `error` or `disconnect` is set.
  std::size_t cap = static_cast<std::size_t>(-1);
  /// The peer vanished mid-frame: reads hit EOF, writes fail (as after
  /// ECONNRESET). Terminal for the stream.
  bool disconnect = false;

  bool None() const {
    return error == 0 && !disconnect && cap == static_cast<std::size_t>(-1);
  }
};

/// Test/fault-injection hook consulted before every syscall. Takes the
/// direction and the byte count about to be requested; returns the fault
/// to apply (IoFault{} = proceed untouched). Must be callable from the
/// connection's own thread only — no synchronization is provided.
using IoFaultHook = std::function<IoFault(IoOp, std::size_t)>;

class FdStreambuf : public std::streambuf {
 public:
  /// Does NOT own `fd` (the connection loop closes it).
  explicit FdStreambuf(int fd);
  /// `hook` (may be empty) is consulted before every syscall; see
  /// IoFaultHook. The zero-fault path (empty hook) is one branch per
  /// buffer refill/flush.
  FdStreambuf(int fd, IoFaultHook hook);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool FlushBuffer();
  /// Issues one read()/write() under the fault hook. Returns the byte
  /// count, 0 for EOF/disconnect, or -1 with errno set (EINTR/EAGAIN
  /// already retried per the discipline above — -1 is terminal).
  ssize_t GuardedIo(IoOp op, char* read_buf, const char* write_buf,
                    std::size_t count);

  int fd_;
  IoFaultHook hook_;
  std::vector<char> in_buffer_;
  std::vector<char> out_buffer_;
};

}  // namespace spta::service
