#include "service/frame_reader.hpp"

namespace spta::service {

FrameReassembler::Result FrameReassembler::Poison(std::string* error,
                                                  std::string message) {
  poisoned_ = true;
  poison_error_ = std::move(message);
  *error = poison_error_;
  return Result::kMalformed;
}

void FrameReassembler::Compact() {
  if (consumed_ >= 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameReassembler::Result FrameReassembler::Next(std::string* type,
                                                std::string* body,
                                                std::string* error) {
  if (poisoned_) {
    *error = poison_error_;
    return Result::kMalformed;
  }
  Compact();
  const std::string_view bank =
      std::string_view(buffer_).substr(consumed_);
  const std::size_t nl = bank.find('\n');
  if (nl == std::string_view::npos) {
    if (bank.size() > limits_.max_header_bytes) {
      return Poison(error, "frame header exceeds " +
                               std::to_string(limits_.max_header_bytes) +
                               " bytes");
    }
    return Result::kNeedMore;
  }
  // The header reparses on every call until the body is complete; it is a
  // bounded line, so that costs nothing next to the socket reads.
  std::uint64_t nbytes = 0;
  std::string parse_error;
  obs::TraceContext trace;
  if (!ParseFrameHeaderLine(bank.substr(0, nl), type, &nbytes,
                            &parse_error, &trace)) {
    return Poison(error, std::move(parse_error));
  }
  const std::string_view rest = bank.substr(nl + 1);
  if (rest.size() < nbytes) return Result::kNeedMore;
  body->assign(rest.substr(0, static_cast<std::size_t>(nbytes)));
  consumed_ += nl + 1 + static_cast<std::size_t>(nbytes);
  last_trace_ = trace;
  return Result::kFrame;
}

FrameReassembler::Result FrameReassembler::Finish(std::string* type,
                                                  std::string* body,
                                                  std::string* error) {
  const Result next = Next(type, body, error);
  if (next != Result::kNeedMore) return next;
  const std::string_view bank =
      std::string_view(buffer_).substr(consumed_);
  if (bank.empty()) return Result::kNeedMore;  // clean EOF between frames
  const std::size_t nl = bank.find('\n');
  std::uint64_t nbytes = 0;
  std::string parse_error;
  if (nl == std::string_view::npos) {
    // EOF terminates the header line, as getline's does for the blocking
    // reader; a declared-empty body then completes a whole frame.
    obs::TraceContext trace;
    if (!ParseFrameHeaderLine(bank, type, &nbytes, &parse_error, &trace)) {
      return Poison(error, std::move(parse_error));
    }
    if (nbytes == 0) {
      body->clear();
      consumed_ = buffer_.size();
      last_trace_ = trace;
      return Result::kFrame;
    }
    return Poison(error, "truncated frame body (wanted " +
                             std::to_string(nbytes) + " bytes, got 0)");
  }
  if (!ParseFrameHeaderLine(bank.substr(0, nl), type, &nbytes,
                            &parse_error)) {
    return Poison(error, std::move(parse_error));
  }
  const std::size_t got = bank.size() - (nl + 1);
  return Poison(error, "truncated frame body (wanted " +
                           std::to_string(nbytes) + " bytes, got " +
                           std::to_string(got) + ")");
}

}  // namespace spta::service
