// Incremental spta1 frame reassembly for non-blocking transports.
//
// The blocking readers in protocol.hpp pull bytes from an istream and may
// park a thread mid-frame — acceptable for thread-per-connection, fatal
// for an epoll event loop where one stalled read would freeze every
// connection on the shard. FrameReassembler is the event loop's answer:
// Feed() banks whatever slice the socket produced (a partial header, a
// split length prefix, three frames glued together) and Next() yields
// complete frames as they materialize, never blocking and never copying a
// body more than once.
//
// Semantics are pinned to the blocking reader's, byte for byte: the same
// headers are accepted, the same diagnostics are produced, and the
// split-point equivalence battery in tests/protocol_robustness_test.cpp
// feeds every golden frame through both readers at every byte boundary to
// prove it. The one deliberate addition is a bound on the header line
// (the blocking reader's getline would buffer an endless headerless
// stream; an event loop must cut such a connection off).
//
// A malformed frame poisons the reassembler: framing is lost, so every
// later call reports the same error and the connection must be dropped —
// exactly the "answer once, then stop reading" discipline ServeStream
// applies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "service/protocol.hpp"

namespace spta::service {

class FrameReassembler {
 public:
  enum class Result {
    kNeedMore,   ///< No complete frame banked yet (or clean EOF in Finish).
    kFrame,      ///< `type` and `body` hold the next frame.
    kMalformed,  ///< Framing lost; `error` diagnoses. Sticky.
  };

  struct Limits {
    /// Bytes a header line may span before the connection is cut off.
    std::size_t max_header_bytes = 4096;
  };

  FrameReassembler() = default;
  explicit FrameReassembler(Limits limits) : limits_(limits) {}

  /// Banks one received slice. Cheap (amortized one copy into the bank).
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame. Call until kNeedMore after every
  /// Feed — several frames may have arrived in one slice.
  Result Next(std::string* type, std::string* body, std::string* error);

  /// EOF edge: the peer closed its write half. Applies the blocking
  /// reader's end-of-stream semantics to whatever is still banked — a
  /// final header line needs no newline (getline treats EOF as a line
  /// terminator), a zero-length body completes, anything else is a
  /// truncated frame. kNeedMore here means a clean EOF between frames.
  Result Finish(std::string* type, std::string* body, std::string* error);

  /// True after any kMalformed: framing is unrecoverable on this stream.
  bool poisoned() const { return poisoned_; }

  /// Trace context of the most recent kFrame (invalid when its header
  /// carried no — or a malformed — `trace=` token). Matches what the
  /// blocking ReadRequest would have put on Request::trace for the same
  /// bytes; the split-point equivalence battery pins that too.
  const obs::TraceContext& last_trace() const { return last_trace_; }

  /// Bytes banked but not yet consumed by a returned frame.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Result Poison(std::string* error, std::string message);
  /// Reclaims consumed prefix bytes once they dominate the bank.
  void Compact();

  Limits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
  std::string poison_error_;
  obs::TraceContext last_trace_;
};

}  // namespace spta::service
