#include "service/metrics.hpp"

#include <sstream>

namespace spta::service {
namespace {

// Latency histogram shape: 40 bins over [0, 200ms). A cache hit lands in
// the first bin; a cold 3,000-sample analysis lands mid-range; anything
// pathological shows up in overflow() rather than being lost.
constexpr double kLatencyLoMicros = 0.0;
constexpr double kLatencyHiMicros = 200'000.0;
constexpr std::size_t kLatencyBins = 40;

}  // namespace

ServiceMetrics::ServiceMetrics()
    : hit_latency_(kLatencyLoMicros, kLatencyHiMicros, kLatencyBins),
      miss_latency_(kLatencyLoMicros, kLatencyHiMicros, kLatencyBins) {}

void ServiceMetrics::CountRequest(RequestKind kind, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++per_kind_[static_cast<int>(kind)];
  ++requests_;
  if (!ok) ++errors_;
}

void ServiceMetrics::CountBusyRejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++busy_rejections_;
}

void ServiceMetrics::CountDeadlineMiss() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++deadline_misses_;
}

void ServiceMetrics::CountProtocolError() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++protocol_errors_;
}

void ServiceMetrics::CountInjectedFaults(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  faults_injected_ += n;
}

void ServiceMetrics::CountDegradedSession() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++sessions_degraded_;
}

void ServiceMetrics::RecordAnalyzeLatency(double micros, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++analyses_;
  analyze_micros_total_ += micros;
  (cache_hit ? hit_latency_ : miss_latency_).Add(micros);
}

std::uint64_t ServiceMetrics::requests_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::uint64_t ServiceMetrics::errors_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

std::uint64_t ServiceMetrics::busy_rejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_rejections_;
}

std::uint64_t ServiceMetrics::deadline_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_misses_;
}

std::uint64_t ServiceMetrics::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

std::uint64_t ServiceMetrics::sessions_degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_degraded_;
}

Args ServiceMetrics::Snapshot(const ResultCache::Stats& cache) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Args args;
  args.SetUint("requests_total", requests_);
  args.SetUint("errors_total", errors_);
  args.SetUint("busy_rejections", busy_rejections_);
  args.SetUint("deadline_misses", deadline_misses_);
  args.SetUint("protocol_errors", protocol_errors_);
  args.SetUint("faults_injected", faults_injected_);
  args.SetUint("sessions_degraded", sessions_degraded_);
  args.SetUint("analyses_total", analyses_);
  args.SetUint("cache_hits", cache.hits);
  args.SetUint("cache_misses", cache.misses);
  args.SetUint("cache_evictions", cache.evictions);
  args.SetUint("cache_collisions", cache.collisions);
  args.SetUint("cache_size", cache.size);
  args.SetUint("cache_capacity", cache.capacity);
  args.SetDouble("cache_hit_ratio", cache.HitRatio());
  for (int i = 0; i < 8; ++i) {
    if (per_kind_[i] == 0) continue;
    args.SetUint(std::string("requests_") +
                     RequestKindName(static_cast<RequestKind>(i)),
                 per_kind_[i]);
  }
  return args;
}

std::string ServiceMetrics::Render(const ResultCache::Stats& cache) const {
  const Args snapshot = Snapshot(cache);
  std::ostringstream out;
  for (const auto& [key, value] : snapshot.values()) {
    out << key << ' ' << value << '\n';
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (analyses_ > 0) {
    out << "analyze_latency_mean_us "
        << analyze_micros_total_ / static_cast<double>(analyses_) << '\n';
  }
  if (miss_latency_.total() > 0) {
    out << "cold analyze latency (us):\n" << miss_latency_.Ascii(40);
  }
  if (hit_latency_.total() > 0) {
    out << "cache-hit analyze latency (us):\n" << hit_latency_.Ascii(40);
  }
  return out.str();
}

}  // namespace spta::service
