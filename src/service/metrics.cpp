#include "service/metrics.hpp"

#include <sstream>

#include "obs/atlas_counters.hpp"
#include "obs/prometheus.hpp"

namespace spta::service {

// The latency histogram shape is the shared spec in common/histogram.hpp
// (kLatencyBin*): one definition for the service's ASCII rendering, the
// Prometheus bucket edges, and any obs-layer consumer.
ServiceMetrics::ServiceMetrics()
    : hit_latency_(MakeLatencyHistogram()),
      miss_latency_(MakeLatencyHistogram()),
      queue_wait_(MakeLatencyHistogram()) {}

void ServiceMetrics::CountRequest(RequestKind kind, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++per_kind_[static_cast<int>(kind)];
  ++requests_;
  if (!ok) ++errors_;
}

void ServiceMetrics::CountBusyRejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++busy_rejections_;
}

void ServiceMetrics::CountDeadlineMiss() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++deadline_misses_;
}

void ServiceMetrics::CountProtocolError() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++protocol_errors_;
}

void ServiceMetrics::CountInjectedFaults(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  faults_injected_ += n;
}

void ServiceMetrics::CountDegradedSession() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++sessions_degraded_;
}

void ServiceMetrics::RecordAnalyzeLatency(double micros, bool cache_hit) {
  const std::uint64_t trace_id = obs::CurrentTraceContext().trace_id;
  std::lock_guard<std::mutex> lock(mutex_);
  ++analyses_;
  analyze_micros_total_ += micros;
  (cache_hit ? hit_micros_total_ : miss_micros_total_) += micros;
  (cache_hit ? hit_latency_ : miss_latency_).Add(micros);
  if (trace_id != 0) {
    (cache_hit ? hit_exemplar_ : miss_exemplar_) = {trace_id, micros};
  }
}

void ServiceMetrics::RecordQueueWait(double micros) {
  const std::uint64_t trace_id = obs::CurrentTraceContext().trace_id;
  std::lock_guard<std::mutex> lock(mutex_);
  ++queue_waits_;
  queue_wait_micros_total_ += micros;
  queue_wait_.Add(micros);
  if (trace_id != 0) queue_exemplar_ = {trace_id, micros};
}

std::uint64_t ServiceMetrics::requests_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::uint64_t ServiceMetrics::errors_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

std::uint64_t ServiceMetrics::busy_rejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_rejections_;
}

std::uint64_t ServiceMetrics::deadline_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_misses_;
}

std::uint64_t ServiceMetrics::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

std::uint64_t ServiceMetrics::sessions_degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_degraded_;
}

Args ServiceMetrics::Snapshot(const ResultCache::Stats& cache) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Args args;
  args.SetUint("requests_total", requests_);
  args.SetUint("errors_total", errors_);
  args.SetUint("busy_rejections", busy_rejections_);
  args.SetUint("deadline_misses", deadline_misses_);
  args.SetUint("protocol_errors", protocol_errors_);
  args.SetUint("faults_injected", faults_injected_);
  args.SetUint("sessions_degraded", sessions_degraded_);
  args.SetUint("analyses_total", analyses_);
  args.SetUint("queue_waits", queue_waits_);
  args.SetUint("cache_hits", cache.hits);
  args.SetUint("cache_misses", cache.misses);
  args.SetUint("cache_evictions", cache.evictions);
  args.SetUint("cache_collisions", cache.collisions);
  args.SetUint("cache_size", cache.size);
  args.SetUint("cache_capacity", cache.capacity);
  args.SetDouble("cache_hit_ratio", cache.HitRatio());
  for (int i = 0; i < kRequestKindCount; ++i) {
    if (per_kind_[i] == 0) continue;
    args.SetUint(std::string("requests_") +
                     RequestKindName(static_cast<RequestKind>(i)),
                 per_kind_[i]);
  }
  return args;
}

std::string ServiceMetrics::Render(const ResultCache::Stats& cache) const {
  const Args snapshot = Snapshot(cache);
  std::ostringstream out;
  for (const auto& [key, value] : snapshot.values()) {
    out << key << ' ' << value << '\n';
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (analyses_ > 0) {
    out << "analyze_latency_mean_us "
        << analyze_micros_total_ / static_cast<double>(analyses_) << '\n';
  }
  if (miss_latency_.total() > 0) {
    out << "cold analyze latency (us):\n" << miss_latency_.Ascii(40);
  }
  if (hit_latency_.total() > 0) {
    out << "cache-hit analyze latency (us):\n" << hit_latency_.Ascii(40);
  }
  return out.str();
}

std::string ServiceMetrics::RenderProm(
    const ResultCache::Stats& cache, const obs::Tracer::Stats& tracer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::PromText prom;
  const auto u = [](std::uint64_t v) { return static_cast<double>(v); };

  prom.Declare("spta_requests_total", "counter",
               "Requests served, all verbs.");
  prom.Sample("spta_requests_total", u(requests_));
  prom.Declare("spta_request_errors_total", "counter",
               "Requests answered ERR.");
  prom.Sample("spta_request_errors_total", u(errors_));
  prom.Declare("spta_requests_by_verb_total", "counter",
               "Requests served, by protocol verb.");
  for (int i = 0; i < kRequestKindCount; ++i) {
    if (per_kind_[i] == 0) continue;
    prom.Sample("spta_requests_by_verb_total",
                std::string("verb=\"") +
                    RequestKindName(static_cast<RequestKind>(i)) + "\"",
                u(per_kind_[i]));
  }
  prom.Declare("spta_busy_rejections_total", "counter",
               "ANALYZE requests rejected: bounded queue full.");
  prom.Sample("spta_busy_rejections_total", u(busy_rejections_));
  prom.Declare("spta_deadline_misses_total", "counter",
               "ANALYZE requests whose deadline expired in queue.");
  prom.Sample("spta_deadline_misses_total", u(deadline_misses_));
  prom.Declare("spta_protocol_errors_total", "counter",
               "Malformed frames received.");
  prom.Sample("spta_protocol_errors_total", u(protocol_errors_));
  prom.Declare("spta_faults_injected_total", "counter",
               "I/O faults fired by the fault-injection hook.");
  prom.Sample("spta_faults_injected_total", u(faults_injected_));
  prom.Declare("spta_sessions_degraded_total", "counter",
               "Connections ended degraded under injected faults.");
  prom.Sample("spta_sessions_degraded_total", u(sessions_degraded_));
  prom.Declare("spta_analyses_total", "counter",
               "ANALYZE requests that produced a result.");
  prom.Sample("spta_analyses_total", u(analyses_));

  prom.Declare("spta_cache_hits_total", "counter", "Result-cache hits.");
  prom.Sample("spta_cache_hits_total", u(cache.hits));
  prom.Declare("spta_cache_misses_total", "counter",
               "Result-cache misses.");
  prom.Sample("spta_cache_misses_total", u(cache.misses));
  prom.Declare("spta_cache_evictions_total", "counter",
               "Result-cache LRU evictions.");
  prom.Sample("spta_cache_evictions_total", u(cache.evictions));
  prom.Declare("spta_cache_collisions_total", "counter",
               "Result-cache key collisions detected (never served).");
  prom.Sample("spta_cache_collisions_total", u(cache.collisions));
  prom.Declare("spta_cache_entries", "gauge",
               "Result-cache entries resident.");
  prom.Sample("spta_cache_entries", u(cache.size));
  prom.Declare("spta_cache_capacity", "gauge",
               "Result-cache capacity (entries).");
  prom.Sample("spta_cache_capacity", u(cache.capacity));

  // Latencies in seconds (Prometheus base unit); the bins are the shared
  // microsecond spec scaled by 1e-6.
  prom.Declare("spta_analyze_latency_seconds", "histogram",
               "ANALYZE service time, split by result-cache outcome.");
  prom.HistogramSeries("spta_analyze_latency_seconds", "cache=\"hit\"",
                       hit_latency_, 1e-6, hit_micros_total_ * 1e-6);
  prom.Exemplar(hit_exemplar_.trace_id, hit_exemplar_.micros * 1e-6);
  prom.HistogramSeries("spta_analyze_latency_seconds", "cache=\"miss\"",
                       miss_latency_, 1e-6, miss_micros_total_ * 1e-6);
  prom.Exemplar(miss_exemplar_.trace_id, miss_exemplar_.micros * 1e-6);
  prom.Declare("spta_queue_wait_seconds", "histogram",
               "ANALYZE time spent queued before a worker picked it up.");
  prom.HistogramSeries("spta_queue_wait_seconds", "", queue_wait_, 1e-6,
                       queue_wait_micros_total_ * 1e-6);
  prom.Exemplar(queue_exemplar_.trace_id, queue_exemplar_.micros * 1e-6);

  // Atlas (columnar traces + kernel memoization) counters: process-wide
  // atomics fed by campaigns and the trace pack/unpack paths (INGEST, CLI).
  const obs::AtlasCountersSnapshot atlas = obs::AtlasCounters();
  prom.Declare("spta_atlas_kernel_hits_total", "counter",
               "Kernel iterations fast-forwarded from the kernel store.");
  prom.Sample("spta_atlas_kernel_hits_total", u(atlas.kernel_hits));
  prom.Declare("spta_atlas_kernel_misses_total", "counter",
               "Kernel iterations simulated and recorded.");
  prom.Sample("spta_atlas_kernel_misses_total", u(atlas.kernel_misses));
  prom.Declare("spta_atlas_kernel_bypasses_total", "counter",
               "Kernel iterations simulated with memoization bypassed.");
  prom.Sample("spta_atlas_kernel_bypasses_total", u(atlas.kernel_bypasses));
  prom.Declare("spta_atlas_kernel_inserts_total", "counter",
               "Kernel-store insertions.");
  prom.Sample("spta_atlas_kernel_inserts_total", u(atlas.kernel_inserts));
  prom.Declare("spta_atlas_fast_forwarded_records_total", "counter",
               "Trace records skipped by kernel fast-forwarding.");
  prom.Sample("spta_atlas_fast_forwarded_records_total",
              u(atlas.fast_forwarded_records));
  prom.Declare("spta_atlas_traces_packed_total", "counter",
               "Atlas trace containers written.");
  prom.Sample("spta_atlas_traces_packed_total", u(atlas.traces_packed));
  prom.Declare("spta_atlas_traces_unpacked_total", "counter",
               "Atlas trace containers decoded.");
  prom.Sample("spta_atlas_traces_unpacked_total", u(atlas.traces_unpacked));

  prom.Declare("spta_obs_trace_events_recorded_total", "counter",
               "Trace events retained in the in-process ring buffers.");
  prom.Sample("spta_obs_trace_events_recorded_total", u(tracer.recorded));
  prom.Declare("spta_obs_trace_events_dropped_total", "counter",
               "Trace events dropped by full ring buffers.");
  prom.Sample("spta_obs_trace_events_dropped_total", u(tracer.dropped));
  prom.Declare("spta_obs_trace_threads", "gauge",
               "Threads that have recorded trace events.");
  prom.Sample("spta_obs_trace_threads", u(tracer.threads));
  return prom.str();
}

}  // namespace spta::service
