// Service observability: request counters, rejection counters and latency
// histograms, dumpable on demand (METRICS request), scrapeable in
// Prometheus text format (METRICS_PROM request, --prom-out file export)
// and rendered at daemon exit.
//
// All counters are monotonic since process start. Latency is recorded in
// microseconds into fixed-bin histograms sharing the common/histogram
// latency bin spec (kLatencyBin*): one for cache-hit analyses, one for
// cache misses — the spread between the two IS the amortization story the
// service exists to tell — plus one for ANALYZE queue wait (submit to
// worker pickup), the backpressure signal.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/histogram.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"

namespace spta::service {

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Counts one finished request of `kind` (ok = the response was OK).
  void CountRequest(RequestKind kind, bool ok);

  /// Counts an ANALYZE rejected because the bounded queue was full.
  void CountBusyRejection();

  /// Counts an ANALYZE rejected because its deadline expired in queue.
  void CountDeadlineMiss();

  /// Counts a malformed frame (framing errors don't map to a verb).
  void CountProtocolError();

  /// Counts `n` injected I/O faults fired on a connection (fault-injection
  /// hook active; see ServerOptions::io_fault_hook_factory).
  void CountInjectedFaults(std::uint64_t n);

  /// Counts a connection that ended degraded: injected faults fired and the
  /// stream terminated without a clean SHUTDOWN handshake.
  void CountDegradedSession();

  /// Records the wall-clock service time of one ANALYZE. When the calling
  /// thread carries a distributed trace context, the observation becomes
  /// the histogram's current exemplar (`# {trace_id="..."} value` in the
  /// Prometheus rendering) — last traced observation wins.
  void RecordAnalyzeLatency(double micros, bool cache_hit);

  /// Records the time one ANALYZE spent queued before a worker picked it
  /// up (0 for the inline cache-hit fast path, which never queues).
  /// Captures a trace exemplar like RecordAnalyzeLatency.
  void RecordQueueWait(double micros);

  std::uint64_t requests_total() const;
  std::uint64_t errors_total() const;
  std::uint64_t busy_rejections() const;
  std::uint64_t deadline_misses() const;
  std::uint64_t faults_injected() const;
  std::uint64_t sessions_degraded() const;

  /// Renders the whole surface (plus the cache's counters) as stable
  /// `key value` lines followed by the latency histograms in ASCII.
  /// Line order is pinned: the Snapshot() keys in Snapshot's documented
  /// order, then `analyze_latency_mean_us` (when analyses ran), then the
  /// cold and cache-hit ASCII histograms. Golden-tested in service_test.
  std::string Render(const ResultCache::Stats& cache) const;

  /// Key/value subset of Render() for machine consumption in a response
  /// args block.
  ///
  /// Key order contract (golden-tested; scrapers and dashboards may rely
  /// on it): Args encodes via std::map, so keys iterate in byte-wise
  /// lexicographic order —
  ///   analyses_total, busy_rejections, cache_capacity, cache_collisions,
  ///   cache_evictions, cache_hit_ratio, cache_hits, cache_misses,
  ///   cache_size, deadline_misses, errors_total, faults_injected,
  ///   protocol_errors, queue_waits, requests_<VERB>*, requests_total,
  ///   sessions_degraded
  /// (* = requests_<VERB> keys appear only for verbs with a nonzero count,
  /// themselves in lexicographic order, and all sort before requests_total
  /// because verb names are upper-case.)
  /// Adding a key is allowed; reordering or renaming existing keys is a
  /// breaking change to the wire surface.
  Args Snapshot(const ResultCache::Stats& cache) const;

  /// Renders the full observability surface in Prometheus text exposition
  /// format (version 0.0.4): request/error/rejection counters, per-verb
  /// requests, cache counters and gauges, the hit/miss ANALYZE latency
  /// histograms (seconds, label cache="hit"|"miss"), the queue-wait
  /// histogram, fault-injection counters, and the trace-collector stats
  /// passed in `tracer`. Metric names and types are documented in
  /// docs/OBSERVABILITY.md and pinned by service_test.
  std::string RenderProm(const ResultCache::Stats& cache,
                         const obs::Tracer::Stats& tracer) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t per_kind_[kRequestKindCount] = {};
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t sessions_degraded_ = 0;
  std::uint64_t analyses_ = 0;
  double analyze_micros_total_ = 0.0;
  double hit_micros_total_ = 0.0;   ///< Sum over hit_latency_ adds.
  double miss_micros_total_ = 0.0;  ///< Sum over miss_latency_ adds.
  std::uint64_t queue_waits_ = 0;
  double queue_wait_micros_total_ = 0.0;
  Histogram hit_latency_;   ///< Cache-hit ANALYZE latency (us).
  Histogram miss_latency_;  ///< Cold ANALYZE latency (us).
  Histogram queue_wait_;    ///< ANALYZE queue wait (us).

  /// Last traced observation per histogram: the Prometheus exemplar.
  struct LatencyExemplar {
    std::uint64_t trace_id = 0;  ///< 0 = no traced observation yet.
    double micros = 0.0;
  };
  LatencyExemplar hit_exemplar_;
  LatencyExemplar miss_exemplar_;
  LatencyExemplar queue_exemplar_;
};

}  // namespace spta::service
