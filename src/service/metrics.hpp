// Service observability: request counters, rejection counters and latency
// histograms, dumpable on demand (METRICS request) and at daemon exit.
//
// All counters are monotonic since process start. Latency is recorded in
// microseconds into two fixed-bin histograms (common/histogram): one for
// cache-hit analyses, one for cache misses — the spread between the two IS
// the amortization story the service exists to tell.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/histogram.hpp"
#include "service/protocol.hpp"
#include "service/result_cache.hpp"

namespace spta::service {

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Counts one finished request of `kind` (ok = the response was OK).
  void CountRequest(RequestKind kind, bool ok);

  /// Counts an ANALYZE rejected because the bounded queue was full.
  void CountBusyRejection();

  /// Counts an ANALYZE rejected because its deadline expired in queue.
  void CountDeadlineMiss();

  /// Counts a malformed frame (framing errors don't map to a verb).
  void CountProtocolError();

  /// Counts `n` injected I/O faults fired on a connection (fault-injection
  /// hook active; see ServerOptions::io_fault_hook_factory).
  void CountInjectedFaults(std::uint64_t n);

  /// Counts a connection that ended degraded: injected faults fired and the
  /// stream terminated without a clean SHUTDOWN handshake.
  void CountDegradedSession();

  /// Records the wall-clock service time of one ANALYZE.
  void RecordAnalyzeLatency(double micros, bool cache_hit);

  std::uint64_t requests_total() const;
  std::uint64_t errors_total() const;
  std::uint64_t busy_rejections() const;
  std::uint64_t deadline_misses() const;
  std::uint64_t faults_injected() const;
  std::uint64_t sessions_degraded() const;

  /// Renders the whole surface (plus the cache's counters) as stable
  /// `key value` lines followed by the two latency histograms in ASCII.
  std::string Render(const ResultCache::Stats& cache) const;

  /// Key/value subset of Render() for machine consumption in a response
  /// args block.
  Args Snapshot(const ResultCache::Stats& cache) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t per_kind_[8] = {};
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t sessions_degraded_ = 0;
  std::uint64_t analyses_ = 0;
  double analyze_micros_total_ = 0.0;
  Histogram hit_latency_;   ///< Cache-hit ANALYZE latency (us).
  Histogram miss_latency_;  ///< Cold ANALYZE latency (us).
};

}  // namespace spta::service
