#include "service/persistent_cache.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/atomic_file.hpp"

namespace spta::service {
namespace {

constexpr std::string_view kEntryMagic = "sptac1";
constexpr std::string_view kEntrySuffix = ".sptac";

std::string Hex16(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ParseHex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

bool ParseDecimal(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

DualHash PersistentResultCache::BodyDigest(std::string_view body) {
  return HashBytes(body);
}

std::string PersistentResultCache::EntryFileName(std::uint64_t key) {
  return Hex16(key) + std::string(kEntrySuffix);
}

std::string PersistentResultCache::EncodeEntry(std::uint64_t key,
                                               std::uint64_t verifier,
                                               std::string_view body) {
  const DualHash digest = BodyDigest(body);
  std::string out;
  out.reserve(body.size() + 96);
  out.append(kEntryMagic);
  out.push_back(' ');
  out += Hex16(key);
  out.push_back(' ');
  out += Hex16(verifier);
  out.push_back(' ');
  out += std::to_string(body.size());
  out.push_back(' ');
  out += Hex16(digest.lo);
  out.push_back(' ');
  out += Hex16(digest.hi);
  out.push_back('\n');
  out.append(body);
  return out;
}

bool PersistentResultCache::DecodeEntry(std::string_view contents,
                                        std::uint64_t* key,
                                        std::uint64_t* verifier,
                                        std::string* body) {
  const std::size_t nl = contents.find('\n');
  if (nl == std::string_view::npos) return false;
  const std::string_view header = contents.substr(0, nl);
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < header.size()) {
    const std::size_t end = header.find(' ', pos);
    tokens.push_back(header.substr(
        pos, (end == std::string_view::npos ? header.size() : end) - pos));
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  if (tokens.size() != 6 || tokens[0] != kEntryMagic) return false;
  std::uint64_t nbytes = 0;
  DualHash recorded;
  if (!ParseHex16(tokens[1], key) || !ParseHex16(tokens[2], verifier) ||
      !ParseDecimal(tokens[3], &nbytes) ||
      !ParseHex16(tokens[4], &recorded.lo) ||
      !ParseHex16(tokens[5], &recorded.hi)) {
    return false;
  }
  const std::string_view raw = contents.substr(nl + 1);
  // Exact-length check: a truncated OR padded file is equally invalid.
  if (raw.size() != nbytes) return false;
  if (BodyDigest(raw) != recorded) return false;
  body->assign(raw);
  return true;
}

void PersistentResultCache::ForgetLocked(std::uint64_t key) {
  const auto it = sizes_.find(key);
  if (it == sizes_.end()) return;
  total_bytes_ -= std::min(total_bytes_, it->second.bytes);
  lru_.erase(it->second.where);
  sizes_.erase(it);
}

void PersistentResultCache::RememberLocked(std::uint64_t key,
                                           std::uint64_t bytes) {
  ForgetLocked(key);
  lru_.push_back(key);
  sizes_[key] = IndexEntry{std::prev(lru_.end()), bytes};
  total_bytes_ += bytes;
}

bool PersistentResultCache::EvictOneLocked() {
  if (lru_.empty()) return false;
  const std::uint64_t victim = lru_.front();
  const std::uint64_t bytes = sizes_.at(victim).bytes;
  // A single unlink is the whole eviction: atomic, crash-safe, and a
  // racing reader that already opened the file keeps its (valid) copy.
  const std::string path = dir_ + "/" + EntryFileName(victim);
  ::unlink(path.c_str());
  ForgetLocked(victim);
  ++stats_.evicted;
  stats_.evicted_bytes += bytes;
  return true;
}

bool PersistentResultCache::Put(std::uint64_t key, std::uint64_t verifier,
                                std::string_view body) {
  const std::string contents = EncodeEntry(key, verifier, body);
  const std::string path = dir_ + "/" + EntryFileName(key);
  const std::uint64_t entry_bytes = contents.size();
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.degraded != 0) return false;  // Sticky memory-only mode.
  // Overwriting an existing key frees its old footprint first, so the
  // budget math below sees the true post-write total.
  ForgetLocked(key);
  if (limits_.max_bytes > 0) {
    while (total_bytes_ + entry_bytes > limits_.max_bytes &&
           EvictOneLocked()) {
    }
  }
  bool simulated_enospc =
      limits_.quota_bytes > 0 &&
      total_bytes_ + entry_bytes > limits_.quota_bytes;
  std::string error;
  errno = 0;
  bool ok = !simulated_enospc && AtomicWriteFile(path, contents, &error);
  int saved_errno = simulated_enospc ? ENOSPC : errno;
  if (!ok && (saved_errno == ENOSPC || saved_errno == EDQUOT)) {
    // Full device: reclaim the oldest entry and retry exactly once. More
    // aggressive reclamation is pointless — if one eviction doesn't make
    // room for one entry, the device is full of someone else's data.
    if (EvictOneLocked()) {
      simulated_enospc = limits_.quota_bytes > 0 &&
                         total_bytes_ + entry_bytes > limits_.quota_bytes;
      errno = 0;
      ok = !simulated_enospc && AtomicWriteFile(path, contents, &error);
      saved_errno = simulated_enospc ? ENOSPC : errno;
    }
  }
  if (!ok) {
    ++stats_.store_failures;
    if (saved_errno == ENOSPC || saved_errno == EDQUOT) {
      ++stats_.enospc_failures;
      stats_.degraded = 1;
    } else if (saved_errno == EIO) {
      ++stats_.eio_failures;
      stats_.degraded = 1;
    }
    return false;
  }
  RememberLocked(key, entry_bytes);
  ++stats_.stored;
  return true;
}

std::size_t PersistentResultCache::LoadAll(
    const std::function<void(std::uint64_t, std::uint64_t, std::string)>&
        sink) {
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(dir_.c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string_view name = entry->d_name;
      if (name.size() > kEntrySuffix.size() &&
          name.substr(name.size() - kEntrySuffix.size()) == kEntrySuffix) {
        names.emplace_back(name);
      }
    }
    ::closedir(dir);
  }
  // readdir order is filesystem-dependent; sort so which entries survive
  // the load_max_entries cap is deterministic across runs and machines.
  std::sort(names.begin(), names.end());
  std::size_t fed = 0;
  std::uint64_t considered = 0;
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    // Size gate by stat() BEFORE reading: an oversized (possibly
    // adversarial) file must not be pulled into memory at all.
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejected;
      continue;
    }
    if (static_cast<std::uint64_t>(st.st_size) >
        limits_.load_max_entry_bytes) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.load_skipped_oversize;
      continue;
    }
    if (considered >= limits_.load_max_entries) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.load_skipped_overflow;
      continue;
    }
    ++considered;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    std::uint64_t key = 0;
    std::uint64_t verifier = 0;
    std::string body;
    if (!in || !DecodeEntry(contents.str(), &key, &verifier, &body)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejected;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.loaded;
      // Seed the eviction index so a warm-started store knows its
      // footprint; load order stands in for write order.
      RememberLocked(key, static_cast<std::uint64_t>(st.st_size));
    }
    // Sink runs unlocked: it may itself store (re-encode) entries.
    sink(key, verifier, std::move(body));
    ++fed;
  }
  return fed;
}

bool PersistentResultCache::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.degraded != 0;
}

PersistentResultCache::Stats PersistentResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace spta::service
