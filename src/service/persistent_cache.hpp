// Disk-backed layer under the in-memory result cache: warm restarts.
//
// Every finished analysis (and every mined INGEST kernel table) already
// lives in the ResultCache as (key, verifier, rendered body). This store
// writes each such entry to its own file under a cache directory and
// reads them all back at startup, so a restarted daemon serves its first
// repeat request from cache instead of re-running the EVT pipeline — the
// fleet's warm-start story.
//
// File-per-entry, named by the key digest, written through
// common::AtomicWriteFile (tmp + fsync + rename): a crash mid-write
// leaves either the complete old entry or the complete new one, never a
// hybrid, and concurrent daemons sharing one directory (SO_REUSEPORT
// fleet members) cannot tear each other's files because the tmp names
// are pid-qualified. Loading trusts nothing: each file re-derives the
// body digest recorded in its header and a mismatched, truncated or
// otherwise mangled entry is rejected and counted — a corrupt file is
// recomputed on demand, never served.
//
// Entry format (one header line, then the raw body bytes):
//
//   sptac1 <key:16hex> <verifier:16hex> <nbytes> <digest_lo:16hex> <digest_hi:16hex>\n
//   <nbytes bytes of body>
//
// where digest_lo/hi are the common::DualHash of the body bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/hash.hpp"

namespace spta::service {

class PersistentResultCache {
 public:
  struct Stats {
    std::uint64_t loaded = 0;    ///< Entries restored by LoadAll.
    std::uint64_t rejected = 0;  ///< Corrupt/truncated files refused.
    std::uint64_t stored = 0;    ///< Entries written this process.
    std::uint64_t store_failures = 0;
  };

  /// The directory must already exist (callers own directory policy).
  explicit PersistentResultCache(std::string dir) : dir_(std::move(dir)) {}

  /// Persists one cache entry; false (and a counted failure) when the
  /// filesystem refuses. Thread-safe.
  bool Put(std::uint64_t key, std::uint64_t verifier, std::string_view body);

  /// Scans the directory and feeds every VALIDATED entry to `sink`;
  /// returns how many were fed. Invalid files are counted, skipped and
  /// left in place (an operator may want the evidence); they are
  /// overwritten whenever their key is recomputed.
  std::size_t LoadAll(
      const std::function<void(std::uint64_t key, std::uint64_t verifier,
                               std::string body)>& sink);

  Stats stats() const;
  const std::string& dir() const { return dir_; }

  /// Filename an entry lands under (inside dir): "<key:16hex>.sptac".
  static std::string EntryFileName(std::uint64_t key);

  /// Serialization, exposed so tests can forge corrupt entries.
  static std::string EncodeEntry(std::uint64_t key, std::uint64_t verifier,
                                 std::string_view body);
  /// Strict inverse; false on any header/length/digest mismatch.
  static bool DecodeEntry(std::string_view contents, std::uint64_t* key,
                          std::uint64_t* verifier, std::string* body);

  /// The integrity digest over an entry's body bytes.
  static DualHash BodyDigest(std::string_view body);

 private:
  std::string dir_;
  mutable std::mutex mutex_;
  Stats stats_;
};

}  // namespace spta::service
