// Disk-backed layer under the in-memory result cache: warm restarts.
//
// Every finished analysis (and every mined INGEST kernel table) already
// lives in the ResultCache as (key, verifier, rendered body). This store
// writes each such entry to its own file under a cache directory and
// reads them all back at startup, so a restarted daemon serves its first
// repeat request from cache instead of re-running the EVT pipeline — the
// fleet's warm-start story.
//
// File-per-entry, named by the key digest, written through
// common::AtomicWriteFile (tmp + fsync + rename): a crash mid-write
// leaves either the complete old entry or the complete new one, never a
// hybrid, and concurrent daemons sharing one directory (SO_REUSEPORT
// fleet members) cannot tear each other's files because the tmp names
// are pid-qualified. Loading trusts nothing: each file re-derives the
// body digest recorded in its header and a mismatched, truncated or
// otherwise mangled entry is rejected and counted — a corrupt file is
// recomputed on demand, never served.
//
// The store is bounded and self-protecting:
//   * Limits::max_bytes caps the on-disk footprint; overshoot evicts the
//     least-recently-written entries (eviction = one atomic unlink, so a
//     crash mid-eviction loses nothing but already-doomed entries).
//   * Real ENOSPC/EDQUOT (or the simulated quota_bytes device used by
//     the chaos harness) triggers one evict-and-retry; a second failure
//     counts a typed enospc failure and degrades the store sticky to
//     memory-only — the daemon keeps serving, it just stops persisting.
//     EIO degrades the same way. A full or dying disk never aborts the
//     process and never serves a corrupt entry.
//   * LoadAll refuses pathological directories: entries above
//     Limits::load_max_entry_bytes are skipped by stat() without being
//     read, and at most Limits::load_max_entries files are decoded — a
//     wedged or adversarial cache dir cannot OOM a warm start.
//
// Entry format (one header line, then the raw body bytes):
//
//   sptac1 <key:16hex> <verifier:16hex> <nbytes> <digest_lo:16hex> <digest_hi:16hex>\n
//   <nbytes bytes of body>
//
// where digest_lo/hi are the common::DualHash of the body bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/hash.hpp"

namespace spta::service {

class PersistentResultCache {
 public:
  /// Bounds on the store. Zero means "unlimited" for the byte caps; the
  /// load caps always apply (their defaults are generous, not infinite).
  struct Limits {
    /// On-disk budget; exceeding it evicts least-recently-written
    /// entries. 0 = unbounded (legacy behavior).
    std::uint64_t max_bytes = 0;
    /// Simulated device capacity for fault injection: a Put that would
    /// push the tracked footprint past this behaves exactly like the
    /// filesystem returning ENOSPC. 0 = no simulation.
    std::uint64_t quota_bytes = 0;
    /// LoadAll skips (and counts) any entry file larger than this
    /// without reading it.
    std::uint64_t load_max_entry_bytes = 80ull * 1024 * 1024;
    /// LoadAll decodes at most this many entry files; the rest are
    /// counted as skipped.
    std::uint64_t load_max_entries = 65536;
  };

  struct Stats {
    std::uint64_t loaded = 0;    ///< Entries restored by LoadAll.
    std::uint64_t rejected = 0;  ///< Corrupt/truncated files refused.
    std::uint64_t stored = 0;    ///< Entries written this process.
    std::uint64_t store_failures = 0;
    std::uint64_t evicted = 0;        ///< Entries unlinked to stay in budget.
    std::uint64_t evicted_bytes = 0;  ///< Bytes reclaimed by eviction.
    std::uint64_t enospc_failures = 0;  ///< ENOSPC/EDQUOT Puts (post-retry).
    std::uint64_t eio_failures = 0;     ///< EIO Puts.
    std::uint64_t degraded = 0;  ///< Sticky 0/1: store gave up persisting.
    std::uint64_t load_skipped_oversize = 0;  ///< Files over the entry cap.
    std::uint64_t load_skipped_overflow = 0;  ///< Files over the count cap.
  };

  /// The directory must already exist (callers own directory policy).
  explicit PersistentResultCache(std::string dir) : dir_(std::move(dir)) {}
  PersistentResultCache(std::string dir, Limits limits)
      : dir_(std::move(dir)), limits_(limits) {}

  /// Persists one cache entry; false (and a counted failure) when the
  /// filesystem refuses or the store has degraded to memory-only.
  /// Thread-safe.
  bool Put(std::uint64_t key, std::uint64_t verifier, std::string_view body);

  /// Scans the directory and feeds every VALIDATED entry to `sink`;
  /// returns how many were fed. Invalid files are counted, skipped and
  /// left in place (an operator may want the evidence); they are
  /// overwritten whenever their key is recomputed. Valid entries seed
  /// the eviction index, so a warm-started store stays within budget.
  std::size_t LoadAll(
      const std::function<void(std::uint64_t key, std::uint64_t verifier,
                               std::string body)>& sink);

  Stats stats() const;
  const std::string& dir() const { return dir_; }
  const Limits& limits() const { return limits_; }

  /// True once the store has given up persisting (sticky). The in-memory
  /// cache above it is unaffected.
  bool degraded() const;

  /// Filename an entry lands under (inside dir): "<key:16hex>.sptac".
  static std::string EntryFileName(std::uint64_t key);

  /// Serialization, exposed so tests can forge corrupt entries.
  static std::string EncodeEntry(std::uint64_t key, std::uint64_t verifier,
                                 std::string_view body);
  /// Strict inverse; false on any header/length/digest mismatch.
  static bool DecodeEntry(std::string_view contents, std::uint64_t* key,
                          std::uint64_t* verifier, std::string* body);

  /// The integrity digest over an entry's body bytes.
  static DualHash BodyDigest(std::string_view body);

 private:
  /// Unlinks the least-recently-written entry; false when none remain.
  /// Caller holds mutex_.
  bool EvictOneLocked();
  /// Drops `key` from the index/footprint (entry being overwritten or
  /// evicted). Caller holds mutex_.
  void ForgetLocked(std::uint64_t key);
  /// Records `key` at `bytes` as most-recently-written. Caller holds
  /// mutex_.
  void RememberLocked(std::uint64_t key, std::uint64_t bytes);

  std::string dir_;
  Limits limits_;
  mutable std::mutex mutex_;
  Stats stats_;
  /// Write-order LRU: front = oldest write, back = newest. Entries only
  /// (no tombstones); sizes_ is the authoritative membership set.
  std::list<std::uint64_t> lru_;
  struct IndexEntry {
    std::list<std::uint64_t>::iterator where;
    std::uint64_t bytes = 0;
  };
  std::unordered_map<std::uint64_t, IndexEntry> sizes_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace spta::service
