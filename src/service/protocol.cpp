#include "service/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace spta::service {
namespace {

constexpr std::string_view kMagic = "spta1";

const char* const kKindNames[] = {"PING",    "OPEN",         "APPEND",
                                  "STATUS",  "ANALYZE",      "CLOSE",
                                  "METRICS", "METRICS_PROM", "SHUTDOWN",
                                  "INGEST",  "HEALTH",       "TRACE"};
static_assert(static_cast<int>(std::size(kKindNames)) == kRequestKindCount,
              "wire names must cover every RequestKind");

/// Reads one `\n`-terminated line; false on EOF-before-any-byte.
bool GetLine(std::istream& in, std::string* line) {
  line->clear();
  return static_cast<bool>(std::getline(in, *line));
}

bool ParseUint(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Common frame writer: TYPE is the verb or OK/ERR. A valid `trace`
/// context rides as the optional fourth header token; an invalid one
/// leaves the header byte-identical to the pre-tracing format.
bool WriteFrame(std::ostream& out, std::string_view type, const Args& args,
                const std::string& payload,
                const obs::TraceContext& trace = {}) {
  std::string body = args.Encode();
  body.push_back('\n');
  body += payload;
  out << kMagic << ' ' << type << ' ' << body.size();
  if (trace.valid()) out << " trace=" << obs::EncodeTraceContext(trace);
  out << '\n';
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  return static_cast<bool>(out);
}

/// Common frame reader: yields the TYPE token and splits the body into the
/// args line and the payload remainder.
ReadStatus ReadFrame(std::istream& in, std::string* type, Args* args,
                     std::string* payload, std::string* error,
                     obs::TraceContext* trace = nullptr) {
  std::string header;
  if (!GetLine(in, &header)) return ReadStatus::kEof;
  std::uint64_t nbytes = 0;
  if (!ParseFrameHeaderLine(header, type, &nbytes, error, trace)) {
    return ReadStatus::kMalformed;
  }
  std::string body(static_cast<std::size_t>(nbytes), '\0');
  in.read(body.data(), static_cast<std::streamsize>(nbytes));
  if (static_cast<std::uint64_t>(in.gcount()) != nbytes) {
    *error = "truncated frame body (wanted " + std::to_string(nbytes) +
             " bytes, got " + std::to_string(in.gcount()) + ")";
    return ReadStatus::kMalformed;
  }
  SplitFrameBody(body, args, payload);
  return ReadStatus::kOk;
}

}  // namespace

bool ParseFrameHeaderLine(std::string_view header, std::string* type,
                          std::uint64_t* nbytes, std::string* error,
                          obs::TraceContext* trace) {
  // Tokenization mirrors istream extraction: any whitespace separates,
  // tokens past the third are ignored. (A trailing '\r' from a CRLF client
  // therefore separates cleanly instead of corrupting the length token.)
  // Manual scan rather than find_first_of: the header is parsed on every
  // frame, and the character-set search costs ~5x a direct class check on
  // trace-token-bearing headers.
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
           c == '\r';
  };
  if (trace != nullptr) *trace = obs::TraceContext();
  std::string_view tokens[3];
  std::size_t found = 0;
  std::size_t pos = 0;
  for (;;) {
    while (pos < header.size() && is_ws(header[pos])) ++pos;
    if (pos >= header.size()) break;
    const std::size_t begin = pos;
    while (pos < header.size() && !is_ws(header[pos])) ++pos;
    const std::string_view token = header.substr(begin, pos - begin);
    if (found < 3) {
      tokens[found++] = token;
      continue;
    }
    // Extra tokens stay ignored for framing purposes, but the first
    // `trace=` one (if any) is offered to the lenient context parser.
    // Scanning continues even when an earlier trace token parsed invalid:
    // leniency means junk is skipped, not that it shadows a good copy.
    if (trace == nullptr) break;
    if (trace->valid()) break;
    constexpr std::string_view kTracePrefix = "trace=";
    if (token.size() > kTracePrefix.size() &&
        token.substr(0, kTracePrefix.size()) == kTracePrefix) {
      *trace = obs::ParseTraceContext(token.substr(kTracePrefix.size()));
    }
  }
  if (found < 3 || tokens[0] != kMagic) {
    *error = "bad frame header '" + std::string(header) + "'";
    return false;
  }
  if (!ParseUint(tokens[2], nbytes)) {
    *error = "bad frame length '" + std::string(tokens[2]) + "'";
    return false;
  }
  if (*nbytes > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(*nbytes) + " exceeds limit";
    return false;
  }
  *type = std::string(tokens[1]);
  return true;
}

void SplitFrameBody(std::string_view body, Args* args, std::string* payload) {
  const auto nl = body.find('\n');
  if (nl == std::string_view::npos) {
    *args = Args::Parse(body);
    payload->clear();
  } else {
    *args = Args::Parse(body.substr(0, nl));
    payload->assign(body.substr(nl + 1));
  }
}

bool BuildRequest(std::string_view type, std::string_view body,
                  Request* request, std::string* error) {
  const auto kind = ParseRequestKind(type);
  if (!kind.has_value()) {
    *error = "unknown request verb '" + std::string(type) + "'";
    return false;
  }
  request->kind = *kind;
  SplitFrameBody(body, &request->args, &request->payload);
  return true;
}

namespace {

void AppendFrame(std::string_view type, const Args& args,
                 const std::string& payload, std::string* out,
                 const obs::TraceContext& trace = {}) {
  std::string body = args.Encode();
  body.push_back('\n');
  body += payload;
  out->append(kMagic);
  out->push_back(' ');
  out->append(type);
  out->push_back(' ');
  out->append(std::to_string(body.size()));
  if (trace.valid()) {
    out->append(" trace=");
    out->append(obs::EncodeTraceContext(trace));
  }
  out->push_back('\n');
  out->append(body);
}

}  // namespace

void AppendRequestFrame(const Request& request, std::string* out) {
  AppendFrame(RequestKindName(request.kind), request.args, request.payload,
              out);
}

void AppendRequestFrameWithTrace(const Request& request, std::string* out) {
  AppendFrame(RequestKindName(request.kind), request.args, request.payload,
              out, request.trace);
}

void AppendResponseFrame(const Response& response, std::string* out) {
  AppendFrame(response.ok ? "OK" : "ERR", response.args, response.payload,
              out);
}

const char* RequestKindName(RequestKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

std::optional<RequestKind> ParseRequestKind(std::string_view name) {
  for (int i = 0; i < static_cast<int>(std::size(kKindNames)); ++i) {
    if (name == kKindNames[i]) return static_cast<RequestKind>(i);
  }
  return std::nullopt;
}

Args Args::Parse(std::string_view line) {
  Args args;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // skip malformed
    args.values_[std::string(token.substr(0, eq))] =
        std::string(token.substr(eq + 1));
  }
  return args;
}

void Args::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Args::SetUint(const std::string& key, std::uint64_t value) {
  values_[key] = std::to_string(value);
}

void Args::SetDouble(const std::string& key, double value) {
  values_[key] = EncodeDouble(value);
}

void Args::Erase(const std::string& key) { values_.erase(key); }

bool Args::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::GetString(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t Args::GetUint(const std::string& key,
                            std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::uint64_t value = 0;
  return ParseUint(it->second, &value) ? value : fallback;
}

double Args::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str() && *end == '\0') ? value : fallback;
}

bool Args::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true";
}

std::string Args::Encode() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out.push_back(' ');
    out += key;
    out.push_back('=');
    out += value;
  }
  return out;
}

Response OkResponse(Args args, std::string payload) {
  Response r;
  r.ok = true;
  r.args = std::move(args);
  r.payload = std::move(payload);
  return r;
}

Response ErrResponse(const std::string& code, const std::string& message) {
  Response r;
  r.ok = false;
  r.args.Set("code", code);
  r.payload = message;
  return r;
}

bool WriteRequest(std::ostream& out, const Request& request) {
  return WriteFrame(out, RequestKindName(request.kind), request.args,
                    request.payload, request.trace);
}

bool WriteResponse(std::ostream& out, const Response& response) {
  return WriteFrame(out, response.ok ? "OK" : "ERR", response.args,
                    response.payload);
}

ReadStatus ReadRequest(std::istream& in, Request* request,
                       std::string* error) {
  std::string verb;
  const ReadStatus status = ReadFrame(in, &verb, &request->args,
                                      &request->payload, error,
                                      &request->trace);
  if (status != ReadStatus::kOk) return status;
  const auto kind = ParseRequestKind(verb);
  if (!kind.has_value()) {
    *error = "unknown request verb '" + verb + "'";
    return ReadStatus::kMalformed;
  }
  request->kind = *kind;
  return ReadStatus::kOk;
}

ReadStatus ReadResponse(std::istream& in, Response* response,
                        std::string* error) {
  std::string type;
  const ReadStatus status =
      ReadFrame(in, &type, &response->args, &response->payload, error);
  if (status != ReadStatus::kOk) return status;
  if (type == "OK") {
    response->ok = true;
  } else if (type == "ERR") {
    response->ok = false;
  } else {
    *error = "unknown response type '" + type + "'";
    return ReadStatus::kMalformed;
  }
  return ReadStatus::kOk;
}

std::string EncodeDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace spta::service
