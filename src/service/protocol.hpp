// Framed request/response protocol for the spta_serve analysis service.
//
// The service speaks one wire format over every transport (Unix socket,
// stdin/stdout pipe mode, in-memory string streams in tests):
//
//   spta1 <TYPE> <nbytes>\n
//   <nbytes bytes of body>
//
// The length prefix makes framing unambiguous and 8-bit clean. The body's
// FIRST line is a sequence of space-separated `key=value` argument tokens
// (no spaces inside keys or values); everything after the first newline is
// free-form bulk payload (sample chunks on requests, report text on
// responses). Requests carry a verb TYPE (PING, OPEN, APPEND, STATUS,
// ANALYZE, CLOSE, METRICS, METRICS_PROM, SHUTDOWN, INGEST, HEALTH);
// responses carry OK or ERR. INGEST is the one verb with a BINARY payload (a trace
// container in either format) — the length-prefixed framing is 8-bit
// clean, so no escaping is needed.
//
// This is untrusted-input territory: readers never abort the process on
// malformed frames — they return kMalformed with a diagnostic and let the
// server answer ERR and drop the connection.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/trace_context.hpp"

namespace spta::service {

enum class RequestKind {
  kPing,
  kOpen,
  kAppend,
  kStatus,
  kAnalyze,
  kClose,
  kMetrics,
  kMetricsProm,  ///< Prometheus text-format metrics scrape.
  kShutdown,
  kIngest,  ///< Binary trace upload: validate, mine kernels, cache table.
  /// Liveness + readiness probe. Answered inline by the classic server
  /// (never queued) and on the event-loop thread by the sharded fleet —
  /// a HEALTH response proves the serving loop itself is alive even when
  /// every shard is wedged; its args/payload carry per-shard readiness
  /// (queue depth, inflight, last-completion age, breaker state).
  kHealth,
  /// Trace export: answers with the process's recorded spans as Chrome
  /// trace_event JSON (format=chrome-trace). Answered inline / on the
  /// event-loop thread, like METRICS — it reads the tracer, never the
  /// analysis queue. `spta_fleet --trace-dir` and `spta_cli trace-view
  /// --merge` stitch these per-process exports into one trace.
  kTrace,
};

/// Number of RequestKind values (per-verb counter array size).
inline constexpr int kRequestKindCount = 12;

/// Hard cap on a frame's body length. Enforced BEFORE the body buffer is
/// allocated, by the blocking readers and the incremental reassembler
/// alike — a hostile length prefix never costs more than this.
inline constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;  // 64 MiB

/// Wire name of a request kind ("PING", "OPEN", ...).
const char* RequestKindName(RequestKind kind);

/// Inverse of RequestKindName; nullopt for unknown verbs.
std::optional<RequestKind> ParseRequestKind(std::string_view name);

/// The `key=value` argument tokens of a frame's first body line.
class Args {
 public:
  /// Parses a space-separated `key=value` token line. Tokens without '='
  /// or with an empty key are silently skipped — only the well-formed
  /// tokens are kept, and an absent key falls back to its default at
  /// Get* time. Callers that must surface typos have to validate the
  /// parsed keys themselves.
  static Args Parse(std::string_view line);

  void Set(const std::string& key, const std::string& value);
  void SetUint(const std::string& key, std::uint64_t value);
  /// Full-precision round-trip encoding (%.17g).
  void SetDouble(const std::string& key, double value);
  /// Drops `key` if present (no-op otherwise).
  void Erase(const std::string& key);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  /// Returns fallback when absent; nullopt-free by design — use Has() to
  /// distinguish. Returns fallback on non-numeric garbage as well (the
  /// caller validates semantics, not syntax).
  std::uint64_t GetUint(const std::string& key, std::uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Deterministic (key-sorted) `key=value key=value` encoding.
  std::string Encode() const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

struct Request {
  RequestKind kind = RequestKind::kPing;
  Args args;
  /// Bulk payload lines (after the args line), e.g. `cycles[,path]` rows.
  std::string payload;
  /// Distributed trace context, carried OUT-OF-BAND of the body as an
  /// optional `trace=<16hex>-<16hex>` header token. Deliberately not
  /// part of the body: routing digests and warm-memo keys hash body
  /// bytes, so an id that varies per request must never perturb them.
  /// Invalid (the default) = untraced; AppendRequestFrame ignores it
  /// (use AppendRequestFrameWithTrace / WriteRequest to emit it).
  obs::TraceContext trace;
};

struct Response {
  bool ok = true;
  Args args;
  /// Report text on OK (metrics dump, analysis table) or the diagnostic
  /// message on ERR.
  std::string payload;
};

/// Convenience constructors.
Response OkResponse(Args args = {}, std::string payload = {});
Response ErrResponse(const std::string& code, const std::string& message);

enum class ReadStatus {
  kOk,
  kEof,        ///< Clean end of stream before a header line.
  kMalformed,  ///< Bad header, unknown verb, truncated body.
};

/// Frame writers. Return false when the stream rejected the write.
bool WriteRequest(std::ostream& out, const Request& request);
bool WriteResponse(std::ostream& out, const Response& response);

/// Frame readers; on kMalformed, `error` describes the problem.
ReadStatus ReadRequest(std::istream& in, Request* request, std::string* error);
ReadStatus ReadResponse(std::istream& in, Response* response,
                        std::string* error);

/// Formats a double so that strtod round-trips it bit-exactly (%.17g).
/// Used for sample values on the wire: the golden guarantee that a served
/// analysis equals the batch analysis bit-for-bit depends on it.
std::string EncodeDouble(double value);

// --- Buffer-level frame helpers (shared by the blocking istream readers
// --- above and the incremental FrameReassembler in frame_reader.hpp).

/// Parses one header line (WITHOUT its trailing newline): the first three
/// whitespace-separated tokens must be the magic, the TYPE and the decimal
/// body length; extra tokens are ignored, matching the historical
/// stream-extraction semantics the robustness battery pins. Enforces
/// kMaxFrameBytes. False → `error` holds the diagnostic.
///
/// When `trace` is non-null, the first extra token of the form
/// `trace=<value>` is parsed leniently into it (anything malformed —
/// truncated, oversized, garbage hex, duplicated with a junk first copy —
/// yields an invalid context, NEVER a header error; untraced peers and
/// fuzzed headers must parse exactly as before).
bool ParseFrameHeaderLine(std::string_view header, std::string* type,
                          std::uint64_t* nbytes, std::string* error,
                          obs::TraceContext* trace = nullptr);

/// Splits a frame body into its first-line Args and the payload remainder.
void SplitFrameBody(std::string_view body, Args* args, std::string* payload);

/// Assembles a Request from a reassembled frame (verb token + raw body
/// bytes). False on an unknown verb, with the same diagnostic the blocking
/// reader produces.
bool BuildRequest(std::string_view type, std::string_view body,
                  Request* request, std::string* error);

/// Append the wire encoding of a frame to `out` (no stream round trip —
/// the event loop's write path builds contiguous output buffers).
/// AppendRequestFrame never emits the trace header token — re-encoding a
/// parsed request is byte-stable regardless of how it arrived.
void AppendRequestFrame(const Request& request, std::string* out);
/// Like AppendRequestFrame, plus the `trace=` header token when
/// `request.trace` is valid (byte-identical to AppendRequestFrame when
/// it is not).
void AppendRequestFrameWithTrace(const Request& request, std::string* out);
void AppendResponseFrame(const Response& response, std::string* out);

}  // namespace spta::service
