#include "service/result_cache.hpp"

#include "common/assert.hpp"

namespace spta::service {

double ResultCache::Stats::HitRatio() const {
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(lookups);
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  SPTA_REQUIRE(capacity >= 1);
}

std::optional<std::string> ResultCache::Lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

std::optional<std::string> ResultCache::LookupIfPresent(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::Insert(std::uint64_t key, std::string body) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(body));
  index_[key] = lru_.begin();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace spta::service
