#include "service/result_cache.hpp"

#include "common/assert.hpp"

namespace spta::service {

double ResultCache::Stats::HitRatio() const {
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(lookups);
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  SPTA_REQUIRE(capacity >= 1);
}

std::optional<std::string> ResultCache::Lookup(std::uint64_t key,
                                               std::uint64_t verifier) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->verifier != verifier) {
    // Detected 64-bit key collision: a different request hashed to the
    // same key. Never serve the other request's result.
    ++collisions_;
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->body;
}

std::optional<std::string> ResultCache::LookupIfPresent(
    std::uint64_t key, std::uint64_t verifier) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->verifier != verifier) {
    return std::nullopt;  // the worker's Lookup does the accounting
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->body;
}

void ResultCache::Insert(std::uint64_t key, std::uint64_t verifier,
                         std::string body) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->verifier = verifier;
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(Entry{key, verifier, std::move(body)});
  index_[key] = lru_.begin();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.collisions = collisions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace spta::service
