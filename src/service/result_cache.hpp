// Content-addressed LRU cache of finished analysis results.
//
// The service keys each analysis by a 64-bit digest of (samples, analysis
// config) — see AnalysisKey in engine.hpp — and stores the fully rendered
// response body. Identical re-submissions (same measurements, same
// options) therefore return in microseconds instead of re-running the EVT
// pipeline. Because no 64-bit digest over arbitrarily long inputs is
// injective, every entry also carries a second, independently constructed
// 64-bit verifier digest: a lookup only hits when BOTH digests match, so a
// key collision between two distinct requests is detected and served as a
// miss (and counted) instead of silently returning another request's
// pWCET result. Bounded by entry count with least-recently-used eviction;
// hit/miss/collision/eviction accounting feeds the metrics surface.
//
// Thread-safe: one mutex around the map+list (lookups are O(1) and the
// stored bodies are small compared to an analysis, so a single lock is not
// a bottleneck even under a full worker pool).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace spta::service {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Lookups whose key matched but whose verifier did not: a detected
    /// 64-bit key collision between distinct requests (served as a miss).
    std::uint64_t collisions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    /// hits / (hits + misses); 0 when no lookups happened.
    double HitRatio() const;
  };

  /// Requires capacity >= 1.
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached body and refreshes recency when both `key` and
  /// `verifier` match, or nullopt on a miss. A key match with a verifier
  /// mismatch is a detected collision: counted as a miss (plus the
  /// collision counter), never served. Every call counts as exactly one
  /// hit or one miss.
  std::optional<std::string> Lookup(std::uint64_t key, std::uint64_t verifier);

  /// Like Lookup, but an absent key (or a collision) is NOT counted. Used
  /// by the server's warm fast path, which probes before dispatching to a
  /// worker: on a miss the worker's authoritative Lookup does the
  /// counting, so each request still scores exactly one hit or one miss.
  std::optional<std::string> LookupIfPresent(std::uint64_t key,
                                             std::uint64_t verifier);

  /// Inserts (or refreshes) `key`; evicts the least-recently-used entry
  /// when at capacity. An existing entry with a different verifier (a
  /// colliding key) is overwritten — latest result wins. Does not touch
  /// the hit/miss counters.
  void Insert(std::uint64_t key, std::uint64_t verifier, std::string body);

  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t verifier = 0;
    std::string body;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace spta::service
