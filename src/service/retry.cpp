#include "service/retry.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace spta::service {

std::chrono::milliseconds RetrySchedule::NextDelay() {
  const auto base = policy_.base.count();
  const auto cap = policy_.cap.count();
  // uniform(base, prev*3) via a counter-mode Mix64 draw — deterministic in
  // (seed, attempt), full-period, and independent across clients with
  // different seeds.
  const std::uint64_t word =
      Mix64(HashCombine(policy_.seed, ++counter_));
  const double unit =
      static_cast<double>(word >> 11) * 0x1.0p-53;  // [0, 1)
  const auto hi = std::max<long long>(base, prev_.count() * 3);
  const auto span = static_cast<double>(hi - base);
  auto delay = static_cast<long long>(
      static_cast<double>(base) + unit * span);
  delay = std::min<long long>(delay, cap);
  prev_ = std::chrono::milliseconds(delay);
  return prev_;
}

bool RetryableErrCode(const std::string& code) {
  return code == "busy" || code == "deadline" || code == "transport";
}

}  // namespace spta::service
