// Bounded retry with exponential backoff + decorrelated jitter.
//
// The resilient client's retry loop: transient failures (connect refused,
// per-attempt deadline expired, ERR busy backpressure) are retried a
// bounded number of times with sleeps drawn from the decorrelated-jitter
// schedule (Brooker, AWS Architecture Blog 2015):
//
//   delay[0] = base
//   delay[k] = min(cap, uniform(base, delay[k-1] * 3))
//
// which spreads concurrent retriers apart (plain exponential backoff
// synchronizes them into retry storms). The jitter stream is seeded, so a
// client run is reproducible end to end — the same seed replays the same
// sleep schedule.
//
// Classification lives here too: which ERR codes are worth retrying
// (busy, deadline, transport) versus permanent (malformed, samples,
// analysis, session — resending the same bytes cannot succeed).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace spta::service {

struct RetryPolicy {
  /// Total attempts including the first; 1 = no retries.
  int max_attempts = 4;
  std::chrono::milliseconds base{25};
  std::chrono::milliseconds cap{2000};
  /// Seed of the jitter stream (replayable schedules).
  std::uint64_t seed = 1;
};

/// The deterministic jitter/backoff schedule of one request's retry loop.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy)
      : policy_(policy), prev_(policy.base) {}

  /// Delay to sleep before retry `attempt` (1-based: the delay after the
  /// attempt-th failure). Advances the schedule.
  std::chrono::milliseconds NextDelay();

 private:
  RetryPolicy policy_;
  std::chrono::milliseconds prev_;
  std::uint64_t counter_ = 0;
};

/// True for ERR codes that a retry can plausibly fix: "busy" (bounded
/// queue backpressure — the documented retry-later signal), "deadline"
/// (queue wait exceeded the per-request deadline) and "transport"
/// (connection-level failure). Everything else is permanent.
bool RetryableErrCode(const std::string& code);

}  // namespace spta::service
