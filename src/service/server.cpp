#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/sample_io.hpp"
#include "atlas/format.hpp"
#include "atlas/mine.hpp"
#include "obs/trace.hpp"
#include "service/fd_stream.hpp"

namespace spta::service {
namespace {

using Clock = std::chrono::steady_clock;

std::string KeyHex(std::uint64_t key) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

Args AnalysisArgs(const AnalysisOutcome& outcome, double micros) {
  Args args = outcome.result;
  args.Set("cache", outcome.cache_hit ? "hit" : "miss");
  args.Set("key", KeyHex(outcome.key));
  args.SetDouble("analyze_us", micros);
  return args;
}

Args StatusArgs(const SessionStatus& status) {
  Args args;
  args.SetUint("total", status.total_samples);
  args.SetUint("converged", status.converged ? 1 : 0);
  args.SetUint("runs_required", status.runs_required);
  args.SetUint("next_checkpoint", status.next_checkpoint);
  return args;
}

}  // namespace

void Server::OrderedWriter::Expect(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  expected_ = id + 1;
}

void Server::OrderedWriter::Complete(std::uint64_t id, Response response) {
  std::lock_guard<std::mutex> lock(mutex_);
  ready_.emplace(id, std::move(response));
  while (!ready_.empty() && ready_.begin()->first == next_write_) {
    SPTA_OBS_SPAN_ARG("service", "respond", "id", ready_.begin()->first);
    WriteResponse(out_, ready_.begin()->second);
    ready_.erase(ready_.begin());
    ++next_write_;
  }
  if (next_write_ == expected_) all_written_.notify_all();
}

void Server::OrderedWriter::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_written_.wait(lock, [&] { return next_write_ == expected_; });
}

Server::Server(ServerOptions options)
    : options_(options),
      sessions_(options.convergence, options.session_limits),
      engine_(options.cache_capacity),
      pool_(options.workers) {
  if (!options_.cache_dir.empty()) {
    PersistentResultCache::Limits limits;
    limits.max_bytes = options_.cache_max_bytes;
    limits.quota_bytes = options_.cache_quota_bytes;
    store_ = std::make_unique<PersistentResultCache>(options_.cache_dir,
                                                    limits);
    // Warm-start: preload before attaching, so the preload itself does
    // not rewrite every file it just read.
    store_->LoadAll([this](std::uint64_t key, std::uint64_t verifier,
                           std::string body) {
      engine_.cache().Insert(key, verifier, std::move(body));
    });
    engine_.AttachStore(store_.get());
  }
}

bool Server::TryAcquireAnalyzeSlot() {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  if (analyses_in_flight_ >= options_.queue_capacity) return false;
  ++analyses_in_flight_;
  return true;
}

void Server::ReleaseAnalyzeSlot() {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  --analyses_in_flight_;
}

bool Server::CollectObservations(
    const Request& request, std::vector<mbpta::PathObservation>* observations,
    std::string* error) {
  const std::string session = request.args.GetString("session");
  if (!session.empty()) {
    return sessions_.Snapshot(session, observations, error);
  }
  if (request.payload.empty()) {
    *error = "ANALYZE needs session= or an inline sample payload";
    return false;
  }
  std::istringstream payload(request.payload);
  if (!analysis::TryReadSamplesCsv(payload, observations, error)) {
    return false;
  }
  if (request.args.Has("count") &&
      request.args.GetUint("count", 0) != observations->size()) {
    *error = "payload sample count " + std::to_string(observations->size()) +
             " does not match count=" + request.args.GetString("count");
    return false;
  }
  return true;
}

Response Server::RunAnalysis(
    const Request& request, std::vector<mbpta::PathObservation> observations,
    Clock::time_point deadline, bool has_deadline) {
  if (has_deadline && Clock::now() > deadline) {
    metrics_.CountDeadlineMiss();
    return ErrResponse("deadline", "deadline expired before execution");
  }
  if (options_.enable_debug_hooks && request.args.Has("debug_sleep_ms")) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        request.args.GetDouble("debug_sleep_ms", 0.0)));
  }
  const auto start = Clock::now();
  SPTA_OBS_SPAN_ARG("service", "analyze", "n", observations.size());
  AnalysisOutcome outcome;
  std::string error;
  if (!engine_.Analyze(observations, AnalysisConfig::FromArgs(request.args),
                       &outcome, &error)) {
    return ErrResponse("analysis", error);
  }
  const double micros =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  metrics_.RecordAnalyzeLatency(micros, outcome.cache_hit);
  return OkResponse(AnalysisArgs(outcome, micros), outcome.report);
}

Response Server::HandleOpen(const Request& request) {
  std::string error;
  if (!sessions_.Open(request.args.GetString("session"), &error)) {
    return ErrResponse("session", error);
  }
  Args args;
  args.Set("session", request.args.GetString("session"));
  args.Set("state", "ingest");
  return OkResponse(std::move(args));
}

Response Server::HandleAppend(const Request& request) {
  std::vector<mbpta::PathObservation> chunk;
  std::string error;
  std::istringstream payload(request.payload);
  if (!analysis::TryReadSamplesCsv(payload, &chunk, &error)) {
    return ErrResponse("samples", error);
  }
  if (request.args.Has("count") &&
      request.args.GetUint("count", 0) != chunk.size()) {
    return ErrResponse("samples",
                       "payload sample count " + std::to_string(chunk.size()) +
                           " does not match count=" +
                           request.args.GetString("count"));
  }
  SessionStatus status;
  if (!sessions_.Append(request.args.GetString("session"), chunk, &status,
                        &error)) {
    return ErrResponse("session", error);
  }
  return OkResponse(StatusArgs(status));
}

Response Server::HandleStatus(const Request& request) {
  SessionStatus status;
  std::string error;
  if (!sessions_.Status(request.args.GetString("session"), &status, &error)) {
    return ErrResponse("session", error);
  }
  return OkResponse(StatusArgs(status));
}

Response Server::HandleClose(const Request& request) {
  std::string error;
  if (!sessions_.Close(request.args.GetString("session"), &error)) {
    return ErrResponse("session", error);
  }
  return OkResponse();
}

Response Server::HandleIngest(const Request& request) {
  trace::Trace t;
  atlas::TraceFormat format = atlas::TraceFormat::kLegacy;
  std::string error;
  {
    SPTA_OBS_SPAN_ARG("service", "ingest_decode", "bytes",
                      request.payload.size());
    std::istringstream payload(request.payload);
    if (!atlas::TryReadAnyTrace(payload, &t, &format, &error)) {
      return ErrResponse("trace", error);
    }
  }
  const DualHash digest = atlas::TraceContentDigest(t);
  Args args;
  args.Set("format", atlas::ToString(format));
  args.SetUint("records", t.records.size());
  args.SetUint("path_signature", t.path_signature);
  args.Set("digest", KeyHex(digest.lo) + KeyHex(digest.hi));

  // The kernel table is keyed by the trace's CONTENT digest, so the same
  // trace ingested through either container answers from the cache. The
  // body's first line is a well-formed args line carrying the summary
  // counts — that is what lets a hit restore them without re-mining.
  if (const auto cached = engine_.cache().Lookup(digest.lo, digest.hi)) {
    const auto nl = cached->find('\n');
    const Args summary = Args::Parse(cached->substr(0, nl));
    args.SetUint("kernels", summary.GetUint("kernels", 0));
    args.SetUint("kernel_records", summary.GetUint("kernel_records", 0));
    args.Set("cache", "hit");
    return OkResponse(std::move(args), *cached);
  }

  SPTA_OBS_SPAN_ARG("service", "ingest_mine", "records", t.records.size());
  const atlas::Segmentation segmentation = atlas::MineKernels(t);
  std::ostringstream body;
  Args summary;
  summary.SetUint("kernels", segmentation.kernels.size());
  summary.SetUint("kernel_records", segmentation.KernelRecords());
  body << summary.Encode() << '\n';
  for (std::size_t k = 0; k < segmentation.kernels.size(); ++k) {
    const atlas::KernelInfo& info = segmentation.kernels[k];
    body << "kernel " << KeyHex(info.digest.lo) << KeyHex(info.digest.hi)
         << " begin=" << info.body_begin << " length=" << info.length
         << " iterations=" << info.iterations << '\n';
  }
  engine_.InsertCached(digest.lo, digest.hi, body.str());
  args.SetUint("kernels", segmentation.kernels.size());
  args.SetUint("kernel_records", segmentation.KernelRecords());
  args.Set("cache", "miss");
  return OkResponse(std::move(args), body.str());
}

Response Server::HandleMetrics() {
  const ResultCache::Stats cache = engine_.cache().stats();
  return OkResponse(metrics_.Snapshot(cache), metrics_.Render(cache));
}

std::string Server::RenderPromText() {
  return metrics_.RenderProm(engine_.cache().stats(),
                             obs::Tracer::Instance().GetStats());
}

Response Server::HandleMetricsProm() {
  Args args;
  args.Set("format", "prometheus-0.0.4");
  return OkResponse(std::move(args), RenderPromText());
}

Response Server::HandleTrace() {
  std::ostringstream trace_json;
  if (!obs::Tracer::Instance().WriteChromeTrace(trace_json)) {
    return ErrResponse("trace", "trace serialization failed");
  }
  const obs::Tracer::Stats stats = obs::Tracer::Instance().GetStats();
  Args args;
  args.Set("format", "chrome-trace");
  args.SetUint("events", stats.recorded);
  args.SetUint("dropped", stats.dropped);
  args.SetUint("enabled", obs::Tracer::Enabled() ? 1 : 0);
  return OkResponse(std::move(args), trace_json.str());
}

Response Server::HandleInline(const Request& request) {
  switch (request.kind) {
    case RequestKind::kPing: {
      Args args;
      args.Set("proto", "spta1");
      return OkResponse(std::move(args));
    }
    case RequestKind::kOpen:
      return HandleOpen(request);
    case RequestKind::kAppend:
      return HandleAppend(request);
    case RequestKind::kStatus:
      return HandleStatus(request);
    case RequestKind::kClose:
      return HandleClose(request);
    case RequestKind::kMetrics:
      return HandleMetrics();
    case RequestKind::kMetricsProm:
      return HandleMetricsProm();
    case RequestKind::kIngest:
      return HandleIngest(request);
    case RequestKind::kHealth:
      return HandleHealth();
    case RequestKind::kTrace:
      return HandleTrace();
    default:
      return ErrResponse("internal", "verb not handled inline");
  }
}

Response Server::HandleHealth() {
  Args args;
  std::size_t inflight = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    inflight = analyses_in_flight_;
  }
  const bool draining = shutdown_.load(std::memory_order_acquire);
  // Saturation or a drain is "degraded", not an error: the probe still
  // answers OK (liveness), the status arg carries the readiness verdict.
  const bool ready = !draining && inflight < options_.queue_capacity;
  args.Set("status", ready ? "ok" : "degraded");
  args.Set("role", "server");
  args.SetUint("inflight", inflight);
  args.SetUint("queue_capacity", options_.queue_capacity);
  args.SetUint("sessions", sessions_.open_count());
  args.SetUint("draining", draining ? 1 : 0);
  return OkResponse(std::move(args));
}

Response Server::Execute(const Request& request) {
  // Shard entry point: the event loop parsed the wire context into the
  // request; installing it here links every span below (verb, analyze,
  // engine stages) into the client's tree.
  obs::ScopedTraceContext trace_scope(request.trace);
  SPTA_OBS_SPAN("service", RequestKindName(request.kind));
  if (request.kind == RequestKind::kShutdown) {
    metrics_.CountRequest(request.kind, false);
    return ErrResponse("internal", "SHUTDOWN is handled by the transport");
  }
  if (request.kind == RequestKind::kAnalyze) {
    std::vector<mbpta::PathObservation> observations;
    std::string collect_error;
    if (!CollectObservations(request, &observations, &collect_error)) {
      metrics_.CountRequest(request.kind, false);
      return ErrResponse("samples", collect_error);
    }
    const double deadline_ms =
        request.args.GetDouble("deadline_ms", options_.default_deadline_ms);
    const bool has_deadline = deadline_ms > 0.0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               has_deadline ? deadline_ms : 0.0));
    // Same exception discipline as the pooled path: a shard thread must
    // never die on untrusted input.
    Response response;
    try {
      response =
          RunAnalysis(request, std::move(observations), deadline, has_deadline);
    } catch (const std::exception& e) {
      response = ErrResponse("internal", e.what());
    } catch (...) {
      response = ErrResponse("internal", "unknown analysis failure");
    }
    metrics_.CountRequest(request.kind, response.ok);
    return response;
  }
  Response response = HandleInline(request);
  metrics_.CountRequest(request.kind, response.ok);
  return response;
}

bool Server::ServeStream(std::istream& in, std::ostream& out) {
  OrderedWriter writer(out);
  std::uint64_t next_id = 0;
  bool shutdown = false;

  while (!shutdown) {
    Request request;
    std::string error;
    // The read span covers wire wait + frame parse; on an idle connection
    // it is dominated by the wait, which is exactly what makes request
    // arrival visible in a trace.
    const std::uint64_t read_start_ns =
        obs::Tracer::Enabled() ? obs::Tracer::NowNs() : 0;
    const ReadStatus status = ReadRequest(in, &request, &error);
    if (status == ReadStatus::kEof) break;
    if (obs::Tracer::Enabled()) {
      obs::Tracer::Instance().RecordComplete("service", "read_request",
                                             read_start_ns,
                                             obs::Tracer::NowNs());
    }
    const std::uint64_t id = next_id++;
    writer.Expect(id);
    // Adopt the request's wire context for everything this iteration
    // records (an untraced request installs the invalid context, which
    // leaves spans exactly as before).
    obs::ScopedTraceContext trace_scope(request.trace);
    if (status == ReadStatus::kMalformed) {
      // Framing is lost — answer once, then stop reading this stream.
      metrics_.CountProtocolError();
      writer.Complete(id, ErrResponse("malformed", error));
      break;
    }

    if (request.kind == RequestKind::kShutdown) {
      shutdown = true;
      shutdown_.store(true);
      // Drain: every ANALYZE accepted before this point completes and is
      // written (in order) before the SHUTDOWN acknowledgment below.
      SPTA_OBS_SPAN("service", "shutdown_drain");
      pool_.Wait();
      Args args;
      args.Set("drained", "1");
      metrics_.CountRequest(request.kind, true);
      writer.Complete(id, OkResponse(std::move(args)));
      break;
    }

    if (request.kind == RequestKind::kAnalyze) {
      std::vector<mbpta::PathObservation> observations;
      std::string collect_error;
      if (!CollectObservations(request, &observations, &collect_error)) {
        metrics_.CountRequest(request.kind, false);
        writer.Complete(id, ErrResponse("samples", collect_error));
        continue;
      }
      // Warm fast path: a request whose result is already cached is
      // answered inline on the reader thread — it never occupies a worker
      // slot, so cache hits stay cheap even while the pool is saturated
      // with cold analyses. A probe miss is not double-counted (see
      // ResultCache::LookupIfPresent); the worker's Lookup scores it.
      {
        SPTA_OBS_SPAN("service", "cache_probe");
        const auto probe_start = Clock::now();
        AnalysisOutcome cached;
        if (engine_.TryServeCached(
                observations, AnalysisConfig::FromArgs(request.args),
                &cached)) {
          const double micros = std::chrono::duration<double, std::micro>(
                                    Clock::now() - probe_start)
                                    .count();
          metrics_.RecordAnalyzeLatency(micros, /*cache_hit=*/true);
          metrics_.CountRequest(request.kind, true);
          writer.Complete(id, OkResponse(AnalysisArgs(cached, micros),
                                         cached.report));
          continue;
        }
      }
      if (!TryAcquireAnalyzeSlot()) {
        metrics_.CountBusyRejection();
        metrics_.CountRequest(request.kind, false);
        writer.Complete(
            id, ErrResponse("busy", "analysis queue full, retry later"));
        continue;
      }
      const double deadline_ms =
          request.args.GetDouble("deadline_ms", options_.default_deadline_ms);
      const bool has_deadline = deadline_ms > 0.0;
      const Clock::time_point deadline =
          Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(deadline_ms));
      // Queue wait: enqueue → worker pickup. The metric records always
      // (it is the service's backpressure signal); the span only when the
      // tracer runs, as a cross-thread complete event.
      const auto enqueued = Clock::now();
      const std::uint64_t enqueued_ns =
          obs::Tracer::Enabled() ? obs::Tracer::NowNs() : 0;
      pool_.Submit([this, id, &writer, request = std::move(request),
                    observations = std::move(observations), deadline,
                    has_deadline, enqueued, enqueued_ns]() mutable {
        // Cross-thread hop: re-install the request's context on the
        // worker so queue_wait and the analysis spans stay in its tree.
        obs::ScopedTraceContext trace_scope(request.trace);
        metrics_.RecordQueueWait(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      enqueued)
                .count());
        if (enqueued_ns != 0 && obs::Tracer::Enabled()) {
          obs::Tracer::Instance().RecordComplete("service", "queue_wait",
                                                 enqueued_ns,
                                                 obs::Tracer::NowNs(), "id",
                                                 id);
        }
        // Worker tasks must not leak exceptions: ThreadPool::Wait
        // rethrows captured ones on whichever thread waits next, which
        // would escape a connection thread and terminate the daemon.
        Response response;
        try {
          response = RunAnalysis(request, std::move(observations), deadline,
                                 has_deadline);
        } catch (const std::exception& e) {
          response = ErrResponse("internal", e.what());
        } catch (...) {
          response = ErrResponse("internal", "unknown analysis failure");
        }
        metrics_.CountRequest(RequestKind::kAnalyze, response.ok);
        ReleaseAnalyzeSlot();
        writer.Complete(id, std::move(response));
      });
      continue;
    }

    // RequestKindName returns a pointer to static storage, satisfying the
    // tracer's literal-lifetime contract.
    SPTA_OBS_SPAN_ARG("service", RequestKindName(request.kind), "id", id);
    Response response = HandleInline(request);
    metrics_.CountRequest(request.kind, response.ok);
    writer.Complete(id, std::move(response));
  }

  // Per-stream completion: Drain waits for every id this stream reserved,
  // so one connection's EOF never blocks on other connections' in-flight
  // work (the pool is shared; a pool-wide Wait here would couple them).
  writer.Drain();
  return shutdown;
}

void Server::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connection_fds_.push_back(fd);
  // A connection accepted concurrently with TriggerShutdown can register
  // after the SHUT_RD sweep already ran; TriggerShutdown holds the same
  // mutex, so checking the flag here makes the handoff race-free — one of
  // the two sides always shuts this fd's read half down.
  if (shutdown_.load()) ::shutdown(fd, SHUT_RD);
}

void Server::UnregisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  std::erase(connection_fds_, fd);
}

void Server::TriggerShutdown() {
  shutdown_.store(true);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  // Unblock every reader: their streams hit EOF and drain cleanly.
  for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

int Server::ServeUnixSocket(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) return ENAMETOOLONG;
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return errno;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, options_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd);
    return err;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    listen_fd_ = listen_fd;
  }

  std::vector<std::thread> connections;
  std::uint64_t connection_ordinal = 0;
  while (!shutdown_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by TriggerShutdown (or fatal error)
    }
    const std::uint64_t ordinal = connection_ordinal++;
    connections.emplace_back([this, fd, ordinal] {
      RegisterConnection(fd);
      // Fault-injection wrap: count every fired fault into the metrics
      // surface so an operator (or the fault-matrix test) can see the
      // injection campaign without scraping logs. The shared counter is
      // touched from the reader thread and from workers flushing
      // responses, hence atomic.
      IoFaultHook hook;
      auto fired = std::make_shared<std::atomic<std::uint64_t>>(0);
      if (options_.io_fault_hook_factory) {
        if (IoFaultHook inner = options_.io_fault_hook_factory(ordinal)) {
          hook = [this, inner = std::move(inner), fired](IoOp op,
                                                         std::size_t n) {
            const IoFault fault = inner(op, n);
            if (!fault.None()) {
              fired->fetch_add(1, std::memory_order_relaxed);
              metrics_.CountInjectedFaults(1);
            }
            return fault;
          };
        }
      }
      FdStreambuf in_buf(fd, hook);
      FdStreambuf out_buf(fd, hook);
      std::istream in(&in_buf);
      std::ostream out(&out_buf);
      const bool got_shutdown = ServeStream(in, out);
      out.flush();
      // An injected-fault connection that didn't reach a clean SHUTDOWN
      // handshake was degraded: its stream died (disconnect, EAGAIN
      // exhaustion) and the per-session state was dropped. The daemon
      // itself carries on.
      if (!got_shutdown &&
          fired->load(std::memory_order_relaxed) > 0) {
        metrics_.CountDegradedSession();
      }
      UnregisterConnection(fd);
      if (got_shutdown) TriggerShutdown();
      ::close(fd);
    });
  }
  for (auto& thread : connections) thread.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    listen_fd_ = -1;
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace spta::service
