// spta_serve core: the resident pWCET analysis service.
//
// One Server owns the shared state — SessionManager, AnalysisEngine (with
// its result cache), ServiceMetrics and a common/ThreadPool — and serves
// any number of request streams over it:
//
//   * pipe mode: ServeStream(std::cin, std::cout), also what the tests and
//     the load generator drive with string streams;
//   * socket mode: ServeUnixSocket() accepts connections on an AF_UNIX
//     stream socket, one thread per connection, all sharing the engine.
//
// Request handling discipline:
//   * Session mutations (OPEN/APPEND/CLOSE) and cheap reads run inline on
//     the connection's reader thread — appends must apply in stream order
//     or the convergence criterion (defined over the time-ordered sample)
//     would be evaluated on a scrambled history.
//   * ANALYZE is the heavy verb and is dispatched to the worker pool,
//     bounded by `queue_capacity` outstanding requests; when the bound is
//     hit the request is rejected immediately with ERR busy
//     (backpressure, not buffering). A per-request deadline_ms is honored
//     by dropping requests whose deadline expired while queued. The
//     sample snapshot is taken at ACCEPT time, so an analysis sees
//     exactly the appends that preceded it on its stream.
//   * Responses are written strictly in request order per stream (a small
//     reorder buffer); SHUTDOWN drains the pool before acknowledging, so
//     every accepted request gets its response before the daemon exits —
//     zero loss on graceful shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "service/engine.hpp"
#include "service/fd_stream.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"

namespace spta::service {

struct ServerOptions {
  /// Worker threads for ANALYZE requests; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Max ANALYZE requests queued or executing before busy-rejection.
  std::size_t queue_capacity = 64;
  /// Result-cache capacity in entries.
  std::size_t cache_capacity = 128;
  /// Default ANALYZE deadline in ms; 0 = none. A request can override via
  /// its own deadline_ms argument.
  double default_deadline_ms = 0.0;
  /// listen(2) backlog for the accepting socket. The historical hard-coded
  /// 16 drops connections under a burst: a storm of simultaneous connects
  /// overflows the SYN/accept queue before the accept loop runs (pinned by
  /// the burst-accept regression in service_fleet_test).
  int listen_backlog = 128;
  /// Directory for the disk-backed result cache; empty = no persistence.
  /// When set, the directory (which must exist) is scanned at construction
  /// and every validated entry pre-warms the in-memory cache, and every
  /// fresh analysis / mined INGEST table is written through to it — so a
  /// restarted daemon answers repeat requests from cache immediately.
  std::string cache_dir;
  /// On-disk budget for the persistent cache; overshoot evicts the
  /// least-recently-written entries. 0 = unbounded.
  std::uint64_t cache_max_bytes = 0;
  /// Simulated device capacity for the persistent cache (fault injection:
  /// Puts past this behave like ENOSPC). 0 = no simulation.
  std::uint64_t cache_quota_bytes = 0;
  mbpta::ConvergenceOptions convergence;
  SessionLimits session_limits;
  /// Honors the debug_sleep_ms ANALYZE argument (tests/bench only: lets a
  /// test hold a worker busy to exercise backpressure deterministically).
  bool enable_debug_hooks = false;
  /// Fault-injection hook factory (tests only). Called once per accepted
  /// socket connection with the connection ordinal; the returned hook (may
  /// be empty) guards every read/write syscall of that connection
  /// (service/fd_stream.hpp). Fired faults are counted into the
  /// `faults_injected` metric; a connection whose stream dies with faults
  /// active counts into `sessions_degraded`. The daemon itself must
  /// survive any decision the hook makes — that invariant is what
  /// tests/fault_matrix_smoke.cpp pins down.
  std::function<IoFaultHook(std::uint64_t)> io_fault_hook_factory;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Serves one framed request stream until EOF, an unrecoverable framing
  /// error, or SHUTDOWN. Returns true iff SHUTDOWN was received. Safe to
  /// call from several threads at once (socket mode does).
  bool ServeStream(std::istream& in, std::ostream& out);

  /// Binds `path` (an AF_UNIX socket; any stale file is replaced), then
  /// accepts and serves connections until a SHUTDOWN request arrives.
  /// Returns 0 on clean shutdown, nonzero errno-style on setup failure.
  int ServeUnixSocket(const std::string& path);

  /// Executes one request synchronously on the caller's thread and counts
  /// it into the metrics, with the same semantics ServeStream gives it —
  /// except SHUTDOWN, which belongs to the transport (answered ERR here).
  /// This is the entry point the sharded fleet's worker shards drive: the
  /// event loop owns framing and ordering, the shard owns execution.
  Response Execute(const Request& request);

  SessionManager& sessions() { return sessions_; }
  AnalysisEngine& engine() { return engine_; }
  ServiceMetrics& metrics() { return metrics_; }
  const ServerOptions& options() const { return options_; }
  /// Non-null iff options.cache_dir was set.
  PersistentResultCache* persistent_cache() { return store_.get(); }

  /// The Prometheus text rendering served for METRICS_PROM — also what
  /// spta_serve's --prom-out periodic exporter writes to disk.
  std::string RenderPromText();

  /// True once any stream has processed a SHUTDOWN request.
  bool shutdown_requested() const { return shutdown_.load(); }

  /// Initiates the drain-on-shutdown path from outside a request stream:
  /// unblocks every connection reader and the listener so ServeUnixSocket
  /// winds down exactly as after an in-band SHUTDOWN. Async-signal-UNSAFE
  /// (takes locks) — signal handlers must defer to a watcher thread
  /// (tools/spta_serve.cpp does, via a self-pipe). Idempotent.
  void TriggerShutdown();

 private:
  /// Writes a stream's responses in request order: completions may arrive
  /// out of order from the worker pool; the head-of-line response flushes
  /// everything contiguous behind it.
  class OrderedWriter {
   public:
    explicit OrderedWriter(std::ostream& out) : out_(out) {}
    /// Reserves the next slot; ids must be reserved in increasing order.
    void Expect(std::uint64_t id);
    void Complete(std::uint64_t id, Response response);
    /// Blocks until every reserved slot has been written.
    void Drain();

   private:
    std::ostream& out_;
    std::mutex mutex_;
    std::condition_variable all_written_;
    std::map<std::uint64_t, Response> ready_;
    std::uint64_t next_write_ = 0;
    std::uint64_t expected_ = 0;
  };

  Response HandleInline(const Request& request);
  Response HandleOpen(const Request& request);
  Response HandleAppend(const Request& request);
  Response HandleStatus(const Request& request);
  Response HandleClose(const Request& request);
  Response HandleMetrics();
  Response HandleMetricsProm();
  /// TRACE: exports this process's recorded spans as Chrome trace_event
  /// JSON (args format=chrome-trace, plus the tracer's accounting).
  Response HandleTrace();
  /// HEALTH: liveness + readiness of this server. Always OK when it can
  /// be answered at all (the probe proves the serving thread is alive);
  /// readiness is carried in the args — analyses in flight vs queue
  /// capacity, open sessions, and whether a drain is underway.
  Response HandleHealth();
  /// INGEST: validates a binary trace payload (either container format),
  /// mines its kernel table and caches the rendered table in the result
  /// cache keyed by the trace's content digest — re-ingesting the same
  /// trace (in either container) is a cache hit.
  Response HandleIngest(const Request& request);
  /// Runs on a worker. `observations` was snapshotted at accept time.
  Response RunAnalysis(const Request& request,
                       std::vector<mbpta::PathObservation> observations,
                       std::chrono::steady_clock::time_point deadline,
                       bool has_deadline);

  /// Parses the request's sample source: inline payload or session
  /// snapshot. False → `error` is the ERR message.
  bool CollectObservations(const Request& request,
                           std::vector<mbpta::PathObservation>* observations,
                           std::string* error);

  bool TryAcquireAnalyzeSlot();
  void ReleaseAnalyzeSlot();

  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);

  ServerOptions options_;
  SessionManager sessions_;
  AnalysisEngine engine_;
  std::unique_ptr<PersistentResultCache> store_;
  ServiceMetrics metrics_;
  ThreadPool pool_;

  std::mutex slots_mutex_;
  std::size_t analyses_in_flight_ = 0;

  std::atomic<bool> shutdown_{false};
  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;
  int listen_fd_ = -1;
};

}  // namespace spta::service
