#include "service/session.hpp"

namespace spta::service {

SessionManager::SessionManager(mbpta::ConvergenceOptions convergence,
                               SessionLimits limits)
    : convergence_(convergence), limits_(limits) {}

SessionStatus SessionManager::StatusOf(const Entry& entry) const {
  SessionStatus status;
  status.total_samples = entry.observations.size();
  status.converged = entry.tracker.converged();
  status.runs_required = entry.tracker.runs_required();
  status.next_checkpoint = entry.tracker.next_checkpoint();
  return status;
}

bool SessionManager::Open(const std::string& name, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (name.empty()) {
    *error = "session name must be non-empty";
    return false;
  }
  if (sessions_.size() >= limits_.max_sessions) {
    *error = "session table full (" + std::to_string(limits_.max_sessions) +
             " sessions)";
    return false;
  }
  const auto [it, inserted] = sessions_.try_emplace(name, convergence_);
  if (!inserted) {
    *error = "session '" + name + "' already exists";
    return false;
  }
  it->second.generation =
      std::make_shared<std::atomic<std::uint64_t>>(++mutation_seq_);
  return true;
}

bool SessionManager::Append(const std::string& name,
                            std::span<const mbpta::PathObservation> chunk,
                            SessionStatus* status, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    *error = "unknown session '" + name + "'";
    return false;
  }
  Entry& entry = it->second;
  if (entry.observations.size() + chunk.size() >
      limits_.max_samples_per_session) {
    *error = "session '" + name + "' would exceed " +
             std::to_string(limits_.max_samples_per_session) + " samples";
    return false;
  }
  entry.observations.insert(entry.observations.end(), chunk.begin(),
                            chunk.end());
  entry.times.reserve(entry.observations.size());
  for (const auto& obs : chunk) entry.times.push_back(obs.time);
  entry.tracker.Update(entry.times);
  entry.generation->store(++mutation_seq_, std::memory_order_release);
  *status = StatusOf(entry);
  return true;
}

bool SessionManager::Status(const std::string& name, SessionStatus* status,
                            std::string* error) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    *error = "unknown session '" + name + "'";
    return false;
  }
  *status = StatusOf(it->second);
  return true;
}

bool SessionManager::Snapshot(
    const std::string& name,
    std::vector<mbpta::PathObservation>* observations,
    std::string* error) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    *error = "unknown session '" + name + "'";
    return false;
  }
  *observations = it->second.observations;
  return true;
}

bool SessionManager::Close(const std::string& name, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    *error = "unknown session '" + name + "'";
    return false;
  }
  // Final stamp: stale Generation() handles observe the close.
  it->second.generation->store(++mutation_seq_, std::memory_order_release);
  sessions_.erase(it);
  return true;
}

std::size_t SessionManager::open_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

SessionGeneration SessionManager::Generation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.generation;
}

}  // namespace spta::service
