// Session model for streaming sample ingestion.
//
// A client opens a named session, appends execution-time observations in
// chunks (order-preserving — MBPTA convergence is defined over the
// time-ordered sample), polls status, and finally asks for an analysis of
// everything ingested so far. Each session carries a ConvergenceTracker so
// the service can report "ready for EVT" the moment the MBPTA criterion is
// met, without the client re-submitting the sample.
//
// All entry points return false + a diagnostic instead of aborting: this
// layer faces untrusted network input, and a bad request must never take
// the daemon down. Resource bounds (max sessions, max samples per
// session) are enforced here for the same reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mbpta/per_path.hpp"
#include "service/convergence_tracker.hpp"

namespace spta::service {

struct SessionLimits {
  std::size_t max_sessions = 256;
  std::size_t max_samples_per_session = 4'000'000;
};

/// Point-in-time view of one session, safe to render into a response.
struct SessionStatus {
  std::size_t total_samples = 0;
  bool converged = false;
  std::size_t runs_required = 0;    ///< 0 until converged.
  std::size_t next_checkpoint = 0;  ///< Next convergence evaluation point.
};

/// Read-only handle to a session's mutation stamp (see Generation()).
/// Outlives the session: a closed session's stamp is bumped one final
/// time, so a stale handle can always detect that its snapshot died.
using SessionGeneration = std::shared_ptr<const std::atomic<std::uint64_t>>;

class SessionManager {
 public:
  explicit SessionManager(mbpta::ConvergenceOptions convergence = {},
                          SessionLimits limits = {});

  /// Creates `name`. Fails if it already exists or the table is full.
  bool Open(const std::string& name, std::string* error);

  /// Appends a chunk in order and advances the convergence tracker over
  /// any newly crossed checkpoints. Fails on unknown session or when the
  /// per-session sample bound would be exceeded (the chunk is then NOT
  /// applied — append is all-or-nothing).
  bool Append(const std::string& name,
              std::span<const mbpta::PathObservation> chunk,
              SessionStatus* status, std::string* error);

  bool Status(const std::string& name, SessionStatus* status,
              std::string* error) const;

  /// Copies the session's observations (analysis runs on a snapshot so
  /// later appends don't shear an in-flight request).
  bool Snapshot(const std::string& name,
                std::vector<mbpta::PathObservation>* observations,
                std::string* error) const;

  /// Discards the session and frees its samples.
  bool Close(const std::string& name, std::string* error);

  std::size_t open_count() const;

  /// The session's mutation stamp: a value drawn from a manager-global
  /// monotone sequence, re-stamped on every successful Append and once
  /// more on Close. A caller that snapshots a session, computes something
  /// from the snapshot, and later finds the stamp unchanged knows the
  /// computation still describes the live session — the memoized warm
  /// path of the sharded server rides on exactly this. The global
  /// sequence (rather than a per-session counter) makes close-and-reopen
  /// under the same name observable too: the reopened session's stamp is
  /// strictly newer than anything the old one ever exposed.
  /// Returns nullptr for an unknown session.
  SessionGeneration Generation(const std::string& name) const;

 private:
  struct Entry {
    std::vector<mbpta::PathObservation> observations;
    std::vector<double> times;  ///< Mirror of observations[i].time.
    ConvergenceTracker tracker;
    std::shared_ptr<std::atomic<std::uint64_t>> generation;

    explicit Entry(const mbpta::ConvergenceOptions& options)
        : tracker(options) {}
  };

  SessionStatus StatusOf(const Entry& entry) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> sessions_;
  mbpta::ConvergenceOptions convergence_;
  SessionLimits limits_;
  std::uint64_t mutation_seq_ = 0;  ///< Feeds every generation stamp.
};

}  // namespace spta::service
