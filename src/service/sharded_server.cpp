#include "service/sharded_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <map>
#include <sstream>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace spta::service {
namespace {

using Clock = std::chrono::steady_clock;

Response DrainedResponse() {
  Args args;
  args.Set("drained", "1");
  return OkResponse(std::move(args));
}

/// Monotonic nanoseconds (EWMA timestamps, breaker cooldowns, stall ages).
std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

const char* BreakerName(int state) {
  switch (state) {
    case 1:
      return "open";
    case 2:
      return "half_open";
    default:
      return "closed";
  }
}

}  // namespace

/// One TCP connection, owned by the event loop. The loop thread is the
/// sole reader and the sole writer of the fd; shard workers only touch
/// the mutex-guarded completion state and then wake the loop.
struct ShardedServer::Conn {
  int fd = -1;

  // Loop-thread-only state.
  FrameReassembler reassembler;
  std::uint64_t next_id = 0;  ///< Arrival-order request ids.
  bool read_closed = false;   ///< No more frames will be accepted.
  bool peer_eof = false;
  bool writable = true;  ///< Cleared on EAGAIN, re-armed by EPOLLOUT.

  // Cross-thread completion state (under mutex).
  std::mutex mutex;
  /// Out-of-order completions parked until the head of line arrives.
  std::map<std::uint64_t, std::string> ready;
  std::string out;  ///< Contiguous, in-order bytes awaiting the socket.
  std::size_t out_off = 0;
  std::uint64_t next_write = 0;
  std::uint64_t accepted = 0;  ///< Frames parsed into requests.
  std::uint64_t answered = 0;  ///< Responses appended to `out`.
  bool closed = false;
};

/// One shared-nothing worker shard: a full classic Server plus its FIFO
/// queue, its warm-response memo and its liveness state.
struct ShardedServer::ShardRuntime {
  std::unique_ptr<Server> server;
  std::size_t index = 0;

  std::mutex qmutex;
  std::condition_variable qcv;
  std::deque<Item> queue;  ///< Under qmutex.
  bool dead = false;       ///< Under qmutex (authoritative for the queue).
  std::atomic<bool> alive{true};  ///< Lock-free view for routing.
  /// Queued + executing requests. The warm memo path only fires at 0:
  /// with the shard quiescent, no session this shard owns can mutate
  /// concurrently, so a generation check on the loop thread is stable.
  std::atomic<std::uint64_t> pending{0};
  std::atomic<std::uint64_t> routed{0};
  std::atomic<std::uint64_t> memo_hits{0};
  std::thread thread;

  /// EWMA of per-request occupancy cost (queue wait + service time) in
  /// microseconds; 0 = no completions yet (admission control stands
  /// down until it has data). Clamped to >= 1 once fed.
  std::atomic<std::uint64_t> ewma_cost_us{0};
  /// Monotonic ns stamp of the last completed execution — the HEALTH
  /// stall detector's progress signal. Seeded at construction.
  std::atomic<std::int64_t> last_completion_ns{0};

  // Circuit breaker (docs/SERVICE.md, "Failure modes"): consecutive
  // ERR internal / ERR deadline executions flip the shard open; after
  // the cooldown one half-open probe decides readmission.
  std::atomic<int> breaker_state{0};  ///< 0 closed, 1 open, 2 half-open.
  std::atomic<int> consecutive_failures{0};
  std::atomic<std::int64_t> breaker_open_until_ns{0};
  std::atomic<std::uint64_t> breaker_opens{0};
  std::atomic<int> half_open_probes{0};  ///< Probes admitted (0 or 1).

  /// Rendered hit-response bytes, split around the analyze_us value so a
  /// hit re-renders only the fresh timing digits.
  struct MemoEntry {
    std::uint64_t verify = 0;
    SessionGeneration generation;  ///< Null → inline sample, immortal.
    std::uint64_t generation_value = 0;
    std::string before;
    std::string after;
  };
  std::mutex memo_mutex;
  std::unordered_map<std::uint64_t, MemoEntry> memo;  ///< Under memo_mutex.
  std::deque<std::uint64_t> memo_fifo;                ///< Insertion order.
};

ShardedServer::ShardedServer(ShardedServerOptions options)
    : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  ServerOptions per_shard = options_.server;
  // One store for the whole fleet (single in-process writer lock): the
  // shards get their caches pre-warmed here instead of each scanning and
  // re-writing the directory.
  if (!per_shard.cache_dir.empty()) {
    PersistentResultCache::Limits limits;
    limits.max_bytes = per_shard.cache_max_bytes;
    limits.quota_bytes = per_shard.cache_quota_bytes;
    store_ = std::make_unique<PersistentResultCache>(per_shard.cache_dir,
                                                    limits);
  }
  per_shard.cache_dir.clear();
  per_shard.workers = 1;  // Shard threads execute inline; no nested pool.
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<ShardRuntime>();
    shard->server = std::make_unique<Server>(per_shard);
    shard->index = i;
    // "No completion yet" must not read as an infinite stall age.
    shard->last_completion_ns.store(NowNs(), std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
  if (store_) {
    // Routing hashes frame bytes, cache keys hash sample bits — there is
    // no mapping from a stored key back to "its" shard, so every shard
    // pre-warms with every entry.
    store_->LoadAll([this](std::uint64_t key, std::uint64_t verifier,
                           std::string body) {
      for (auto& shard : shards_) {
        shard->server->engine().cache().Insert(key, verifier, body);
      }
    });
    for (auto& shard : shards_) {
      shard->server->engine().AttachStore(store_.get());
    }
  }
}

ShardedServer::~ShardedServer() {
  if (loop_thread_.joinable()) {
    TriggerShutdown();
    Wait();
  } else {
    stop_workers_.store(true);
    for (auto& shard : shards_) shard->qcv.notify_all();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Server& ShardedServer::shard(std::size_t index) {
  return *shards_[index]->server;
}

bool ShardedServer::shard_alive(std::size_t index) const {
  return shards_[index]->alive.load(std::memory_order_acquire);
}

std::uint64_t ShardedServer::shard_routed_total(std::size_t index) const {
  return shards_[index]->routed.load(std::memory_order_relaxed);
}

std::uint64_t ShardedServer::shard_memo_hits(std::size_t index) const {
  return shards_[index]->memo_hits.load(std::memory_order_relaxed);
}

std::uint64_t ShardedServer::RouteDigest(const Request& request,
                                         std::string_view body) {
  const std::string session = request.args.GetString("session");
  if (!session.empty()) return HashBytes(session).lo;
  return HashBytes(body).lo;
}

bool ShardedServer::ShardRoutable(std::size_t index) const {
  ShardRuntime& shard = *shards_[index];
  if (!shard.alive.load(std::memory_order_acquire)) return false;
  if (options_.breaker_failure_threshold <= 0) return true;
  const int state = shard.breaker_state.load(std::memory_order_acquire);
  if (state == 0) return true;
  if (state == 1) {
    if (NowNs() < shard.breaker_open_until_ns.load(std::memory_order_relaxed)) {
      return false;  // Open: fail fast, reroute via the rehash.
    }
    // Cooldown elapsed: transition to half-open (one winner; a racing
    // worker may have already closed or re-opened it — re-read below).
    int expected = 1;
    shard.breaker_state.compare_exchange_strong(expected, 2,
                                                std::memory_order_acq_rel);
    if (shard.breaker_state.load(std::memory_order_acquire) != 2) {
      return shard.breaker_state.load(std::memory_order_acquire) == 0;
    }
  }
  // Half-open: admit a single probe; everything else keeps rerouting
  // until that probe's outcome closes or re-opens the breaker.
  return shard.half_open_probes.load(std::memory_order_acquire) == 0;
}

std::size_t ShardedServer::ShardFor(std::uint64_t route_digest) const {
  const std::size_t primary = route_digest % shards_.size();
  if (ShardRoutable(primary)) {
    return primary;
  }
  // Deterministic rehash over the survivors: every client computing this
  // lands a given digest on the same fallback shard.
  std::vector<std::size_t> alive;
  alive.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (ShardRoutable(i)) {
      alive.push_back(i);
    }
  }
  if (alive.empty()) return SIZE_MAX;
  return alive[route_digest % alive.size()];
}

void ShardedServer::NoteShardResult(ShardRuntime& shard,
                                    const Response& response) {
  if (options_.breaker_failure_threshold <= 0) return;
  // Only execution-level failures trip the breaker: ERR internal (the
  // shard's engine is misbehaving) and ERR deadline (it cannot keep up).
  // Client-caused errors (malformed params, unknown sessions) say nothing
  // about the shard's health and must never open it.
  const std::string code =
      response.ok ? std::string() : response.args.GetString("code");
  const bool failure = code == "internal" || code == "deadline";
  const int state = shard.breaker_state.load(std::memory_order_acquire);
  if (!failure) {
    shard.consecutive_failures.store(0, std::memory_order_relaxed);
    if (state != 0) {
      // Half-open probe succeeded (or traffic raced a transition):
      // readmit the shard.
      shard.breaker_state.store(0, std::memory_order_release);
      shard.half_open_probes.store(0, std::memory_order_relaxed);
    }
    return;
  }
  const int fails =
      shard.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (state == 2 || fails >= options_.breaker_failure_threshold) {
    const std::int64_t cooldown_ns = static_cast<std::int64_t>(
        options_.breaker_cooldown_ms * 1'000'000.0);
    shard.breaker_open_until_ns.store(NowNs() + cooldown_ns,
                                      std::memory_order_relaxed);
    if (shard.breaker_state.exchange(1, std::memory_order_acq_rel) != 1) {
      shard.breaker_opens.fetch_add(1, std::memory_order_relaxed);
    }
    shard.consecutive_failures.store(0, std::memory_order_relaxed);
    shard.half_open_probes.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t ShardedServer::DeadlineShedHint(const ShardRuntime& shard,
                                              const Request& request) const {
  if (request.kind != RequestKind::kAnalyze) return 0;
  const double deadline_ms = request.args.GetDouble(
      "deadline_ms", options_.server.default_deadline_ms);
  if (deadline_ms <= 0.0) return 0;
  const std::uint64_t ewma_us =
      shard.ewma_cost_us.load(std::memory_order_relaxed);
  if (ewma_us == 0) return 0;  // No data yet: admit, learn from it.
  const double backlog = static_cast<double>(
      shard.pending.load(std::memory_order_acquire) + 1);
  const double est_us = backlog * static_cast<double>(ewma_us);
  if (est_us <= deadline_ms * 1000.0) return 0;
  // The hint is how far past the deadline the backlog estimate runs —
  // roughly when a resubmission stops being futile.
  const double over_ms = (est_us - deadline_ms * 1000.0) / 1000.0 + 1.0;
  return static_cast<std::uint64_t>(std::min(over_ms, 60'000.0));
}

std::uint64_t ShardedServer::BusyRetryHint(const ShardRuntime& shard) const {
  const std::uint64_t ewma_us =
      shard.ewma_cost_us.load(std::memory_order_relaxed);
  if (ewma_us == 0) return 0;
  const double backlog = static_cast<double>(
      shard.pending.load(std::memory_order_acquire));
  const double est_ms = backlog * static_cast<double>(ewma_us) / 1000.0 + 1.0;
  return static_cast<std::uint64_t>(std::min(est_ms, 60'000.0));
}

int ShardedServer::shard_breaker_state(std::size_t index) const {
  return shards_[index]->breaker_state.load(std::memory_order_acquire);
}

std::uint64_t ShardedServer::breaker_opens_total() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->breaker_opens.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedServer::KillShardForTest(std::size_t index) {
  ShardRuntime& shard = *shards_[index];
  shard.alive.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(shard.qmutex);
    shard.dead = true;
  }
  shard.qcv.notify_all();
}

// --- Warm memo path -------------------------------------------------------

bool ShardedServer::TryServeWarm(ShardRuntime& shard, const Request& request,
                                 const DualHash& digest, std::string* frame) {
  (void)request;
  // Ordering gate: only an idle shard can be served past. A queued APPEND
  // for the same session must invalidate before a later ANALYZE is
  // answered — with pending != 0 we cannot know, so we decline.
  if (shard.pending.load(std::memory_order_acquire) != 0) return false;
  const auto start = Clock::now();
  std::string body;
  {
    std::lock_guard<std::mutex> lock(shard.memo_mutex);
    const auto it = shard.memo.find(digest.lo);
    if (it == shard.memo.end() || it->second.verify != digest.hi) {
      return false;
    }
    ShardRuntime::MemoEntry& entry = it->second;
    if (entry.generation != nullptr &&
        entry.generation->load(std::memory_order_acquire) !=
            entry.generation_value) {
      shard.memo.erase(it);  // The session moved on; the entry is dead.
      return false;
    }
    const double micros =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    const std::string value = EncodeDouble(micros);
    body.reserve(entry.before.size() + value.size() + entry.after.size());
    body += entry.before;
    body += value;
    body += entry.after;
    shard.server->metrics().RecordAnalyzeLatency(micros, /*cache_hit=*/true);
  }
  shard.server->metrics().CountRequest(RequestKind::kAnalyze, true);
  shard.memo_hits.fetch_add(1, std::memory_order_relaxed);
  shard.routed.fetch_add(1, std::memory_order_relaxed);
  frame->reserve(frame->size() + body.size() + 16);
  frame->append("spta1 OK ");
  frame->append(std::to_string(body.size()));
  frame->push_back('\n');
  frame->append(body);
  return true;
}

void ShardedServer::Memoize(ShardRuntime& shard, const DualHash& digest,
                            const Response& response,
                            SessionGeneration generation,
                            std::uint64_t generation_value) {
  if (!response.ok || !response.args.Has("analyze_us")) return;
  // Build the HIT-version response body with a placeholder where the
  // volatile analyze_us digits go; args values never contain control
  // bytes, so the placeholder's position is unambiguous.
  Args args = response.args;
  args.Set("cache", "hit");
  args.Set("analyze_us", "\x01");
  std::string body = args.Encode();
  body.push_back('\n');
  body += response.payload;
  const std::size_t split = body.find('\x01');
  if (split == std::string::npos) return;
  ShardRuntime::MemoEntry entry;
  entry.verify = digest.hi;
  entry.generation = std::move(generation);
  entry.generation_value = generation_value;
  entry.before = body.substr(0, split);
  entry.after = body.substr(split + 1);
  std::lock_guard<std::mutex> lock(shard.memo_mutex);
  const auto [it, inserted] = shard.memo.try_emplace(digest.lo);
  it->second = std::move(entry);
  if (inserted) shard.memo_fifo.push_back(digest.lo);
  while (shard.memo.size() > options_.warm_memo_capacity &&
         !shard.memo_fifo.empty()) {
    shard.memo.erase(shard.memo_fifo.front());
    shard.memo_fifo.pop_front();
  }
}

Response ShardedServer::ExecuteOnShard(ShardRuntime& shard,
                                       const Request& request,
                                       const DualHash& digest,
                                       std::int64_t enqueue_ns) {
  const bool analyze = request.kind == RequestKind::kAnalyze;
  const std::string session =
      analyze ? request.args.GetString("session") : std::string();
  SessionGeneration generation;
  std::uint64_t generation_value = 0;
  if (analyze && !session.empty()) {
    generation = shard.server->sessions().Generation(session);
    if (generation != nullptr) {
      generation_value = generation->load(std::memory_order_acquire);
    }
  }
  const std::int64_t start_ns = NowNs();
  // The fleet measures deadline_ms from ADMISSION, not execution: a
  // request that spent its whole budget waiting in the shard queue is
  // already dead, and executing it would only delay the live requests
  // behind it. (Server::Execute restarts the deadline clock, so queued
  // expiry must be enforced here.) This is also the breaker's signal
  // that the shard cannot keep up.
  Response response;
  const double deadline_ms = request.args.GetDouble(
      "deadline_ms", options_.server.default_deadline_ms);
  if (enqueue_ns > 0 && deadline_ms > 0.0 &&
      static_cast<double>(start_ns - enqueue_ns) > deadline_ms * 1e6) {
    shard.server->metrics().CountDeadlineMiss();
    response = ErrResponse("deadline", "deadline expired in shard queue");
  } else {
    response = shard.server->Execute(request);
  }
  const std::int64_t end_ns = NowNs();
  shard.routed.fetch_add(1, std::memory_order_relaxed);
  // Admission-cost EWMA: queue wait + service time of this completion
  // (queued items carry their admission stamp; synchronous callers pay
  // service time only). Clamped >= 1 so "fed" is distinguishable from
  // the no-data sentinel 0.
  const std::int64_t base_ns = enqueue_ns > 0 ? enqueue_ns : start_ns;
  const std::uint64_t cost_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>((end_ns - base_ns) / 1000, 1));
  const std::uint64_t prev =
      shard.ewma_cost_us.load(std::memory_order_relaxed);
  const double alpha = options_.admission_ewma_alpha;
  const std::uint64_t next =
      prev == 0 ? cost_us
                : static_cast<std::uint64_t>(
                      (1.0 - alpha) * static_cast<double>(prev) +
                      alpha * static_cast<double>(cost_us));
  shard.ewma_cost_us.store(std::max<std::uint64_t>(next, 1),
                           std::memory_order_relaxed);
  shard.last_completion_ns.store(end_ns, std::memory_order_relaxed);
  NoteShardResult(shard, response);
  if (analyze && response.ok) {
    if (session.empty()) {
      Memoize(shard, digest, response, nullptr, 0);
    } else if (generation != nullptr &&
               generation->load(std::memory_order_acquire) ==
                   generation_value) {
      // Stamp unchanged across the analysis → the memo entry describes
      // the live session. (A concurrent mutation — only possible during
      // failover cross-execution — skips memoization instead.)
      Memoize(shard, digest, response, std::move(generation),
              generation_value);
    }
  }
  return response;
}

// --- Synchronous scripted mode --------------------------------------------

bool ShardedServer::ServeScript(std::string_view in, std::string* out) {
  FrameReassembler reassembler;
  reassembler.Feed(in);
  bool shutdown = false;
  for (;;) {
    std::string type;
    std::string body;
    std::string error;
    FrameReassembler::Result result = reassembler.Next(&type, &body, &error);
    if (result == FrameReassembler::Result::kNeedMore) {
      result = reassembler.Finish(&type, &body, &error);
      if (result == FrameReassembler::Result::kNeedMore) break;  // clean end
    }
    if (result == FrameReassembler::Result::kMalformed) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      AppendResponseFrame(ErrResponse("malformed", error), out);
      break;
    }
    Request request;
    if (!BuildRequest(type, body, &request, &error)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      AppendResponseFrame(ErrResponse("malformed", error), out);
      break;
    }
    // The reassembler parsed the optional trace token off the header;
    // adopt it for routing-side spans (and hand it on via the request).
    request.trace = reassembler.last_trace();
    obs::ScopedTraceContext trace_scope(request.trace);
    SPTA_OBS_SPAN("fleet", "route");
    if (request.kind == RequestKind::kShutdown) {
      fleet_requests_.fetch_add(1, std::memory_order_relaxed);
      shutdown_.store(true);
      shutdown = true;
      // Synchronous mode: nothing can be in flight, so the drain is
      // trivially complete when the ack is appended.
      AppendResponseFrame(DrainedResponse(), out);
      break;
    }
    if (request.kind == RequestKind::kMetrics) {
      fleet_requests_.fetch_add(1, std::memory_order_relaxed);
      AppendResponseFrame(FleetMetricsResponse(), out);
      continue;
    }
    if (request.kind == RequestKind::kMetricsProm) {
      fleet_requests_.fetch_add(1, std::memory_order_relaxed);
      Args args;
      args.Set("format", "prometheus-0.0.4");
      AppendResponseFrame(OkResponse(std::move(args), RenderFleetProm()),
                          out);
      continue;
    }
    if (request.kind == RequestKind::kHealth) {
      fleet_requests_.fetch_add(1, std::memory_order_relaxed);
      AppendResponseFrame(FleetHealthResponse(), out);
      continue;
    }
    if (request.kind == RequestKind::kTrace) {
      fleet_requests_.fetch_add(1, std::memory_order_relaxed);
      AppendResponseFrame(FleetTraceResponse(), out);
      continue;
    }
    const DualHash digest = HashBytes(body);
    const std::string session = request.args.GetString("session");
    const std::uint64_t route =
        session.empty() ? digest.lo : HashBytes(session).lo;
    const std::size_t target = ShardFor(route);
    if (target == SIZE_MAX) {
      AppendResponseFrame(ErrResponse("unavailable", "no live shard"), out);
      continue;
    }
    ShardRuntime& shard = *shards_[target];
    if (request.kind == RequestKind::kAnalyze &&
        TryServeWarm(shard, request, digest, out)) {
      continue;
    }
    if (const std::uint64_t hint = DeadlineShedHint(shard, request)) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      Response shed = ErrResponse(
          "busy", "deadline unmeetable at admission, retry later");
      shed.args.SetUint("retry_after_ms", hint);
      shed.args.Set("shed", "deadline");
      AppendResponseFrame(shed, out);
      continue;
    }
    AppendResponseFrame(ExecuteOnShard(shard, request, digest), out);
  }
  return shutdown;
}

// --- TCP fleet mode -------------------------------------------------------

int ShardedServer::ListenTcp(const std::string& host, std::uint16_t port) {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return errno;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options_.reuseport) {
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return EINVAL;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  return 0;
}

int ShardedServer::Start() {
  if (listen_fd_ < 0) return EINVAL;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return errno;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return err;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // Level-triggered: accept/wake loops drain fully.
  ev.data.ptr = nullptr;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return errno;
  }
  ev.data.ptr = reinterpret_cast<void*>(1);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return errno;
  }
  if (options_.adopt_fd >= 0) {
    // The supervisor's health-probe socketpair: served exactly like an
    // accepted TCP connection (same Conn, same epoll registration), so a
    // watchdog HEALTH probe exercises the real event loop. Registered
    // before the loop thread starts — conns_ is loop-owned after that.
    const int fd = options_.adopt_fd;
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event cev{};
    cev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    cev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &cev) == 0) {
      connections_total_.fetch_add(1, std::memory_order_relaxed);
      conns_.emplace(fd, std::move(conn));
    }
  }
  stop_workers_.store(false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread = std::thread(&ShardedServer::ShardWorker, this, i);
  }
  loop_thread_ = std::thread(&ShardedServer::EventLoop, this);
  return 0;
}

int ShardedServer::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  stop_workers_.store(true);
  for (auto& shard : shards_) shard->qcv.notify_all();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  return 0;
}

void ShardedServer::TriggerShutdown() {
  shutdown_.store(true);
  WakeLoop();
}

void ShardedServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the value is irrelevant.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void ShardedServer::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: burst drained.
    }
    if (draining_) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
  }
}

void ShardedServer::CompleteItem(const std::shared_ptr<Conn>& conn,
                                 std::uint64_t id, std::string frame,
                                 bool on_loop_thread) {
  if (conn == nullptr) return;
  bool flushable = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->ready.emplace(id, std::move(frame));
    while (!conn->ready.empty() &&
           conn->ready.begin()->first == conn->next_write) {
      conn->out += conn->ready.begin()->second;
      conn->ready.erase(conn->ready.begin());
      ++conn->next_write;
      ++conn->answered;
    }
    flushable = conn->out.size() > conn->out_off && !conn->closed;
  }
  if (on_loop_thread) {
    if (flushable) FlushConn(conn);
  } else {
    WakeLoop();  // The loop flushes; only it may touch the fd.
  }
}

void ShardedServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  if (!conn->writable) return;
  std::lock_guard<std::mutex> lock(conn->mutex);
  if (conn->closed) return;
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->writable = false;  // EPOLLOUT edge re-arms.
      return;
    }
    // Peer is gone; responses to it are undeliverable. Drop them so the
    // drain accounting still converges.
    conn->out_off = conn->out.size();
    conn->peer_eof = true;
    conn->read_closed = true;
    return;
  }
  if (conn->out_off == conn->out.size() && conn->out_off >= 1 << 16) {
    conn->out.clear();
    conn->out_off = 0;
  }
}

void ShardedServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
}

bool ShardedServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                                std::string type, std::string body) {
  const std::uint64_t id = conn->next_id++;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    ++conn->accepted;
  }
  Request request;
  std::string error;
  if (!BuildRequest(type, body, &request, &error)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    std::string frame;
    AppendResponseFrame(ErrResponse("malformed", error), &frame);
    CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
    conn->read_closed = true;  // Framing intact, but contract says stop.
    return false;
  }
  // Wire trace context (parsed off the header by this connection's
  // reassembler) scopes the loop-side routing work and rides the Item
  // into the shard worker.
  request.trace = conn->reassembler.last_trace();
  obs::ScopedTraceContext trace_scope(request.trace);
  SPTA_OBS_SPAN_ARG("fleet", "route", "id", id);
  if (request.kind == RequestKind::kShutdown) {
    fleet_requests_.fetch_add(1, std::memory_order_relaxed);
    BeginDrain(conn, id);
    return false;
  }
  if (request.kind == RequestKind::kMetrics ||
      request.kind == RequestKind::kMetricsProm ||
      request.kind == RequestKind::kHealth ||
      request.kind == RequestKind::kTrace) {
    // Loop-answered verbs: HEALTH among them is the liveness contract —
    // it must answer even when every shard queue is wedged solid.
    fleet_requests_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    if (request.kind == RequestKind::kMetrics) {
      response = FleetMetricsResponse();
    } else if (request.kind == RequestKind::kMetricsProm) {
      Args args;
      args.Set("format", "prometheus-0.0.4");
      response = OkResponse(std::move(args), RenderFleetProm());
    } else if (request.kind == RequestKind::kTrace) {
      response = FleetTraceResponse();
    } else {
      response = FleetHealthResponse();
    }
    std::string frame;
    AppendResponseFrame(response, &frame);
    CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
    return true;
  }
  const DualHash digest = HashBytes(body);
  const std::string session = request.args.GetString("session");
  const std::uint64_t route =
      session.empty() ? digest.lo : HashBytes(session).lo;
  std::size_t target = ShardFor(route);
  if (target == SIZE_MAX) {
    std::string frame;
    AppendResponseFrame(ErrResponse("unavailable", "no live shard"), &frame);
    CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
    return true;
  }
  if (request.kind == RequestKind::kAnalyze) {
    std::string frame;
    if (TryServeWarm(*shards_[target], request, digest, &frame)) {
      CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
      return true;
    }
  }
  if (const std::uint64_t hint = DeadlineShedHint(*shards_[target], request)) {
    // Admission control: queueing this request would only make it miss
    // its deadline at execution. Shed it now — counted as a shed, not a
    // failure (the request itself is fine; the timing isn't).
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    Response shed = ErrResponse(
        "busy", "deadline unmeetable at admission, retry later");
    shed.args.SetUint("retry_after_ms", hint);
    shed.args.Set("shed", "deadline");
    std::string frame;
    AppendResponseFrame(shed, &frame);
    CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
    return true;
  }
  const RequestKind kind = request.kind;
  Item item;
  item.conn = conn;
  item.id = id;
  item.request = std::move(request);
  item.body_digest = digest;
  item.route = route;
  item.enqueue_ns = NowNs();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (!PushToShard(target, std::move(item))) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shards_[target]->server->metrics().CountBusyRejection();
    shards_[target]->server->metrics().CountRequest(kind, false);
    Response busy = ErrResponse("busy", "shard queue full, retry later");
    if (const std::uint64_t hint = BusyRetryHint(*shards_[target])) {
      busy.args.SetUint("retry_after_ms", hint);
    }
    std::string frame;
    AppendResponseFrame(busy, &frame);
    CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
  }
  return true;
}

bool ShardedServer::PushToShard(std::size_t index, Item item) {
  // The target may die between routing and locking its queue; chase the
  // deterministic reroute, bounded by the shard count.
  for (std::size_t hop = 0; hop <= shards_.size(); ++hop) {
    ShardRuntime& shard = *shards_[index];
    {
      std::unique_lock<std::mutex> lock(shard.qmutex);
      if (!shard.dead) {
        if (shard.queue.size() >= options_.shard_queue_capacity) {
          return false;  // Busy-rejection: answered, never buffered.
        }
        shard.pending.fetch_add(1, std::memory_order_acq_rel);
        shard.queue.push_back(std::move(item));
        // A half-open breaker admits exactly this one probe; the probe's
        // outcome (NoteShardResult) closes or re-opens it.
        if (shard.breaker_state.load(std::memory_order_acquire) == 2) {
          shard.half_open_probes.fetch_add(1, std::memory_order_acq_rel);
        }
        lock.unlock();
        shard.qcv.notify_one();
        return true;
      }
    }
    const std::size_t next = ShardFor(item.route);
    if (next == SIZE_MAX || next == index) break;
    failovers_.fetch_add(1, std::memory_order_relaxed);
    index = next;
  }
  const std::shared_ptr<Conn> conn = item.conn;
  const std::uint64_t id = item.id;
  std::string frame;
  AppendResponseFrame(ErrResponse("unavailable", "no live shard"), &frame);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
  return true;  // Answered — not a busy rejection.
}

void ShardedServer::ReadConn(const std::shared_ptr<Conn>& conn) {
  if (conn->read_closed) return;
  char buffer[65536];
  for (;;) {
    if (draining_) {
      conn->read_closed = true;  // Intake stopped fleet-wide.
      return;
    }
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->reassembler.Feed(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      std::string type;
      std::string body;
      std::string error;
      for (;;) {
        const FrameReassembler::Result result =
            conn->reassembler.Next(&type, &body, &error);
        if (result == FrameReassembler::Result::kNeedMore) break;
        if (result == FrameReassembler::Result::kMalformed) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t id = conn->next_id++;
          {
            std::lock_guard<std::mutex> lock(conn->mutex);
            ++conn->accepted;
          }
          std::string frame;
          AppendResponseFrame(ErrResponse("malformed", error), &frame);
          CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
          conn->read_closed = true;
          return;
        }
        if (!HandleFrame(conn, std::move(type), std::move(body))) return;
      }
      continue;  // Edge-triggered: read until EAGAIN.
    }
    if (n == 0) {
      conn->peer_eof = true;
      conn->read_closed = true;
      // EOF flush: trailing bytes may still complete frames under the
      // blocking reader's end-of-stream rules.
      std::string type;
      std::string body;
      std::string error;
      for (;;) {
        const FrameReassembler::Result result =
            conn->reassembler.Finish(&type, &body, &error);
        if (result == FrameReassembler::Result::kNeedMore) break;
        if (result == FrameReassembler::Result::kMalformed) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t id = conn->next_id++;
          {
            std::lock_guard<std::mutex> lock(conn->mutex);
            ++conn->accepted;
          }
          std::string frame;
          AppendResponseFrame(ErrResponse("malformed", error), &frame);
          CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
          break;
        }
        if (!HandleFrame(conn, std::move(type), std::move(body))) break;
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->peer_eof = true;  // Hard error: treat as peer death.
    conn->read_closed = true;
    return;
  }
}

void ShardedServer::BeginDrain(const std::shared_ptr<Conn>& conn,
                               std::uint64_t id) {
  if (draining_) {
    // A second SHUTDOWN during the drain: ack it right away.
    if (conn != nullptr) {
      std::string frame;
      AppendResponseFrame(DrainedResponse(), &frame);
      CompleteItem(conn, id, std::move(frame), /*on_loop_thread=*/true);
    }
    return;
  }
  draining_ = true;
  shutdown_.store(true);
  drain_ack_conn_ = conn;
  drain_ack_id_ = id;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ShardedServer::CheckDrain() {
  if (!draining_ || drain_acked_) return;
  if (inflight_.load(std::memory_order_acquire) != 0) return;
  // Every accepted request has been answered into its connection's
  // buffers; the SHUTDOWN ack may now go out (strictly after them, via
  // the per-connection ordering).
  drain_acked_ = true;
  if (drain_ack_conn_ != nullptr) {
    std::string frame;
    AppendResponseFrame(DrainedResponse(), &frame);
    CompleteItem(drain_ack_conn_, drain_ack_id_, std::move(frame),
                 /*on_loop_thread=*/true);
    drain_ack_conn_.reset();
  }
}

void ShardedServer::EventLoop() {
  std::vector<epoll_event> events(64);
  Clock::time_point flush_deadline{};
  for (;;) {
    const int timeout_ms = draining_ ? 20 : 200;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == nullptr) {
        if (listen_fd_ >= 0) AcceptReady();
        continue;
      }
      if (tag == reinterpret_cast<void*>(1)) {
        std::uint64_t junk = 0;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;  // Flush + drain checks run below for every wake.
      }
      Conn* raw = static_cast<Conn*>(tag);
      const auto it = conns_.find(raw->fd);
      if (it == conns_.end()) continue;  // Already closed this pass.
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & EPOLLOUT) != 0) conn->writable = true;
      if ((events[i].events &
           (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        ReadConn(conn);
      }
    }
    if (shutdown_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain(nullptr, 0);
    }
    CheckDrain();
    // Flush-and-reap pass over every connection (completions arrive from
    // shard threads at any time; the conn set stays small enough that a
    // full sweep beats bookkeeping a dirty list).
    std::vector<std::shared_ptr<Conn>> sweep;
    sweep.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) sweep.push_back(conn);
    for (const std::shared_ptr<Conn>& conn : sweep) {
      FlushConn(conn);
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        done = conn->read_closed && conn->accepted == conn->answered &&
               conn->ready.empty() && conn->out_off == conn->out.size();
      }
      if (done && (conn->peer_eof || conn->read_closed) &&
          (!draining_ || drain_acked_)) {
        // During the drain, responses already banked must still go out
        // before teardown — only reap once the ack has been ordered in.
        if (conn->peer_eof || drain_acked_) CloseConn(conn);
      }
    }
    if (drain_acked_) {
      if (flush_deadline == Clock::time_point{}) {
        flush_deadline = Clock::now() + std::chrono::seconds(5);
      }
      bool unflushed = false;
      for (const auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->out_off < conn->out.size() || !conn->ready.empty() ||
            conn->accepted != conn->answered) {
          unflushed = true;
          break;
        }
      }
      if (!unflushed || Clock::now() > flush_deadline) break;
    }
  }
  // Teardown: every answered byte either left or timed out; close what
  // remains so clients observe EOF.
  std::vector<std::shared_ptr<Conn>> leftover;
  leftover.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) leftover.push_back(conn);
  for (const std::shared_ptr<Conn>& conn : leftover) CloseConn(conn);
}

void ShardedServer::ShardWorker(std::size_t index) {
  ShardRuntime& shard = *shards_[index];
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(shard.qmutex);
      shard.qcv.wait(lock, [&] {
        return shard.dead || stop_workers_.load(std::memory_order_acquire) ||
               !shard.queue.empty();
      });
      if (shard.dead) break;
      if (shard.queue.empty()) {
        if (stop_workers_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    // The request's wire trace context crossed the queue inside the Item;
    // re-install it on this worker thread so the shard's spans (and any
    // metric exemplars) link into the same distributed trace, and record
    // the cross-thread queue-wait span from the admission timestamp
    // (enqueue_ns and Tracer::NowNs share the absolute monotonic clock).
    obs::ScopedTraceContext trace_scope(item.request.trace);
    if (obs::Tracer::Enabled() && item.enqueue_ns > 0) {
      obs::Tracer::Instance().RecordComplete(
          "fleet", "queue_wait", static_cast<std::uint64_t>(item.enqueue_ns),
          obs::Tracer::NowNs(), "id", item.id);
    }
    const Response response =
        ExecuteOnShard(shard, item.request, item.body_digest,
                       item.enqueue_ns);
    std::string frame;
    AppendResponseFrame(response, &frame);
    CompleteItem(item.conn, item.id, std::move(frame),
                 /*on_loop_thread=*/false);
    // Release order matters: the response (and any memo entry) must be
    // visible before the pending gate reopens the warm path.
    shard.pending.fetch_sub(1, std::memory_order_release);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    WakeLoop();
  }
  FailoverQueue(shard);
}

void ShardedServer::FailoverQueue(ShardRuntime& shard) {
  std::deque<Item> orphans;
  {
    std::lock_guard<std::mutex> lock(shard.qmutex);
    orphans.swap(shard.queue);
  }
  for (Item& item : orphans) {
    shard.pending.fetch_sub(1, std::memory_order_release);
    const std::size_t next = ShardFor(item.route);
    bool moved = false;
    if (next != SIZE_MAX && next != shard.index) {
      ShardRuntime& target = *shards_[next];
      std::unique_lock<std::mutex> lock(target.qmutex);
      if (!target.dead &&
          target.queue.size() < options_.shard_queue_capacity) {
        target.pending.fetch_add(1, std::memory_order_acq_rel);
        target.queue.push_back(std::move(item));
        lock.unlock();
        target.qcv.notify_one();
        failovers_.fetch_add(1, std::memory_order_relaxed);
        moved = true;
      }
    }
    if (!moved) {
      std::string frame;
      AppendResponseFrame(ErrResponse("unavailable", "shard down"), &frame);
      CompleteItem(item.conn, item.id, std::move(frame),
                   /*on_loop_thread=*/false);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      WakeLoop();
    }
  }
}

// --- Fleet metrics surface ------------------------------------------------

Response ShardedServer::FleetMetricsResponse() {
  std::map<std::string, std::uint64_t> sums;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::string payload;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Server& server = *shards_[i]->server;
    const ResultCache::Stats cache = server.engine().cache().stats();
    const Args snapshot = server.metrics().Snapshot(cache);
    for (const auto& [key, value] : snapshot.values()) {
      if (key == "cache_hit_ratio") continue;  // Recomputed fleet-wide.
      sums[key] += snapshot.GetUint(key, 0);
    }
    hits += cache.hits;
    misses += cache.misses;
    payload += "== shard " + std::to_string(i) + " ==\n";
    payload += server.metrics().Render(cache);
    payload.push_back('\n');
  }
  Args args;
  for (const auto& [key, value] : sums) args.SetUint(key, value);
  args.SetDouble("cache_hit_ratio",
                 hits + misses > 0
                     ? static_cast<double>(hits) /
                           static_cast<double>(hits + misses)
                     : 0.0);
  std::uint64_t alive = 0;
  std::uint64_t memo = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_alive(i)) ++alive;
    memo += shard_memo_hits(i);
  }
  args.SetUint("fleet_shards", shards_.size());
  args.SetUint("fleet_alive", alive);
  args.SetUint("fleet_memo_hits", memo);
  args.SetUint("fleet_failovers",
               failovers_.load(std::memory_order_relaxed));
  args.SetUint("fleet_protocol_errors",
               protocol_errors_.load(std::memory_order_relaxed));
  args.SetUint("fleet_connections",
               connections_total_.load(std::memory_order_relaxed));
  std::uint64_t breakers_open = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_breaker_state(i) == 1) ++breakers_open;
  }
  args.SetUint("fleet_breaker_open", breakers_open);
  args.SetUint("fleet_breaker_opens", breaker_opens_total());
  args.SetUint("fleet_shed_deadline",
               shed_deadline_.load(std::memory_order_relaxed));
  return OkResponse(std::move(args), std::move(payload));
}

Response ShardedServer::FleetTraceResponse() {
  // The Tracer is process-global: its thread rings already cover the event
  // loop and every shard worker, so the fleet's TRACE reply is the same
  // export the classic server produces.
  std::ostringstream trace_json;
  if (!obs::Tracer::Instance().WriteChromeTrace(trace_json)) {
    return ErrResponse("trace", "trace serialization failed");
  }
  const obs::Tracer::Stats stats = obs::Tracer::Instance().GetStats();
  Args args;
  args.Set("format", "chrome-trace");
  args.SetUint("events", stats.recorded);
  args.SetUint("dropped", stats.dropped);
  args.SetUint("enabled", obs::Tracer::Enabled() ? 1 : 0);
  return OkResponse(std::move(args), trace_json.str());
}

Response ShardedServer::FleetHealthResponse() {
  const std::int64_t now = NowNs();
  std::string payload;
  std::size_t alive_count = 0;
  std::size_t breakers_open = 0;
  std::size_t stalled_count = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardRuntime& shard = *shards_[i];
    const bool alive = shard.alive.load(std::memory_order_acquire);
    const int breaker = shard.breaker_state.load(std::memory_order_acquire);
    const std::uint64_t pending =
        shard.pending.load(std::memory_order_acquire);
    std::size_t queue_depth = 0;
    {
      std::lock_guard<std::mutex> lock(shard.qmutex);
      queue_depth = shard.queue.size();
    }
    const std::int64_t age_ns =
        now - shard.last_completion_ns.load(std::memory_order_relaxed);
    const std::uint64_t age_ms = static_cast<std::uint64_t>(
        std::max<std::int64_t>(age_ns, 0) / 1'000'000);
    // Stalled = has work but is making no progress: exactly the wedged
    // shard the watchdog/readiness story exists to surface. A busy shard
    // still completing requests keeps its age fresh and stays ready.
    const bool stalled =
        alive && pending > 0 &&
        static_cast<double>(age_ms) > options_.health_stall_after_ms;
    if (alive) ++alive_count;
    if (breaker == 1) ++breakers_open;
    if (stalled) ++stalled_count;
    payload += "== shard " + std::to_string(i) + " ==\n";
    payload += "alive=" + std::to_string(alive ? 1 : 0);
    payload += " breaker=";
    payload += BreakerName(breaker);
    payload += " queue_depth=" + std::to_string(queue_depth);
    payload += " inflight=" + std::to_string(pending);
    payload += " ewma_cost_us=" +
               std::to_string(shard.ewma_cost_us.load(
                   std::memory_order_relaxed));
    payload += " last_completion_age_ms=" + std::to_string(age_ms);
    payload += " stalled=" + std::to_string(stalled ? 1 : 0);
    payload.push_back('\n');
  }
  const bool draining = shutdown_.load(std::memory_order_acquire);
  const bool degraded = draining || alive_count < shards_.size() ||
                        breakers_open > 0 || stalled_count > 0;
  Args args;
  args.Set("status", degraded ? "degraded" : "ok");
  args.Set("role", "fleet");
  args.SetUint("fleet_shards", shards_.size());
  args.SetUint("fleet_alive", alive_count);
  args.SetUint("fleet_breaker_open", breakers_open);
  args.SetUint("fleet_stalled", stalled_count);
  args.SetUint("fleet_inflight",
               inflight_.load(std::memory_order_acquire));
  args.SetUint("fleet_shed_deadline",
               shed_deadline_.load(std::memory_order_relaxed));
  args.SetUint("draining", draining ? 1 : 0);
  return OkResponse(std::move(args), std::move(payload));
}

std::string ShardedServer::RenderFleetProm() {
  std::ostringstream out;
  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out << "# HELP " << name << ' ' << help << "\n# TYPE " << name
        << " counter\n"
        << name << ' ' << value << '\n';
  };
  out << "# HELP spta_fleet_shards Worker shard count.\n"
         "# TYPE spta_fleet_shards gauge\n"
         "spta_fleet_shards "
      << shards_.size() << '\n';
  out << "# HELP spta_fleet_shard_alive Shard liveness (1 = serving).\n"
         "# TYPE spta_fleet_shard_alive gauge\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out << "spta_fleet_shard_alive{shard=\"" << i << "\"} "
        << (shard_alive(i) ? 1 : 0) << '\n';
  }
  out << "# HELP spta_fleet_routed_total Requests routed to each shard.\n"
         "# TYPE spta_fleet_routed_total counter\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out << "spta_fleet_routed_total{shard=\"" << i << "\"} "
        << shard_routed_total(i) << '\n';
  }
  out << "# HELP spta_fleet_memo_hits_total ANALYZE requests answered from "
         "the warm response memo.\n"
         "# TYPE spta_fleet_memo_hits_total counter\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out << "spta_fleet_memo_hits_total{shard=\"" << i << "\"} "
        << shard_memo_hits(i) << '\n';
  }
  out << "# HELP spta_fleet_requests_total Requests finished per shard.\n"
         "# TYPE spta_fleet_requests_total counter\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out << "spta_fleet_requests_total{shard=\"" << i << "\"} "
        << shards_[i]->server->metrics().requests_total() << '\n';
  }
  out << "# HELP spta_fleet_breaker_state Circuit-breaker state per shard "
         "(0 closed, 1 open, 2 half-open).\n"
         "# TYPE spta_fleet_breaker_state gauge\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out << "spta_fleet_breaker_state{shard=\"" << i << "\"} "
        << shard_breaker_state(i) << '\n';
  }
  counter("spta_fleet_breaker_opens_total",
          "Closed-to-open circuit breaker transitions.",
          breaker_opens_total());
  counter("spta_fleet_shed_deadline_total",
          "Requests shed at admission (unmeetable deadline_ms).",
          shed_deadline_.load(std::memory_order_relaxed));
  counter("spta_fleet_failovers_total",
          "Requests rerouted off a dead shard.",
          failovers_.load(std::memory_order_relaxed));
  counter("spta_fleet_protocol_errors_total",
          "Malformed frames cut off by the event loop.",
          protocol_errors_.load(std::memory_order_relaxed));
  counter("spta_fleet_connections_total",
          "TCP connections accepted by the event loop.",
          connections_total_.load(std::memory_order_relaxed));
  counter("spta_fleet_loop_requests_total",
          "Verbs handled on the event loop (METRICS/SHUTDOWN).",
          fleet_requests_.load(std::memory_order_relaxed));
  if (store_ != nullptr) {
    const PersistentResultCache::Stats stats = store_->stats();
    counter("spta_fleet_persistent_loaded_total",
            "Persistent cache entries restored at startup.", stats.loaded);
    counter("spta_fleet_persistent_rejected_total",
            "Persistent cache files rejected as corrupt.", stats.rejected);
    counter("spta_fleet_persistent_stored_total",
            "Persistent cache entries written.", stats.stored);
    counter("spta_fleet_persistent_store_failures_total",
            "Persistent cache writes that failed.", stats.store_failures);
    counter("spta_fleet_persistent_evicted_total",
            "Persistent cache entries unlinked to stay in budget.",
            stats.evicted);
    counter("spta_fleet_persistent_evicted_bytes_total",
            "Bytes reclaimed by persistent cache eviction.",
            stats.evicted_bytes);
    counter("spta_fleet_persistent_enospc_total",
            "Persistent cache writes failed with ENOSPC/EDQUOT.",
            stats.enospc_failures);
    counter("spta_fleet_persistent_eio_total",
            "Persistent cache writes failed with EIO.", stats.eio_failures);
    out << "# HELP spta_fleet_persistent_degraded Sticky flag: persistent "
           "cache gave up and runs memory-only.\n"
           "# TYPE spta_fleet_persistent_degraded gauge\n"
           "spta_fleet_persistent_degraded "
        << stats.degraded << '\n';
  }
  return out.str();
}

}  // namespace spta::service
