// The sharded async fleet core: epoll event loop + digest-routed shards.
//
// Where the classic Server (server.hpp) is thread-per-connection over
// blocking streams, ShardedServer is the production shape ROADMAP item 1
// asks for:
//
//   * one edge-triggered epoll event loop owns every TCP connection:
//     non-blocking accepts, non-blocking reads banked into an incremental
//     FrameReassembler (frame_reader.hpp — a slow or hostile client can
//     stall only its own connection, never a shard), and non-blocking
//     ordered writes (per-connection reorder buffer, loop thread is the
//     sole writer of any fd);
//   * N shared-nothing worker shards, each a full classic Server (own
//     SessionManager, AnalysisEngine + result cache, ServiceMetrics),
//     fed over bounded FIFO queues. Requests route by content digest:
//     session-bound verbs hash the session name — one session's whole
//     life happens on one shard, in order — and stateless requests hash
//     their raw body bytes, so identical ANALYZE requests always land on
//     the shard whose cache already holds their result;
//   * a memoized warm path on the loop thread: a repeated ANALYZE whose
//     shard is idle is answered from a per-shard memo of rendered
//     response bytes without ever crossing a thread — same bytes the
//     classic warm path produces (only the volatile analyze_us timing
//     field is re-rendered per request), which is what makes ≥10× the
//     single-socket warm throughput reachable on one core. Session memo
//     entries carry the session's generation stamp (session.hpp) and die
//     the moment the session mutates;
//   * zero-loss drain: SHUTDOWN (in-band or TriggerShutdown) stops
//     intake, waits for every accepted request to complete and flush,
//     acks, then exits — the classic guarantee, kept;
//   * chaos hooks: KillShardForTest stops a shard mid-campaign; its
//     queued stateless requests fail over to surviving shards (counted),
//     its session-bound ones are answered ERR unavailable — every
//     accepted request is still answered;
//   * self-protection: a request whose deadline_ms the target shard's
//     EWMA backlog estimate cannot meet is shed at admission (ERR busy
//     with a retry_after_ms hint, counted as shed — never queued to miss
//     its deadline at execution), and per-shard circuit breakers turn a
//     consecutively-failing shard into a fail-fast reroute (open) until
//     a half-open probe readmits it; the HEALTH verb reports loop
//     liveness plus per-shard readiness without ever crossing a queue.
//
// ServeScript() drives the identical routing/memo/execute pipeline
// synchronously over an in-memory byte string — the equivalence tests and
// the load generator use it to compare fleet behavior against the classic
// server without socket noise.
//
// Persistence: when ServerOptions::cache_dir is set, the fleet owns ONE
// PersistentResultCache shared by every shard (a single writer lock per
// process; entries are preloaded into every shard's in-memory cache at
// construction), so restarts warm-start no matter how routing maps keys
// to shards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "service/frame_reader.hpp"
#include "service/persistent_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace spta::service {

struct ShardedServerOptions {
  /// Worker shard count (>= 1).
  std::size_t shards = 1;
  /// Per-shard template. cache_dir is lifted out and shared fleet-wide;
  /// workers is forced to 1 (shard threads execute inline — the fleet's
  /// parallelism is the shard count, not a nested pool).
  ServerOptions server;
  /// Queued requests per shard before busy-rejection (ERR busy).
  std::size_t shard_queue_capacity = 256;
  /// Memoized warm responses retained per shard (FIFO bound).
  std::size_t warm_memo_capacity = 4096;
  /// listen(2) backlog for the TCP listener.
  int listen_backlog = 128;
  /// SO_REUSEPORT on the listener: lets several fleet processes (spawned
  /// by the spta_fleet supervisor) share one port.
  bool reuseport = false;
  /// Consecutive execution failures (ERR internal / ERR deadline) that
  /// flip a shard's circuit breaker open — routed traffic fails over to
  /// the survivors via the deterministic rehash until a half-open probe
  /// succeeds. 0 disables breakers.
  int breaker_failure_threshold = 8;
  /// How long an open breaker fails fast before admitting the half-open
  /// probe that decides readmission.
  double breaker_cooldown_ms = 1000.0;
  /// EWMA smoothing factor for the per-shard admission cost estimate
  /// (queue wait + service time per completed request).
  double admission_ewma_alpha = 0.2;
  /// HEALTH readiness: a shard with queued work whose last completion is
  /// older than this is reported stalled=1 (fleet status=degraded).
  double health_stall_after_ms = 5000.0;
  /// An already-connected stream fd adopted as a served connection at
  /// Start() — the spta_fleet supervisor's health-probe socketpair, so a
  /// watchdog HEALTH probe reaches the event loop without competing for
  /// the SO_REUSEPORT listener (which load-balances across processes).
  /// -1 = none.
  int adopt_fd = -1;
};

class ShardedServer {
 public:
  explicit ShardedServer(ShardedServerOptions options = {});
  ~ShardedServer();
  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  // --- Routing (deterministic; exposed for the routing tests) ---

  /// The content digest a frame routes by: the session name's byte hash
  /// for session-bound requests (one session, one shard, in order), the
  /// raw body bytes' hash otherwise.
  static std::uint64_t RouteDigest(const Request& request,
                                   std::string_view body);
  /// digest % shards, rehashed deterministically over the survivors when
  /// the primary shard is dead. SIZE_MAX when no shard is alive.
  std::size_t ShardFor(std::uint64_t route_digest) const;

  // --- Synchronous scripted mode (tests + load generator) ---

  /// Feeds a byte string of frames through the full routing/memo/execute
  /// pipeline on the calling thread, appending response frames to `out`.
  /// Returns true iff a SHUTDOWN frame was processed. Not concurrency-
  /// safe against the TCP mode (drive one or the other).
  bool ServeScript(std::string_view in, std::string* out);

  // --- TCP fleet mode ---

  /// Binds and listens on host:port (IPv4 dotted quad; port 0 = pick an
  /// ephemeral port, see bound_port()). Returns 0 or an errno.
  int ListenTcp(const std::string& host, std::uint16_t port);
  std::uint16_t bound_port() const { return bound_port_; }

  /// Spawns the shard workers and the event loop thread. Requires a
  /// successful ListenTcp. Returns 0 or an errno.
  int Start();

  /// Blocks until the loop exits (drain complete), then stops and joins
  /// every shard. Returns 0 on a clean drain.
  int Wait();

  /// Initiates the zero-loss drain from outside a request stream (signal
  /// watcher, supervisor). Idempotent, thread-safe, async-signal-UNSAFE.
  void TriggerShutdown();

  bool shutdown_requested() const { return shutdown_.load(); }

  // --- Chaos / introspection ---

  /// Marks shard `index` dead: its queue fails over to survivors, new
  /// requests reroute deterministically. The shard's in-flight request
  /// still completes — no accepted request is ever dropped.
  void KillShardForTest(std::size_t index);

  std::size_t shard_count() const { return shards_.size(); }
  Server& shard(std::size_t index);
  bool shard_alive(std::size_t index) const;
  /// Requests this shard executed or answered from its warm memo.
  std::uint64_t shard_routed_total(std::size_t index) const;
  std::uint64_t shard_memo_hits(std::size_t index) const;
  /// Circuit-breaker state: 0 closed, 1 open, 2 half-open.
  int shard_breaker_state(std::size_t index) const;
  /// Closed→open breaker transitions, fleet-wide.
  std::uint64_t breaker_opens_total() const;
  /// ANALYZE requests shed at admission (unmeetable deadline_ms).
  std::uint64_t shed_deadline_total() const {
    return shed_deadline_.load(std::memory_order_relaxed);
  }
  std::uint64_t failovers_total() const { return failovers_.load(); }
  std::uint64_t protocol_errors_total() const {
    return protocol_errors_.load();
  }
  PersistentResultCache* persistent_cache() { return store_.get(); }

  /// Fleet-level HEALTH response, answered on the event loop (liveness)
  /// and never queued: args carry the fleet readiness verdict, the
  /// payload one "== shard N ==" readiness section per shard (queue
  /// depth, inflight, last-completion age, breaker state, stalled flag).
  Response FleetHealthResponse();

  /// Fleet-level METRICS response: counters summed across shards (the
  /// documented Snapshot key surface, cache_hit_ratio recomputed from the
  /// summed hit/miss counts) plus fleet_* keys; the payload concatenates
  /// each shard's rendered table under a "== shard N ==" heading.
  Response FleetMetricsResponse();

  /// Fleet-level TRACE response, answered on the event loop: the Chrome
  /// trace-event JSON export of the process-wide tracer (loop + shard
  /// threads share one Tracer), args carrying format/events/dropped/
  /// enabled exactly like the classic server's TRACE reply.
  Response FleetTraceResponse();

  /// Prometheus text exposition of the fleet surface: spta_fleet_*
  /// families only (per-shard series labeled shard="N"), disjoint from
  /// the per-server families in ServiceMetrics::RenderProm so a scrape
  /// of both never sees a duplicated family.
  std::string RenderFleetProm();

 private:
  struct Conn;
  struct ShardRuntime;
  struct Item {
    std::shared_ptr<Conn> conn;  ///< Null in ServeScript mode.
    std::uint64_t id = 0;
    Request request;
    DualHash body_digest;
    std::uint64_t route = 0;
    std::int64_t enqueue_ns = 0;  ///< Admission time (EWMA cost input).
  };

  // Shared pipeline (both modes).
  bool TryServeWarm(ShardRuntime& shard, const Request& request,
                    const DualHash& digest, std::string* frame);
  Response ExecuteOnShard(ShardRuntime& shard, const Request& request,
                          const DualHash& digest,
                          std::int64_t enqueue_ns = 0);
  /// Routing admission: alive AND the circuit breaker admits traffic
  /// (closed, or half-open with no probe outstanding). Transitions
  /// open→half-open when the cooldown has elapsed.
  bool ShardRoutable(std::size_t index) const;
  /// Feeds one completed response into the shard's breaker bookkeeping.
  void NoteShardResult(ShardRuntime& shard, const Response& response);
  /// 0 = admissible; otherwise the retry_after_ms hint for a request
  /// whose deadline_ms the shard's EWMA backlog estimate cannot meet.
  std::uint64_t DeadlineShedHint(const ShardRuntime& shard,
                                 const Request& request) const;
  /// retry_after_ms hint for a plain queue-full busy rejection (0 = no
  /// estimate available, hint omitted).
  std::uint64_t BusyRetryHint(const ShardRuntime& shard) const;
  void Memoize(ShardRuntime& shard, const DualHash& digest,
               const Response& response, SessionGeneration generation,
               std::uint64_t generation_value);

  // TCP mode internals (defined in sharded_server.cpp).
  void EventLoop();
  void ShardWorker(std::size_t index);
  void FailoverQueue(ShardRuntime& shard);
  bool PushToShard(std::size_t index, Item item);
  void CompleteItem(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                    std::string frame, bool on_loop_thread);
  void AcceptReady();
  void ReadConn(const std::shared_ptr<Conn>& conn);
  bool HandleFrame(const std::shared_ptr<Conn>& conn, std::string type,
                   std::string body);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void BeginDrain(const std::shared_ptr<Conn>& conn, std::uint64_t id);
  void CheckDrain();
  void WakeLoop();

  ShardedServerOptions options_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::unique_ptr<PersistentResultCache> store_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> shed_deadline_{0};  ///< Admission sheds.
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> fleet_requests_{0};  ///< Loop-handled verbs.

  // TCP mode state.
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: cross-thread completion/shutdown wake.
  std::uint16_t bound_port_ = 0;
  std::thread loop_thread_;
  std::atomic<std::uint64_t> inflight_{0};  ///< Shard-queued, unanswered.
  bool draining_ = false;                   ///< Loop thread only.
  std::shared_ptr<Conn> drain_ack_conn_;    ///< Loop thread only.
  std::uint64_t drain_ack_id_ = 0;          ///< Loop thread only.
  bool drain_acked_ = false;                ///< Loop thread only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< Loop only.
  std::atomic<bool> stop_workers_{false};
};

}  // namespace spta::service
