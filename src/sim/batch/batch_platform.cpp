#include "sim/batch/batch_platform.hpp"

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim::batch {

BatchPlatform::BatchPlatform(const PlatformConfig& config, std::size_t lanes)
    : config_(config),
      lanes_(lanes),
      timing_digest_(TimingDigest(config)),
      il1_(config.il1, lanes),
      dl1_(config.dl1, lanes),
      itlb_(config.itlb, lanes),
      dtlb_(config.dtlb, lanes) {
  SPTA_REQUIRE(lanes >= 1 && lanes <= kMaxLanes);
  config_.Validate();
  memories_.reserve(lanes);
  store_buffers_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    // The construction seed is irrelevant post-reset (ResetLane installs
    // the run seed); mirror the Platform arena convention.
    memories_.emplace_back(config_.bus, config_.dram, config_.l2,
                           DeriveSeed(0, "memory"));
    store_buffers_.emplace_back(config_.store_buffer);
  }
  now_.assign(lanes, 0);
}

void BatchPlatform::ResetLane(std::size_t lane, Seed run_seed) {
  // Mirrors Platform::ResetAll for core 0: memory reset with the run seed,
  // then the core's per-structure derivation chain (Core::Reseed).
  memories_[lane].Reset(run_seed);
  const Seed core_seed = DeriveSeed(run_seed, std::uint64_t{0});
  il1_.Reseed(lane, DeriveSeed(core_seed, "il1"));
  dl1_.Reseed(lane, DeriveSeed(core_seed, "dl1"));
  itlb_.Reseed(lane, DeriveSeed(core_seed, "itlb"));
  dtlb_.Reseed(lane, DeriveSeed(core_seed, "dtlb"));
  il1_.ResetStats(lane);
  dl1_.ResetStats(lane);
  itlb_.ResetStats(lane);
  dtlb_.ResetStats(lane);
  store_buffers_[lane].Reset();
  now_[lane] = 0;
}

std::vector<RunResult> BatchPlatform::RunBatch(
    const PreparedTrace& prepared, std::span<const Seed> run_seeds) {
  const std::size_t n = run_seeds.size();
  SPTA_REQUIRE(n >= 1 && n <= lanes_);
  SPTA_REQUIRE_MSG(prepared.timing_digest == timing_digest_,
                   "prepared trace was built under different timing "
                   "parameters than this BatchPlatform");

  for (std::size_t l = 0; l < n; ++l) ResetLane(l, run_seeds[l]);

  const Cycles itlb_penalty = config_.itlb.miss_penalty;
  const Cycles dtlb_penalty = config_.dtlb.miss_penalty;

  for (const BatchEvent& e : prepared.events) {
    switch (e.kind) {
      case BatchEvent::Kind::kBulkFetch:
        for (std::size_t l = 0; l < n; ++l) {
          itlb_.MruRun(l, e.count);
          il1_.MruRun(l, e.count);
          now_[l] += e.cycles;
        }
        break;
      case BatchEvent::Kind::kFetch:
        for (std::size_t l = 0; l < n; ++l) {
          if (e.itlb_full) {
            if (!itlb_.Access(l, e.pc)) now_[l] += itlb_penalty;
          } else {
            itlb_.MruRun(l, 1);
          }
          if (e.il1_full) {
            if (!il1_.Access(l, e.pc)) {
              now_[l] = memories_[l].LineFill(0, e.pc, now_[l]);
            }
          } else {
            il1_.MruRun(l, 1);
          }
          now_[l] += e.cycles;
        }
        break;
      case BatchEvent::Kind::kLoad:
        for (std::size_t l = 0; l < n; ++l) {
          if (e.itlb_full) {
            if (!itlb_.Access(l, e.pc)) now_[l] += itlb_penalty;
          } else {
            itlb_.MruRun(l, 1);
          }
          if (e.il1_full) {
            if (!il1_.Access(l, e.pc)) {
              now_[l] = memories_[l].LineFill(0, e.pc, now_[l]);
            }
          } else {
            il1_.MruRun(l, 1);
          }
          now_[l] += e.cycles;
          if (!dtlb_.Access(l, e.mem_addr)) now_[l] += dtlb_penalty;
          if (!dl1_.Access(l, e.mem_addr, /*allocate_on_miss=*/true)) {
            now_[l] = memories_[l].LineFill(0, e.mem_addr, now_[l]);
          }
        }
        break;
      case BatchEvent::Kind::kStore:
        for (std::size_t l = 0; l < n; ++l) {
          if (e.itlb_full) {
            if (!itlb_.Access(l, e.pc)) now_[l] += itlb_penalty;
          } else {
            itlb_.MruRun(l, 1);
          }
          if (e.il1_full) {
            if (!il1_.Access(l, e.pc)) {
              now_[l] = memories_[l].LineFill(0, e.pc, now_[l]);
            }
          } else {
            il1_.MruRun(l, 1);
          }
          now_[l] += e.cycles;
          if (!dtlb_.Access(l, e.mem_addr)) now_[l] += dtlb_penalty;
          dl1_.Access(l, e.mem_addr, /*allocate_on_miss=*/false);
          MemorySystem* mem = &memories_[l];
          const Address addr = e.mem_addr;
          now_[l] = store_buffers_[l].Push(now_[l], [mem, addr](Cycles ready) {
            return mem->Store(0, addr, ready);
          });
        }
        break;
    }
  }

  std::vector<RunResult> results(n);
  for (std::size_t l = 0; l < n; ++l) {
    now_[l] = store_buffers_[l].DrainAll(now_[l]);
    RunResult& r = results[l];
    r.cycles = now_[l];
    r.instructions = prepared.instructions;
    r.il1 = il1_.stats(l);
    r.dl1 = dl1_.stats(l);
    r.itlb = itlb_.stats(l);
    r.dtlb = dtlb_.stats(l);
    r.fpu = prepared.fpu;
    r.store_buffer = store_buffers_[l].stats();
    for (const auto& draws : {il1_.draw_stats(l), dl1_.draw_stats(l),
                              itlb_.draw_stats(l), dtlb_.draw_stats(l)}) {
      r.prng.words += draws.words;
      r.prng.rejections += draws.rejections;
    }
    r.bus = memories_[l].bus().stats();
    r.dram = memories_[l].dram().stats();
  }
  return results;
}

}  // namespace spta::sim::batch
