// The lockstep multi-seed batch kernel.
//
// BatchPlatform simulates up to K independent measurement runs of ONE
// prepared trace — K distinct run seeds — in a single pass over the event
// stream. Per event, the lane-invariant work (trace decode, execute-cost
// accounting, guaranteed-MRU fetch classification) was already paid once
// by PrepareTrace; only the lane-variant work (cache/TLB lookups, memory
// path, store buffer) executes per lane, over lane-major SoA state scanned
// with the runtime-dispatched SIMD first-match primitive.
//
// Determinism contract: lane l of RunBatch(prepared, seeds) returns a
// RunResult bit-identical — every field, including PRNG consumption
// counters — to sim::Platform::Run(trace, seeds[l]) on a single-core
// platform view (core 0 executing, other cores idle), for any lane count
// and any position of the seed within the batch. Each lane owns a private
// MemorySystem and StoreBuffer and performs its bus/DRAM calls in program
// order, exactly as the serial core does. The seed-derivation chain
// (memory reset with the run seed, core seed = DeriveSeed(run_seed, 0),
// per-structure "il1"/"dl1"/"itlb"/"dtlb" labels) mirrors
// Platform::ResetAll. The contract is enforced by
// tests/sim_batch_equivalence_test.cpp and the golden regression battery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/batch/lane_arrays.hpp"
#include "sim/batch/prepared_trace.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/memory_system.hpp"
#include "sim/store_buffer.hpp"

namespace spta::sim::batch {

class BatchPlatform {
 public:
  /// Upper bound on lanes per batch; keeps per-lane working sets of all
  /// lanes L1/L2-resident for the default cache geometries.
  static constexpr std::size_t kMaxLanes = 16;

  /// Builds a K-lane kernel for `config` (1 <= lanes <= kMaxLanes).
  BatchPlatform(const PlatformConfig& config, std::size_t lanes);

  /// Runs one batch: run_seeds.size() lanes (1..lanes()), each performing
  /// the full per-run reset protocol with its own seed, then executing the
  /// prepared trace in lockstep. `prepared` must have been built under a
  /// timing-compatible configuration (TimingDigest match is enforced).
  std::vector<RunResult> RunBatch(const PreparedTrace& prepared,
                                  std::span<const Seed> run_seeds);

  std::size_t lanes() const { return lanes_; }
  const PlatformConfig& config() const { return config_; }

 private:
  void ResetLane(std::size_t lane, Seed run_seed);

  PlatformConfig config_;
  std::size_t lanes_;
  std::uint64_t timing_digest_;
  CacheLaneArray il1_;
  CacheLaneArray dl1_;
  TlbLaneArray itlb_;
  TlbLaneArray dtlb_;
  /// Private memory path + store buffer per lane: a lane's bus/DRAM/L2
  /// state must evolve exactly as in its serial single-core run.
  std::vector<MemorySystem> memories_;
  std::vector<StoreBuffer> store_buffers_;
  std::vector<Cycles> now_;
};

}  // namespace spta::sim::batch
