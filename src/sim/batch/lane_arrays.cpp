#include "sim/batch/lane_arrays.hpp"

#include <algorithm>
#include <bit>

namespace spta::sim::batch {

CacheLaneArray::CacheLaneArray(const CacheConfig& config, std::size_t lanes)
    : config_(config),
      sets_(config.num_sets()),
      set_shift_(static_cast<std::uint32_t>(std::countr_zero(sets_))),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.line_bytes))),
      index_mask_(sets_ - 1),
      lane_stride_(static_cast<std::size_t>(sets_) * config.ways),
      tags_(lanes * lane_stride_, kInvalidTag),
      stamps_(lanes * lane_stride_, 0),
      ref_bits_(lanes * sets_, 0),
      meta_(lanes) {
  SPTA_REQUIRE(lanes >= 1);
  SPTA_REQUIRE(std::has_single_bit(sets_));
  SPTA_REQUIRE(config.ways >= 1 && config.ways <= 64);
  rng_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    // Placeholder streams; RunBatch reseeds every lane before use.
    rng_.emplace_back(prng::HwPrng(DeriveSeed(0, "cache-repl")));
  }
}

std::uint32_t CacheLaneArray::Victim(std::size_t lane, std::uint32_t set) {
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  std::uint64_t* tags = LaneTags(lane);
  // Prefer the first invalid way (FindWord64 preserves first-match order).
  const std::uint32_t invalid =
      FindWord64(tags + base, config_.ways, kInvalidTag);
  if (invalid != config_.ways) return invalid;
  switch (config_.replacement) {
    case Replacement::kLru: {
      const std::uint64_t* stamps = LaneStamps(lane);
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < config_.ways; ++w) {
        if (stamps[base + w] < stamps[base + victim]) victim = w;
      }
      return victim;
    }
    case Replacement::kRandom:
      return rng_[lane].UniformBelow(config_.ways);
    case Replacement::kNru: {
      std::uint64_t* refs = LaneRefBits(lane);
      const std::uint32_t first_clear =
          static_cast<std::uint32_t>(std::countr_one(refs[set]));
      if (first_clear < config_.ways) return first_clear;
      refs[set] = 0;
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

void CacheLaneArray::Flush(std::size_t lane) {
  std::uint64_t* tags = LaneTags(lane);
  std::uint64_t* stamps = LaneStamps(lane);
  std::uint64_t* refs = LaneRefBits(lane);
  std::fill(tags, tags + lane_stride_, kInvalidTag);
  std::fill(stamps, stamps + lane_stride_, std::uint64_t{0});
  std::fill(refs, refs + sets_, std::uint64_t{0});
  LaneMeta& m = meta_[lane];
  m.mru_index = 0;
  m.mru_set = 0;
  m.mru_way = 0;
  m.access_clock = 0;
}

void CacheLaneArray::Reseed(std::size_t lane, Seed seed) {
  meta_[lane].placement_seed = seed;
  rng_[lane] = prng::BlockDraws<prng::HwPrng>(
      prng::HwPrng(DeriveSeed(seed, "cache-repl")));
  Flush(lane);
}

TlbLaneArray::TlbLaneArray(const TlbConfig& config, std::size_t lanes)
    : config_(config),
      entries_(config.entries),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config.page_bytes))),
      vpns_(lanes * static_cast<std::size_t>(config.entries), kInvalidVpn),
      stamps_(lanes * static_cast<std::size_t>(config.entries), 0),
      ref_(lanes * static_cast<std::size_t>(config.entries), 0),
      meta_(lanes) {
  SPTA_REQUIRE(lanes >= 1);
  SPTA_REQUIRE(std::has_single_bit(config.page_bytes));
  rng_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    rng_.emplace_back(prng::HwPrng(DeriveSeed(0, "tlb-repl")));
  }
}

std::uint32_t TlbLaneArray::Victim(std::size_t lane) {
  std::uint64_t* vpns = LaneVpns(lane);
  const std::uint32_t invalid = FindWord64(vpns, entries_, kInvalidVpn);
  if (invalid != entries_) return invalid;
  switch (config_.replacement) {
    case Replacement::kLru: {
      const std::uint64_t* stamps = LaneStamps(lane);
      std::uint32_t victim = 0;
      for (std::uint32_t i = 1; i < entries_; ++i) {
        if (stamps[i] < stamps[victim]) victim = i;
      }
      return victim;
    }
    case Replacement::kRandom:
      return rng_[lane].UniformBelow(entries_);
    case Replacement::kNru: {
      std::uint8_t* refs = LaneRefs(lane);
      for (std::uint32_t i = 0; i < entries_; ++i) {
        if (refs[i] == 0) return i;
      }
      std::fill(refs, refs + entries_, std::uint8_t{0});
      return 0;
    }
  }
  SPTA_CHECK_MSG(false, "unreachable replacement policy");
  return 0;
}

void TlbLaneArray::Flush(std::size_t lane) {
  std::uint64_t* vpns = LaneVpns(lane);
  std::uint64_t* stamps = LaneStamps(lane);
  std::uint8_t* refs = LaneRefs(lane);
  std::fill(vpns, vpns + entries_, kInvalidVpn);
  std::fill(stamps, stamps + entries_, std::uint64_t{0});
  std::fill(refs, refs + entries_, std::uint8_t{0});
  meta_[lane].mru = 0;
  meta_[lane].access_clock = 0;
}

void TlbLaneArray::Reseed(std::size_t lane, Seed seed) {
  rng_[lane] = prng::BlockDraws<prng::HwPrng>(
      prng::HwPrng(DeriveSeed(seed, "tlb-repl")));
  Flush(lane);
}

}  // namespace spta::sim::batch
