// Multi-lane cache/TLB state for the lockstep batch kernel.
//
// CacheLaneArray / TlbLaneArray hold K independent replicas (lanes) of one
// sim::Cache / sim::Tlb in lane-major flat arrays: lane l's tag block is
// contiguous, so the per-set way scan and the fully associative match run
// over consecutive words via the runtime-dispatched SIMD first-match scan
// (sim/batch/simd.hpp). Each lane owns its own placement seed, replacement
// BlockDraws stream, MRU shortcut, access clock and statistics — lanes
// never share randomized state, which is what makes each lane's behavior
// bit-identical to a dedicated single-seed structure.
//
// Divergence-mask semantics: the kernel calls Access(lane, ...) per lane,
// so hit/miss divergence across lanes needs no masking — each lane simply
// takes its own branch, with its own PRNG and victim choice. The bulk MRU
// operations (MruRun) apply a statically-proven run of MRU hits in O(1):
// their state update (counter bumps + final restamp + ref bit) is
// observationally identical to the per-access loop, as each intermediate
// restamp is overwritten by the next and the ref bit is idempotent.
//
// Semantics are replicated from sim/cache.hpp and sim/tlb.hpp (placement
// via the shared sim/placement.hpp helper) and locked by the differential
// battery in tests/sim_batch_equivalence_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "prng/block_draws.hpp"
#include "prng/hw_prng.hpp"
#include "sim/batch/simd.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/placement.hpp"
#include "sim/tlb.hpp"

namespace spta::sim::batch {

class CacheLaneArray {
 public:
  CacheLaneArray(const CacheConfig& config, std::size_t lanes);

  /// Mirrors Cache::Access for lane `lane`. Returns true on hit.
  bool Access(std::size_t lane, Address addr, bool allocate_on_miss = true) {
    LaneMeta& m = meta_[lane];
    ++m.stats.accesses;
    ++m.access_clock;
    const std::uint64_t line = addr >> line_shift_;
    std::uint64_t* tags = LaneTags(lane);
    std::uint64_t* stamps = LaneStamps(lane);
    std::uint64_t* refs = LaneRefBits(lane);
    if (tags[m.mru_index] == line) {
      stamps[m.mru_index] = m.access_clock;
      refs[m.mru_set] |= 1ULL << m.mru_way;
      return true;
    }
    const std::uint32_t set = PlacementSetIndex(
        config_.placement, line, index_mask_, set_shift_, m.placement_seed);
    const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
    const std::uint32_t w = FindWord64(tags + base, config_.ways, line);
    if (w != config_.ways) {
      stamps[base + w] = m.access_clock;
      refs[set] |= 1ULL << w;
      RememberMru(m, base + w, set, w);
      return true;
    }
    ++m.stats.misses;
    if (allocate_on_miss) {
      const std::uint32_t v = Victim(lane, set);
      tags[base + v] = line;
      stamps[base + v] = m.access_clock;
      refs[set] |= 1ULL << v;
      RememberMru(m, base + v, set, v);
    }
    return false;
  }

  /// Applies `count` guaranteed MRU hits to lane `lane` in O(1). Valid
  /// only when the lane's MRU slot holds the accessed line for the whole
  /// run (the prepared-trace bulk-fetch guarantee); equivalent to `count`
  /// Access() calls on that line.
  void MruRun(std::size_t lane, std::uint32_t count) {
    LaneMeta& m = meta_[lane];
    m.stats.accesses += count;
    m.access_clock += count;
    LaneStamps(lane)[m.mru_index] = m.access_clock;
    LaneRefBits(lane)[m.mru_set] |= 1ULL << m.mru_way;
  }

  /// Mirrors Cache::Flush for one lane.
  void Flush(std::size_t lane);
  /// Mirrors Cache::Reseed for one lane (new placement seed + replacement
  /// stream, then flush).
  void Reseed(std::size_t lane, Seed seed);
  void ResetStats(std::size_t lane) { meta_[lane].stats = CacheStats{}; }

  const CacheStats& stats(std::size_t lane) const {
    return meta_[lane].stats;
  }
  prng::DrawStats draw_stats(std::size_t lane) const {
    return rng_[lane].stats();
  }
  std::size_t lanes() const { return meta_.size(); }
  const CacheConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ULL;

  struct LaneMeta {
    Seed placement_seed = 0;
    std::size_t mru_index = 0;  ///< Slot within the lane's tag block.
    std::uint32_t mru_set = 0;
    std::uint32_t mru_way = 0;
    std::uint64_t access_clock = 0;
    CacheStats stats;
  };

  std::uint64_t* LaneTags(std::size_t lane) {
    return tags_.data() + lane * lane_stride_;
  }
  std::uint64_t* LaneStamps(std::size_t lane) {
    return stamps_.data() + lane * lane_stride_;
  }
  std::uint64_t* LaneRefBits(std::size_t lane) {
    return ref_bits_.data() + lane * sets_;
  }
  static void RememberMru(LaneMeta& m, std::size_t index, std::uint32_t set,
                          std::uint32_t way) {
    m.mru_index = index;
    m.mru_set = set;
    m.mru_way = way;
  }
  std::uint32_t Victim(std::size_t lane, std::uint32_t set);

  CacheConfig config_;
  std::uint32_t sets_;
  std::uint32_t set_shift_;
  std::uint32_t line_shift_;
  std::uint32_t index_mask_;
  std::size_t lane_stride_;  ///< sets_ * ways: one lane's tag-block size.
  std::vector<std::uint64_t> tags_;      ///< lanes * sets * ways.
  std::vector<std::uint64_t> stamps_;    ///< lanes * sets * ways.
  std::vector<std::uint64_t> ref_bits_;  ///< lanes * sets.
  std::vector<LaneMeta> meta_;
  std::vector<prng::BlockDraws<prng::HwPrng>> rng_;
};

class TlbLaneArray {
 public:
  TlbLaneArray(const TlbConfig& config, std::size_t lanes);

  /// Mirrors Tlb::Access for lane `lane`. Returns true on hit.
  bool Access(std::size_t lane, Address addr) {
    LaneMeta& m = meta_[lane];
    ++m.stats.accesses;
    ++m.access_clock;
    const std::uint64_t vpn = addr >> page_shift_;
    std::uint64_t* vpns = LaneVpns(lane);
    std::uint64_t* stamps = LaneStamps(lane);
    std::uint8_t* refs = LaneRefs(lane);
    if (vpns[m.mru] == vpn) {
      stamps[m.mru] = m.access_clock;
      refs[m.mru] = 1;
      return true;
    }
    const std::uint32_t hit = FindWord64(vpns, entries_, vpn);
    if (hit != entries_) {
      stamps[hit] = m.access_clock;
      refs[hit] = 1;
      m.mru = hit;
      return true;
    }
    ++m.stats.misses;
    const std::uint32_t victim = Victim(lane);
    vpns[victim] = vpn;
    stamps[victim] = m.access_clock;
    refs[victim] = 1;
    m.mru = victim;
    return false;
  }

  /// `count` guaranteed MRU hits in O(1) (see CacheLaneArray::MruRun).
  void MruRun(std::size_t lane, std::uint32_t count) {
    LaneMeta& m = meta_[lane];
    m.stats.accesses += count;
    m.access_clock += count;
    LaneStamps(lane)[m.mru] = m.access_clock;
    LaneRefs(lane)[m.mru] = 1;
  }

  void Flush(std::size_t lane);
  void Reseed(std::size_t lane, Seed seed);
  void ResetStats(std::size_t lane) { meta_[lane].stats = TlbStats{}; }

  const TlbStats& stats(std::size_t lane) const { return meta_[lane].stats; }
  prng::DrawStats draw_stats(std::size_t lane) const {
    return rng_[lane].stats();
  }
  std::size_t lanes() const { return meta_.size(); }
  const TlbConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t kInvalidVpn = ~0ULL;

  struct LaneMeta {
    std::uint32_t mru = 0;
    std::uint64_t access_clock = 0;
    TlbStats stats;
  };

  std::uint64_t* LaneVpns(std::size_t lane) {
    return vpns_.data() + lane * entries_;
  }
  std::uint64_t* LaneStamps(std::size_t lane) {
    return stamps_.data() + lane * entries_;
  }
  std::uint8_t* LaneRefs(std::size_t lane) {
    return ref_.data() + lane * entries_;
  }
  std::uint32_t Victim(std::size_t lane);

  TlbConfig config_;
  std::uint32_t entries_;
  std::uint32_t page_shift_;
  std::vector<std::uint64_t> vpns_;    ///< lanes * entries.
  std::vector<std::uint64_t> stamps_;  ///< lanes * entries.
  std::vector<std::uint8_t> ref_;     ///< lanes * entries.
  std::vector<LaneMeta> meta_;
  std::vector<prng::BlockDraws<prng::HwPrng>> rng_;
};

}  // namespace spta::sim::batch
