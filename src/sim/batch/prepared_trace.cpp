#include "sim/batch/prepared_trace.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace spta::sim::batch {

std::uint64_t TimingDigest(const PlatformConfig& config) {
  std::uint64_t h = DeriveSeed(0, "batch-timing");
  h = HashCombine(h, config.il1.line_bytes);
  h = HashCombine(h, config.itlb.page_bytes);
  h = HashCombine(h, config.pipeline.int_alu);
  h = HashCombine(h, config.pipeline.int_mul);
  h = HashCombine(h, config.pipeline.int_div);
  h = HashCombine(h, config.pipeline.taken_branch_penalty);
  h = HashCombine(h, config.pipeline.load_use_stall);
  h = HashCombine(h, static_cast<std::uint64_t>(config.fpu.mode));
  h = HashCombine(h, config.fpu.add_latency);
  h = HashCombine(h, config.fpu.mul_latency);
  h = HashCombine(h, config.fpu.div_base);
  h = HashCombine(h, config.fpu.div_step);
  h = HashCombine(h, config.fpu.sqrt_base);
  h = HashCombine(h, config.fpu.sqrt_step);
  return h;
}

PreparedTrace PrepareTrace(const trace::Trace& t,
                           const PlatformConfig& config) {
  using trace::OpClass;
  SPTA_REQUIRE(std::has_single_bit(config.il1.line_bytes));
  SPTA_REQUIRE(std::has_single_bit(config.itlb.page_bytes));

  PreparedTrace out;
  out.instructions = t.records.size();
  out.path_signature = t.path_signature;
  out.timing_digest = TimingDigest(config);
  out.events.reserve(t.records.size() / 4 + 1);

  // The FPU latency model is lane-invariant (record-determined in both
  // modes), so one replay here yields every lane's latencies and stats.
  Fpu fpu(config.fpu);
  const std::uint32_t line_shift = static_cast<std::uint32_t>(
      std::countr_zero(config.il1.line_bytes));
  const std::uint32_t page_shift = static_cast<std::uint32_t>(
      std::countr_zero(config.itlb.page_bytes));

  bool have_prev = false;
  std::uint64_t prev_line = 0;
  std::uint64_t prev_page = 0;
  std::uint8_t pending_load_reg = trace::kNoReg;

  for (const trace::TraceRecord& rec : t.records) {
    const std::uint64_t pc_line = rec.pc >> line_shift;
    const std::uint64_t pc_page = rec.pc >> page_shift;
    // The fetch outcome is statically a hit only when the previous
    // record's fetch (its LAST access to each fetch structure) touched the
    // same line/page; the first record of a run starts from flushed state.
    const bool itlb_full = !have_prev || pc_page != prev_page;
    const bool il1_full = !have_prev || pc_line != prev_line;
    prev_line = pc_line;
    prev_page = pc_page;
    have_prev = true;

    Cycles cost = 0;
    if (rec.Reads(pending_load_reg)) cost += config.pipeline.load_use_stall;
    pending_load_reg =
        rec.op == OpClass::kLoad ? rec.dst_reg : trace::kNoReg;

    BatchEvent::Kind kind = BatchEvent::Kind::kFetch;
    switch (rec.op) {
      case OpClass::kIntAlu:
      case OpClass::kNop:
        cost += config.pipeline.int_alu;
        break;
      case OpClass::kIntMul:
        cost += config.pipeline.int_mul;
        break;
      case OpClass::kIntDiv:
        cost += config.pipeline.int_div;
        break;
      case OpClass::kBranch:
        cost += config.pipeline.int_alu;
        if (rec.branch_taken) cost += config.pipeline.taken_branch_penalty;
        break;
      case OpClass::kFpAdd:
      case OpClass::kFpMul:
      case OpClass::kFpDiv:
      case OpClass::kFpSqrt:
        cost += fpu.Latency(rec.op, rec.fpu_operand_class);
        break;
      case OpClass::kLoad:
        cost += config.pipeline.int_alu;
        kind = BatchEvent::Kind::kLoad;
        break;
      case OpClass::kStore:
        cost += config.pipeline.int_alu;
        kind = BatchEvent::Kind::kStore;
        break;
    }

    if (kind == BatchEvent::Kind::kFetch && !itlb_full && !il1_full) {
      // Fetch-only record with both lookups guaranteed MRU hits: merge
      // into the running bulk event.
      if (!out.events.empty() &&
          out.events.back().kind == BatchEvent::Kind::kBulkFetch) {
        BatchEvent& bulk = out.events.back();
        ++bulk.count;
        bulk.cycles += cost;
        continue;
      }
      out.events.push_back({BatchEvent::Kind::kBulkFetch, false, false, 1,
                            cost, 0, 0});
      continue;
    }
    out.events.push_back(
        {kind, itlb_full, il1_full, 1, cost, rec.pc, rec.mem_addr});
  }

  out.fpu = fpu.stats();
  return out;
}

}  // namespace spta::sim::batch
