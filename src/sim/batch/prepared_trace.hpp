// Lane-invariant trace preprocessing for the lockstep batch kernel.
//
// A measurement run's timing splits cleanly into two parts:
//
//  * LANE-INVARIANT: base pipeline latencies, FPU latencies (fixed or
//    value-dependent — both are functions of the record alone), load-use
//    stalls, branch penalties, and the instruction-fetch hit/miss outcome
//    of records whose pc stays within the previous record's cache line and
//    page. Every record performs an ITLB and IL1 access on its own pc and
//    both structures always allocate, so after any record the MRU slot of
//    each fetch structure holds that record's page/line — a following
//    record with the same page (line) is a GUARANTEED MRU hit in every
//    lane, independent of seed. None of this depends on the run seed.
//
//  * LANE-VARIANT: the remaining ITLB/IL1 outcomes (page or line changed),
//    every DTLB/DL1 access (the data side's MRU slot is NOT statically
//    derivable — a store miss does not update it), the memory-path timing
//    of misses, and the store buffer.
//
// PrepareTrace folds everything lane-invariant into a compact event stream
// once per trace; the batch kernel then replays only the lane-variant work
// per seed. Runs of fetch-only records with guaranteed MRU hits collapse
// into a single kBulkFetch event whose per-lane application (bump access
// and clock counters, restamp the MRU slot, set its ref bit) is
// observationally identical to executing the records one by one.
//
// The decomposition depends on the platform's timing parameters (pipeline
// latencies, FPU mode, IL1 line size, ITLB page size); a PreparedTrace
// carries a digest of them and BatchPlatform refuses a mismatched one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/fpu.hpp"
#include "trace/record.hpp"

namespace spta::sim::batch {

/// One interpreter step of the batch kernel.
struct BatchEvent {
  enum class Kind : std::uint8_t {
    kBulkFetch,  ///< `count` fetch-only records, all guaranteed MRU hits.
    kFetch,      ///< One fetch-only record with a lane-variant fetch lookup.
    kLoad,       ///< One load record (fetch + DTLB + DL1 allocate-on-miss).
    kStore,      ///< One store record (fetch + DTLB + DL1 no-allocate + SB).
  };
  Kind kind = Kind::kBulkFetch;
  /// Lane-variant fetch lookups (pc changed page/line since the previous
  /// record). False = guaranteed MRU hit, applied in bulk.
  bool itlb_full = false;
  bool il1_full = false;
  std::uint32_t count = 1;  ///< Records covered (> 1 only for kBulkFetch).
  /// Lane-invariant execute cycles of the covered records: base op
  /// latencies + load-use stalls + branch penalties + FPU latency. Applied
  /// after the fetch lookups and before the data-side accesses, exactly
  /// where Core::RetireRecord charges them.
  Cycles cycles = 0;
  Address pc = 0;        ///< Fetch address (unused by kBulkFetch).
  Address mem_addr = 0;  ///< Data address (kLoad/kStore only).
};

/// A trace lowered to batch events under one platform timing configuration.
struct PreparedTrace {
  std::vector<BatchEvent> events;
  std::uint64_t instructions = 0;
  /// FPU statistics of one run — lane-invariant, so computed once here.
  FpuStats fpu;
  std::uint64_t path_signature = 0;
  /// Digest of the timing parameters the events were computed under.
  std::uint64_t timing_digest = 0;
};

/// Digest of the PlatformConfig parameters that PrepareTrace bakes into the
/// event stream (pipeline/FPU timing, IL1 line size, ITLB page size).
std::uint64_t TimingDigest(const PlatformConfig& config);

/// Lowers `t` for batched execution under `config`'s timing parameters.
PreparedTrace PrepareTrace(const trace::Trace& t,
                           const PlatformConfig& config);

}  // namespace spta::sim::batch
