#include "sim/batch/simd.hpp"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SPTA_BATCH_X86 1
#else
#define SPTA_BATCH_X86 0
#endif

#include <bit>

namespace spta::sim::batch {
namespace detail {

std::uint32_t (*find_word64_fn)(const std::uint64_t*, std::uint32_t,
                                std::uint64_t) = nullptr;

std::uint32_t FindWord64Scalar(const std::uint64_t* data, std::uint32_t n,
                               std::uint64_t needle) {
  for (std::uint32_t i = 0; i < n; ++i) {
    if (data[i] == needle) return i;
  }
  return n;
}

#if SPTA_BATCH_X86
__attribute__((target("avx2"))) std::uint32_t FindWord64Avx2(
    const std::uint64_t* data, std::uint32_t n, std::uint64_t needle) {
  const __m256i nd = _mm256_set1_epi64x(static_cast<long long>(needle));
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i eq = _mm256_cmpeq_epi64(v, nd);
    // movemask_pd packs one bit per 64-bit element, element 0 in bit 0, so
    // the lowest set bit is the LOWEST matching index — first-match order.
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return i + static_cast<std::uint32_t>(
                     std::countr_zero(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (data[i] == needle) return i;
  }
  return n;
}
#else
std::uint32_t FindWord64Avx2(const std::uint64_t* data, std::uint32_t n,
                             std::uint64_t needle) {
  return FindWord64Scalar(data, n, needle);
}
#endif

void EnsureDispatchResolved() { (void)ActiveScanIsa(); }

}  // namespace detail

const char* ToString(ScanIsa isa) {
  switch (isa) {
    case ScanIsa::kScalar:
      return "scalar";
    case ScanIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuHasAvx2() {
#if SPTA_BATCH_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

ScanIsa g_active = ScanIsa::kScalar;
bool g_resolved = false;

void Install(ScanIsa isa) {
  g_active = isa;
  detail::find_word64_fn = isa == ScanIsa::kAvx2 ? detail::FindWord64Avx2
                                                 : detail::FindWord64Scalar;
  g_resolved = true;
}

}  // namespace

ScanIsa ActiveScanIsa() {
  if (!g_resolved) {
    const char* force = std::getenv("SPTA_BATCH_FORCE_SCALAR");
    const bool forced_scalar =
        force != nullptr && force[0] != '\0' && force[0] != '0';
    Install(!forced_scalar && CpuHasAvx2() ? ScanIsa::kAvx2
                                           : ScanIsa::kScalar);
  }
  return g_active;
}

ScanIsa SetScanIsaForTest(ScanIsa isa) {
  if (isa == ScanIsa::kAvx2 && !CpuHasAvx2()) isa = ScanIsa::kScalar;
  Install(isa);
  return g_active;
}

}  // namespace spta::sim::batch
