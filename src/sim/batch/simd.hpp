// Runtime-dispatched SIMD scan primitives for the lockstep batch kernel.
//
// The batch kernel's hot scans — the set-associative way scan and the
// fully associative TLB match over flat SoA word arrays — are first-match
// searches for one 64-bit needle. On x86 with AVX2 the scan compares four
// ways per instruction (VPCMPEQQ + movemask); everywhere else a portable
// scalar loop runs. The ISA is selected once at startup from CPUID, can be
// forced to scalar with SPTA_BATCH_FORCE_SCALAR=1 (CI determinism on
// unknown fleets), and is switchable in-process for tests so the
// equivalence battery exercises BOTH paths on one machine.
//
// Contract: FindWord64 returns the index of the FIRST element equal to
// `needle`, or `n` when absent — exactly the semantics of the scalar
// break-on-match loop. First-match order is load-bearing: the victim
// search prefers the lowest invalid way, and hit scans rely on tags being
// unique per set (where first-match and any-match coincide).
#pragma once

#include <cstdint>

namespace spta::sim::batch {

enum class ScanIsa : std::uint8_t {
  kScalar,  ///< Portable compare loop.
  kAvx2,    ///< 4 x 64-bit compares per step (x86 AVX2).
};

const char* ToString(ScanIsa isa);

/// The ISA the scans below currently use. Resolved once on first call:
/// AVX2 when the CPU supports it and SPTA_BATCH_FORCE_SCALAR is unset,
/// scalar otherwise.
ScanIsa ActiveScanIsa();

/// Test hook: overrides the active ISA in-process (no-op request to use
/// kAvx2 on a CPU without it is refused and scalar is kept). Returns the
/// ISA actually installed.
ScanIsa SetScanIsaForTest(ScanIsa isa);

/// True when the running CPU can execute the AVX2 path.
bool CpuHasAvx2();

namespace detail {
std::uint32_t FindWord64Scalar(const std::uint64_t* data, std::uint32_t n,
                               std::uint64_t needle);
std::uint32_t FindWord64Avx2(const std::uint64_t* data, std::uint32_t n,
                             std::uint64_t needle);
/// Set once by the dispatcher; read on every scan. Plain pointer reads are
/// fine for the single-threaded case; the batched campaign runners spawn
/// workers only after ActiveScanIsa() has resolved, so cross-thread reads
/// observe the installed value (tests that flip the ISA do so before
/// launching pools).
extern std::uint32_t (*find_word64_fn)(const std::uint64_t*, std::uint32_t,
                                       std::uint64_t);
void EnsureDispatchResolved();
}  // namespace detail

/// Index of the first element of data[0..n) equal to `needle`, or n.
inline std::uint32_t FindWord64(const std::uint64_t* data, std::uint32_t n,
                                std::uint64_t needle) {
  if (detail::find_word64_fn == nullptr) detail::EnsureDispatchResolved();
  return detail::find_word64_fn(data, n, needle);
}

}  // namespace spta::sim::batch
