#include "sim/bus.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace spta::sim {

Bus::Bus(const BusConfig& config) : config_(config) {}

Cycles Bus::Acquire(CoreId /*core*/, Cycles ready_time, Cycles duration) {
  SPTA_REQUIRE(duration >= 1);
  const Cycles start = std::max(ready_time, free_at_);
  stats_.wait_cycles += start - ready_time;
  stats_.busy_cycles += duration;
  ++stats_.transactions;
  free_at_ = start + duration;
  return start;
}

void Bus::Reset() {
  free_at_ = 0;
  stats_ = BusStats{};
}

}  // namespace spta::sim
