// Shared processor bus (AMBA AHB style).
//
// All DL1/IL1 misses and write-through stores of every core travel over one
// shared bus to the memory controller (paper Figure 1). The bus serves one
// transaction at a time; requests arriving while it is busy wait (that wait
// is the inter-core interference an MBPTA multicore analysis must bound).
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct BusStats {
  std::uint64_t transactions = 0;
  Cycles busy_cycles = 0;
  Cycles wait_cycles = 0;  ///< Total cycles requests spent queued.
};

class Bus {
 public:
  explicit Bus(const BusConfig& config);

  /// Requests the bus at `ready_time` for `duration` cycles on behalf of
  /// `core`. Returns the cycle the transaction starts (>= ready_time).
  /// Callers must issue requests in non-decreasing ready_time order per
  /// core; cross-core ordering is handled by the caller's event loop.
  Cycles Acquire(CoreId core, Cycles ready_time, Cycles duration);

  /// First cycle at which the bus is free.
  Cycles free_at() const { return free_at_; }

  /// Clears the busy horizon and statistics (between measurement runs).
  void Reset();

  const BusConfig& config() const { return config_; }
  const BusStats& stats() const { return stats_; }

  // --- Atlas kernel-memoization surface (src/atlas) -----------------------

  /// Mixes the busy horizon into `h` relative to core time `now`, clamped
  /// at zero: a bus that freed up in the past behaves exactly like one that
  /// frees up at `now` for every future Acquire (start = max(ready,
  /// free_at_) with ready >= now).
  void AppendStateDigest(DualHash& h, Cycles now) const {
    h.Mix(free_at_ > now ? free_at_ - now : 0);
  }

  /// Rebases the busy horizon from core time `old_now` to `new_now`,
  /// preserving the clamped offset (memoized fast-forward; see
  /// AppendStateDigest for why clamping is behaviorally transparent).
  void FastForward(Cycles old_now, Cycles new_now) {
    free_at_ = new_now + (free_at_ > old_now ? free_at_ - old_now : 0);
  }

  /// Folds a recorded iteration's bus stats into the counters.
  void ApplyStatsDelta(const BusStats& delta) {
    stats_.transactions += delta.transactions;
    stats_.busy_cycles += delta.busy_cycles;
    stats_.wait_cycles += delta.wait_cycles;
  }

 private:
  BusConfig config_;
  Cycles free_at_ = 0;
  BusStats stats_;
};

}  // namespace spta::sim
