// Shared processor bus (AMBA AHB style).
//
// All DL1/IL1 misses and write-through stores of every core travel over one
// shared bus to the memory controller (paper Figure 1). The bus serves one
// transaction at a time; requests arriving while it is busy wait (that wait
// is the inter-core interference an MBPTA multicore analysis must bound).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/config.hpp"

namespace spta::sim {

struct BusStats {
  std::uint64_t transactions = 0;
  Cycles busy_cycles = 0;
  Cycles wait_cycles = 0;  ///< Total cycles requests spent queued.
};

class Bus {
 public:
  explicit Bus(const BusConfig& config);

  /// Requests the bus at `ready_time` for `duration` cycles on behalf of
  /// `core`. Returns the cycle the transaction starts (>= ready_time).
  /// Callers must issue requests in non-decreasing ready_time order per
  /// core; cross-core ordering is handled by the caller's event loop.
  Cycles Acquire(CoreId core, Cycles ready_time, Cycles duration);

  /// First cycle at which the bus is free.
  Cycles free_at() const { return free_at_; }

  /// Clears the busy horizon and statistics (between measurement runs).
  void Reset();

  const BusConfig& config() const { return config_; }
  const BusStats& stats() const { return stats_; }

 private:
  BusConfig config_;
  Cycles free_at_ = 0;
  BusStats stats_;
};

}  // namespace spta::sim
